//! Criterion bench: wall time of draining one sharded run with 1, 2,
//! and 4 real `daydream sweep-worker` processes.
//!
//! Each iteration plans a fresh run directory, spawns K single-threaded
//! worker processes on the built binary, waits for them to drain the
//! queue, and merges the partials. This measures the whole distributed
//! path — process startup, per-process base profiling, claim-by-rename
//! contention, partial-file I/O, and the merge — which is why the
//! speedup is sublinear: every process rebuilds the base profiles its
//! shards touch, the price of process isolation. On a host with K+
//! cores the K-process drain approaches a K-fold wall-time win; on a
//! single-core host (some CI containers) all processes serialize and
//! the exhibit degenerates to measuring pure protocol overhead — the
//! deltas between rows are then the coordination cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use daydream_shard::{merge_run, RunDir, ShardPlan};
use daydream_sweep::SweepGrid;
use std::process::Command;

fn bench_grid() -> SweepGrid {
    // ~236 scenarios: big enough that evaluation work, not process
    // startup, dominates the comparison.
    SweepGrid::builder()
        .models(["ResNet-50", "DenseNet-121"])
        .batches([4, 8])
        .opts([
            "baseline",
            "amp",
            "gist",
            "vdnn",
            "bandwidth",
            "reconstruct-bn",
            "batch-size",
            "ddp",
            "blueconnect",
            "dgc",
        ])
        .bandwidths([5.0, 10.0, 25.0, 50.0])
        .machines([2, 4, 8])
        .dgc_ratios([0.01, 0.1])
        .bandwidth_factors([2.0, 4.0])
        .vdnn_lookaheads([1, 2])
        .gist_lossy([false, true])
        .target_batches([16, 32])
        .build()
}

fn drain_with_workers(scenario_tag: &str, workers: usize) -> usize {
    let dir = std::env::temp_dir().join(format!(
        "daydream-bench-shard-{}-{scenario_tag}-{workers}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    // Eight shards regardless of worker count, so contention (not the
    // partition) is what varies across the comparison.
    let plan = ShardPlan::partition(bench_grid().expand().expect("valid grid"), 8)
        .expect("plan partitions");
    let (run, _) = RunDir::init_or_open(&dir, "bench", &plan).expect("init run dir");

    let children: Vec<_> = (0..workers)
        .map(|w| {
            Command::new(env!("CARGO_BIN_EXE_daydream"))
                .args([
                    "sweep-worker",
                    "--run-dir",
                    run.path().to_str().expect("utf8 path"),
                    "--worker-id",
                    &format!("bench-w{w}"),
                    "--threads",
                    "1",
                ])
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("worker spawns")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("worker exits");
        assert!(status.success(), "worker failed");
    }
    let report = merge_run(&run).expect("drained run merges");
    std::fs::remove_dir_all(&dir).ok();
    report.scenario_count
}

fn bench_shard_procs(c: &mut Criterion) {
    let scenarios = bench_grid().expand().expect("valid grid").len() as u64;
    let mut group = c.benchmark_group("shard_procs");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(scenarios));
        group.bench_with_input(
            BenchmarkId::new("drain", format!("{workers}proc/{scenarios}scen")),
            &workers,
            |b, &workers| {
                let mut iter = 0usize;
                b.iter(|| {
                    iter += 1;
                    let tag = format!("i{iter}");
                    std::hint::black_box(drain_with_workers(&tag, workers))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_procs);
criterion_main!(benches);
