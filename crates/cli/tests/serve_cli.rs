//! End-to-end test of `daydream serve` / `daydream query` /
//! `daydream sweep-history`: spawns the real daemon binary, drives it
//! with the real client binary, and asserts the served sweep report is
//! byte-identical to the offline `daydream sweep` of the same grid.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn daydream() -> Command {
    Command::new(env!("CARGO_BIN_EXE_daydream"))
}

/// Starts the daemon on a free port, returning the child, the address
/// parsed from its startup line, and the still-open stdout reader
/// (dropping it would close the pipe and break the daemon's final
/// status print).
fn spawn_daemon(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = daydream()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on startup line")
        .to_string();
    assert!(
        line.contains("listening"),
        "unexpected startup line: {line}"
    );
    (child, addr, reader)
}

/// Runs `daydream query` against the daemon, returning (exit ok, stdout).
fn query(addr: &str, path: &str, body: Option<&str>) -> (bool, String) {
    let mut cmd = daydream();
    cmd.args(["query", path, "--addr", addr]);
    if let Some(b) = body {
        cmd.args(["--body", b]);
    }
    let out = cmd.output().expect("query runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn wait_job_done(addr: &str, job: &str) {
    for _ in 0..600 {
        let (ok, body) = query(addr, &format!("/jobs/{job}"), None);
        assert!(ok, "job status query failed: {body}");
        if body.contains("\"state\":\"done\"") {
            return;
        }
        assert!(!body.contains("\"state\":\"failed\""), "job failed: {body}");
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("job {job} did not finish");
}

#[test]
fn served_sweep_report_is_byte_identical_to_offline() {
    let dir = std::env::temp_dir().join(format!("daydream-serve-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    let offline_path = dir.join("offline.json");

    let (mut child, addr, _stdout) = spawn_daemon(&["--store", store.to_str().unwrap()]);

    // Liveness through the real client binary.
    let (ok, health) = query(&addr, "/healthz", None);
    assert!(ok && health.contains("\"status\":\"ok\""), "got: {health}");

    // Submit a grid to the daemon...
    let grid_body = r#"{"models": ["ResNet-50", "BERT_Base"], "batches": [4],
                        "opts": ["amp", "gist", "bandwidth"]}"#;
    let (ok, submitted) = query(&addr, "/sweep", Some(grid_body));
    assert!(ok && submitted.contains("\"job_id\":1"), "got: {submitted}");
    wait_job_done(&addr, "1");
    let (ok, served) = query(&addr, "/jobs/1/results", None);
    assert!(ok, "results query failed: {served}");

    // ...and sweep the same grid offline with the stock CLI.
    let out = daydream()
        .args([
            "sweep",
            "--models",
            "ResNet-50,BERT_Base",
            "--batches",
            "4",
            "--opts",
            "amp,gist,bandwidth",
            "--threads",
            "2",
            "--out",
            offline_path.to_str().unwrap(),
        ])
        .output()
        .expect("offline sweep runs");
    assert!(
        out.status.success(),
        "offline sweep failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let offline = std::fs::read_to_string(&offline_path).unwrap();

    // The daemon's report for the same grid must be byte-identical to
    // the offline one — warm caches, streaming, and persistence must
    // never change what a sweep *means*.
    assert_eq!(
        served.trim_end(),
        offline.trim_end(),
        "served and offline reports diverge"
    );

    // The job persisted as run-0001, and history queries see it — over
    // HTTP and through the offline `sweep-history` twin.
    let (ok, best) = query(&addr, "/history/best?model=ResNet-50&top=3", None);
    assert!(ok, "history query failed: {best}");
    assert!(best.contains("\"run_id\":\"run-0001\""), "got: {best}");

    let hist = daydream()
        .args([
            "sweep-history",
            "--store",
            store.to_str().unwrap(),
            "--model",
            "ResNet-50",
        ])
        .output()
        .expect("sweep-history runs");
    let hist_out = String::from_utf8_lossy(&hist.stdout);
    assert!(hist.status.success(), "sweep-history failed: {hist_out}");
    assert!(hist_out.contains("run-0001"), "got: {hist_out}");
    assert!(hist_out.contains("ResNet-50"), "got: {hist_out}");

    // Garbage on the wire gets a typed error and doesn't kill the
    // daemon; a clean shutdown does.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET /metrics HTTP/2.0\r\n\r\n").unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut wire = Vec::new();
    raw.read_to_end(&mut wire).ok();
    assert!(
        String::from_utf8_lossy(&wire).contains(" 505 "),
        "got: {}",
        String::from_utf8_lossy(&wire)
    );
    let (ok, _) = query(&addr, "/healthz", None);
    assert!(ok, "daemon must survive a malformed client");

    let (ok, _) = query(&addr, "/shutdown", Some("{}"));
    assert!(ok);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_reports_errors_with_nonzero_exit() {
    let (mut child, addr, _stdout) = spawn_daemon(&["--max-requests", "3"]);

    // A 400 from the daemon is a nonzero exit from the client, with the
    // error JSON still printed.
    let (ok, body) = query(&addr, "/whatif", Some(r#"{"model": "AlexNet"}"#));
    assert!(!ok, "bad model must fail the client");
    assert!(body.contains("unknown model"), "got: {body}");
    let (ok, body) = query(&addr, "/nope", None);
    assert!(!ok);
    assert!(body.contains("error"), "got: {body}");

    // Third request exhausts --max-requests and the daemon stops on its
    // own — the lifetime bound the CI smoke test relies on.
    let (ok, _) = query(&addr, "/healthz", None);
    assert!(ok);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status}");
}
