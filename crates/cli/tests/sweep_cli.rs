//! End-to-end test of the `daydream sweep` subcommand: spawns the real
//! binary on an acceptance-sized grid, checks the ranked JSON report,
//! and verifies cache-file reuse across processes.

use std::process::Command;

fn daydream() -> Command {
    Command::new(env!("CARGO_BIN_EXE_daydream"))
}

#[test]
fn sweep_end_to_end_with_report_and_cache() {
    let dir = std::env::temp_dir().join(format!("daydream-sweep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    let csv_path = dir.join("report.csv");
    let cache_path = dir.join("sweep.cache.json");

    // >= 24 scenarios: 2 models x {amp, gist, ddp x (2 bw), dgc x (2 bw),
    // bandwidth} x 2 batches, minus nothing (all applicable).
    let grid_args = [
        "sweep",
        "--models",
        "ResNet-50,BERT_Base",
        "--batches",
        "4,8",
        "--opts",
        "amp,gist,ddp,dgc,bandwidth",
        "--bw",
        "10,25",
        "--machines",
        "4",
        "--threads",
        "4",
    ];

    let out = daydream()
        .args(grid_args)
        .args(["--out", report_path.to_str().unwrap()])
        .args(["--csv", csv_path.to_str().unwrap()])
        .args(["--cache-file", cache_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "sweep failed: {stdout}");
    assert!(stdout.contains("swept 28 scenarios"), "got: {stdout}");
    assert!(stdout.contains("pareto front"));

    // The JSON report parses and is ranked.
    let json = std::fs::read_to_string(&report_path).unwrap();
    let report: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(report["scenario_count"], 28u64);
    assert_eq!(report["cache_hits"], 0u64);
    let results = report["results"].as_array().unwrap();
    assert_eq!(results.len(), 28);
    let times: Vec<u64> = results
        .iter()
        .map(|r| r["predicted_ns"].as_u64().unwrap())
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "ranked ascending");

    // CSV: header + one row per scenario.
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(csv.lines().count(), 29);
    assert!(csv.starts_with("rank,label,model"));

    // Second process, same grid, same cache file: everything is free.
    let out2 = daydream()
        .args(grid_args)
        .args(["--cache-file", cache_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout2 = String::from_utf8_lossy(&out2.stdout);
    assert!(out2.status.success(), "cached sweep failed: {stdout2}");
    assert!(
        stdout2.contains("cache: 28 hits, 0 executed"),
        "expected full cache reuse, got: {stdout2}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_top_controls_ranked_row_count() {
    let base = [
        "sweep",
        "--models",
        "ResNet-50",
        "--batches",
        "4",
        "--opts",
        "baseline,amp,gist,vdnn,bandwidth",
        "--threads",
        "2",
    ];
    let out = daydream().args(base).args(["--top", "2"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ranked_rows = stdout
        .lines()
        .filter(|l| l.starts_with("1 ") || l.starts_with("2 ") || l.starts_with("3 "))
        .count();
    assert_eq!(ranked_rows, 2, "--top 2 prints two ranked rows: {stdout}");
    assert!(
        stdout.contains("... 3 more rows"),
        "truncation is announced: {stdout}"
    );

    // Default --top 15 shows all five rows, no truncation notice.
    let out = daydream().args(base).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("more rows"), "got: {stdout}");
    assert!(
        stdout.lines().any(|l| l.starts_with("5    ")),
        "all five ranked rows print: {stdout}"
    );

    // Garbage --top is an argument error, not a silent default.
    let out = daydream()
        .args(base)
        .args(["--top", "lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid value for --top"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `--search halving` on a monotone curated grid agrees with the
/// exhaustive sweep on the per-model winner, prints rung accounting,
/// and appends the rung table to `--csv`.
#[test]
fn sweep_search_halving_agrees_with_exhaustive_top1() {
    let dir = std::env::temp_dir().join(format!("daydream-search-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let grid = [
        "sweep",
        "--models",
        "ResNet-50",
        "--batches",
        "4",
        "--opts",
        "baseline,amp,gist,vdnn,bandwidth,batch-size",
        "--factors",
        "1.5,2,3",
        "--target-batches",
        "8,16",
        "--threads",
        "2",
    ];

    let exhaustive = daydream().args(grid).output().expect("binary runs");
    assert!(exhaustive.status.success());
    let exhaustive_out = String::from_utf8_lossy(&exhaustive.stdout).into_owned();

    let csv_path = dir.join("search.csv");
    let search = daydream()
        .args(grid)
        .args([
            "--search",
            "halving",
            "--rungs",
            "3",
            "--keep-fraction",
            "0.4",
        ])
        .args(["--csv", csv_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let search_out = String::from_utf8_lossy(&search.stdout).into_owned();
    assert!(search.status.success(), "search failed: {search_out}");
    assert!(
        search_out.contains("halving search:"),
        "rung summary prints: {search_out}"
    );
    assert!(
        search_out.contains("rung  fidelity  expanded"),
        "rung table prints: {search_out}"
    );

    // Same per-model winner line as the exhaustive sweep.
    let winner = |out: &str| -> String {
        let lines: Vec<&str> = out.lines().collect();
        let i = lines
            .iter()
            .position(|l| l.starts_with("best per model"))
            .expect("winner section");
        lines[i + 1].trim().to_string()
    };
    assert_eq!(
        winner(&search_out),
        winner(&exhaustive_out),
        "halving must keep the exhaustive per-model winner"
    );

    // The CSV carries the ranked rows plus the rung accounting section.
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert!(csv.starts_with("rank,label,model"), "got: {csv}");
    assert!(
        csv.contains("rung,fidelity,expanded,evaluated"),
        "rung csv rides along: {csv}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The search knobs are rejected without `--search halving`, unknown
/// strategies fail, and `--search` refuses sharded mode.
#[test]
fn sweep_search_flag_validation() {
    let base = ["sweep", "--models", "ResNet-50", "--batches", "4"];
    let stderr_of = |extra: &[&str]| {
        let out = daydream().args(base).args(extra).output().unwrap();
        assert!(!out.status.success(), "should fail: {extra:?}");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert!(
        stderr_of(&["--rungs", "3"]).contains("--rungs requires --search halving"),
        "search knobs need the strategy flag"
    );
    assert!(
        stderr_of(&["--search", "annealing"]).contains("unknown --search strategy"),
        "unknown strategies are typos, not defaults"
    );
    assert!(
        stderr_of(&[
            "--search",
            "halving",
            "--run-dir",
            "/tmp/x",
            "--shards",
            "2"
        ])
        .contains("--search does not combine with --run-dir"),
        "sharded halving is planned per round, not via --run-dir"
    );
    assert!(
        stderr_of(&["--search", "halving", "--keep-fraction", "0"])
            .contains("invalid keep fraction"),
        "config validation reaches the CLI"
    );
}

#[test]
fn sweep_rejects_unknown_model_with_nonzero_exit() {
    let out = daydream()
        .args(["sweep", "--models", "AlexNet"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown model"), "got: {stderr}");
}

#[test]
fn sweep_rejects_duplicate_options() {
    let out = daydream()
        .args(["sweep", "--threads", "2", "--threads", "4"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("duplicate option --threads"),
        "got: {stderr}"
    );
}
