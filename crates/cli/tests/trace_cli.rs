//! End-to-end test of the golden-trace fidelity harness: spawns the
//! real binary to record a golden corpus, gate on it, prove the gate
//! fails under a perturbed cost model, detect hash-chain tampering at
//! the offending record, and rank per-op attribution via `trace-diff`.

use std::path::Path;
use std::process::Command;

fn daydream() -> Command {
    Command::new(env!("CARGO_BIN_EXE_daydream"))
}

fn run(args: &[&str], cwd: &Path) -> (bool, String, String) {
    let out = daydream()
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn golden_fidelity_gate_end_to_end() {
    let dir = std::env::temp_dir().join(format!("daydream-trace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let goldens = dir.join("goldens");
    let goldens_s = goldens.to_str().unwrap();

    // Record the corpus; the manifest pins chains and counts.
    let (ok, stdout, stderr) = run(&["golden-gen", "--dir", goldens_s], &dir);
    assert!(ok, "golden-gen failed: {stderr}");
    assert!(stdout.contains("pinned 2 golden(s)"), "got: {stdout}");
    assert!(goldens.join("MANIFEST.json").is_file());
    assert!(goldens.join("resnet50-b4.jsonl").is_file());

    // The pristine corpus passes the gate.
    let (ok, stdout, stderr) = run(&["trace-verify", "--dir", goldens_s], &dir);
    assert!(ok, "trace-verify failed: {stdout}{stderr}");
    assert!(
        stdout.contains("2 golden(s) within the 5.0% fidelity budget"),
        "got: {stdout}"
    );

    // A perturbed cost model must fail the gate — a gate that cannot
    // fail guards nothing.
    let (ok, stdout, stderr) = run(
        &["trace-verify", "--dir", goldens_s, "--perturb", "1.5"],
        &dir,
    );
    assert!(!ok, "perturbed verify must fail: {stdout}");
    assert!(stdout.contains("FAIL"), "got: {stdout}");
    assert!(
        stderr.contains("outside the 5.0% fidelity budget"),
        "got: {stderr}"
    );

    // A manifest whose pinned chain disagrees with the file is reported
    // as a corpus integrity error.
    let manifest_path = goldens.join("MANIFEST.json");
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    let chain_start = manifest.find("\"chain\": \"").unwrap() + "\"chain\": \"".len();
    let mut forged = manifest.clone();
    forged.replace_range(chain_start..chain_start + 16, "0000000000000000");
    std::fs::write(&manifest_path, &forged).unwrap();
    let (ok, _, stderr) = run(&["trace-verify", "--dir", goldens_s], &dir);
    assert!(!ok, "forged manifest must fail");
    assert!(
        stderr.contains("does not match the manifest"),
        "got: {stderr}"
    );
    std::fs::write(&manifest_path, &manifest).unwrap();

    // Tampering with one record breaks the hash chain *at that line*.
    let golden_path = goldens.join("resnet50-b4.jsonl");
    let pristine = std::fs::read_to_string(&golden_path).unwrap();
    let lines: Vec<&str> = pristine.lines().collect();
    let victim = 10usize; // 0-based: an activity record past the header
    let tampered_line = if lines[victim].contains("\"dur_ns\":1") {
        lines[victim].replacen("\"dur_ns\":1", "\"dur_ns\":2", 1)
    } else {
        lines[victim].replacen("\"dur_ns\":", "\"dur_ns\":9", 1)
    };
    assert_ne!(tampered_line, lines[victim], "tamper must change the line");
    let mut tampered: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    tampered[victim] = tampered_line;
    std::fs::write(&golden_path, tampered.join("\n") + "\n").unwrap();
    let (ok, _, stderr) = run(&["trace-verify", "--dir", goldens_s], &dir);
    assert!(!ok, "tampered golden must fail");
    assert!(
        stderr.contains(&format!("line {}: hash chain broken", victim + 1)),
        "tamper detection must name the offending record, got: {stderr}"
    );
    std::fs::write(&golden_path, &pristine).unwrap();

    // trace-diff on a (sim, truth) pair reports ranked attribution in
    // all three formats.
    let truth = dir.join("truth.jsonl");
    let sim = dir.join("sim.jsonl");
    let (ok, stdout, stderr) = run(
        &[
            "profile",
            "ResNet-50",
            "--batch",
            "4",
            "--fidelity",
            "--jsonl",
            truth.to_str().unwrap(),
            "--sim-out",
            sim.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(ok, "profile --fidelity failed: {stderr}");
    assert!(stdout.contains("worst offenders"), "got: {stdout}");

    let pair = [sim.to_str().unwrap(), truth.to_str().unwrap()];
    let (ok, stdout, _) = run(&["trace-diff", pair[0], pair[1], "--format", "csv"], &dir);
    assert!(ok);
    let mut csv = stdout.lines();
    assert!(csv.next().unwrap().starts_with("rank,op,matched"));
    assert!(csv.next().unwrap().starts_with("1,"), "ranked rows follow");

    let (ok, stdout, _) = run(&["trace-diff", pair[0], pair[1], "--format", "json"], &dir);
    assert!(ok);
    assert!(stdout.contains("\"attribution\""), "got: {stdout}");

    let (ok, _, stderr) = run(
        &["trace-diff", pair[0], pair[1], "--tolerance", "0.0000001"],
        &dir,
    );
    assert!(!ok, "an impossibly tight budget must fail");
    assert!(stderr.contains("outside tolerance"), "got: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
