//! End-to-end tests of the distributed sweep subcommands: real worker
//! processes draining a shared run directory, the merged report's
//! byte-identity with the single-process sweep, stale-lease recovery,
//! and run diffing.

use std::path::{Path, PathBuf};
use std::process::Command;

fn daydream() -> Command {
    Command::new(env!("CARGO_BIN_EXE_daydream"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daydream-shard-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Axis options expanding to a ≥ 200-scenario grid (236: 2 conv models
/// x 2 batches x {7 single-GPU variants + 48 cluster variants — 14
/// dropped as inapplicable}).
const BIG_GRID: &[&str] = &[
    "--models",
    "ResNet-50,DenseNet-121",
    "--batches",
    "4,8",
    "--opts",
    "baseline,amp,gist,vdnn,bandwidth,reconstruct-bn,batch-size,ddp,blueconnect,dgc",
    "--bw",
    "5,10,25,50",
    "--machines",
    "2,4,8",
    "--ratios",
    "0.01,0.1",
    "--factors",
    "2,4",
    "--lookaheads",
    "1,2",
    "--lossy",
    "both",
    "--target-batches",
    "16,32",
];

fn run_ok(mut cmd: Command) -> String {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "command failed\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

/// The acceptance-criteria determinism proof: a ≥ 200-scenario grid
/// split across 4 worker *processes*, merged, must be byte-identical to
/// the single-process sweep; diffing the run against itself is clean.
#[test]
fn four_worker_processes_merge_byte_identical_to_single_process() {
    let dir = tmp_dir("determinism");
    let run_dir = dir.join("run");
    let merged_path = dir.join("merged.json");
    let single_path = dir.join("single.json");

    // Plan the run (no shard evaluated yet).
    let mut plan = daydream();
    plan.arg("sweep").args(BIG_GRID).args([
        "--shards",
        "4",
        "--run-dir",
        run_dir.to_str().unwrap(),
    ]);
    let stdout = run_ok(plan);
    assert!(
        stdout.contains("scenarios in 4 shards"),
        "planner output: {stdout}"
    );
    let count: usize = stdout
        .split("planned run")
        .nth(1)
        .and_then(|s| s.split(':').nth(1))
        .and_then(|s| s.trim().split(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("planner prints the scenario count");
    assert!(
        count >= 200,
        "acceptance needs >= 200 scenarios, got {count}"
    );

    // 4 concurrent worker processes race on the shard queue.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            daydream()
                .args(["sweep-worker", "--run-dir", run_dir.to_str().unwrap()])
                .args(["--worker-id", &format!("test-w{w}"), "--threads", "2"])
                .spawn()
                .expect("worker spawns")
        })
        .collect();
    for mut child in workers {
        assert!(child.wait().expect("worker exits").success());
    }

    let stdout = run_ok({
        let mut merge = daydream();
        merge
            .args(["sweep-merge", "--run-dir", run_dir.to_str().unwrap()])
            .args(["--out", merged_path.to_str().unwrap(), "--top", "5"]);
        merge
    });
    assert!(stdout.contains(&format!("merged {count} scenarios from 4 shards")));

    run_ok({
        let mut single = daydream();
        single.arg("sweep").args(BIG_GRID).args([
            "--threads",
            "4",
            "--out",
            single_path.to_str().unwrap(),
        ]);
        single
    });

    let merged = std::fs::read(&merged_path).unwrap();
    let single = std::fs::read(&single_path).unwrap();
    assert!(
        merged == single,
        "merged report must be byte-identical to the single-process sweep \
         ({} vs {} bytes)",
        merged.len(),
        single.len()
    );

    // A run diffed against itself is clean.
    let stdout = run_ok({
        let mut diff = daydream();
        diff.args([
            "sweep-diff",
            run_dir.to_str().unwrap(),
            run_dir.to_str().unwrap(),
            "--fail-on-regression",
        ]);
        diff
    });
    assert!(stdout.contains("0 regressions"), "diff output: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that died mid-shard (simulated by a stale lease file) must
/// not lose scenarios: the next worker reclaims the shard and the run
/// drains to a report identical to the healthy path.
#[test]
fn stale_lease_is_reclaimed_and_the_run_still_drains() {
    let dir = tmp_dir("reclaim");
    let run_dir = dir.join("run");
    let small_grid: &[&str] = &[
        "--models",
        "ResNet-50",
        "--batches",
        "4",
        "--opts",
        "baseline,amp,gist,vdnn,bandwidth",
    ];

    run_ok({
        let mut plan = daydream();
        plan.arg("sweep").args(small_grid).args([
            "--shards",
            "2",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ]);
        plan
    });

    // Simulate the dead worker: claim shard 0 by hand (the same rename
    // the claim protocol performs) and leave behind a long-expired lease.
    let todo = run_dir.join("todo/shard-0000.json");
    let lease = run_dir.join("leases/shard-0000.json");
    std::fs::rename(&todo, &lease).unwrap();
    std::fs::write(
        run_dir.join("leases/shard-0000.lease"),
        r#"{"index": 0, "worker": "crashed-worker", "claimed_unix_ms": 1000, "ttl_ms": 1}"#,
    )
    .unwrap();

    let stdout = run_ok({
        let mut worker = daydream();
        worker
            .args(["sweep-worker", "--run-dir", run_dir.to_str().unwrap()])
            .args(["--worker-id", "rescuer", "--threads", "2"]);
        worker
    });
    assert!(
        stdout.contains("1 stale leases reclaimed"),
        "worker output: {stdout}"
    );
    assert!(stdout.contains("run is drained"), "worker output: {stdout}");

    // The merged report covers every scenario — nothing was lost.
    let merged_path = dir.join("merged.json");
    run_ok({
        let mut merge = daydream();
        merge
            .args(["sweep-merge", "--run-dir", run_dir.to_str().unwrap()])
            .args(["--out", merged_path.to_str().unwrap()]);
        merge
    });
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&merged_path).unwrap()).unwrap();
    assert_eq!(report["scenario_count"], 5u64);
    assert_eq!(report["results"].as_array().unwrap().len(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

/// Re-planning a run directory with a different grid must be rejected;
/// sharded invocations reject single-process-only options.
#[test]
fn sharded_sweep_guards_against_operator_mistakes() {
    let dir = tmp_dir("guards");
    let run_dir = dir.join("run");
    let base: &[&str] = &[
        "--models",
        "ResNet-50",
        "--batches",
        "4",
        "--opts",
        "amp,gist",
    ];

    run_ok({
        let mut plan = daydream();
        plan.arg("sweep").args(base).args([
            "--shards",
            "2",
            "--run-dir",
            run_dir.to_str().unwrap(),
        ]);
        plan
    });

    // Same run dir, different grid: refused.
    let out = daydream()
        .arg("sweep")
        .args(["--models", "BERT_Base", "--batches", "8", "--opts", "amp"])
        .args(["--shards", "2", "--run-dir", run_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different sweep"), "got: {stderr}");

    // Shard options without --run-dir: refused.
    let out = daydream()
        .arg("sweep")
        .args(base)
        .args(["--shards", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("requires --run-dir"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --out in sharded mode: refused (reports come from sweep-merge).
    let out = daydream()
        .arg("sweep")
        .args(base)
        .args(["--shards", "2", "--run-dir", run_dir.to_str().unwrap()])
        .args(["--out", dir.join("x.json").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("sweep-merge"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Merging an undrained run: refused, naming the missing shards.
    let out = daydream()
        .args(["sweep-merge", "--run-dir", run_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not drained"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `sweep --shard-index` is idempotent and each index evaluates its own
/// disjoint slice.
#[test]
fn shard_index_invocations_partition_the_work() {
    let dir = tmp_dir("indexed");
    let run_dir = dir.join("run");
    let base: &[&str] = &[
        "--models",
        "ResNet-50",
        "--batches",
        "4",
        "--opts",
        "baseline,amp,gist,vdnn,bandwidth",
    ];
    let shard = |i: &str| {
        let mut cmd = daydream();
        cmd.arg("sweep")
            .args(base)
            .args(["--shards", "2", "--shard-index", i])
            .args(["--run-dir", run_dir.to_str().unwrap(), "--threads", "2"]);
        cmd
    };
    let first = run_ok(shard("0"));
    assert!(first.contains("evaluated shard 0"), "got: {first}");
    let again = run_ok(shard("0"));
    assert!(
        again.contains("already has results"),
        "second run of the same shard is a no-op: {again}"
    );
    let second = run_ok(shard("1"));
    assert!(second.contains("run is drained"), "got: {second}");

    // Out-of-range index fails cleanly.
    let out = shard("7").output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("out of range"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `sweep-diff` spots a regression planted between two otherwise
/// identical runs and `--fail-on-regression` turns it into a nonzero
/// exit.
#[test]
fn sweep_diff_flags_planted_regressions() {
    let dir = tmp_dir("diff");
    let grid: &[&str] = &[
        "--models",
        "ResNet-50",
        "--batches",
        "4",
        "--opts",
        "amp,gist",
    ];
    let make_run = |name: &str| -> PathBuf {
        let run_dir = dir.join(name);
        run_ok({
            let mut plan = daydream();
            plan.arg("sweep")
                .args(grid)
                .args(["--shards", "1", "--shard-index", "0"])
                .args(["--run-dir", run_dir.to_str().unwrap(), "--threads", "2"]);
            plan
        });
        run_ok({
            let mut merge = daydream();
            merge.args(["sweep-merge", "--run-dir", run_dir.to_str().unwrap()]);
            merge
        });
        run_dir
    };
    let a = make_run("run-a");
    let b = make_run("run-b");

    // Identical runs diff clean even with --fail-on-regression.
    let clean = run_ok({
        let mut diff = daydream();
        diff.args([
            "sweep-diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--fail-on-regression",
        ]);
        diff
    });
    assert!(clean.contains("0 regressions"), "got: {clean}");

    // Plant a 20% slowdown in run B's merged report.
    slow_first_result(&b.join("merged.json"));
    let out = daydream()
        .args([
            "sweep-diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--fail-on-regression",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "regression must fail the diff");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 regressions"), "got: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Multiplies the first ranked result's predicted time by 1.2, editing
/// the merged JSON the way a regressed cost model would.
fn slow_first_result(merged: &Path) {
    let json = std::fs::read_to_string(merged).unwrap();
    let report: serde_json::Value = serde_json::from_str(&json).unwrap();
    let old = report["results"][0]["predicted_ns"].as_u64().unwrap();
    let new = old * 12 / 10;
    // The value appears as `"predicted_ns": N`; patch its first
    // occurrence (rank order guarantees it belongs to results[0]).
    let needle = format!("\"predicted_ns\": {old}");
    let patched = json.replacen(&needle, &format!("\"predicted_ns\": {new}"), 1);
    assert_ne!(patched, json, "needle {needle} not found");
    std::fs::write(merged, patched).unwrap();
}
