//! Golden-trace fidelity harness: generate, pin, and verify the
//! checked-in golden corpus.
//!
//! A *golden* is a hash-chained JSONL recording of one deterministic
//! ground-truth iteration (`goldens/*.jsonl`), pinned by
//! `goldens/MANIFEST.json` with its final chain hash and record counts.
//! `daydream trace-verify` replays prediction against each golden —
//! rebuild the dependency graph from the recorded trace, simulate it,
//! export the schedule as a trace, and diff it against the recording —
//! and fails when the end-to-end error or unmatched-op fraction leaves
//! the tolerance budget. That turns simulator/cost-model regressions
//! into CI failures with per-op attribution attached.
//!
//! `--perturb F` scales every simulated duration by `F` before the
//! diff, emulating a cost-model regression; CI uses it to prove the
//! gate actually fails (a gate that cannot fail guards nothing).

use daydream_core::{simulate_to_trace, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{ground_truth, ExecConfig};
use daydream_sweep::FIDELITY_TOLERANCE;
use daydream_trace::{diff_traces, from_jsonl, verify_jsonl, Trace, TraceDiff};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Manifest file name inside the golden directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// The models the golden corpus pins: one CNN and one transformer at a
/// small fixed batch, matching the paper's two main single-GPU subjects.
const GOLDEN_SPECS: &[(&str, &str, u64)] = &[
    ("resnet50-b4", "ResNet-50", 4),
    ("bert-base-b4", "BERT_Base", 4),
];

/// One pinned golden recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenEntry {
    /// Short corpus name (also the file stem).
    pub name: String,
    /// JSONL file name, relative to the golden directory.
    pub file: String,
    /// Model zoo name the recording profiles.
    pub model: String,
    /// Mini-batch size of the recording.
    pub batch: u64,
    /// Final hash-chain value of the JSONL stream (16 hex digits).
    pub chain: String,
    /// Activity records in the stream.
    pub activities: u64,
    /// Layer-marker records in the stream.
    pub markers: u64,
    /// Recorded ground-truth iteration time (ns).
    pub truth_iteration_ns: u64,
}

/// The checked-in golden manifest (`goldens/MANIFEST.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenManifest {
    /// Manifest format version.
    pub version: u32,
    /// Relative-error budget `trace-verify` gates on by default.
    pub tolerance: f64,
    /// The pinned recordings.
    pub goldens: Vec<GoldenEntry>,
}

/// The verdict for one golden after a prediction replay.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GoldenOutcome {
    /// Golden name.
    pub name: String,
    /// Signed end-to-end iteration error (sim − truth) / truth.
    pub rel_err: f64,
    /// Aligned op pairs.
    pub matched: usize,
    /// Ops on only one side (sim-only + truth-only).
    pub unmatched: usize,
    /// Worst-offender op name (largest Σ|Δdur|), when any error exists.
    pub worst_op: Option<String>,
    /// `true` when the diff sits inside the tolerance budget.
    pub pass: bool,
}

/// Loads a trace file, auto-detecting the format: hash-chained JSONL
/// (verified) or the plain `Trace::to_json` document.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if content.starts_with("{\"chain\":") {
        from_jsonl(&content).map_err(|e| format!("{path}: {e}"))
    } else {
        Trace::from_json(&content).map_err(|e| format!("{path}: {e}"))
    }
}

/// Records the golden corpus into `dir` and writes its manifest.
/// Returns the manifest. Regenerating over an existing corpus is the
/// intended workflow after a deliberate executor change — the diff of
/// `MANIFEST.json` then documents the new chain hashes.
pub fn generate_goldens(dir: &Path) -> Result<GoldenManifest, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut goldens = Vec::with_capacity(GOLDEN_SPECS.len());
    for &(name, model_name, batch) in GOLDEN_SPECS {
        let model = zoo::by_name(model_name)
            .ok_or_else(|| format!("golden spec names unknown model '{model_name}'"))?;
        let cfg = ExecConfig::pytorch_2080ti().with_batch(batch);
        let (trace, jsonl) =
            ground_truth::record_baseline(&model, &cfg).map_err(|e| e.to_string())?;
        let file = format!("{name}.jsonl");
        std::fs::write(dir.join(&file), &jsonl).map_err(|e| format!("cannot write {file}: {e}"))?;
        let summary = verify_jsonl(&jsonl).map_err(|e| e.to_string())?;
        goldens.push(GoldenEntry {
            name: name.to_string(),
            file,
            model: model_name.to_string(),
            batch,
            chain: summary.chain_hex(),
            activities: summary.activities,
            markers: summary.markers,
            truth_iteration_ns: trace.meta.iteration_ns(),
        });
    }
    let manifest = GoldenManifest {
        version: MANIFEST_VERSION,
        tolerance: FIDELITY_TOLERANCE,
        goldens,
    };
    let json = serde_json::to_string_pretty(&manifest).map_err(|e| e.to_string())?;
    std::fs::write(dir.join(MANIFEST_FILE), json + "\n")
        .map_err(|e| format!("cannot write {MANIFEST_FILE}: {e}"))?;
    Ok(manifest)
}

/// Reads and parses the manifest in `dir`.
pub fn read_manifest(dir: &Path) -> Result<GoldenManifest, String> {
    let path = dir.join(MANIFEST_FILE);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {}: {e} (generate the corpus with `daydream golden-gen`)",
            path.display()
        )
    })?;
    let manifest: GoldenManifest =
        serde_json::from_str(&json).map_err(|e| format!("{}: {e}", path.display()))?;
    if manifest.version != MANIFEST_VERSION {
        return Err(format!(
            "{}: manifest version {} unsupported (expected {MANIFEST_VERSION})",
            path.display(),
            manifest.version
        ));
    }
    Ok(manifest)
}

/// Scales every timestamp and duration of a trace by `factor` — the
/// uniform cost-model drift `--perturb` injects into the simulated side.
fn perturb_trace(t: &mut Trace, factor: f64) {
    fn scale(ns: u64, factor: f64) -> u64 {
        (ns as f64 * factor).round() as u64
    }
    for a in &mut t.activities {
        a.start_ns = scale(a.start_ns, factor);
        a.dur_ns = scale(a.dur_ns, factor).max(1);
    }
    for m in &mut t.markers {
        m.start_ns = scale(m.start_ns, factor);
        m.end_ns = scale(m.end_ns, factor).max(m.start_ns + 1);
    }
    t.meta.iteration_start_ns = scale(t.meta.iteration_start_ns, factor);
    t.meta.iteration_end_ns = scale(t.meta.iteration_end_ns, factor);
}

/// Replays prediction against one verified golden recording and diffs
/// the simulated schedule against it.
fn replay_golden(dir: &Path, entry: &GoldenEntry, perturb: f64) -> Result<TraceDiff, String> {
    let path = dir.join(&entry.file);
    let jsonl = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    // Chain verification first: corruption reports the offending line
    // before any graph work happens.
    let summary = verify_jsonl(&jsonl).map_err(|e| format!("{}: {e}", entry.file))?;
    if summary.chain_hex() != entry.chain {
        return Err(format!(
            "{}: chain {} does not match the manifest's {} (file replaced or regenerated \
             without `daydream golden-gen`)",
            entry.file,
            summary.chain_hex(),
            entry.chain
        ));
    }
    if summary.activities != entry.activities || summary.markers != entry.markers {
        return Err(format!(
            "{}: stream has {} activities / {} markers; manifest pins {} / {}",
            entry.file, summary.activities, summary.markers, entry.activities, entry.markers
        ));
    }
    let truth = from_jsonl(&jsonl).map_err(|e| format!("{}: {e}", entry.file))?;
    let pg = ProfiledGraph::from_trace(&truth);
    let mut exported = simulate_to_trace(&pg).map_err(|e| format!("{}: {e}", entry.name))?;
    if perturb != 1.0 {
        perturb_trace(&mut exported, perturb);
    }
    Ok(diff_traces(&exported, &truth))
}

/// Verifies the whole golden corpus in `dir`: chain integrity, manifest
/// agreement, and prediction fidelity within `tolerance` (defaulting to
/// the manifest's budget). `perturb` scales simulated durations to
/// emulate a cost-model regression (1.0 = none).
pub fn verify_goldens(
    dir: &Path,
    tolerance: Option<f64>,
    perturb: f64,
) -> Result<(f64, Vec<GoldenOutcome>), String> {
    let manifest = read_manifest(dir)?;
    let tol = tolerance.unwrap_or(manifest.tolerance);
    let mut outcomes = Vec::with_capacity(manifest.goldens.len());
    for entry in &manifest.goldens {
        let d = replay_golden(dir, entry, perturb)?;
        outcomes.push(GoldenOutcome {
            name: entry.name.clone(),
            rel_err: d.end_to_end_rel_err(),
            matched: d.matched,
            unmatched: d.sim_only + d.truth_only,
            worst_op: d
                .attribution
                .iter()
                .find(|g| g.abs_err_ns > 0)
                .map(|g| g.name.clone()),
            pass: d.within_tolerance(tol),
        });
    }
    Ok((tol, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("daydream-fidelity-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_manifest_points_at_golden_gen() {
        let dir = temp_dir("missing");
        let err = read_manifest(&dir.join("nowhere")).unwrap_err();
        assert!(err.contains("golden-gen"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = GoldenManifest {
            version: MANIFEST_VERSION,
            tolerance: 0.05,
            goldens: vec![GoldenEntry {
                name: "toy".into(),
                file: "toy.jsonl".into(),
                model: "ResNet-50".into(),
                batch: 4,
                chain: "0123456789abcdef".into(),
                activities: 10,
                markers: 2,
                truth_iteration_ns: 1_000_000,
            }],
        };
        let json = serde_json::to_string_pretty(&manifest).unwrap();
        let back: GoldenManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, manifest);
    }

    #[test]
    fn unsupported_manifest_version_is_rejected() {
        let dir = temp_dir("version");
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "{\"version\": 99, \"tolerance\": 0.05, \"goldens\": []}",
        )
        .unwrap();
        let err = read_manifest(&dir).unwrap_err();
        assert!(err.contains("version 99"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn perturbation_scales_spans() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(4);
        let mut t = ground_truth::run_baseline(&model, &cfg);
        let before = t.meta.iteration_ns();
        perturb_trace(&mut t, 1.5);
        let scaled = t.meta.iteration_ns();
        // Start and end round independently, so allow ±2 ns of slack.
        // (Rounding can also introduce 1 ns lane overlaps; that is fine —
        // the perturbed trace only ever feeds `diff_traces`, never
        // `validate`.)
        assert!(
            (scaled as f64 - before as f64 * 1.5).abs() <= 2.0,
            "span {before} -> {scaled}"
        );
    }
}
