//! CLI subcommand implementations.

use crate::args::Args;
use crate::fidelity;
use daydream_comm::ClusterConfig;
use daydream_core::whatif::{
    what_if_amp, what_if_bandwidth, what_if_blueconnect, what_if_dgc, what_if_distributed,
    what_if_fused_adam, what_if_gist, what_if_metaflow, what_if_p3, what_if_reconstruct_bn,
    what_if_upgrade_gpu, what_if_vdnn, DgcConfig, GistConfig, P3Config, Substitution, VdnnConfig,
};
use daydream_core::{layer_report, predict, simulate, ProfiledGraph};
use daydream_device::GpuSpec;
use daydream_models::{footprint, max_batch, zoo, Model, Optimizer};
use daydream_runtime::{ground_truth, ExecConfig};
use daydream_serve::{http_request_retrying, QueryError, RetryOptions, ServeConfig, Server};
use daydream_shard::{
    diff_runs, merge_run, merged_cache, process_shard, run_worker, write_merged, RunDir, RunStore,
    ShardDisposition, ShardPlan, WorkerConfig,
};
use daydream_sweep::{explain_scenario, run_search, SearchConfig, SweepEngine, SweepGrid};
use daydream_trace::{diff_traces, runtime_breakdown, Framework};

/// Resolves a model name or exits with a helpful message.
fn model_or_die(name: &str) -> Model {
    zoo::by_name(name).unwrap_or_else(|| {
        eprintln!(
            "unknown model '{name}'. available: VGG-19, DenseNet-121, ResNet-50, GNMT, BERT_Base, BERT_Large"
        );
        std::process::exit(2);
    })
}

/// Builds the execution configuration from CLI options.
fn exec_config(args: &Args) -> Result<ExecConfig, String> {
    let mut cfg = ExecConfig::pytorch_2080ti();
    cfg.framework = match args.opt("framework", "pytorch").to_lowercase().as_str() {
        "pytorch" => Framework::PyTorch,
        "mxnet" => Framework::MxNet,
        "caffe" => Framework::Caffe,
        other => return Err(format!("unknown framework '{other}'")),
    };
    cfg.gpu = GpuSpec::by_name(&args.opt("gpu", "2080ti"))?;
    if let Some(b) = args.opt_maybe("batch") {
        cfg.batch = Some(b.parse().map_err(|_| format!("invalid --batch {b}"))?);
    }
    cfg.seed = args.num("seed", cfg.seed)?;
    Ok(cfg)
}

/// `daydream models` — the zoo with parameters and memory needs.
pub fn cmd_models(_args: &Args) -> Result<(), String> {
    println!(
        "{:<14} {:<22} {:>10} {:>7} {:>10} {:>12}",
        "model", "application", "params", "batch", "optimizer", "mem@batch"
    );
    for m in zoo::all_models() {
        let f = footprint(&m, m.default_batch);
        println!(
            "{:<14} {:<22} {:>9.1}M {:>7} {:>10} {:>10.1}GiB",
            m.name,
            m.application.name(),
            m.param_count() as f64 / 1e6,
            m.default_batch,
            m.optimizer.name(),
            f.total_gib()
        );
    }
    Ok(())
}

/// `daydream profile <model>` — run a baseline iteration and summarize.
pub fn cmd_profile(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or("usage: daydream profile <model>")?;
    let model = model_or_die(name);
    let cfg = exec_config(args)?;
    let trace = ground_truth::run_baseline(&model, &cfg);
    let b = runtime_breakdown(&trace);
    println!(
        "{} on {} ({}), batch {}: {:.1} ms/iteration",
        model.name,
        cfg.gpu.name,
        cfg.framework.name(),
        trace.meta.batch_size,
        trace.meta.iteration_ms()
    );
    println!(
        "  {} activities | breakdown: {:.0}% cpu+gpu, {:.0}% cpu-only, {:.0}% gpu-only",
        trace.activities.len(),
        b.overlap_frac() * 100.0,
        b.cpu_only_frac() * 100.0,
        b.gpu_only_frac() * 100.0
    );
    let pg = ProfiledGraph::from_trace(&trace);
    let sim = simulate(&pg.graph).map_err(|e| e.to_string())?;
    println!(
        "  graph: {} tasks, {} edges; replay {:.1} ms",
        pg.graph.len(),
        pg.graph.edge_count(),
        sim.makespan_ms()
    );
    if args.flag("verify") {
        // Cross-check the compiled heap simulator against the quadratic
        // reference oracle on this profile, and report the speedup.
        let reps = 5u32;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(simulate(&pg.graph).map_err(|e| e.to_string())?);
        }
        let fast_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
        let t0 = std::time::Instant::now();
        let oracle = daydream_core::simulate_reference(&pg.graph).map_err(|e| e.to_string())?;
        let ref_ns = t0.elapsed().as_nanos() as f64;
        if oracle != sim {
            return Err("compiled simulator DIVERGED from the reference oracle".to_string());
        }
        println!(
            "  verify: compiled simulator matches reference oracle; \
             {:.0} us vs {:.0} us per replay ({:.1}x)",
            fast_ns / 1e3,
            ref_ns / 1e3,
            ref_ns / fast_ns.max(1.0)
        );
    }
    if args.flag("verbose") {
        for (lane, s) in daydream_trace::lane_stats(&trace) {
            println!(
                "    {lane}: {} tasks, busy {:.1} ms, idle {:.1} ms",
                s.count,
                s.busy_ns as f64 / 1e6,
                s.idle_ns as f64 / 1e6
            );
        }
    }
    if let Some(path) = args.opt_maybe("out") {
        std::fs::write(path, trace.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("  wrote {path}");
    }
    if let Some(path) = args.opt_maybe("chrome") {
        std::fs::write(
            path,
            daydream_trace::to_chrome_trace(&trace).map_err(|e| e.to_string())?,
        )
        .map_err(|e| e.to_string())?;
        println!("  wrote {path} (chrome://tracing)");
    }
    if let Some(path) = args.opt_maybe("jsonl") {
        std::fs::write(
            path,
            daydream_trace::to_jsonl(&trace).map_err(|e| e.to_string())?,
        )
        .map_err(|e| e.to_string())?;
        println!("  wrote {path} (hash-chained JSONL)");
    }
    // The remaining options look at the *simulated* schedule, exported
    // as a trace (the schedule↔trace fidelity artifact).
    if args.flag("fidelity")
        || args.opt_maybe("sim-chrome").is_some()
        || args.opt_maybe("sim-out").is_some()
    {
        let exported = daydream_core::simulate_to_trace(&pg).map_err(|e| e.to_string())?;
        if let Some(path) = args.opt_maybe("sim-chrome") {
            std::fs::write(
                path,
                daydream_trace::to_chrome_trace(&exported).map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?;
            println!("  wrote {path} (simulated schedule, chrome://tracing)");
        }
        if let Some(path) = args.opt_maybe("sim-out") {
            std::fs::write(
                path,
                daydream_trace::to_jsonl(&exported).map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?;
            println!("  wrote {path} (simulated schedule, hash-chained JSONL)");
        }
        if args.flag("fidelity") {
            let d = diff_traces(&exported, &trace);
            println!("\nfidelity (simulated schedule vs this recording):");
            print!("{}", d.render(args.num("top", 10usize)?));
        }
    }
    Ok(())
}

/// `daydream trace-diff <sim> <truth>` — align a simulated trace
/// against a ground-truth recording and attribute the prediction error.
pub fn cmd_trace_diff(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        "trace-diff",
        &["format", "top", "out", "tolerance"],
        2,
    )?;
    let (sim_path, truth_path) = match args.positional.as_slice() {
        [a, b] => (a, b),
        _ => return Err("usage: daydream trace-diff <sim trace> <truth trace>".into()),
    };
    let format = args.opt("format", "text");
    if !matches!(format.as_str(), "text" | "json" | "csv") {
        return Err(format!("unknown --format '{format}' (text | json | csv)"));
    }
    let sim = fidelity::load_trace(sim_path)?;
    let truth = fidelity::load_trace(truth_path)?;
    let d = diff_traces(&sim, &truth);
    let top: usize = args.num("top", 10usize)?;
    let rendered = match format.as_str() {
        "text" => d.render(top),
        "json" => d.to_json().map_err(|e| e.to_string())?,
        "csv" => d.attribution_csv(),
        _ => unreachable!("validated above"),
    };
    match args.opt_maybe("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| e.to_string())?;
            println!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    if let Some(tol) = args.opt_maybe("tolerance") {
        let tol: f64 = tol
            .parse()
            .map_err(|_| format!("invalid --tolerance {tol}"))?;
        if !d.within_tolerance(tol) {
            return Err(format!(
                "fidelity outside tolerance {tol}: end-to-end {:+.2}%, {:.1}% ops matched",
                d.end_to_end_rel_err() * 100.0,
                d.match_fraction() * 100.0
            ));
        }
    }
    Ok(())
}

/// `daydream trace-verify` — replay prediction against the checked-in
/// golden corpus and gate on the tolerance budget.
pub fn cmd_trace_verify(args: &Args) -> Result<(), String> {
    reject_unknown(args, "trace-verify", &["dir", "tolerance", "perturb"], 0)?;
    let dir = args.opt("dir", "goldens");
    let tolerance = match args.opt_maybe("tolerance") {
        Some(t) => Some(t.parse().map_err(|_| format!("invalid --tolerance {t}"))?),
        None => None,
    };
    let perturb: f64 = args.num("perturb", 1.0)?;
    if perturb <= 0.0 {
        return Err(format!("--perturb must be positive, got {perturb}"));
    }
    let (tol, outcomes) = fidelity::verify_goldens(std::path::Path::new(&dir), tolerance, perturb)?;
    if perturb != 1.0 {
        println!("(simulated durations perturbed by {perturb}x)");
    }
    let mut failures = 0usize;
    for o in &outcomes {
        println!(
            "{:<5} {:<14} end-to-end {:+.2}% | {} ops matched, {} unmatched{}",
            if o.pass { "ok" } else { "FAIL" },
            o.name,
            o.rel_err * 100.0,
            o.matched,
            o.unmatched,
            o.worst_op
                .as_ref()
                .map(|w| format!(" | worst op: {w}"))
                .unwrap_or_default()
        );
        failures += usize::from(!o.pass);
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} golden(s) outside the {:.1}% fidelity budget \
             (rerun `daydream trace-diff` on the golden pair for per-op attribution)",
            outcomes.len(),
            tol * 100.0
        ));
    }
    println!(
        "{} golden(s) within the {:.1}% fidelity budget",
        outcomes.len(),
        tol * 100.0
    );
    Ok(())
}

/// `daydream golden-gen` — (re)record the golden corpus and pin it in
/// the manifest.
pub fn cmd_golden_gen(args: &Args) -> Result<(), String> {
    reject_unknown(args, "golden-gen", &["dir"], 0)?;
    let dir = args.opt("dir", "goldens");
    let manifest = fidelity::generate_goldens(std::path::Path::new(&dir))?;
    for g in &manifest.goldens {
        println!(
            "{}/{}: {} batch {} — {} activities, {} markers, chain {}",
            dir, g.file, g.model, g.batch, g.activities, g.markers, g.chain
        );
    }
    println!(
        "pinned {} golden(s) in {dir}/{} (tolerance {:.1}%)",
        manifest.goldens.len(),
        fidelity::MANIFEST_FILE,
        manifest.tolerance * 100.0
    );
    Ok(())
}

/// `daydream report <model>` — per-layer time attribution.
pub fn cmd_report(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or("usage: daydream report <model>")?;
    let model = model_or_die(name);
    let cfg = exec_config(args)?;
    let top: usize = args.num("top", 15usize)?;
    let trace = ground_truth::run_baseline(&model, &cfg);
    let pg = ProfiledGraph::from_trace(&trace);
    let rows = layer_report(&pg);
    println!(
        "{:<28} {:<12} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "layer", "kind", "fwd (ms)", "bwd (ms)", "wu (ms)", "cpu (ms)", "kernels"
    );
    for r in rows.iter().take(top) {
        let layer = model.layer(r.layer);
        println!(
            "{:<28} {:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8}",
            layer.map(|l| l.name.as_str()).unwrap_or("?"),
            layer.map(|l| l.kind.type_name()).unwrap_or("?"),
            r.fwd_gpu_ns as f64 / 1e6,
            r.bwd_gpu_ns as f64 / 1e6,
            r.wu_gpu_ns as f64 / 1e6,
            r.cpu_ns as f64 / 1e6,
            r.kernels
        );
    }
    println!(
        "({} layers total; showing top {top} by GPU time)",
        rows.len()
    );
    Ok(())
}

/// `daydream memory <model>` — footprint and feasible batch sizes.
pub fn cmd_memory(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or("usage: daydream memory <model>")?;
    let model = model_or_die(name);
    let batch = args.num("batch", model.default_batch)?;
    let device_gb: f64 = args.num("device-gb", 11.0)?;
    let device = (device_gb * (1u64 << 30) as f64) as u64;
    let f = footprint(&model, batch);
    println!("{} at batch {batch}:", model.name);
    for (label, v) in [
        ("parameters", f.params),
        ("gradients", f.gradients),
        ("optimizer state", f.optimizer_state),
        ("activations", f.activations),
        ("workspace", f.workspace),
    ] {
        println!(
            "  {:<16} {:>8.2} GiB",
            label,
            v as f64 / (1u64 << 30) as f64
        );
    }
    println!("  {:<16} {:>8.2} GiB", "total", f.total_gib());
    println!(
        "  fits {device_gb} GiB device: {} (max batch {})",
        if f.fits(device) { "yes" } else { "NO" },
        max_batch(&model, device)
    );
    Ok(())
}

/// `daydream predict <model> --opt <optimization>` — run a what-if.
pub fn cmd_predict(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or("usage: daydream predict <model> --opt <opt>")?;
    let model = model_or_die(name);
    let cfg = exec_config(args)?;
    let opt = args.opt("opt", "amp");
    let trace = ground_truth::run_baseline(&model, &cfg);
    let pg = ProfiledGraph::from_trace(&trace);

    let cluster = ClusterConfig::new(
        args.num("machines", 4u32)?,
        args.num("gpus", 1u32)?,
        args.num("bw", 10.0f64)?,
    );

    let prediction = match opt.as_str() {
        "amp" => predict(&pg, what_if_amp),
        "fused-adam" => {
            if model.optimizer != Optimizer::Adam {
                return Err(format!(
                    "{} trains with SGD; FusedAdam does not apply",
                    model.name
                ));
            }
            predict(&pg, |g| {
                what_if_fused_adam(g);
            })
        }
        "reconstruct-bn" => predict(&pg, |g| what_if_reconstruct_bn(g, &model)),
        "ddp" => predict(&pg, |g| {
            what_if_distributed(g, &cluster);
        }),
        "blueconnect" => predict(&pg, |g| {
            let ars = what_if_distributed(g, &cluster);
            what_if_blueconnect(g, &cluster, &ars);
        }),
        "dgc" => predict(&pg, |g| {
            let ars = what_if_distributed(g, &cluster);
            what_if_dgc(g, &ars, &DgcConfig::default());
        }),
        "vdnn" => predict(&pg, |g| {
            what_if_vdnn(g, &model, &VdnnConfig::default());
        }),
        "gist" => predict(&pg, |g| {
            what_if_gist(g, &GistConfig::default());
        }),
        "metaflow" => {
            let mut policy = Vec::new();
            for l in &model.layers {
                if l.name.ends_with("attn.key") || l.name.ends_with("attn.value") {
                    policy.push(Substitution::RemoveLayer(l.id));
                } else if l.name.ends_with("attn.query") {
                    policy.push(Substitution::ScaleLayer(l.id, 1.8));
                }
            }
            if policy.is_empty() {
                return Err(format!("{} has no attention blocks to fuse", model.name));
            }
            predict(&pg, |g| what_if_metaflow(g, &policy))
        }
        "bandwidth" => predict(&pg, |g| {
            what_if_bandwidth(g, args.num("factor", 2.0f64).unwrap_or(2.0));
        }),
        "upgrade-gpu" => {
            let new = GpuSpec::by_name(&args.opt("to", "v100"))?;
            let old = cfg.gpu.clone();
            predict(&pg, |g| {
                what_if_upgrade_gpu(g, &old, &new);
            })
        }
        "p3" => {
            let p3 = what_if_p3(&pg, &P3Config::p3(cluster));
            println!(
                "{} + P3 on {cluster}: predicted steady-state iteration {:.1} ms \
                 ({} messages/iteration)",
                model.name,
                p3.iteration_ms(),
                p3.messages_per_iteration
            );
            return Ok(());
        }
        other => {
            return Err(format!(
                "unknown optimization '{other}'. available: amp fused-adam reconstruct-bn ddp \
                 blueconnect dgc vdnn gist metaflow bandwidth upgrade-gpu p3"
            ))
        }
    };
    println!(
        "{} + {}: {:.1} ms -> {:.1} ms ({:+.1}% {})",
        model.name,
        opt,
        prediction.baseline_ms(),
        prediction.predicted_ms(),
        prediction.improvement().abs() * 100.0,
        if prediction.improvement() >= 0.0 {
            "faster"
        } else {
            "slower"
        },
    );
    Ok(())
}

/// Parses a comma-separated option into typed values.
fn parse_list<T: std::str::FromStr>(
    args: &Args,
    key: &str,
    default: &str,
) -> Result<Vec<T>, String> {
    args.opt(key, default)
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("invalid value '{s}' in --{key}"))
        })
        .collect()
}

/// Option keys `sweep` understands; anything else is a typo, not a
/// silently ignored request (the axis surface is too large to guess).
const SWEEP_KEYS: &[&str] = &[
    "models",
    "batches",
    "opts",
    "bw",
    "machines",
    "gpus",
    "ratios",
    "factors",
    "to",
    "lossy",
    "lookaheads",
    "target-batches",
    "max-batch",
    "threads",
    "top",
    "out",
    "csv",
    "cache-file",
    "explain",
    "search",
    "rungs",
    "keep-fraction",
    "keep-min",
    "tolerance",
    "cone-budgets",
    "shards",
    "shard-index",
    "run-dir",
    "worker-id",
    "lease-ttl-secs",
];

/// `daydream sweep` — run a batch what-if grid in parallel.
pub fn cmd_sweep(args: &Args) -> Result<(), String> {
    if let Some(pos) = args.positional.first() {
        return Err(format!(
            "unexpected argument '{pos}': sweep takes axes as options (e.g. --models {pos})"
        ));
    }
    if let Some(unknown) = args
        .options
        .keys()
        .find(|k| !SWEEP_KEYS.contains(&k.as_str()))
    {
        return Err(format!(
            "unknown sweep option --{unknown} (see `daydream help` for the sweep option list)"
        ));
    }
    let lossy = match args.opt("lossy", "off").as_str() {
        "off" => vec![false],
        "on" => vec![true],
        "both" => vec![false, true],
        other => return Err(format!("invalid --lossy '{other}' (off | on | both)")),
    };
    let max_batch: u64 = args.num("max-batch", u64::MAX)?;

    let grid = SweepGrid::builder()
        .models(parse_list::<String>(args, "models", "ResNet-50,BERT_Base")?)
        .batches(parse_list(args, "batches", "4,8")?)
        .opts(parse_list::<String>(
            args,
            "opts",
            "amp,fused-adam,gist,ddp,dgc,bandwidth",
        )?)
        .bandwidths(parse_list(args, "bw", "10,25")?)
        .machines(parse_list(args, "machines", "4")?)
        .gpus_per_machine(args.num("gpus", 1u32)?)
        .dgc_ratios(parse_list(args, "ratios", "0.01")?)
        .bandwidth_factors(parse_list(args, "factors", "2.0")?)
        .upgrade_targets(parse_list::<String>(args, "to", "v100")?)
        .gist_lossy(lossy)
        .vdnn_lookaheads(parse_list(args, "lookaheads", "2")?)
        .target_batches(parse_list(args, "target-batches", "16")?)
        .filter(move |s| s.batch <= max_batch)
        .build();

    let search_cfg = sweep_search_config(args)?;

    if let Some(prefix) = args.opt_maybe("explain") {
        for key in [
            "run-dir",
            "shards",
            "shard-index",
            "worker-id",
            "lease-ttl-secs",
            "out",
            "csv",
            "cache-file",
        ] {
            if args.opt_maybe(key).is_some() {
                return Err(format!("--explain does not combine with --{key}"));
            }
        }
        // Validates the prefix and prints the scenario's graph patch;
        // under --search halving, follow with its rung-by-rung history
        // (which needs an actual search run to exist).
        cmd_sweep_explain(&grid, prefix)?;
        if let Some(cfg) = &search_cfg {
            let engine = sweep_engine(args)?;
            let search = run_search(&engine, &grid, cfg)?;
            match search.render_history(&prefix.to_lowercase()) {
                Some(history) => println!("\n{history}"),
                None => println!("\n(scenario took no part in the search: deduplicated out)"),
            }
        }
        return Ok(());
    }

    let engine = sweep_engine(args)?;
    if args.opt_maybe("run-dir").is_some() {
        if search_cfg.is_some() {
            return Err(
                "--search does not combine with --run-dir: shard each search round \
                 explicitly (round plans come from the search report's survivor sets)"
                    .into(),
            );
        }
        return cmd_sweep_sharded(args, &grid, &engine);
    }
    for key in ["shards", "shard-index", "worker-id", "lease-ttl-secs"] {
        if args.opt_maybe(key).is_some() {
            return Err(format!(
                "--{key} requires --run-dir (distributed sweep mode)"
            ));
        }
    }
    if let Some(path) = args.opt_maybe("cache-file") {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                let loaded = engine.cache().load_json(&json)?;
                println!("loaded {loaded} cached results from {path}");
            }
            // A missing file is a cold start; anything else (permissions,
            // bad encoding) must not silently discard the cache and then
            // overwrite it after a full re-execution.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read --cache-file {path}: {e}")),
        }
    }

    let start = std::time::Instant::now();
    let search = match &search_cfg {
        Some(cfg) => Some(run_search(&engine, &grid, cfg)?),
        None => None,
    };
    let report = match &search {
        Some(s) => s.report.clone(),
        None => engine.run(&grid)?,
    };
    let elapsed = start.elapsed();
    let stats = engine.last_stats();

    if let Some(s) = &search {
        let auto = s.promotions.iter().filter(|p| p.auto_promoted).count();
        println!(
            "halving search: {} candidates -> {} finalists over {} rungs, {} evaluations total ({} auto-promoted)",
            s.rungs.first().map_or(0, |r| r.expanded) + auto,
            report.scenario_count,
            s.rungs.len(),
            s.total_evaluations(),
            auto,
        );
        println!("{}", s.render_rungs());
        for w in &s.warnings {
            println!("warning: {w}");
        }
    }
    println!(
        "swept {} scenarios on {} threads in {:.2}s ({:.1} scenarios/s, {} base profiles built, {} steals)",
        report.scenario_count,
        stats.executor.workers.max(1),
        elapsed.as_secs_f64(),
        report.scenario_count as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.profiles_built,
        stats.executor.steals,
    );
    println!(
        "sim paths: {} incremental, {} full, {} patch-cache hits ({} tasks re-dispatched)",
        stats.incremental_sims, stats.full_sims, stats.patch_hits, stats.tasks_redispatched,
    );
    println!(
        "scratch: {} arena reuses, {} allocs, {:.1} MiB of prefix copies avoided",
        stats.scratch_reuses,
        stats.scratch_allocs,
        stats.bytes_copied_avoided as f64 / (1024.0 * 1024.0),
    );
    if stats.cache_contended > 0 || stats.patch_contended > 0 {
        println!(
            "cache shards: {} result-cache and {} patch-cache contended lock acquisitions",
            stats.cache_contended, stats.patch_contended,
        );
    }
    if stats.fidelity_checks > 0 {
        println!(
            "fidelity: {} baseline check(s), {} over the {:.0}% budget (worst {:.2}%)",
            stats.fidelity_checks,
            stats.fidelity_failures,
            daydream_sweep::FIDELITY_TOLERANCE * 100.0,
            stats.fidelity_worst_rel_err * 100.0,
        );
    }
    if report.cache_hits > 0 {
        println!(
            "cache: {} hits, {} executed ({}% free)",
            report.cache_hits,
            report.executed,
            report.cache_hits * 100 / report.scenario_count.max(1)
        );
    }
    let top: usize = args.num("top", 15usize)?;
    println!("\n{}", report.render(top));

    // Save the cache first: it holds the expensive computed results, and
    // must survive even if a report path below turns out to be unwritable.
    if let Some(path) = args.opt_maybe("cache-file") {
        // Write-then-rename so an interrupted save can't leave a
        // truncated cache that fails every later run.
        let tmp = format!("{path}.tmp.{}", std::process::id());
        std::fs::write(&tmp, engine.cache().to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        std::fs::rename(&tmp, path).map_err(|e| e.to_string())?;
        println!("saved {} cached results to {path}", engine.cache().len());
    }
    if let Some(path) = args.opt_maybe("out") {
        std::fs::write(path, report.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = args.opt_maybe("csv") {
        let mut csv = report.to_csv();
        if let Some(s) = &search {
            // Rung accounting rides along after a blank separator line.
            csv.push('\n');
            csv.push_str(&s.rungs_csv());
        }
        std::fs::write(path, csv).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Builds the sweep engine from `--threads` (all cores when absent).
fn sweep_engine(args: &Args) -> Result<SweepEngine, String> {
    Ok(match args.opt_maybe("threads") {
        Some(t) => SweepEngine::new(t.parse().map_err(|_| format!("invalid --threads {t}"))?),
        None => SweepEngine::with_available_parallelism(),
    })
}

/// Parses `--search halving` plus its knobs into a [`SearchConfig`].
/// Returns `None` for a plain exhaustive sweep — and rejects
/// search-only knobs given without `--search`, so a forgotten flag
/// cannot silently run the wrong strategy.
fn sweep_search_config(args: &Args) -> Result<Option<SearchConfig>, String> {
    let Some(mode) = args.opt_maybe("search") else {
        for key in [
            "rungs",
            "keep-fraction",
            "keep-min",
            "tolerance",
            "cone-budgets",
        ] {
            if args.opt_maybe(key).is_some() {
                return Err(format!("--{key} requires --search halving"));
            }
        }
        return Ok(None);
    };
    if mode != "halving" {
        return Err(format!(
            "unknown --search strategy '{mode}' (the only strategy is 'halving')"
        ));
    }
    let defaults = SearchConfig::default();
    Ok(Some(SearchConfig {
        rungs: args.num("rungs", defaults.rungs)?,
        keep_fraction: args.num("keep-fraction", defaults.keep_fraction)?,
        keep_min: args.num("keep-min", defaults.keep_min)?,
        tolerance: args.num("tolerance", defaults.tolerance)?,
        cone_budgets: match args.opt_maybe("cone-budgets") {
            Some(_) => parse_list(args, "cone-budgets", "")?,
            None => defaults.cone_budgets,
        },
    }))
}

/// Rejects unknown options and stray positionals for the shard
/// subcommands — the same typo discipline `sweep` applies with
/// `SWEEP_KEYS`: a misspelled option must fail, not silently run with
/// defaults.
fn reject_unknown(
    args: &Args,
    command: &str,
    known: &[&str],
    positionals: usize,
) -> Result<(), String> {
    if args.positional.len() > positionals {
        return Err(format!(
            "unexpected argument '{}' for {command}",
            args.positional[positionals]
        ));
    }
    if let Some(unknown) = args.options.keys().find(|k| !known.contains(&k.as_str())) {
        return Err(format!(
            "unknown {command} option --{unknown} (see `daydream help`)"
        ));
    }
    Ok(())
}

/// Builds the worker-identity/lease knobs shared by the sharded `sweep`
/// path and `sweep-worker`.
fn worker_config(args: &Args) -> Result<WorkerConfig, String> {
    let mut cfg = WorkerConfig::default();
    if let Some(id) = args.opt_maybe("worker-id") {
        cfg.worker_id = id.to_string();
    }
    cfg.lease_ttl_ms = args.num("lease-ttl-secs", cfg.lease_ttl_ms / 1000)? * 1000;
    cfg.poll_ms = args.num("poll-ms", cfg.poll_ms)?.max(1);
    cfg.max_wait_ms = args.num("max-wait-secs", cfg.max_wait_ms / 1000)? * 1000;
    Ok(cfg)
}

/// Prints where a sharded run stands and what to do next.
fn print_run_status(run: &RunDir) -> Result<(), String> {
    let status = run.status()?;
    println!(
        "run {}: {} todo, {} leased, {} done of {} shards",
        run.path().display(),
        status.todo,
        status.leased,
        status.done,
        status.shards
    );
    if status.is_drained() {
        println!(
            "run is drained; merge with: daydream sweep-merge --run-dir {}",
            run.path().display()
        );
    }
    Ok(())
}

/// `daydream sweep --explain <fingerprint>` — print the graph patch one
/// scenario of the grid emits (tasks scaled/inserted/removed, deps
/// changed) instead of sweeping. The fingerprint is the result `key`
/// from a report/cache file; any unambiguous prefix works.
fn cmd_sweep_explain(grid: &SweepGrid, prefix: &str) -> Result<(), String> {
    let prefix = prefix.to_lowercase();
    let scenarios = grid.expand()?;
    let matches: Vec<_> = scenarios
        .iter()
        .filter(|s| s.fingerprint_hex().starts_with(&prefix))
        .collect();
    match matches.as_slice() {
        [] => Err(format!(
            "no scenario in this grid matches fingerprint '{prefix}' \
             ({} scenarios expanded; keys come from the report's `key` column)",
            scenarios.len()
        )),
        [one] => {
            println!("{}", explain_scenario(one)?);
            Ok(())
        }
        many => Err(format!(
            "fingerprint prefix '{prefix}' is ambiguous: {} scenarios match \
             (e.g. {} -> {}); use more hex digits",
            many.len(),
            many[0].fingerprint_hex(),
            many[0].label()
        )),
    }
}

/// `daydream sweep --shards N [--shard-index I] --run-dir D` — plan a
/// distributed run and optionally evaluate one shard of it.
fn cmd_sweep_sharded(args: &Args, grid: &SweepGrid, engine: &SweepEngine) -> Result<(), String> {
    for key in ["out", "csv", "cache-file", "top"] {
        if args.opt_maybe(key).is_some() {
            return Err(format!(
                "--{key} does not apply to a sharded sweep invocation; \
                 reports come from `daydream sweep-merge`"
            ));
        }
    }
    let run_dir = args.opt_maybe("run-dir").expect("checked by caller");
    let shards: usize = args.num("shards", 0)?;
    if shards == 0 {
        return Err("sharded sweeps need --shards N (the total shard count)".into());
    }
    let plan = ShardPlan::partition(grid.expand()?, shards)?;
    let run_id = std::path::Path::new(run_dir)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".into());
    let (run, created) = RunDir::init_or_open(run_dir, &run_id, &plan)?;
    if created {
        println!(
            "planned run {}: {} scenarios in {} shards (grid {})",
            run.path().display(),
            plan.scenario_count(),
            plan.shard_count(),
            plan.grid_fingerprint_hex()
        );
    }
    match args.opt_maybe("shard-index") {
        None => {
            println!(
                "no --shard-index given; start workers with: daydream sweep-worker --run-dir {}",
                run.path().display()
            );
        }
        Some(raw) => {
            let index: usize = raw
                .parse()
                .map_err(|_| format!("invalid --shard-index {raw}"))?;
            let cfg = worker_config(args)?;
            let start = std::time::Instant::now();
            match process_shard(&run, engine, index, &cfg)? {
                ShardDisposition::Evaluated(n) => println!(
                    "worker {} evaluated shard {index}: {n} scenarios in {:.2}s",
                    cfg.worker_id,
                    start.elapsed().as_secs_f64()
                ),
                ShardDisposition::AlreadyDone => {
                    println!("shard {index} already has results; nothing to do")
                }
            }
        }
    }
    print_run_status(&run)
}

/// `daydream sweep-worker --run-dir D` — claim shards until the run
/// drains, reclaiming leases abandoned by crashed peers.
pub fn cmd_sweep_worker(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        "sweep-worker",
        &[
            "run-dir",
            "threads",
            "worker-id",
            "lease-ttl-secs",
            "poll-ms",
            "max-wait-secs",
        ],
        0,
    )?;
    let run_dir = args
        .opt_maybe("run-dir")
        .ok_or("usage: daydream sweep-worker --run-dir <dir>")?;
    let run = RunDir::open(run_dir)?;
    let engine = match args.opt_maybe("threads") {
        Some(t) => SweepEngine::new(t.parse().map_err(|_| format!("invalid --threads {t}"))?),
        None => SweepEngine::with_available_parallelism(),
    };
    let cfg = worker_config(args)?;
    let start = std::time::Instant::now();
    let summary = run_worker(&run, &engine, &cfg)?;
    println!(
        "worker {} drained: {} shards, {} scenarios in {:.2}s ({} stale leases reclaimed, \
         {} transient retries, {} corrupt artifacts requeued, {:.1}s waiting on peers)",
        cfg.worker_id,
        summary.shards_completed,
        summary.scenarios_evaluated,
        start.elapsed().as_secs_f64(),
        summary.leases_reclaimed,
        summary.retries,
        summary.requeued_corrupt,
        summary.waited_ms as f64 / 1000.0
    );
    print_run_status(&run)
}

/// `daydream sweep-merge --run-dir D` — union the partial results into
/// the ranked report, byte-identical to the single-process sweep.
pub fn cmd_sweep_merge(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        "sweep-merge",
        &["run-dir", "top", "out", "csv", "cache-out"],
        0,
    )?;
    let run_dir = args
        .opt_maybe("run-dir")
        .ok_or("usage: daydream sweep-merge --run-dir <dir>")?;
    let run = RunDir::open(run_dir)?;
    let report = merge_run(&run)?;
    write_merged(&run, &report)?;
    println!(
        "merged {} scenarios from {} shards into {}",
        report.scenario_count,
        run.manifest()?.shards,
        run.merged_path().display()
    );
    let top: usize = args.num("top", 15usize)?;
    println!("\n{}", report.render(top));
    if let Some(path) = args.opt_maybe("out") {
        std::fs::write(path, report.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = args.opt_maybe("csv") {
        std::fs::write(path, report.to_csv()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = args.opt_maybe("cache-out") {
        let cache = merged_cache(&report);
        std::fs::write(path, cache.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("wrote {} cache entries to {path}", cache.len());
    }
    Ok(())
}

/// `daydream sweep-diff <run A> <run B>` — regression-track predicted
/// times between two runs.
pub fn cmd_sweep_diff(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        "sweep-diff",
        &["tolerance", "out", "fail-on-regression"],
        2,
    )?;
    let (a_dir, b_dir) = match args.positional.as_slice() {
        [a, b] => (a, b),
        _ => return Err("usage: daydream sweep-diff <run dir A> <run dir B>".into()),
    };
    let tolerance: f64 = args.num("tolerance", 0.001)?;
    let a = RunDir::open(a_dir)?;
    let b = RunDir::open(b_dir)?;
    let diff = diff_runs(&a, &b, tolerance)?;
    print!("{}", diff.render());
    if let Some(path) = args.opt_maybe("out") {
        std::fs::write(path, diff.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if args.flag("fail-on-regression") && !diff.is_clean() {
        return Err(format!(
            "{} regression(s) / coverage change(s) between {} and {}",
            diff.regressions.len() + diff.only_in_a.len() + diff.only_in_b.len(),
            diff.a_id,
            diff.b_id
        ));
    }
    Ok(())
}

/// `daydream serve` — run the resident sweep-as-a-service daemon.
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        "serve",
        &[
            "addr",
            "threads",
            "store",
            "max-requests",
            "timeout-secs",
            "max-queued",
            "whatif-deadline-ms",
        ],
        0,
    )?;
    let threads = args.num(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    )?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: args.opt("addr", "127.0.0.1:8484"),
        threads,
        store_root: args.opt_maybe("store").map(std::path::PathBuf::from),
        max_requests: args.num("max-requests", 0u64)?,
        timeout_secs: args.num("timeout-secs", 0u64)?,
        limits: Default::default(),
        max_queued_jobs: args.num("max-queued", defaults.max_queued_jobs)?,
        whatif_deadline_ms: args.num("whatif-deadline-ms", defaults.whatif_deadline_ms)?,
    };
    let server = Server::bind(config)?;
    // Spawners (tests, scripts) parse the port from this line, so it
    // must hit the pipe before the accept loop starts.
    println!("daydream serve listening on {}", server.local_addr()?);
    use std::io::Write;
    std::io::stdout().flush().ok();
    let summary = server.run()?;
    println!(
        "daydream serve stopped ({}) after {} request(s), {} job(s)",
        summary.stop_reason, summary.requests, summary.jobs_submitted
    );
    Ok(())
}

/// `daydream query <path>` — one-shot client for a running daemon.
/// A `--body` implies POST; the response body prints verbatim, and a
/// non-2xx status is a nonzero exit. `--retries N` retries connection
/// failures, 5xx, and 429 sheds with capped exponential backoff
/// (`--backoff-ms` sets the first delay), and the final error message
/// distinguishes "could not connect" from "the daemon answered an
/// error".
pub fn cmd_query(args: &Args) -> Result<(), String> {
    reject_unknown(
        args,
        "query",
        &["addr", "body", "method", "retries", "backoff-ms"],
        1,
    )?;
    let path = args
        .positional
        .first()
        .ok_or("usage: daydream query <path> [--addr HOST:PORT] [--body JSON]")?;
    if !path.starts_with('/') {
        return Err(format!("query path '{path}' must start with /"));
    }
    let addr = args.opt("addr", "127.0.0.1:8484");
    let body = args.opt("body", "");
    let default_method = if body.is_empty() { "GET" } else { "POST" };
    let method = args.opt("method", default_method).to_uppercase();
    let defaults = RetryOptions::default();
    let opts = RetryOptions {
        retries: args.num("retries", defaults.retries)?,
        backoff_ms: args.num("backoff-ms", defaults.backoff_ms)?,
        ..defaults
    };
    let resp = match http_request_retrying(&addr, &method, path, &body, opts) {
        Ok(resp) => resp,
        Err(e @ QueryError::Connect { .. }) => return Err(e.to_string()),
        Err(QueryError::Http {
            attempts,
            status,
            body,
            ..
        }) => {
            println!("{body}");
            return Err(format!(
                "{method} {path} answered HTTP {status} after {attempts} attempt(s)"
            ));
        }
    };
    println!("{}", resp.body);
    if resp.is_ok() {
        Ok(())
    } else {
        Err(format!("{method} {path} answered {}", resp.status))
    }
}

/// `daydream sweep-history` — the best scenarios ever recorded across a
/// run store's history (the offline twin of the daemon's
/// `GET /history/best`; both are [`RunStore::best_for`]).
pub fn cmd_sweep_history(args: &Args) -> Result<(), String> {
    reject_unknown(args, "sweep-history", &["store", "model", "top", "out"], 0)?;
    let store = RunStore::open(args.opt("store", "."))?;
    let model = args.opt_maybe("model");
    let top: usize = args.num("top", 10)?;
    let entries = store.best_for(model, top)?;
    if entries.is_empty() {
        println!(
            "no stored outcomes{} under {}/runs",
            model
                .map(|m| format!(" for model '{m}'"))
                .unwrap_or_default(),
            store.path().display()
        );
        return Ok(());
    }
    println!(
        "{:<4} {:<44} {:>12} {:>9} {:>9}",
        "rank", "scenario", "predicted", "speedup", "run"
    );
    for (i, e) in entries.iter().enumerate() {
        println!(
            "{:<4} {:<44} {:>9.2} ms {:>8.2}x {:>9}",
            i + 1,
            e.label,
            e.predicted_ns as f64 / 1e6,
            e.speedup,
            e.run_id
        );
    }
    if let Some(path) = args.opt_maybe("out") {
        let json = serde_json::to_string_pretty(&entries).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn exec_config_parses_options() {
        let a = args(&["--framework", "mxnet", "--gpu", "p4000", "--batch", "4"]);
        let cfg = exec_config(&a).unwrap();
        assert_eq!(cfg.framework, Framework::MxNet);
        assert_eq!(cfg.gpu.name, "P4000");
        assert_eq!(cfg.batch, Some(4));
    }

    #[test]
    fn exec_config_rejects_garbage() {
        assert!(exec_config(&args(&["--framework", "tf"])).is_err());
        assert!(exec_config(&args(&["--gpu", "a100"])).is_err());
    }

    #[test]
    fn models_and_memory_commands_run() {
        cmd_models(&args(&[])).unwrap();
        cmd_memory(&args(&["ResNet-50", "--batch", "8"])).unwrap();
    }

    #[test]
    fn predict_rejects_inapplicable_optimization() {
        let a = args(&["ResNet-50", "--opt", "fused-adam", "--batch", "4"]);
        assert!(cmd_predict(&a).is_err());
    }

    #[test]
    fn predict_amp_runs() {
        let a = args(&["ResNet-50", "--opt", "amp", "--batch", "4"]);
        cmd_predict(&a).unwrap();
    }

    #[test]
    fn sweep_runs_a_tiny_grid() {
        let a = args(&[
            "--models",
            "ResNet-50",
            "--batches",
            "4",
            "--opts",
            "amp,gist",
            "--threads",
            "2",
        ]);
        cmd_sweep(&a).unwrap();
    }

    #[test]
    fn sweep_explain_prints_patch_summary() {
        // An unknown fingerprint fails fast, before any profiling.
        let err = cmd_sweep(&args(&[
            "--models",
            "ResNet-50",
            "--batches",
            "4",
            "--opts",
            "amp",
            "--explain",
            "ffffffffffffffff",
        ]))
        .unwrap_err();
        assert!(err.contains("no scenario"), "got: {err}");

        // A valid key (any prefix of the scenario fingerprint) succeeds.
        let scenario = daydream_sweep::Scenario::new(
            "ResNet-50",
            4,
            daydream_sweep::OptSpec::Gist { lossy: false },
        );
        let key = scenario.fingerprint_hex();
        cmd_sweep(&args(&[
            "--models",
            "ResNet-50",
            "--batches",
            "4",
            "--opts",
            "gist",
            "--explain",
            &key[..8],
        ]))
        .unwrap();

        // --explain refuses to combine with sweep outputs/sharding.
        let err = cmd_sweep(&args(&[
            "--models",
            "ResNet-50",
            "--explain",
            &key,
            "--run-dir",
            "/tmp/x",
        ]))
        .unwrap_err();
        assert!(err.contains("does not combine"), "got: {err}");
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        assert!(cmd_sweep(&args(&["--models", "AlexNet"])).is_err());
        assert!(cmd_sweep(&args(&["--opts", "quantum"])).is_err());
        assert!(cmd_sweep(&args(&["--lossy", "maybe"])).is_err());
        assert!(cmd_sweep(&args(&["--batches", "four"])).is_err());
        // A typo'd GPU target fails during grid validation, before any
        // scenario executes.
        assert!(cmd_sweep(&args(&["--opts", "upgrade-gpu", "--to", "v200"])).is_err());
    }

    #[test]
    fn sweep_rejects_typos_instead_of_ignoring_them() {
        // Singular --model (vs --models) must not silently run defaults.
        let err = cmd_sweep(&args(&["--model", "ResNet-50"])).unwrap_err();
        assert!(err.contains("unknown sweep option --model"), "got: {err}");
        // Positional arguments are not part of the sweep vocabulary.
        let err = cmd_sweep(&args(&["ResNet-101"])).unwrap_err();
        assert!(
            err.contains("unexpected argument 'ResNet-101'"),
            "got: {err}"
        );
    }

    #[test]
    fn top_option_parses_with_default_and_rejects_garbage() {
        assert_eq!(args(&[]).num("top", 15usize).unwrap(), 15);
        assert_eq!(args(&["--top", "3"]).num("top", 15usize).unwrap(), 3);
        let err = args(&["--top", "lots"])
            .num::<usize>("top", 15)
            .unwrap_err();
        assert!(err.contains("invalid value for --top"), "got: {err}");
    }

    #[test]
    fn shard_options_require_run_dir() {
        for key in ["shards", "shard-index", "worker-id", "lease-ttl-secs"] {
            let err = cmd_sweep(&args(&[&format!("--{key}"), "1"])).unwrap_err();
            assert!(err.contains("requires --run-dir"), "--{key}: {err}");
        }
        // --run-dir without --shards names the missing piece.
        let dir = std::env::temp_dir().join("daydream-cmd-shard-args");
        let err = cmd_sweep(&args(&["--run-dir", dir.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("--shards"), "got: {err}");
    }

    #[test]
    fn worker_config_parses_knobs() {
        let cfg = worker_config(&args(&[
            "--worker-id",
            "w-test",
            "--lease-ttl-secs",
            "5",
            "--poll-ms",
            "10",
            "--max-wait-secs",
            "2",
        ]))
        .unwrap();
        assert_eq!(cfg.worker_id, "w-test");
        assert_eq!(cfg.lease_ttl_ms, 5000);
        assert_eq!(cfg.poll_ms, 10);
        assert_eq!(cfg.max_wait_ms, 2000);
        let default = worker_config(&args(&[])).unwrap();
        assert_eq!(default.lease_ttl_ms, 60_000);
        assert!(default.worker_id.starts_with('w'));
    }

    #[test]
    fn sweep_diff_requires_two_run_dirs() {
        let err = cmd_sweep_diff(&args(&["only-one"])).unwrap_err();
        assert!(err.contains("usage"), "got: {err}");
    }

    #[test]
    fn shard_subcommands_reject_unknown_options() {
        // `--cache-file` belongs to `sweep`; merge spells it --cache-out.
        let err =
            cmd_sweep_merge(&args(&["--run-dir", "/tmp/x", "--cache-file", "c.json"])).unwrap_err();
        assert!(
            err.contains("unknown sweep-merge option --cache-file"),
            "got: {err}"
        );
        // A typo'd lease knob must not silently run with the default.
        let err =
            cmd_sweep_worker(&args(&["--run-dir", "/tmp/x", "--lease-ttl-sec", "30"])).unwrap_err();
        assert!(
            err.contains("unknown sweep-worker option --lease-ttl-sec"),
            "got: {err}"
        );
        let err = cmd_sweep_diff(&args(&["a", "b", "--tolerence", "0.1"])).unwrap_err();
        assert!(
            err.contains("unknown sweep-diff option --tolerence"),
            "got: {err}"
        );
        // Stray positionals are typos too.
        let err = cmd_sweep_worker(&args(&["rundir"])).unwrap_err();
        assert!(err.contains("unexpected argument 'rundir'"), "got: {err}");
        let err = cmd_sweep_diff(&args(&["a", "b", "c"])).unwrap_err();
        assert!(err.contains("unexpected argument 'c'"), "got: {err}");
    }

    #[test]
    fn trace_diff_requires_two_trace_files() {
        let err = cmd_trace_diff(&args(&["only-one.jsonl"])).unwrap_err();
        assert!(err.contains("usage"), "got: {err}");
        let err = cmd_trace_diff(&args(&["a", "b", "--format", "yaml"])).unwrap_err();
        assert!(err.contains("unknown --format"), "got: {err}");
        let err = cmd_trace_diff(&args(&["a", "b", "--fromat", "csv"])).unwrap_err();
        assert!(
            err.contains("unknown trace-diff option --fromat"),
            "got: {err}"
        );
    }

    #[test]
    fn trace_verify_rejects_bad_knobs() {
        let err = cmd_trace_verify(&args(&["--perturb", "0"])).unwrap_err();
        assert!(err.contains("--perturb must be positive"), "got: {err}");
        let err = cmd_trace_verify(&args(&["--tolerance", "lots"])).unwrap_err();
        assert!(err.contains("invalid --tolerance"), "got: {err}");
        // A corpus-less directory names the fix.
        let err = cmd_trace_verify(&args(&["--dir", "/nonexistent/goldens"])).unwrap_err();
        assert!(err.contains("golden-gen"), "got: {err}");
    }

    #[test]
    fn profile_fidelity_diffs_sim_against_recording() {
        // In-process gate: the baseline replay of a small profile must
        // sit inside the sweep engine's fidelity budget, and the same
        // pair must report ranked attribution through trace-diff.
        let dir = std::env::temp_dir().join(format!("daydream-cli-fid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let truth_path = dir.join("truth.jsonl");
        let sim_path = dir.join("sim.jsonl");
        cmd_profile(&args(&[
            "ResNet-50",
            "--batch",
            "4",
            "--fidelity",
            "--jsonl",
            truth_path.to_str().unwrap(),
            "--sim-out",
            sim_path.to_str().unwrap(),
        ]))
        .unwrap();
        cmd_trace_diff(&args(&[
            sim_path.to_str().unwrap(),
            truth_path.to_str().unwrap(),
            "--format",
            "csv",
            "--tolerance",
            "0.05",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_list_handles_types_and_garbage() {
        let a = args(&["--xs", "1,2,3"]);
        assert_eq!(parse_list::<u64>(&a, "xs", "9").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_list::<u64>(&a, "missing", "7,8").unwrap(), vec![7, 8]);
        assert!(parse_list::<u64>(&args(&["--xs", "1,zap"]), "xs", "").is_err());
    }
}
