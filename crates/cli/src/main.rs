//! `daydream` — command-line what-if profiler for DNN training.
//!
//! ```text
//! daydream models                              list the model zoo
//! daydream profile <model> [--batch N] [--gpu G] [--out t.json] [--chrome c.json]
//! daydream report  <model> [--top N]           per-layer time attribution
//! daydream memory  <model> [--device-gb G]     footprint and max batch
//! daydream predict <model> --opt <opt> [...]   run a what-if analysis
//! daydream sweep [--models ...] [--opts ...]   batch what-if grid in parallel
//! daydream sweep-worker --run-dir D            drain a sharded run's shards
//! daydream sweep-merge  --run-dir D            merge shard results into a report
//! daydream sweep-diff   <A> <B>                compare two runs' predictions
//! daydream sweep-history [--model M]           best scenarios across stored runs
//! daydream serve [--addr A] [--store D]        resident sweep-as-a-service daemon
//! daydream query <path> [--body JSON]          one-shot client for the daemon
//! daydream trace-diff   <sim> <truth>          attribute sim-vs-truth timing error
//! daydream trace-verify [--dir goldens]        gate fidelity against golden traces
//! daydream golden-gen   [--dir goldens]        (re)record the golden corpus
//! ```

mod args;
mod commands;
mod fidelity;

use args::Args;

const USAGE: &str = "\
daydream — what-if profiler for DNN training (Zhu et al., ATC'20 reproduction)

USAGE:
    daydream <command> [args]

COMMANDS:
    models                         list the model zoo with memory needs
    profile <model>                profile one training iteration
    report  <model>                per-layer time attribution
    memory  <model>                memory footprint and max batch size
    predict <model> --opt <opt>    predict an optimization's effect
    sweep                          run a what-if grid in parallel, ranked
    sweep-worker --run-dir D       claim and evaluate shards until a run drains
    sweep-merge  --run-dir D       merge shard results into the ranked report
    sweep-diff   <A> <B>           diff two runs' predicted times (regressions)
    sweep-history                  best scenarios ever recorded across a run
                                   store's history, fastest first
    serve                          resident sweep-as-a-service HTTP daemon over
                                   one warm engine (what-ifs in microseconds)
    query <path>                   one-shot HTTP client for a running daemon
    trace-diff   <sim> <truth>     align a simulated trace against a recording
                                   and rank the per-op prediction error
    trace-verify                   replay prediction against the golden corpus
                                   and fail when fidelity leaves the budget
    golden-gen                     (re)record the golden corpus and pin chains

COMMON OPTIONS:
    --batch N          mini-batch size (default: the paper's per-model value)
    --framework F      pytorch | mxnet | caffe          (default pytorch)
    --gpu G            2080ti | v100 | t4 | p4000       (default 2080ti)

PROFILE OPTIONS:
    --verify           cross-check the compiled simulator against the
                       reference oracle on this profile and print the speedup
    --out F.json       write the recording as JSON
    --chrome F.json    write the recording for chrome://tracing
    --jsonl F.jsonl    write the recording as hash-chained JSONL
    --fidelity         diff the simulated schedule against this recording
                       (per-lane/per-phase error + worst-offender table)
    --sim-chrome F     write the *simulated* schedule for chrome://tracing
    --sim-out F.jsonl  write the simulated schedule as hash-chained JSONL

TRACE / GOLDEN OPTIONS:
    trace-diff   accepts: --format text|json|csv (default text), --top N,
                 --out F (write instead of print), --tolerance FRAC
                 (nonzero exit when the diff leaves the budget)
    trace-verify accepts: --dir D (default goldens), --tolerance FRAC
                 (default: the manifest's budget), --perturb F (scale
                 simulated durations to prove the gate fails)
    golden-gen   accepts: --dir D (default goldens)

PREDICT OPTIONS:
    --opt O            amp | fused-adam | reconstruct-bn | ddp | blueconnect |
                       dgc | vdnn | gist | metaflow | bandwidth | upgrade-gpu | p3
    --machines N --gpus N --bw GBPS    cluster for ddp/blueconnect/dgc/p3
    --factor F         bandwidth multiplier for --opt bandwidth (default 2)
    --to G             target device for --opt upgrade-gpu (default v100)

SWEEP OPTIONS (comma-separated lists expand into grid axes):
    --models M,N       model axis                       (default ResNet-50,BERT_Base)
    --batches B,C      profile batch-size axis          (default 4,8)
    --opts O,P         optimization families            (default amp,fused-adam,gist,ddp,dgc,bandwidth)
    --bw G,H           inter-node Gbit/s axis           (default 10,25)
    --machines M,N     machine-count axis               (default 4)
    --gpus N           GPUs per machine                 (default 1)
    --ratios R,S       DGC compression ratios           (default 0.01)
    --factors F,G      bandwidth what-if multipliers    (default 2.0)
    --to G,H           upgrade-gpu targets              (default v100)
    --lossy MODE       gist mode: off | on | both       (default off)
    --lookaheads N,M   vdnn prefetch lookaheads         (default 2)
    --target-batches B,C  batch-size what-if targets    (default 16)
    --max-batch N      drop scenarios with batch > N    (default unlimited)
    --threads N        worker threads                   (default all cores)
    --top N            rows to print                    (default 15)
    --out F.json       write the ranked report as JSON
    --csv F.csv        write the ranked results as CSV
    --cache-file F     load/save the result cache (repeat runs are free)
    --explain FP       print one scenario's graph patch (tasks scaled /
                       inserted / removed, deps changed) instead of sweeping;
                       FP is a result-key (fingerprint) prefix from a report
                       (with --search halving, also prints the scenario's
                       rung-by-rung promotion history)

SERVE / QUERY / HISTORY OPTIONS:
    serve accepts:  --addr HOST:PORT   bind address        (default 127.0.0.1:8484;
                                       port 0 picks a free port, printed on startup)
                    --threads N        engine worker threads (default all cores)
                    --store DIR        persist completed jobs under DIR/runs and
                                       serve GET /history/best from them
                    --max-requests N   stop after N requests        (default unlimited)
                    --timeout-secs S   stop after S seconds         (default unlimited)
                    --max-queued N     shed POST /sweep with 429 + Retry-After once
                                       N jobs are in flight (default 8; 0 = unbounded)
                    --whatif-deadline-ms MS  answer 504 when a what-if exceeds MS
                                       (default 0 = no deadline)
        endpoints:  GET  /healthz /metrics /models /history/best?model=X&top=N
                    GET  /jobs/<id>  /jobs/<id>/results?top=N
                    POST /whatif /sweep /shutdown      (JSON bodies)
        jobs with --store are journaled before evaluation: a daemon killed
        mid-job recovers and resumes it on restart (same run id, identical report)
    query accepts:  --addr HOST:PORT (default 127.0.0.1:8484), --body JSON
                    (implies POST), --method GET|POST; prints the response body
                    --retries N        retry connect failures / 5xx / 429 sheds
                                       with capped exponential backoff (default 0)
                    --backoff-ms B     first retry delay, doubles per retry,
                                       jittered, capped at 5s (default 100)
    sweep-history accepts: --store DIR (default .), --model M, --top N
                    (default 10), --out F.json

ADAPTIVE SEARCH OPTIONS (multi-fidelity successive halving):
    --search halving   prune the grid over low-fidelity rungs instead of
                       evaluating every scenario at full fidelity
    --rungs N          total rungs incl. the final exact pass (default 3)
    --keep-fraction F  fraction kept per rung and model       (default 0.25)
    --keep-min N       survivor floor per pruning group       (default 2)
    --tolerance F      near-miss warning margin               (default 0.02)
    --cone-budgets A,B incremental-cone budget per low rung   (default 0.05,0.25)

DISTRIBUTED SWEEP OPTIONS (shard a grid across processes/machines):
    --shards N         split the grid into N fingerprint-balanced shards
    --shard-index I    plan the run (if needed) and evaluate shard I
    --run-dir D        shared run directory (manifest, shard queue, results)
    --worker-id W      worker name recorded in shard leases  (default w<pid>)
    --lease-ttl-secs S reclaim a dead worker's shard after S  (default 60)
  sweep-worker also accepts: --threads N, --poll-ms MS, --max-wait-secs S
  sweep-merge  also accepts: --top N, --out F.json, --csv F.csv, --cache-out F
  sweep-diff   also accepts: --tolerance FRAC (default 0.001), --out F.json,
               --fail-on-regression (nonzero exit when B regressed vs A)

EXAMPLES:
    daydream profile BERT_Base --out bert.json
    daydream profile ResNet-50 --batch 4 --fidelity --jsonl truth.jsonl --sim-out sim.jsonl
    daydream trace-diff sim.jsonl truth.jsonl --format csv --top 10
    daydream trace-verify                              # gate against goldens/
    daydream golden-gen                                # re-pin after an executor change
    daydream predict BERT_Large --opt fused-adam
    daydream predict ResNet-50 --opt ddp --machines 4 --gpus 2 --bw 10
    daydream predict ResNet-50 --opt upgrade-gpu --to v100
    daydream sweep --models ResNet-50,BERT_Base --opts amp,ddp,dgc --bw 10,25,40
    daydream sweep --search halving --rungs 3 --keep-fraction 0.25 --factors 1.5,2,3,4
    daydream sweep --shards 4 --run-dir /shared/run1   # plan a distributed run
    daydream sweep-worker --run-dir /shared/run1       # on each of 4 machines
    daydream sweep-merge --run-dir /shared/run1 --out ranked.json
    daydream sweep-diff /shared/run1 /shared/run2 --fail-on-regression
    daydream serve --addr 127.0.0.1:8484 --store /shared/history
    daydream query /whatif --body '{\"model\": \"ResNet-50\", \"opt\": \"amp\"}'
    daydream query '/history/best?model=ResNet-50&top=5'
    daydream sweep-history --store /shared/history --model ResNet-50
";

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let command = argv.remove(0);
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let result = match command.as_str() {
        "models" => commands::cmd_models(&parsed),
        "profile" => commands::cmd_profile(&parsed),
        "report" => commands::cmd_report(&parsed),
        "memory" => commands::cmd_memory(&parsed),
        "predict" => commands::cmd_predict(&parsed),
        "sweep" => commands::cmd_sweep(&parsed),
        "sweep-worker" => commands::cmd_sweep_worker(&parsed),
        "sweep-merge" => commands::cmd_sweep_merge(&parsed),
        "sweep-diff" => commands::cmd_sweep_diff(&parsed),
        "sweep-history" => commands::cmd_sweep_history(&parsed),
        "serve" => commands::cmd_serve(&parsed),
        "query" => commands::cmd_query(&parsed),
        "trace-diff" => commands::cmd_trace_diff(&parsed),
        "trace-verify" => commands::cmd_trace_verify(&parsed),
        "golden-gen" => commands::cmd_golden_gen(&parsed),
        other => {
            eprintln!("unknown command '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
