//! Minimal dependency-free argument parsing for the CLI.

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` /
/// `--flag` options.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Option map; bare flags map to `"true"`.
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name".into());
                }
                if let Some((k, v)) = key.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else if iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = iter.next().expect("peeked");
                    out.options.insert(key.to_string(), v);
                } else {
                    out.options.insert(key.to_string(), "true".into());
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// String option with a default.
    pub fn opt(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional string option.
    pub fn opt_maybe(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Returns `true` if a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(|v| v != "false").unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["ResNet-50", "--batch", "16", "--out=trace.json", "--chrome"]);
        assert_eq!(a.positional, vec!["ResNet-50"]);
        assert_eq!(a.opt("batch", "0"), "16");
        assert_eq!(a.opt("out", ""), "trace.json");
        assert!(a.flag("chrome"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn numeric_parsing() {
        let a = parse(&["--bw", "12.5"]);
        assert_eq!(a.num::<f64>("bw", 0.0).unwrap(), 12.5);
        assert_eq!(a.num::<u64>("batch", 7).unwrap(), 7);
        let bad = parse(&["--bw", "abc"]);
        assert!(bad.num::<f64>("bw", 0.0).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--verbose"]);
        assert!(a.flag("verbose"));
    }
}
