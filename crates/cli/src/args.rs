//! Minimal dependency-free argument parsing for the CLI.

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` /
/// `--flag` options.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Option map; bare flags map to `"true"`.
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name".into());
                }
                let (k, v) = if let Some((k, v)) = key.split_once('=') {
                    (k.to_string(), v.to_string())
                } else if iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = iter.next().expect("peeked");
                    (key.to_string(), v)
                } else {
                    (key.to_string(), "true".into())
                };
                if out.options.insert(k.clone(), v).is_some() {
                    return Err(format!("duplicate option --{k}"));
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// String option with a default.
    pub fn opt(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional string option.
    pub fn opt_maybe(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Returns `true` if a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(|v| v != "false").unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&["ResNet-50", "--batch", "16", "--out=trace.json", "--chrome"]);
        assert_eq!(a.positional, vec!["ResNet-50"]);
        assert_eq!(a.opt("batch", "0"), "16");
        assert_eq!(a.opt("out", ""), "trace.json");
        assert!(a.flag("chrome"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn numeric_parsing() {
        let a = parse(&["--bw", "12.5"]);
        assert_eq!(a.num::<f64>("bw", 0.0).unwrap(), 12.5);
        assert_eq!(a.num::<u64>("batch", 7).unwrap(), 7);
        let bad = parse(&["--bw", "abc"]);
        assert!(bad.num::<f64>("bw", 0.0).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["--verbose"]);
        assert!(a.flag("verbose"));
    }

    #[test]
    fn key_equals_value_forms() {
        let a = parse(&["--out=trace.json", "--ratio=0.01", "--name="]);
        assert_eq!(a.opt("out", ""), "trace.json");
        assert_eq!(a.num::<f64>("ratio", 0.0).unwrap(), 0.01);
        assert_eq!(a.opt("name", "x"), "", "--key= yields an empty value");
    }

    #[test]
    fn bare_flags_before_options_and_positionals() {
        let a = parse(&["--chrome", "--batch", "16", "ResNet-50", "--dry-run"]);
        assert!(a.flag("chrome"));
        assert!(a.flag("dry-run"));
        assert_eq!(a.opt("batch", "0"), "16");
        assert_eq!(a.positional, vec!["ResNet-50"]);
    }

    #[test]
    fn negative_number_values() {
        // A leading single dash is a value, not an option.
        let a = parse(&["--offset", "-5", "--scale=-1.25"]);
        assert_eq!(a.num::<i64>("offset", 0).unwrap(), -5);
        assert_eq!(a.num::<f64>("scale", 0.0).unwrap(), -1.25);
        let b = parse(&["-3"]);
        assert_eq!(b.positional, vec!["-3"]);
    }

    #[test]
    fn explain_fingerprint_option_parses() {
        // `sweep --explain <fingerprint>` takes a hex key as its value —
        // both spellings, never as a bare flag.
        let a = parse(&["--explain", "93b1f00ddeadbeef", "--models", "ResNet-50"]);
        assert_eq!(a.opt_maybe("explain"), Some("93b1f00ddeadbeef"));
        let b = parse(&["--explain=93b1"]);
        assert_eq!(b.opt_maybe("explain"), Some("93b1"));
        let bare = parse(&["--explain"]);
        assert_eq!(bare.opt("explain", ""), "true", "bare flag has no key");
        assert!(Args::parse(["--explain".into(), "a".into(), "--explain=b".into()]).is_err());
    }

    #[test]
    fn duplicate_options_are_rejected() {
        let argv = |s: &[&str]| Args::parse(s.iter().map(|x| x.to_string()));
        let err = argv(&["--batch", "8", "--batch", "16"]).unwrap_err();
        assert!(err.contains("duplicate option --batch"), "got: {err}");
        // Mixed spellings of the same key also collide.
        assert!(argv(&["--out=a.json", "--out", "b.json"]).is_err());
        // A repeated bare flag is a duplicate too.
        assert!(argv(&["--verbose", "--verbose"]).is_err());
        // Distinct keys are fine.
        assert!(argv(&["--batch", "8", "--bw", "10"]).is_ok());
    }
}
