//! Tier-1 guards on the warm-evaluation perf work.
//!
//! Two regressions these pin:
//!
//! * **Allocation creep** — the whole point of the epoch-stamped arena
//!   is that a warmed evaluation touches no allocator. The counting
//!   global allocator in `daydream_bench::util` (debug builds only)
//!   fails this test the moment someone reintroduces a per-call `clone`
//!   or `Vec::new` into the hot loop.
//! * **Snapshot drift** — the checked-in `BENCH_sim.json` must carry an
//!   `eval_warm` section whose numbers still clear the acceptance
//!   floors (>= 20x over the pre-arena fresh pipeline at ~100k tasks,
//!   <= 5x scaling 1k -> 100k at a fixed 16-transfer cone), so a
//!   regressing re-snapshot cannot land silently.

use daydream_bench::synth::{synthetic_graph, tail_retime};
use daydream_bench::{assert_no_allocs, thread_allocs};
use daydream_core::{
    simulate_incremental, simulate_warm, CompiledGraph, PatchGraph, Schedule, SimScratch, TaskId,
};

#[test]
fn warmed_evaluation_is_allocation_free() {
    let g = synthetic_graph(3_000);
    let compiled = CompiledGraph::compile(&g);
    let schedule = Schedule::capture(&compiled).expect("base must be a DAG");
    let comms = g.select(|t| t.thread.is_comm());
    let targets: Vec<TaskId> = comms.iter().rev().take(16).copied().collect();
    let mut ov = PatchGraph::new(&g);
    tail_retime(&mut ov, &targets);
    let patch = ov.finish();

    // First call sizes the arena, second settles retained heap
    // capacities; the third must be allocation-free.
    let mut scratch = SimScratch::new();
    let first = simulate_warm(&compiled, &schedule, &patch, &mut scratch).unwrap();
    let second = simulate_warm(&compiled, &schedule, &patch, &mut scratch).unwrap();
    assert!(first.stats.is_incremental(), "tail retime must stay warm");
    assert_eq!(first.makespan_ns, second.makespan_ns);

    let third = assert_no_allocs("warmed simulate_warm", || {
        simulate_warm(&compiled, &schedule, &patch, &mut scratch).unwrap()
    });
    assert_eq!(third.makespan_ns, first.makespan_ns);

    // And the warm answer still matches the fresh-allocation oracle.
    let (applied, trace) = compiled.apply_traced(&patch);
    let oracle = simulate_incremental(&compiled, &schedule, &applied, &patch, &trace).unwrap();
    assert_eq!(third.makespan_ns, oracle.sim.makespan_ns);
    assert_eq!(scratch.materialize(&schedule).unwrap(), oracle.sim);
}

#[test]
fn counting_allocator_sees_this_crate() {
    // Meta-guard: if the debug global allocator stopped being installed
    // (say, the `#[global_allocator]` moved behind the wrong cfg), the
    // allocation-free test above would pass vacuously.
    if cfg!(debug_assertions) {
        let before = thread_allocs();
        let v: Vec<u64> = (0..64).collect();
        assert!(thread_allocs() > before, "allocation went uncounted");
        drop(v);
    }
}

#[test]
fn snapshot_eval_warm_section_clears_the_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let text = std::fs::read_to_string(path).expect("BENCH_sim.json is checked in");
    let json: serde_json::Value = serde_json::from_str(&text).expect("snapshot parses");
    let results = json
        .get("eval_warm")
        .and_then(|s| s.get("results"))
        .and_then(|r| r.as_array())
        .expect("snapshot has an eval_warm section with results");

    let mut small: Option<(u64, f64)> = None;
    let mut large: Option<(u64, f64)> = None;
    for row in results {
        let tasks = row.get("tasks").and_then(|v| v.as_u64()).expect("tasks");
        let warm = row
            .get("warm_ns")
            .and_then(|v| v.as_f64())
            .expect("warm_ns");
        let cone = row.get("cone").and_then(|v| v.as_u64()).expect("cone");
        assert!(cone >= 16, "tail retime cone covers the 16 targets");
        if tasks < 10_000 {
            small = Some((tasks, warm));
        }
        if tasks > 50_000 {
            large = Some((tasks, warm));
        }
    }
    let (_, w1k) = small.expect("~1k-task row present");
    let (_, w100k) = large.expect("~100k-task row present");
    // The pre-arena fresh pipeline measured 2_209_199.3 ns here.
    assert!(
        w100k * 20.0 <= 2_209_199.3,
        "snapshotted warm eval at ~100k tasks regressed past the 20x floor: {w100k} ns"
    );
    assert!(
        w100k <= 5.0 * w1k,
        "snapshotted warm eval no longer scales O(cone): {w1k} ns -> {w100k} ns"
    );
}
