//! Criterion bench: heap-based compiled simulator vs the reference loop.
//!
//! Synthetic kernel-granularity graphs shaped like a communication-bound
//! training iteration (the regime where Daydream's what-ifs matter most):
//! a CPU launch chain, kernels round-robined over four CUDA streams, and
//! one unchained gradient transfer per kernel contending for a single
//! collective channel. The channel is slower than the kernels, so its
//! ready-set grows with graph size — the frontier shape that made the
//! reference loop quadratic.
//!
//! Four scales (1k/10k/100k/1M tasks) measure the compiled path; the
//! reference oracle runs at 1k and 10k only (its quadratic frontier
//! refresh needs tens of seconds per iteration at 100k). From 100k up,
//! the speculative windowed path (`simulate_windowed`) is measured
//! against the serial heap loop — at 1M the collective channel's ready
//! backlog makes heap churn dominate, which is exactly what the
//! certified presim avoids. Unless running in `--test` smoke mode, the
//! measurements are snapshotted into the `"sim_scale"` section of
//! `BENCH_sim.json` at the workspace root (shared with `transform_patch`
//! via the criterion-shim snapshot registry).

use criterion::{BenchmarkId, Criterion, Throughput};
use daydream_core::{
    simulate, simulate_compiled, simulate_reference, simulate_windowed, CommChannel, CompiledGraph,
    DepKind, DependencyGraph, ExecThread, Task, TaskKind,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};
use std::hint::black_box;

const STREAMS: u32 = 4;

/// A communication-bound iteration graph with ~`n` tasks
/// (launch + kernel + transfer per step).
fn synthetic_graph(n: usize) -> DependencyGraph {
    let steps = n / 3;
    let mut g = DependencyGraph::new();
    g.reserve(steps * 3);
    let cpu = ExecThread::Cpu(CpuThreadId(0));
    let chan = ExecThread::Comm(CommChannel::Collective);
    let mut prev_launch: Option<daydream_core::TaskId> = None;
    let mut prev_kernel = vec![None; STREAMS as usize];
    for i in 0..steps {
        let stream = (i as u32) % STREAMS;
        let launch = g.add_task(Task::new("cudaLaunchKernel", TaskKind::CpuWork, cpu, 4_000));
        let kernel = g.add_task(Task::new(
            "kernel",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(stream)),
            30_000,
        ));
        let comm = g.add_task(Task::new(
            "allreduce_slice",
            TaskKind::Communication {
                prim: daydream_core::CommPrimitive::AllReduce,
                bytes: 1 << 20,
            },
            chan,
            45_000,
        ));
        if let Some(p) = prev_launch {
            g.add_dep(p, launch, DepKind::CpuSeq);
        }
        if let Some(p) = prev_kernel[stream as usize] {
            g.add_dep(p, kernel, DepKind::GpuSeq);
        }
        g.add_dep(launch, kernel, DepKind::Correlation);
        g.add_dep(kernel, comm, DepKind::Comm);
        prev_launch = Some(launch);
        prev_kernel[stream as usize] = Some(kernel);
    }
    g
}

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();
    let mut rows: Vec<String> = Vec::new();

    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let g = synthetic_graph(n);
        let tasks = g.len();
        let edges = g.edge_count();
        let compiled = CompiledGraph::compile(&g);

        let mut group = c.benchmark_group("sim_scale");
        group.sample_size(if n >= 1_000_000 {
            5
        } else if n >= 100_000 {
            10
        } else {
            20
        });
        group.throughput(Throughput::Elements(tasks as u64));
        // Graph-build + compile is too slow to repeat per sample at 1M;
        // the cold path is covered by the smaller scales.
        if n < 1_000_000 {
            group.bench_with_input(
                BenchmarkId::new("compiled", format!("{tasks} tasks")),
                &g,
                |b, g| b.iter(|| simulate(black_box(g)).unwrap()),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("compiled_hot", format!("{tasks} tasks")),
            &compiled,
            |b, cg| b.iter(|| simulate_compiled(black_box(cg)).unwrap()),
        );
        if n >= 100_000 {
            // Sanity-pin byte identity before measuring the fast path.
            assert_eq!(
                simulate_windowed(&compiled).unwrap(),
                simulate_compiled(&compiled).unwrap()
            );
            group.bench_with_input(
                BenchmarkId::new("windowed", format!("{tasks} tasks")),
                &compiled,
                |b, cg| b.iter(|| simulate_windowed(black_box(cg)).unwrap()),
            );
        }
        let reference_feasible = n <= 10_000;
        if reference_feasible {
            group.sample_size(if n >= 10_000 { 3 } else { 10 });
            group.bench_with_input(
                BenchmarkId::new("reference", format!("{tasks} tasks")),
                &g,
                |b, g| b.iter(|| simulate_reference(black_box(g)).unwrap()),
            );
        }
        group.finish();

        let find = |kind: &str| {
            c.records()
                .iter()
                .rev()
                .find(|r| r.name.contains(&format!("/{kind}/{tasks} tasks")))
                .map(|r| r.ns_per_iter)
        };
        let (comp, hot, reference, windowed) = (
            find("compiled"),
            find("compiled_hot"),
            find("reference"),
            find("windowed"),
        );
        let speedup = match (comp, reference) {
            (Some(cn), Some(rn)) if cn > 0.0 => Some(rn / cn),
            _ => None,
        };
        if let Some(s) = speedup {
            println!("sim_scale {tasks} tasks: reference/compiled speedup {s:.1}x");
        }
        let win_speedup = match (hot, windowed) {
            (Some(hn), Some(wn)) if wn > 0.0 => Some(hn / wn),
            _ => None,
        };
        if let Some(s) = win_speedup {
            println!("sim_scale {tasks} tasks: serial/windowed speedup {s:.2}x");
        }
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "null".to_string())
        };
        rows.push(format!(
            concat!(
                "    {{\"tasks\": {}, \"edges\": {}, ",
                "\"compiled_ns_per_iter\": {}, \"compiled_hot_ns_per_iter\": {}, ",
                "\"windowed_ns_per_iter\": {}, \"windowed_speedup_vs_serial\": {}, ",
                "\"reference_ns_per_iter\": {}, \"speedup_vs_reference\": {}}}"
            ),
            tasks,
            edges,
            fmt_opt(comp),
            fmt_opt(hot),
            fmt_opt(windowed),
            fmt_opt(win_speedup.map(|s| (s * 100.0).round() / 100.0)),
            fmt_opt(reference),
            fmt_opt(speedup.map(|s| (s * 10.0).round() / 10.0)),
        ));
    }

    // Smoke runs (`--test`) measure one iteration — not worth snapshotting.
    if !quick {
        let json = format!(
            concat!(
                "{{\n  \"graph\": \"communication-bound synthetic iteration ",
                "(launch chain + {} streams + contended collective channel)\",\n",
                "  \"note\": \"reference omitted at 100k+ tasks (quadratic frontier ",
                "refresh takes tens of seconds per iteration); windowed = speculative ",
                "certified dispatch, byte-identical to serial, measured from 100k up\",\n",
                "  \"results\": [\n{}\n  ]\n  }}"
            ),
            STREAMS,
            rows.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        match criterion::snapshot::merge_section(path, "sim_scale", &json) {
            Ok(()) => println!("wrote sim_scale section of {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
