//! Criterion bench: hash-chained JSONL trace I/O and fidelity diffing.
//!
//! Measures the golden-corpus hot paths on a real ResNet-50 batch-4
//! profile: chained serialization (`to_jsonl`), chain verification
//! without materializing the trace (`verify_jsonl`), full parse
//! (`from_jsonl`), and the schedule↔trace fidelity diff
//! (`diff_traces`). Unless running in `--test` smoke mode, the
//! measurements are snapshotted into the `"trace_io"` section of
//! `BENCH_sim.json` at the workspace root.

use criterion::{Criterion, Throughput};
use daydream_core::{simulate_to_trace, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{ground_truth, ExecConfig};
use daydream_trace::{diff_traces, from_jsonl, to_jsonl, verify_jsonl};
use std::hint::black_box;

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();

    let model = zoo::resnet50();
    let cfg = ExecConfig::pytorch_2080ti().with_batch(4);
    let truth = ground_truth::run_baseline(&model, &cfg);
    let jsonl = to_jsonl(&truth).expect("serializable");
    let pg = ProfiledGraph::from_trace(&truth);
    let exported = simulate_to_trace(&pg).expect("simulates");

    let mut group = c.benchmark_group("trace_io");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(jsonl.len() as u64));
    group.bench_function("jsonl_write", |b| {
        b.iter(|| to_jsonl(black_box(&truth)).unwrap())
    });
    group.bench_function("jsonl_verify", |b| {
        b.iter(|| verify_jsonl(black_box(&jsonl)).unwrap())
    });
    group.bench_function("jsonl_read", |b| {
        b.iter(|| from_jsonl(black_box(&jsonl)).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("trace_diff");
    group.sample_size(20);
    group.throughput(Throughput::Elements(truth.activities.len() as u64));
    group.bench_function("diff_traces", |b| {
        b.iter(|| diff_traces(black_box(&exported), black_box(&truth)))
    });
    group.finish();

    // Smoke runs (`--test`) measure one iteration — not worth snapshotting.
    if !quick {
        let find = |name: &str| {
            c.records()
                .iter()
                .rev()
                .find(|r| r.name.contains(name))
                .map(|r| r.ns_per_iter)
        };
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "null".to_string())
        };
        let mbps = |v: Option<f64>| {
            v.map(|ns| format!("{:.1}", jsonl.len() as f64 / ns * 1e3))
                .unwrap_or_else(|| "null".to_string())
        };
        let (write, verify, read, diff) = (
            find("jsonl_write"),
            find("jsonl_verify"),
            find("jsonl_read"),
            find("diff_traces"),
        );
        let json = format!(
            concat!(
                "{{\n  \"trace\": \"ResNet-50 batch 4 baseline ({} activities, {} bytes JSONL)\",\n",
                "  \"jsonl_write_ns\": {}, \"jsonl_write_mb_s\": {},\n",
                "  \"jsonl_verify_ns\": {}, \"jsonl_verify_mb_s\": {},\n",
                "  \"jsonl_read_ns\": {}, \"jsonl_read_mb_s\": {},\n",
                "  \"diff_traces_ns\": {}\n  }}"
            ),
            truth.activities.len(),
            jsonl.len(),
            fmt_opt(write),
            mbps(write),
            fmt_opt(verify),
            mbps(verify),
            fmt_opt(read),
            mbps(read),
            fmt_opt(diff),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        match criterion::snapshot::merge_section(path, "trace_io", &json) {
            Ok(()) => println!("wrote trace_io section of {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
