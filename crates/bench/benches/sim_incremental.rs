//! Criterion bench: incremental cone re-simulation vs full re-simulation.
//!
//! After PR 4 the per-scenario transform stage (emit + apply) stopped
//! being the bottleneck: every sweep scenario re-paid a from-scratch
//! heap dispatch of a graph that is 95%+ identical to the already-
//! simulated base. `simulate_incremental` replays the base [`Schedule`]
//! up to the patch's earliest possible influence and re-dispatches only
//! the affected cone — O(|cone| log |cone|) instead of O(V log V).
//!
//! This bench prices the **end-to-end per-scenario evaluation** (patch
//! emit + apply + simulate) both ways, on the same synthetic
//! communication-bound iteration graphs as `sim_scale` (1k/10k/100k
//! tasks), for the two small-cone patch shapes a sweep produces:
//!
//! * **retime** — shrink the durations of the last 16 collective
//!   transfers (a DGC/bandwidth-style tail refinement);
//! * **structural** — insert a compression kernel in front of each of
//!   the last 8 transfers and shrink them (a Gist/DGC-style tail edit).
//!
//! The base `Schedule` is captured once outside the measurement, exactly
//! as the sweep engine amortizes it across every scenario of a profile.
//! Unless running in `--test` smoke mode the measurements are
//! snapshotted into the `"sim_incremental"` section of `BENCH_sim.json`.

use criterion::{BenchmarkId, Criterion, Throughput};
use daydream_bench::synth::{synthetic_graph, tail_retime, tail_structural};
use daydream_core::{
    simulate_compiled, simulate_incremental, CompiledGraph, PatchGraph, Schedule, TaskId,
};
use std::hint::black_box;

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();
    let mut rows: Vec<String> = Vec::new();

    for &n in &[1_000usize, 10_000, 100_000] {
        let g = synthetic_graph(n);
        let tasks = g.len();
        let compiled = CompiledGraph::compile(&g);
        let schedule = Schedule::capture(&compiled).expect("base must be a DAG");

        // Targets selected once per base, as a tail-refinement planner
        // would (axes vary slice sizes/ratios, not the target set).
        let comms = g.select(|t| t.thread.is_comm());
        let retime_targets: Vec<TaskId> = comms.iter().rev().take(16).copied().collect();
        let structural_targets: Vec<TaskId> = comms.iter().rev().take(8).copied().collect();

        // Cone sizes (and a sanity check that the incremental path runs)
        // measured once outside the timing loop.
        let cone_of = |plan: &dyn Fn(&mut PatchGraph<'_>)| -> (usize, bool) {
            let mut ov = PatchGraph::new(&g);
            plan(&mut ov);
            let patch = ov.finish();
            let (applied, trace) = compiled.apply_traced(&patch);
            let out = simulate_incremental(&compiled, &schedule, &applied, &patch, &trace)
                .expect("patched graph must stay a DAG");
            (out.stats.redispatched, out.stats.is_incremental())
        };
        let (retime_cone, retime_inc) = cone_of(&|ov| tail_retime(ov, &retime_targets));
        let (structural_cone, structural_inc) =
            cone_of(&|ov| tail_structural(ov, &structural_targets));
        assert!(
            retime_inc && structural_inc,
            "tail patches must stay incremental"
        );

        let mut group = c.benchmark_group("sim_incremental");
        group.sample_size(if n >= 100_000 { 10 } else { 30 });
        group.throughput(Throughput::Elements(tasks as u64));

        // Full pipeline: emit + apply + from-scratch heap simulation.
        group.bench_with_input(
            BenchmarkId::new("retime_full", format!("{tasks} tasks")),
            &(&g, &compiled),
            |b, (g, compiled)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    tail_retime(&mut ov, &retime_targets);
                    let patch = ov.finish();
                    let applied = compiled.apply(&patch);
                    black_box(simulate_compiled(&applied).unwrap().makespan_ns)
                })
            },
        );
        // Incremental pipeline: emit + traced apply + cone re-dispatch.
        group.bench_with_input(
            BenchmarkId::new("retime_incremental", format!("{tasks} tasks")),
            &(&g, &compiled, &schedule),
            |b, (g, compiled, schedule)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    tail_retime(&mut ov, &retime_targets);
                    let patch = ov.finish();
                    let (applied, trace) = compiled.apply_traced(&patch);
                    black_box(
                        simulate_incremental(compiled, schedule, &applied, &patch, &trace)
                            .unwrap()
                            .sim
                            .makespan_ns,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("structural_full", format!("{tasks} tasks")),
            &(&g, &compiled),
            |b, (g, compiled)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    tail_structural(&mut ov, &structural_targets);
                    let patch = ov.finish();
                    let applied = compiled.apply(&patch);
                    black_box(simulate_compiled(&applied).unwrap().makespan_ns)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("structural_incremental", format!("{tasks} tasks")),
            &(&g, &compiled, &schedule),
            |b, (g, compiled, schedule)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    tail_structural(&mut ov, &structural_targets);
                    let patch = ov.finish();
                    let (applied, trace) = compiled.apply_traced(&patch);
                    black_box(
                        simulate_incremental(compiled, schedule, &applied, &patch, &trace)
                            .unwrap()
                            .sim
                            .makespan_ns,
                    )
                })
            },
        );
        group.finish();

        let find = |kind: &str| {
            c.records()
                .iter()
                .rev()
                .find(|r| r.name.contains(&format!("/{kind}/{tasks} tasks")))
                .map(|r| r.ns_per_iter)
        };
        let speedup = |inc: Option<f64>, full: Option<f64>| match (inc, full) {
            (Some(i), Some(f)) if i > 0.0 => Some(f / i),
            _ => None,
        };
        let (rf, ri) = (find("retime_full"), find("retime_incremental"));
        let (sf, si) = (find("structural_full"), find("structural_incremental"));
        let (rs, ss) = (speedup(ri, rf), speedup(si, sf));
        if let (Some(rs), Some(ss)) = (rs, ss) {
            println!(
                "sim_incremental {tasks} tasks: retime {rs:.1}x (cone {retime_cone}), \
                 structural {ss:.1}x (cone {structural_cone}) over full re-simulation"
            );
        }
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "null".to_string())
        };
        rows.push(format!(
            concat!(
                "    {{\"tasks\": {}, ",
                "\"retime_full_ns\": {}, \"retime_incremental_ns\": {}, ",
                "\"retime_speedup\": {}, \"retime_cone\": {}, ",
                "\"structural_full_ns\": {}, \"structural_incremental_ns\": {}, ",
                "\"structural_speedup\": {}, \"structural_cone\": {}}}"
            ),
            tasks,
            fmt_opt(rf),
            fmt_opt(ri),
            fmt_opt(rs.map(|s| (s * 10.0).round() / 10.0)),
            retime_cone,
            fmt_opt(sf),
            fmt_opt(si),
            fmt_opt(ss.map(|s| (s * 10.0).round() / 10.0)),
            structural_cone,
        ));
    }

    // Smoke runs (`--test`) measure one iteration — not worth snapshotting.
    if !quick {
        let json = format!(
            concat!(
                "{{\n  \"pipelines\": \"full = emit + apply + simulate_compiled; ",
                "incremental = emit + apply_traced + simulate_incremental over the ",
                "amortized base Schedule\",\n",
                "  \"note\": \"end-to-end per-scenario evaluation of small-cone tail ",
                "patches (16-transfer retime, 8-insert structural); cone = tasks ",
                "re-dispatched\",\n",
                "  \"results\": [\n{}\n  ]\n  }}"
            ),
            rows.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        match criterion::snapshot::merge_section(path, "sim_incremental", &json) {
            Ok(()) => println!("wrote sim_incremental section of {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
