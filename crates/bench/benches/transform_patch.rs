//! Criterion bench: patch-based scenario evaluation vs clone+recompile.
//!
//! The sweep engine's per-scenario cost used to be "clone the
//! `DependencyGraph`, mutate it, compile a fresh `CompiledGraph`". The
//! `GraphPatch` pipeline replaces that with "record the mutations against
//! the shared base, `CompiledGraph::apply` the delta". This bench prices
//! both pipelines on the same synthetic communication-bound iteration
//! graphs as `sim_scale` (1k/10k/100k tasks), for the two patch shapes
//! the what-if catalog produces:
//!
//! * **retime** — duration scaling only (AMP, bandwidth, upgrade-gpu,
//!   batch-size, DGC's transfer shrink): the patched graph shares the
//!   whole CSR topology with the base;
//! * **structural** — inserts, removals, and edge rewires (DDP,
//!   BlueConnect, Gist, vDNN, FusedAdam): the CSR is rebuilt in flat
//!   array passes, still without touching `Task` structs or the arena.
//!
//! Unless running in `--test` smoke mode the measurements are snapshotted
//! into the `"transform_patch"` section of `BENCH_sim.json` (shared with
//! `sim_scale` via the criterion-shim snapshot registry).

use criterion::{BenchmarkId, Criterion, Throughput};
use daydream_core::{
    CommChannel, CommPrimitive, CompiledGraph, DepKind, DependencyGraph, ExecThread, GraphEdit,
    PatchGraph, Task, TaskId, TaskKind,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};
use std::hint::black_box;

const STREAMS: u32 = 4;

/// The `sim_scale` graph shape: a CPU launch chain, kernels round-robined
/// over four streams, one gradient transfer per kernel contending for a
/// collective channel.
fn synthetic_graph(n: usize) -> DependencyGraph {
    let steps = n / 3;
    let mut g = DependencyGraph::new();
    g.reserve(steps * 3);
    let cpu = ExecThread::Cpu(CpuThreadId(0));
    let chan = ExecThread::Comm(CommChannel::Collective);
    let mut prev_launch: Option<TaskId> = None;
    let mut prev_kernel = vec![None; STREAMS as usize];
    for i in 0..steps {
        let stream = (i as u32) % STREAMS;
        let launch = g.add_task(Task::new("cudaLaunchKernel", TaskKind::CpuWork, cpu, 4_000));
        let kernel = g.add_task(Task::new(
            "kernel",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(stream)),
            30_000,
        ));
        let comm = g.add_task(Task::new(
            "allreduce_slice",
            TaskKind::Communication {
                prim: CommPrimitive::AllReduce,
                bytes: 1 << 20,
            },
            chan,
            45_000,
        ));
        if let Some(p) = prev_launch {
            g.add_dep(p, launch, DepKind::CpuSeq);
        }
        if let Some(p) = prev_kernel[stream as usize] {
            g.add_dep(p, kernel, DepKind::GpuSeq);
        }
        g.add_dep(launch, kernel, DepKind::Correlation);
        g.add_dep(kernel, comm, DepKind::Comm);
        prev_launch = Some(launch);
        prev_kernel[stream as usize] = Some(kernel);
    }
    g
}

/// An AMP-shaped transformation (Algorithm 3's select-and-shrink):
/// rescale every GPU kernel.
fn retime<G: GraphEdit>(g: &mut G) {
    for id in g.select_ids(|t| t.thread.is_gpu()) {
        let scaled = (g.task(id).duration_ns as f64 / 3.0).round() as u64;
        g.set_duration(id, scaled);
    }
}

/// A DDP/Gist-shaped transformation: insert a compression kernel in front
/// of every 8th transfer, remove every 16th transfer (bridged), and
/// shrink the rest.
fn structural<G: GraphEdit>(g: &mut G) {
    let comms = g.select_ids(|t| t.thread.is_comm());
    for (i, &id) in comms.iter().enumerate() {
        if i % 16 == 0 {
            g.remove_task(id);
        } else if i % 8 == 0 {
            let gpu = ExecThread::Gpu(DeviceId(0), StreamId((i as u32) % STREAMS));
            let k = g.add_task(Task::new("compress", TaskKind::GpuKernel, gpu, 9_000));
            g.add_dep(k, id, DepKind::Comm);
            let shrunk = g.task(id).duration_ns / 100;
            g.set_duration(id, shrunk);
        } else {
            let shrunk = g.task(id).duration_ns / 2;
            g.set_duration(id, shrunk);
        }
    }
}

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();
    let mut rows: Vec<String> = Vec::new();

    for &n in &[1_000usize, 10_000, 100_000] {
        let g = synthetic_graph(n);
        let tasks = g.len();
        let compiled = CompiledGraph::compile(&g);

        let mut group = c.benchmark_group("transform_patch");
        group.sample_size(if n >= 100_000 { 10 } else { 30 });
        group.throughput(Throughput::Elements(tasks as u64));

        // Patch pipeline: emit against the shared base + incremental apply.
        group.bench_with_input(
            BenchmarkId::new("retime_patch", format!("{tasks} tasks")),
            &(&g, &compiled),
            |b, (g, compiled)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    retime(&mut ov);
                    black_box(compiled.apply(&ov.finish()))
                })
            },
        );
        // Legacy pipeline: clone the graph, mutate, recompile.
        group.bench_with_input(
            BenchmarkId::new("retime_clone_recompile", format!("{tasks} tasks")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut clone = black_box(g).clone();
                    retime(&mut clone);
                    black_box(CompiledGraph::compile(&clone))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("structural_patch", format!("{tasks} tasks")),
            &(&g, &compiled),
            |b, (g, compiled)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    structural(&mut ov);
                    black_box(compiled.apply(&ov.finish()))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("structural_clone_recompile", format!("{tasks} tasks")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut clone = black_box(g).clone();
                    structural(&mut clone);
                    black_box(CompiledGraph::compile(&clone))
                })
            },
        );
        group.finish();

        let find = |kind: &str| {
            c.records()
                .iter()
                .rev()
                .find(|r| r.name.contains(&format!("/{kind}/{tasks} tasks")))
                .map(|r| r.ns_per_iter)
        };
        let speedup = |patch: Option<f64>, legacy: Option<f64>| match (patch, legacy) {
            (Some(p), Some(l)) if p > 0.0 => Some(l / p),
            _ => None,
        };
        let (rp, rc) = (find("retime_patch"), find("retime_clone_recompile"));
        let (sp, sc) = (find("structural_patch"), find("structural_clone_recompile"));
        let (rs, ss) = (speedup(rp, rc), speedup(sp, sc));
        if let (Some(rs), Some(ss)) = (rs, ss) {
            println!(
                "transform_patch {tasks} tasks: retime {rs:.1}x, structural {ss:.1}x over clone+recompile"
            );
        }
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "null".to_string())
        };
        rows.push(format!(
            concat!(
                "    {{\"tasks\": {}, ",
                "\"retime_patch_ns\": {}, \"retime_clone_recompile_ns\": {}, ",
                "\"retime_speedup\": {}, ",
                "\"structural_patch_ns\": {}, \"structural_clone_recompile_ns\": {}, ",
                "\"structural_speedup\": {}}}"
            ),
            tasks,
            fmt_opt(rp),
            fmt_opt(rc),
            fmt_opt(rs.map(|s| (s * 10.0).round() / 10.0)),
            fmt_opt(sp),
            fmt_opt(sc),
            fmt_opt(ss.map(|s| (s * 10.0).round() / 10.0)),
        ));
    }

    // Smoke runs (`--test`) measure one iteration — not worth snapshotting.
    if !quick {
        let json = format!(
            concat!(
                "{{\n  \"pipelines\": \"patch = PatchGraph emit + CompiledGraph::apply; ",
                "clone_recompile = DependencyGraph clone + mutate + compile\",\n",
                "  \"note\": \"per-scenario transform cost only; the simulate stage ",
                "is identical for both pipelines\",\n",
                "  \"results\": [\n{}\n  ]\n  }}"
            ),
            rows.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        match criterion::snapshot::merge_section(path, "transform_patch", &json) {
            Ok(()) => println!("wrote transform_patch section of {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
