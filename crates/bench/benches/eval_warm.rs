//! Criterion bench: O(cone) warm evaluation on the scratch arena.
//!
//! `sim_incremental` showed the cone re-dispatch itself is cheap, but
//! the *evaluation wrapper* around it was still O(n): every call cloned
//! the base schedule's `start_ns`/`wait_ns` prefixes, re-allocated the
//! per-task seed vectors, and applied the patch into a fresh
//! `CompiledGraph`. At 100k tasks a 16-transfer tail retime cost
//! ~2.21 ms — ~400x its 1k-task cost for the same cone.
//!
//! `simulate_warm` answers the same query from an epoch-stamped
//! [`SimScratch`] arena: buffers are sized once per base and reset by a
//! generation bump, touched durations live in a copy-on-write overlay
//! over the captured base arrays, and the replayed prefix is never
//! copied. This bench prices that warm path against the fresh
//! clone-everything pipeline on the shared synthetic graphs
//! (1k/10k/100k tasks, fixed 16-transfer retime cone), pins the warm
//! result byte-identical to the fresh oracle, and — outside `--test`
//! smoke mode — asserts the two acceptance floors: warm evaluation at
//! ~100k tasks must beat the old 2.21 ms pipeline by >= 20x, and must
//! scale 1k -> 100k by <= 5x (O(cone + touched), not O(n)).
//!
//! Patch emit stays outside the measured warm path: the sweep engine
//! caches emitted patches by fingerprint, so a warm what-if pays only
//! the simulation. The `fresh` rows keep emit + apply in the loop —
//! they are the pre-arena per-scenario pipeline, unchanged.

use criterion::{BenchmarkId, Criterion, Throughput};
use daydream_bench::synth::{synthetic_graph, tail_retime};
use daydream_core::{
    simulate_incremental, simulate_warm, CompiledGraph, PatchGraph, Schedule, SimScratch, TaskId,
};
use std::hint::black_box;

/// `retime_incremental_ns` at 99999 tasks from the `sim_incremental`
/// section of `BENCH_sim.json` before the arena existed — the fresh
/// pipeline this PR's >= 20x acceptance floor is pinned against.
const FRESH_BASELINE_100K_NS: f64 = 2_209_199.3;

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();
    let mut rows: Vec<String> = Vec::new();
    let mut warm_ns_by_size: Vec<(usize, f64)> = Vec::new();

    for &n in &[1_000usize, 10_000, 100_000] {
        let g = synthetic_graph(n);
        let tasks = g.len();
        let compiled = CompiledGraph::compile(&g);
        let schedule = Schedule::capture(&compiled).expect("base must be a DAG");
        let comms = g.select(|t| t.thread.is_comm());
        let targets: Vec<TaskId> = comms.iter().rev().take(16).copied().collect();

        // Pre-emitted patch (the engine caches these by fingerprint).
        let mut ov = PatchGraph::new(&g);
        tail_retime(&mut ov, &targets);
        let patch = ov.finish();

        // Warm the arena once outside the measurement and pin the warm
        // answer byte-identical to the fresh-allocation oracle.
        let mut scratch = SimScratch::new();
        let warm0 = simulate_warm(&compiled, &schedule, &patch, &mut scratch)
            .expect("patched graph must stay a DAG");
        let (applied, trace) = compiled.apply_traced(&patch);
        let oracle = simulate_incremental(&compiled, &schedule, &applied, &patch, &trace)
            .expect("patched graph must stay a DAG");
        assert!(warm0.stats.is_incremental(), "tail retime must stay warm");
        assert_eq!(warm0.makespan_ns, oracle.sim.makespan_ns);
        assert_eq!(warm0.stats, oracle.stats);
        assert_eq!(
            scratch.materialize(&schedule).expect("warm eval completed"),
            oracle.sim,
            "arena result must be byte-identical to the fresh path"
        );
        let cone = warm0.stats.redispatched;

        let mut group = c.benchmark_group("eval_warm");
        group.sample_size(if n >= 100_000 { 20 } else { 60 });
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(
            BenchmarkId::new("warm", format!("{tasks} tasks")),
            &(&compiled, &schedule, &patch),
            |b, (compiled, schedule, patch)| {
                b.iter(|| {
                    black_box(
                        simulate_warm(compiled, schedule, black_box(patch), &mut scratch)
                            .unwrap()
                            .makespan_ns,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fresh", format!("{tasks} tasks")),
            &(&g, &compiled, &schedule),
            |b, (g, compiled, schedule)| {
                b.iter(|| {
                    let mut ov = PatchGraph::new(black_box(g));
                    tail_retime(&mut ov, &targets);
                    let patch = ov.finish();
                    let (applied, trace) = compiled.apply_traced(&patch);
                    black_box(
                        simulate_incremental(compiled, schedule, &applied, &patch, &trace)
                            .unwrap()
                            .sim
                            .makespan_ns,
                    )
                })
            },
        );
        group.finish();

        let find = |kind: &str| {
            c.records()
                .iter()
                .rev()
                .find(|r| r.name.contains(&format!("/{kind}/{tasks} tasks")))
                .map(|r| r.ns_per_iter)
        };
        let (warm, fresh) = (find("warm"), find("fresh"));
        if let (Some(w), Some(f)) = (warm, fresh) {
            println!(
                "eval_warm {tasks} tasks: warm {w:.0} ns vs fresh {f:.0} ns ({:.1}x, cone {cone})",
                f / w.max(1e-9)
            );
            warm_ns_by_size.push((tasks, w));
        }
        let fmt_opt = |v: Option<f64>| {
            v.map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "null".to_string())
        };
        let speedup = match (warm, fresh) {
            (Some(w), Some(f)) if w > 0.0 => Some(((f / w) * 10.0).round() / 10.0),
            _ => None,
        };
        rows.push(format!(
            concat!(
                "    {{\"tasks\": {}, \"cone\": {}, ",
                "\"warm_ns\": {}, \"fresh_ns\": {}, \"speedup\": {}}}"
            ),
            tasks,
            cone,
            fmt_opt(warm),
            fmt_opt(fresh),
            fmt_opt(speedup),
        ));
    }

    // Smoke runs (`--test`) measure one iteration — no assertions, no
    // snapshot. Full runs enforce the acceptance floors.
    if !quick {
        let w1k = warm_ns_by_size
            .iter()
            .find(|(t, _)| *t < 10_000)
            .map(|&(_, w)| w)
            .expect("1k row measured");
        let w100k = warm_ns_by_size
            .iter()
            .find(|(t, _)| *t > 50_000)
            .map(|&(_, w)| w)
            .expect("100k row measured");
        assert!(
            w100k * 20.0 <= FRESH_BASELINE_100K_NS,
            "warm eval at 100k tasks must beat the {FRESH_BASELINE_100K_NS:.0} ns \
             fresh pipeline by >= 20x, measured {w100k:.0} ns"
        );
        assert!(
            w100k <= 5.0 * w1k,
            "fixed-cone warm eval must scale 1k -> 100k by <= 5x \
             (O(cone + touched), not O(n)): {w1k:.0} ns -> {w100k:.0} ns"
        );

        let json = format!(
            concat!(
                "{{\n  \"pipelines\": \"warm = simulate_warm on a persistent ",
                "SimScratch arena, patch pre-emitted; fresh = emit + apply_traced + ",
                "simulate_incremental with per-call clones\",\n",
                "  \"note\": \"16-transfer tail retime at every size (fixed cone); ",
                "full runs assert warm@100k >= 20x over the {} ns pre-arena baseline ",
                "and <= 5x scaling 1k -> 100k\",\n",
                "  \"results\": [\n{}\n  ]\n  }}"
            ),
            FRESH_BASELINE_100K_NS,
            rows.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        match criterion::snapshot::merge_section(path, "eval_warm", &json) {
            Ok(()) => println!("wrote eval_warm section of {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
