//! Criterion bench: exhaustive sweep vs multi-fidelity successive
//! halving over a 10³-scenario what-if grid.
//!
//! One profiled base (ResNet-50, batch 4) swept across the three big
//! parametric families — 256 bandwidth factors, 84 DGC compression
//! ratios × 4 bandwidths × 2 cluster shapes, 64 target batch sizes —
//! plus the singleton optimizations. The exhaustive side evaluates every
//! scenario at full fidelity; the halving side ranks rung 0 with the
//! analytic surrogate / busy-bound estimates, prunes to `keep_fraction`,
//! and evaluates only the survivors exactly.
//!
//! Before timing, the bench asserts the search's per-model top-1 equals
//! the exhaustive sweep's (label and predicted time). Top-10 overlap is
//! reported by scenario key and by predicted value separately: large
//! grids carry exact ties (256 bandwidth factors over a single-GPU base
//! are all no-ops), and exhaustive vs halving may surface different —
//! value-identical — tie-mates.
//!
//! Unless running in `--test` smoke mode, results are snapshotted into
//! the `"sweep_search"` section of `BENCH_sim.json` at the workspace
//! root.

use criterion::Criterion;
use daydream_sweep::{run_search, SearchConfig, SweepEngine, SweepGrid, SweepReport};
use std::collections::HashSet;
use std::hint::black_box;

fn bench_grid() -> SweepGrid {
    let factors: Vec<f64> = (101..=356).map(|i| i as f64 / 100.0).collect();
    let ratios: Vec<f64> = (1..=84).map(|i| i as f64 / 400.0).collect();
    let target_batches: Vec<u64> = (5..=68).collect();
    SweepGrid::builder()
        .models(["ResNet-50"])
        .batches([4])
        .opts([
            "baseline",
            "amp",
            "gist",
            "vdnn",
            "bandwidth",
            "batch-size",
            "ddp",
            "dgc",
        ])
        .bandwidths([5.0, 10.0, 25.0, 50.0])
        .machines([2, 4])
        .bandwidth_factors(factors)
        .dgc_ratios(ratios)
        .target_batches(target_batches)
        .build()
}

fn search_config() -> SearchConfig {
    SearchConfig {
        rungs: 2,
        keep_fraction: 0.05,
        ..SearchConfig::default()
    }
}

/// Top-`k` overlap between two ranked reports, by scenario key and by
/// predicted value (the latter treats exact tie-mates as equal).
fn topk_overlap(a: &SweepReport, b: &SweepReport, k: usize) -> (usize, usize) {
    let keys: HashSet<&str> = a.results.iter().take(k).map(|o| o.key.as_str()).collect();
    let by_key = b
        .results
        .iter()
        .take(k)
        .filter(|o| keys.contains(o.key.as_str()))
        .count();
    let values: Vec<u64> = a.results.iter().take(k).map(|o| o.predicted_ns).collect();
    let mut pool = values;
    let mut by_value = 0;
    for o in b.results.iter().take(k) {
        if let Some(i) = pool.iter().position(|&v| v == o.predicted_ns) {
            pool.swap_remove(i);
            by_value += 1;
        }
    }
    (by_key, by_value)
}

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();
    let grid = bench_grid();
    let cfg = search_config();
    let scenarios = grid.expand().expect("valid grid").len();

    // One engine, profile warmed outside every timed region; the result
    // and patch caches are cleared per iteration so both sides evaluate
    // all their scenarios instead of replaying cache hits.
    let engine = SweepEngine::new(1);
    engine.run(&grid).expect("warmup run");

    // --- Agreement gate (fresh evaluations on both sides). ---
    engine.clear_result_cache();
    let exhaustive = engine.run(&grid).expect("exhaustive sweep");
    engine.clear_result_cache();
    let search = run_search(&engine, &grid, &cfg).expect("halving search");
    for best in &exhaustive.best_per_model {
        let found = search
            .report
            .best_per_model
            .iter()
            .find(|b| b.value == best.value)
            .unwrap_or_else(|| panic!("search lost model {}", best.value));
        assert_eq!(
            (found.label.as_str(), found.predicted_ns),
            (best.label.as_str(), best.predicted_ns),
            "halving top-1 for {} must equal the exhaustive top-1",
            best.value
        );
    }
    let (top10_by_key, top10_by_value) = topk_overlap(&exhaustive, &search.report, 10);

    // --- Timed comparison. ---
    let mut group = c.benchmark_group("sweep_search");
    group.sample_size(10);
    group.bench_function(&format!("exhaustive/{scenarios}scen"), |b| {
        b.iter(|| {
            engine.clear_result_cache();
            black_box(engine.run(&grid).expect("exhaustive sweep"))
        })
    });
    group.bench_function(&format!("halving/{scenarios}scen"), |b| {
        b.iter(|| {
            engine.clear_result_cache();
            black_box(run_search(&engine, &grid, &cfg).expect("halving search"))
        })
    });
    group.finish();

    let find = |kind: &str| {
        c.records()
            .iter()
            .rev()
            .find(|r| r.name.contains(&format!("/{kind}/{scenarios}scen")))
            .map(|r| r.ns_per_iter)
    };
    let (exhaustive_ns, halving_ns) = (find("exhaustive"), find("halving"));
    if let (Some(ex), Some(ha)) = (exhaustive_ns, halving_ns) {
        println!(
            "sweep_search: exhaustive {:.1} ms, halving {:.1} ms ({:.2}x), \
             top-10 overlap {top10_by_key}/10 by key, {top10_by_value}/10 by value",
            ex / 1e6,
            ha / 1e6,
            ex / ha,
        );
    }

    // Smoke runs (`--test`) measure one iteration — not worth snapshotting.
    if !quick {
        let (Some(ex), Some(ha)) = (exhaustive_ns, halving_ns) else {
            eprintln!("missing bench records; skipping snapshot");
            return;
        };
        let rungs: Vec<String> = search
            .rungs
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"rung\": {}, \"fidelity\": \"{}\", \"evaluated\": {}, ",
                        "\"kept\": {}, \"estimate_sims\": {}, \"full_sims\": {}, ",
                        "\"incremental_sims\": {}}}"
                    ),
                    r.rung,
                    r.fidelity,
                    r.evaluated,
                    r.kept,
                    r.estimate_sims,
                    r.full_sims,
                    r.incremental_sims
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n  \"grid\": \"ResNet-50 b4: 256 bandwidth factors, 84 DGC ratios x 4 bw ",
                "x 2 cluster shapes, 64 target batches, plus singletons\",\n",
                "  \"note\": \"halving rung 0 ranks scalable families with the analytic ",
                "surrogate (no patch emitted) and the rest with busy-bound estimates; ",
                "only survivors are evaluated exactly. Top-10 overlap is reported by key ",
                "and by predicted value: exact ties (no-op bandwidth factors) may surface ",
                "different, value-identical tie-mates on the two sides\",\n",
                "  \"scenarios\": {},\n",
                "  \"config\": {{\"rungs\": {}, \"keep_fraction\": {}}},\n",
                "  \"exhaustive_ns_per_iter\": {},\n",
                "  \"halving_ns_per_iter\": {},\n",
                "  \"speedup\": {},\n",
                "  \"top1_per_model_agrees\": true,\n",
                "  \"top10_overlap_by_key\": {},\n",
                "  \"top10_overlap_by_value\": {},\n",
                "  \"rungs\": [\n{}\n  ]\n  }}"
            ),
            scenarios,
            cfg.rungs,
            cfg.keep_fraction,
            ex,
            ha,
            (ex / ha * 100.0).round() / 100.0,
            top10_by_key,
            top10_by_value,
            rungs.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
        match criterion::snapshot::merge_section(path, "sweep_search", &json) {
            Ok(()) => println!("wrote sweep_search section of {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
