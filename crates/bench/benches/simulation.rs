//! Criterion bench: Algorithm 1 simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use daydream_core::{simulate, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{baseline_plan, ExecConfig, Executor};

fn profile_for(name: &str, batch: u64) -> ProfiledGraph {
    let model = zoo::by_name(name).expect("known model");
    let cfg = ExecConfig::pytorch_2080ti().with_batch(batch);
    let ex = Executor::new(&model, &cfg);
    ProfiledGraph::from_trace(&ex.run(&baseline_plan(&model, batch)))
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    for (name, batch) in [("ResNet-50", 8), ("DenseNet-121", 8), ("BERT_Large", 2)] {
        let pg = profile_for(name, batch);
        group.throughput(Throughput::Elements(pg.graph.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("simulate", format!("{name}/{} tasks", pg.graph.len())),
            &pg,
            |b, pg| b.iter(|| simulate(std::hint::black_box(&pg.graph)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
