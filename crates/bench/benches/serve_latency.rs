//! Criterion bench: what the resident daemon's warm profile registry
//! buys over cold-start evaluation.
//!
//! Three measurements around one what-if scenario (ResNet-50 b4,
//! bandwidth x2 — an incremental-path family):
//!
//! 1. *cold* — a fresh engine per iteration: profile build + compile +
//!    baseline schedule capture + evaluation, the cost every one-shot
//!    `daydream predict` pays.
//! 2. *warm* — one resident engine, result cache cleared per iteration:
//!    the incremental cone re-dispatch against the already-captured
//!    baseline schedule, the daemon's `POST /whatif` fast path.
//! 3. *warm over HTTP* — the same warm evaluation through a live
//!    [`daydream_serve::Server`] socket round trip, bounding the
//!    daemon's own protocol overhead.
//!
//! Plus sweep-job throughput: a 12-scenario grid submitted through the
//! daemon's [`daydream_serve::JobQueue`], timed submit-to-done.
//!
//! Unless running in `--test` smoke mode, results land in the `"serve"`
//! section of `BENCH_sim.json` at the workspace root, asserting the
//! warm path is >= 10x faster than cold.

use criterion::Criterion;
use daydream_serve::{http_request, JobQueue, ServeConfig, Server};
use daydream_sweep::{Scenario, SweepEngine, SweepGrid};
use std::hint::black_box;
use std::sync::Arc;

fn whatif_scenario() -> Scenario {
    SweepGrid::builder()
        .models(["ResNet-50"])
        .batches([4])
        .opts(["bandwidth"])
        .bandwidth_factors([2.0])
        .build()
        .expand()
        .expect("valid grid")
        .remove(0)
}

fn job_scenarios() -> Vec<Scenario> {
    SweepGrid::builder()
        .models(["ResNet-50", "BERT_Base"])
        .batches([4])
        .opts(["amp", "gist", "ddp", "bandwidth"])
        .bandwidths([10.0, 25.0])
        .machines([4])
        .build()
        .expand()
        .expect("valid grid")
}

fn main() {
    let mut c = Criterion::default();
    let quick = c.is_quick_mode();
    let scenario = whatif_scenario();

    // --- Path sanity: the warm what-if really is incremental. ---
    let warm_engine = SweepEngine::new(1);
    warm_engine
        .run_scenarios(vec![scenario.clone()])
        .expect("warmup");
    warm_engine.clear_result_cache();
    let outcome = &warm_engine
        .run_scenarios(vec![scenario.clone()])
        .expect("warm eval")[0];
    assert_eq!(
        outcome.sim_path, "incremental",
        "the warm what-if must ride the cone path"
    );

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("whatif_cold/profile_build", |b| {
        b.iter(|| {
            let engine = SweepEngine::new(1);
            black_box(engine.run_scenarios(vec![scenario.clone()]).expect("cold"))
        })
    });
    group.bench_function("whatif_warm/resident_base", |b| {
        b.iter(|| {
            warm_engine.clear_result_cache();
            black_box(
                warm_engine
                    .run_scenarios(vec![scenario.clone()])
                    .expect("warm"),
            )
        })
    });

    // Warm evaluation through the real daemon socket. The first request
    // outside the timed region builds the daemon's own base.
    let server = Server::bind(ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().expect("bound").to_string();
    let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));
    let body = r#"{"model": "ResNet-50", "opt": "bandwidth"}"#;
    let first = http_request(&addr, "POST", "/whatif", body).expect("daemon warmup");
    assert!(first.is_ok(), "warmup what-if failed: {}", first.body);
    group.bench_function("whatif_warm/http_roundtrip", |b| {
        b.iter(|| black_box(http_request(&addr, "POST", "/whatif", body).expect("http whatif")))
    });

    // Sweep-job throughput: a grid through the daemon's queue,
    // submit-to-done (warm bases; fresh evaluations each iteration).
    let engine = Arc::new(SweepEngine::new(2));
    let queue = JobQueue::new(Arc::clone(&engine), None);
    let scenarios = job_scenarios();
    let job_len = scenarios.len();
    engine
        .run_scenarios(scenarios.clone())
        .expect("warm job bases");
    group.bench_function(&format!("sweep_job/{job_len}scen"), |b| {
        b.iter(|| {
            engine.clear_result_cache();
            let id = queue.submit(scenarios.clone());
            loop {
                let snap = queue.snapshot(id).expect("submitted job");
                match snap.state.as_str() {
                    "done" => break,
                    "failed" => panic!("bench job failed: {:?}", snap.error),
                    _ => std::thread::sleep(std::time::Duration::from_micros(200)),
                }
            }
        })
    });
    group.finish();

    http_request(&addr, "POST", "/shutdown", "").expect("daemon shutdown");
    daemon.join().expect("daemon thread");

    let find = |needle: &str| {
        c.records()
            .iter()
            .rev()
            .find(|r| r.name.contains(needle))
            .map(|r| r.ns_per_iter)
    };
    let cold = find("whatif_cold/profile_build");
    let warm = find("whatif_warm/resident_base");
    let http = find("whatif_warm/http_roundtrip");
    let job = find("sweep_job/");
    if let (Some(cold), Some(warm), Some(http), Some(job)) = (cold, warm, http, job) {
        let speedup = cold / warm;
        let throughput = job_len as f64 / (job / 1e9);
        println!(
            "serve: cold what-if {:.2} ms, warm {:.1} us ({speedup:.0}x), \
             warm over HTTP {:.1} us, sweep job {job_len} scen in {:.2} ms \
             ({throughput:.0} scen/s)",
            cold / 1e6,
            warm / 1e3,
            http / 1e3,
            job / 1e6,
        );
        // Smoke runs (`--test`) measure one iteration — too noisy to
        // gate or snapshot.
        if !quick {
            assert!(
                speedup >= 10.0,
                "warm registry must answer what-ifs >= 10x faster than a \
                 cold profile build (got {speedup:.1}x)"
            );
            let json = format!(
                concat!(
                    "{{\n  \"scenario\": \"ResNet-50 b4 bandwidth[x2]\",\n",
                    "  \"note\": \"cold = fresh engine per iteration (profile build + compile + ",
                    "baseline capture + eval); warm = resident engine, result cache cleared, ",
                    "incremental cone re-dispatch only; http = same warm eval through a live ",
                    "daemon socket; sweep_job = submit-to-done through the job queue with warm ",
                    "bases\",\n",
                    "  \"whatif_cold_ns_per_iter\": {},\n",
                    "  \"whatif_warm_ns_per_iter\": {},\n",
                    "  \"warm_speedup\": {},\n",
                    "  \"whatif_warm_http_ns_per_iter\": {},\n",
                    "  \"sweep_job_scenarios\": {},\n",
                    "  \"sweep_job_ns_per_iter\": {},\n",
                    "  \"sweep_job_scen_per_s\": {}\n  }}"
                ),
                cold,
                warm,
                (speedup * 10.0).round() / 10.0,
                http,
                job_len,
                job,
                throughput.round(),
            );
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
            match criterion::snapshot::merge_section(path, "serve", &json) {
                Ok(()) => println!("wrote serve section of {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
    } else {
        eprintln!("missing bench records; skipping snapshot");
    }
}
