//! Criterion bench: sweep-engine throughput scaling with thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use daydream_sweep::{SweepEngine, SweepGrid};

fn bench_grid() -> SweepGrid {
    SweepGrid::builder()
        .models(["ResNet-50", "BERT_Base"])
        .batches([4, 8])
        .opts(["amp", "fused-adam", "gist", "ddp", "dgc", "bandwidth"])
        .bandwidths([10.0, 25.0])
        .machines([4])
        .dgc_ratios([0.01])
        .build()
}

fn bench_sweep(c: &mut Criterion) {
    let grid = bench_grid();
    let scenarios = grid.expand().expect("valid grid").len() as u64;

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        // One engine per thread count, profiles warmed outside the timed
        // region; the result cache is cleared per iteration so every
        // iteration evaluates all scenarios (not cache lookups).
        let engine = SweepEngine::new(threads);
        engine.run(&grid).expect("warmup run");
        group.throughput(Throughput::Elements(scenarios));
        group.bench_with_input(
            BenchmarkId::new("scenarios", format!("{threads}threads/{scenarios}scen")),
            &engine,
            |b, engine| {
                b.iter(|| {
                    engine.clear_result_cache();
                    std::hint::black_box(engine.run(&grid).expect("bench grid"))
                })
            },
        );
    }
    group.finish();

    // Cache-hit path: the same grid answered entirely from the cache.
    let engine = SweepEngine::new(8);
    engine.run(&grid).expect("fill cache");
    let mut group = c.benchmark_group("sweep_cached");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scenarios));
    group.bench_function("full_cache_hit", |b| {
        b.iter(|| std::hint::black_box(engine.run(&grid).expect("cached grid")))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
