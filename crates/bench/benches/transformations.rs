//! Criterion bench: what-if transformation + simulation round trips —
//! the cost of answering one what-if question from an existing profile.

use criterion::{criterion_group, criterion_main, Criterion};
use daydream_comm::ClusterConfig;
use daydream_core::{predict, whatif, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{baseline_plan, ExecConfig, Executor};

fn profile_for(name: &str, batch: u64) -> ProfiledGraph {
    let model = zoo::by_name(name).expect("known model");
    let cfg = ExecConfig::pytorch_2080ti().with_batch(batch);
    let ex = Executor::new(&model, &cfg);
    ProfiledGraph::from_trace(&ex.run(&baseline_plan(&model, batch)))
}

fn bench_whatifs(c: &mut Criterion) {
    let mut group = c.benchmark_group("whatif");
    group.sample_size(15);
    let resnet = profile_for("ResNet-50", 8);
    let bert = profile_for("BERT_Base", 2);
    let cluster = ClusterConfig::new(4, 2, 10.0);

    group.bench_function("amp/ResNet-50", |b| {
        b.iter(|| predict(std::hint::black_box(&resnet), whatif::what_if_amp))
    });
    group.bench_function("fused_adam/BERT_Base", |b| {
        b.iter(|| {
            predict(std::hint::black_box(&bert), |g| {
                whatif::what_if_fused_adam(g);
            })
        })
    });
    group.bench_function("distributed/BERT_Base", |b| {
        b.iter(|| {
            predict(std::hint::black_box(&bert), |g| {
                whatif::what_if_distributed(g, &cluster);
            })
        })
    });
    group.bench_function("p3_unrolled/ResNet-50", |b| {
        b.iter(|| {
            whatif::what_if_p3(
                std::hint::black_box(&resnet),
                &whatif::P3Config::p3(ClusterConfig::new(4, 1, 4.0)),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_whatifs);
criterion_main!(benches);
