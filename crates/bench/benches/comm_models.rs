//! Criterion bench: communication cost-model evaluation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use daydream_comm::{
    blueconnect_allreduce_ns, ring_allreduce_ns, BlueConnectStage, ClusterConfig, NcclExecution,
    NcclModel, PsModel,
};

fn bench_comm(c: &mut Criterion) {
    let cluster = ClusterConfig::new(4, 2, 10.0);
    let nccl = NcclModel::new(cluster);
    let ps = PsModel::new(ClusterConfig::new(4, 1, 10.0));
    let stages = [
        BlueConnectStage {
            group: 2,
            bytes_per_ns: 12.0,
            latency_ns: 2_000.0,
        },
        BlueConnectStage {
            group: 4,
            bytes_per_ns: 1.25,
            latency_ns: 25_000.0,
        },
    ];

    c.bench_function("comm/ring_allreduce", |b| {
        b.iter(|| ring_allreduce_ns(std::hint::black_box(&cluster), 25 << 20))
    });
    c.bench_function("comm/blueconnect", |b| {
        b.iter(|| blueconnect_allreduce_ns(std::hint::black_box(&stages), 25 << 20))
    });
    c.bench_function("comm/nccl_contended_call", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            nccl.call_ns(
                25 << 20,
                NcclExecution::Contended,
                7,
                std::hint::black_box(i),
            )
        })
    });
    c.bench_function("comm/ps_measured_message", |b| {
        b.iter(|| ps.measured_ns(std::hint::black_box(4 << 20)))
    });
}

criterion_group!(benches, bench_comm);
criterion_main!(benches);
