//! Criterion bench: dependency-graph construction (paper Phase 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daydream_core::{build_graph, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{baseline_plan, ExecConfig, Executor};
use daydream_trace::Trace;

fn trace_for(name: &str, batch: u64) -> Trace {
    let model = zoo::by_name(name).expect("known model");
    let cfg = ExecConfig::pytorch_2080ti().with_batch(batch);
    let ex = Executor::new(&model, &cfg);
    ex.run(&baseline_plan(&model, batch))
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(20);
    for (name, batch) in [("ResNet-50", 8), ("GNMT", 8), ("BERT_Large", 2)] {
        let trace = trace_for(name, batch);
        group.bench_with_input(
            BenchmarkId::new(
                "build_graph",
                format!("{name}/{} tasks", trace.activities.len()),
            ),
            &trace,
            |b, t| b.iter(|| build_graph(std::hint::black_box(t))),
        );
        group.bench_with_input(BenchmarkId::new("full_profile", name), &trace, |b, t| {
            b.iter(|| ProfiledGraph::from_trace(std::hint::black_box(t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
