//! Synthetic communication-bound iteration graphs shared by the
//! `sim_scale` / `sim_incremental` / `eval_warm` benches (and the
//! allocation-regression tests): a CPU launch chain, kernels
//! round-robined over four streams, one gradient transfer per kernel
//! contending for a collective channel.

use daydream_core::{
    CommChannel, CommPrimitive, DepKind, DependencyGraph, ExecThread, GraphEdit, Task, TaskId,
    TaskKind,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};

/// GPU streams in the synthetic graph.
pub const STREAMS: u32 = 4;

/// Builds the `sim_scale` graph shape with roughly `n` tasks (exactly
/// `3 * (n / 3)`).
pub fn synthetic_graph(n: usize) -> DependencyGraph {
    let steps = n / 3;
    let mut g = DependencyGraph::new();
    g.reserve(steps * 3);
    let cpu = ExecThread::Cpu(CpuThreadId(0));
    let chan = ExecThread::Comm(CommChannel::Collective);
    let mut prev_launch: Option<TaskId> = None;
    let mut prev_kernel = vec![None; STREAMS as usize];
    for i in 0..steps {
        let stream = (i as u32) % STREAMS;
        let launch = g.add_task(Task::new("cudaLaunchKernel", TaskKind::CpuWork, cpu, 4_000));
        let kernel = g.add_task(Task::new(
            "kernel",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(stream)),
            30_000,
        ));
        let comm = g.add_task(Task::new(
            "allreduce_slice",
            TaskKind::Communication {
                prim: CommPrimitive::AllReduce,
                bytes: 1 << 20,
            },
            chan,
            45_000,
        ));
        if let Some(p) = prev_launch {
            g.add_dep(p, launch, DepKind::CpuSeq);
        }
        if let Some(p) = prev_kernel[stream as usize] {
            g.add_dep(p, kernel, DepKind::GpuSeq);
        }
        g.add_dep(launch, kernel, DepKind::Correlation);
        g.add_dep(kernel, comm, DepKind::Comm);
        prev_launch = Some(launch);
        prev_kernel[stream as usize] = Some(kernel);
    }
    g
}

/// Small-cone retime: halve the durations of the given tail transfers.
/// The target list is selected once per base, outside any measurement —
/// a tail-refinement planner (DGC ratio sweep, bandwidth what-if over
/// the last buckets) knows its targets and does not rescan the graph
/// per scenario.
pub fn tail_retime<G: GraphEdit>(g: &mut G, targets: &[TaskId]) {
    for &id in targets {
        let shrunk = g.task(id).duration_ns / 2;
        g.set_duration(id, shrunk);
    }
}

/// Small-cone structural edit: splice a compression kernel between the
/// producing kernel and each target transfer (as Gist/DGC do), plus a
/// 100x shrink of the transfer itself.
pub fn tail_structural<G: GraphEdit>(g: &mut G, targets: &[TaskId]) {
    for (i, &id) in targets.iter().enumerate() {
        let producer = g.predecessors(id).first().map(|&(p, _)| p);
        let gpu = ExecThread::Gpu(DeviceId(0), StreamId((i as u32) % STREAMS));
        let k = g.add_task(Task::new("compress", TaskKind::GpuKernel, gpu, 9_000));
        if let Some(p) = producer {
            g.remove_dep(p, id);
            g.add_dep(p, k, DepKind::GpuSeq);
        }
        g.add_dep(k, id, DepKind::Comm);
        let shrunk = g.task(id).duration_ns / 100;
        g.set_duration(id, shrunk);
    }
}
