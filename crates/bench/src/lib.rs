//! Benchmark harness for the Daydream reproduction.
//!
//! [`exhibits`] regenerates every table and figure of the paper's
//! evaluation (§6); the `figures` binary prints them and exports CSV under
//! `target/figures/`. Criterion microbenches for the core machinery live in
//! `benches/`.
//!
//! # Examples
//!
//! ```no_run
//! // Regenerate the AMP figure (Fig. 5) programmatically.
//! let table = daydream_bench::exhibits::fig5();
//! println!("{table}");
//! ```

pub mod exhibits;
pub mod synth;
pub mod util;

pub use util::{assert_no_allocs, profile_for, thread_allocs, Table};
