//! Calibration dump: baseline iteration times and runtime breakdowns for
//! every model, compared against the scale of the paper's figures.
//!
//! Run with `cargo run -p daydream-bench --bin calibrate`.

use daydream_models::zoo;
use daydream_runtime::{baseline_plan, ExecConfig, Executor};
use daydream_trace::runtime_breakdown;

fn main() {
    println!(
        "{:<14} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "model", "batch", "iter(ms)", "cpu-only", "gpu-only", "overlap", "kernels"
    );
    for model in zoo::all_models() {
        let cfg = ExecConfig::pytorch_2080ti();
        let ex = Executor::new(&model, &cfg);
        let plan = baseline_plan(&model, ex.batch());
        let trace = ex.run(&plan);
        let b = runtime_breakdown(&trace);
        println!(
            "{:<14} {:>6} {:>10.1} {:>8.0}% {:>8.0}% {:>8.0}% {:>8}",
            model.name,
            ex.batch(),
            trace.meta.iteration_ms(),
            b.cpu_only_frac() * 100.0,
            b.gpu_only_frac() * 100.0,
            b.overlap_frac() * 100.0,
            plan.kernel_count(),
        );
        // Weight-update share (paper §6.3: ~30% BERT-base, ~45% BERT-large).
        let wu_markers: (u64, u64) = trace
            .markers
            .iter()
            .filter(|m| m.phase == daydream_trace::Phase::WeightUpdate)
            .fold((u64::MAX, 0), |(s, e), m| {
                (s.min(m.start_ns), e.max(m.end_ns))
            });
        if wu_markers.0 != u64::MAX {
            let wu_ms = (wu_markers.1 - wu_markers.0) as f64 / 1e6;
            println!(
                "{:<14} {:>6} wu_phase = {:>6.1} ms ({:.0}% of iteration)",
                "",
                "",
                wu_ms,
                wu_ms / trace.meta.iteration_ms() * 100.0
            );
        }
    }
}
