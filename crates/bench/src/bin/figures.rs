//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p daydream-bench --bin figures -- [exhibit...]
//! ```
//!
//! Exhibits: `table1 table2 fig1 fig5 fig6 fig7 sec64 fig8 fig9 fig9b fig10
//! all` (default: `all`). Each exhibit prints an aligned table and writes
//! `target/figures/<exhibit>.csv`.

use daydream_bench::exhibits;
use daydream_bench::Table;

fn run(name: &str) -> Option<Table> {
    let t = match name {
        "table1" => exhibits::table1(),
        "table2" => exhibits::table2(),
        "fig1" => exhibits::fig1(),
        "fig5" => exhibits::fig5(),
        "fig6" => exhibits::fig6(),
        "fig7" => exhibits::fig7(),
        "sec64" => exhibits::sec64(),
        "fig8" => exhibits::fig8(),
        "fig9" => exhibits::fig9(),
        "fig9b" => exhibits::sync_sweep(),
        "fig10" => exhibits::fig10(),
        "ablation" => exhibits::ablation(),
        _ => return None,
    };
    Some(t)
}

const ALL: [&str; 12] = [
    "table1", "table2", "fig1", "fig5", "fig6", "fig7", "sec64", "fig8", "fig9", "fig9b", "fig10",
    "ablation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for name in wanted {
        match run(name) {
            Some(t) => {
                println!("{t}");
                match t.write_csv(name) {
                    Ok(path) => println!("  csv: {}", path.display()),
                    Err(e) => eprintln!("  csv export failed: {e}"),
                }
            }
            None => {
                eprintln!("unknown exhibit '{name}'; available: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
}
