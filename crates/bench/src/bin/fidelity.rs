//! Fidelity diagnostic: simulating an unmodified dependency graph must
//! reproduce the measured baseline iteration for every model in the zoo.
//!
//! Run with `cargo run --release -p daydream-bench --bin fidelity`.

use daydream_core::{simulate, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{baseline_plan, ExecConfig, Executor};

fn main() {
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "model", "measured", "simulated", "error", "tasks", "edges"
    );
    let mut worst = 0.0f64;
    for model in zoo::all_models() {
        let cfg = ExecConfig::pytorch_2080ti();
        let ex = Executor::new(&model, &cfg);
        let trace = ex.run(&baseline_plan(&model, ex.batch()));
        let pg = ProfiledGraph::from_trace(&trace);
        let sim = simulate(&pg.graph).expect("profiled graph is a DAG");
        let measured = trace.meta.iteration_ms();
        let err = (sim.makespan_ms() - measured).abs() / measured;
        worst = worst.max(err);
        println!(
            "{:<14} {:>10.2}ms {:>10.2}ms {:>7.3}% {:>8} {:>8}",
            model.name,
            measured,
            sim.makespan_ms(),
            err * 100.0,
            pg.graph.len(),
            pg.graph.edge_count(),
        );
    }
    println!("\nworst replay error: {:.3}%", worst * 100.0);
    assert!(worst < 0.01, "replay fidelity must stay under 1%");
}
