//! Shared harness utilities: result tables, CSV export, profile
//! caching, and (debug builds only) a heap-allocation counter that lets
//! tier-1 tests pin the warm-evaluation hot path as allocation-free.

use daydream_core::ProfiledGraph;
use daydream_models::{zoo, Model};
use daydream_runtime::{ground_truth, ExecConfig};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// A [`System`](std::alloc::System) wrapper that counts allocations on
/// the current thread. Installed as the global allocator only in debug
/// builds (`cargo test`), so release benchmarks measure the stock
/// allocator; [`thread_allocs`] reports 0 there and
/// [`assert_no_allocs`] degrades to a plain call.
#[cfg(debug_assertions)]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub struct CountingAlloc;

    // SAFETY: delegates verbatim to `System`; the counter is a plain
    // thread-local `Cell` bump, which cannot itself allocate or unwind.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.with(|c| c.set(c.get() + 1));
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTER: CountingAlloc = CountingAlloc;

    pub fn thread_allocs() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

/// Heap allocations (including reallocations) made by the current
/// thread so far; always 0 in release builds, where the counting
/// allocator is not installed.
pub fn thread_allocs() -> u64 {
    #[cfg(debug_assertions)]
    {
        counting_alloc::thread_allocs()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Runs `f` and panics (debug builds only) if it heap-allocated —
/// how tier-1 tests pin the warm-evaluation hot loop.
pub fn assert_no_allocs<R>(what: &str, f: impl FnOnce() -> R) -> R {
    let before = thread_allocs();
    let r = f();
    let during = thread_allocs() - before;
    #[cfg(debug_assertions)]
    assert_eq!(during, 0, "{what} made {during} heap allocations");
    #[cfg(not(debug_assertions))]
    let _ = (what, during);
    r
}

/// A titled result table with aligned text rendering and CSV export.
#[derive(Debug, Clone)]
pub struct Table {
    /// Exhibit title (e.g. `"Figure 5: AMP"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Writes the table as CSV under `target/figures/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/figures");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a millisecond value.
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

type ProfileKey = (String, Option<u64>, bool);

static CACHE: OnceLock<Mutex<HashMap<ProfileKey, (ProfiledGraph, Model)>>> = OnceLock::new();

/// Builds (and caches) the single-GPU baseline profile for a model name.
///
/// `ps_worker` drops the weight-update phase and uses the MXNet/P4000
/// configuration — the paper's §6.6 parameter-server setting.
pub fn profile_for(name: &str, batch: Option<u64>, ps_worker: bool) -> (ProfiledGraph, Model) {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (name.to_string(), batch, ps_worker);
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return hit.clone();
    }
    let model = zoo::by_name(name).unwrap_or_else(|| panic!("unknown model {name}"));
    let pg = if ps_worker {
        let cfg = match batch {
            Some(b) => ExecConfig::mxnet_p4000().with_batch(b),
            None => ExecConfig::mxnet_p4000(),
        };
        let ex = daydream_runtime::Executor::new(&model, &cfg);
        let mut plan = daydream_runtime::baseline_plan(&model, ex.batch());
        plan.wu.clear();
        ProfiledGraph::from_trace(&ex.run(&plan))
    } else {
        let cfg = match batch {
            Some(b) => ExecConfig::pytorch_2080ti().with_batch(b),
            None => ExecConfig::pytorch_2080ti(),
        };
        ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg))
    };
    cache
        .lock()
        .unwrap()
        .insert(key.clone(), (pg.clone(), model.clone()));
    (pg, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_exports() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("bee"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(12.345), "12.3");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn profile_cache_round_trip() {
        let (a, _) = profile_for("ResNet-50", Some(4), false);
        let (b, _) = profile_for("ResNet-50", Some(4), false);
        assert_eq!(a.meta.model, "ResNet-50");
        assert_eq!(a.graph.len(), b.graph.len());
    }
}
