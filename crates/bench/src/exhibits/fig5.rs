//! Figure 5: AMP — baseline vs ground truth vs Daydream's prediction.

use crate::util::{ms, pct, profile_for, Table};
use daydream_core::{predict, whatif};
use daydream_runtime::{ground_truth, ExecConfig};

/// Models evaluated in Fig. 5, in the paper's order.
pub const FIG5_MODELS: [&str; 4] = ["BERT_Base", "BERT_Large", "Seq2Seq", "ResNet-50"];

/// Regenerates Fig. 5.
pub fn fig5() -> Table {
    let mut t = Table::new(
        "Figure 5: Automatic Mixed Precision",
        &[
            "model",
            "baseline (ms)",
            "ground truth (ms)",
            "prediction (ms)",
            "speedup",
            "error",
        ],
    );
    for name in FIG5_MODELS {
        let (pg, model) = profile_for(name, None, false);
        let cfg = ExecConfig::pytorch_2080ti();
        let pred = predict(&pg, whatif::what_if_amp);
        let gt = ground_truth::run_amp(&model, &cfg).meta.iteration_ns();
        t.row(vec![
            name.into(),
            ms(pred.baseline_ms()),
            ms(gt as f64 / 1e6),
            ms(pred.predicted_ms()),
            format!("{:.2}x", pred.speedup()),
            pct(pred.error_vs(gt)),
        ]);
    }
    t.note("paper: all prediction errors below 13%; speedups well under per-kernel 2-3x");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_errors_within_paper_bound() {
        let t = super::fig5();
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            let err: f64 = r[5].trim_end_matches('%').parse().unwrap();
            assert!(err < 13.0, "{} AMP error {err}% exceeds 13%", r[0]);
        }
    }
}
