//! Figure 10: P3 under a network-bandwidth sweep (MXNet parameter server,
//! four P4000 machines).

use crate::util::{ms, pct, profile_for, Table};
use daydream_comm::ClusterConfig;
use daydream_core::whatif::{what_if_p3, P3Config};
use daydream_runtime::{run_parameter_server, ExecConfig, PsTrainingConfig};

/// Bandwidth sweeps of Fig. 10 in Gbps (a: ResNet-50, b: VGG-19).
pub fn fig10_bandwidths(model: &str) -> Vec<f64> {
    match model {
        "ResNet-50" => vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0],
        _ => vec![1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0],
    }
}

/// One Fig. 10 data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Point {
    /// Network bandwidth, Gbps.
    pub gbps: f64,
    /// Measured MXNet baseline (no P3), ms.
    pub baseline_ms: f64,
    /// Measured P3 ground truth, ms.
    pub ground_truth_ms: f64,
    /// Daydream's P3 prediction, ms.
    pub prediction_ms: f64,
}

impl Fig10Point {
    /// Relative prediction error vs the P3 ground truth.
    pub fn error(&self) -> f64 {
        (self.prediction_ms - self.ground_truth_ms).abs() / self.ground_truth_ms
    }
}

/// Computes one panel of Fig. 10.
pub fn fig10_points(model_name: &str, batch: u64) -> Vec<Fig10Point> {
    let (pg, model) = profile_for(model_name, Some(batch), true);
    let cfg = ExecConfig::mxnet_p4000().with_batch(batch);
    fig10_bandwidths(model_name)
        .into_iter()
        .map(|gbps| {
            let cluster = ClusterConfig::new(4, 1, gbps);
            let baseline =
                run_parameter_server(&model, &cfg, PsTrainingConfig::baseline(cluster), 3);
            let gt = run_parameter_server(&model, &cfg, PsTrainingConfig::p3(cluster), 3);
            let pred = what_if_p3(&pg, &P3Config::p3(cluster));
            Fig10Point {
                gbps,
                baseline_ms: baseline.iteration_ms(),
                ground_truth_ms: gt.iteration_ms(),
                prediction_ms: pred.iteration_ms(),
            }
        })
        .collect()
}

/// Regenerates Fig. 10 (both panels).
pub fn fig10() -> Table {
    let mut t = Table::new(
        "Figure 10: P3 under varying network bandwidth (4x P4000, MXNet PS)",
        &[
            "model",
            "bandwidth",
            "baseline (ms)",
            "P3 truth (ms)",
            "P3 prediction (ms)",
            "error",
        ],
    );
    let mut worst: f64 = 0.0;
    for (name, batch) in [("ResNet-50", 16), ("VGG-19", 8)] {
        for p in fig10_points(name, batch) {
            worst = worst.max(p.error());
            t.row(vec![
                name.into(),
                format!("{} Gbps", p.gbps),
                ms(p.baseline_ms),
                ms(p.ground_truth_ms),
                ms(p.prediction_ms),
                pct(p.error()),
            ]);
        }
    }
    t.note(format!("worst error {} (paper: at most 16.2%)", pct(worst)));
    t.note("prediction undershoots ground truth at higher bandwidths: wire-only");
    t.note("modeling misses server-side engine overheads (Sec. 6.6)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_panel_trends() {
        let points = fig10_points("ResNet-50", 16);
        // Iteration time decreases (weakly) with bandwidth for all series.
        for w in points.windows(2) {
            assert!(w[1].baseline_ms <= w[0].baseline_ms * 1.02);
            assert!(w[1].ground_truth_ms <= w[0].ground_truth_ms * 1.02);
            assert!(w[1].prediction_ms <= w[0].prediction_ms * 1.02);
        }
        // P3 helps at the lowest bandwidth.
        assert!(points[0].ground_truth_ms < points[0].baseline_ms);
        // Errors within the paper's bound.
        for p in &points {
            assert!(
                p.error() < 0.162,
                "error {:.3} at {} Gbps",
                p.error(),
                p.gbps
            );
        }
    }
}
