//! Ablations of the design choices DESIGN.md calls out: DDP bucket size,
//! P3 slice size, and DGC compression ratio.

use crate::util::{ms, profile_for, Table};
use daydream_comm::ClusterConfig;
use daydream_core::predict;
use daydream_core::whatif::{what_if_dgc, what_if_distributed, what_if_p3, DgcConfig, P3Config};
use daydream_runtime::ddp_buckets;

/// DDP gradient-bucket capacity sweep (PyTorch defaults to 25 MB).
pub fn bucket_sweep() -> Table {
    let (pg, model) = profile_for("ResNet-50", None, false);
    let cluster = ClusterConfig::new(4, 1, 10.0);
    let mut t = Table::new(
        "Ablation: DDP bucket capacity (ResNet-50, 4x1 @ 10 Gbps)",
        &["bucket cap", "buckets", "predicted iter (ms)"],
    );
    for cap_mb in [1u64, 5, 25, 100, 4096] {
        let buckets = ddp_buckets(&model, cap_mb << 20);
        let mut pg2 = pg.clone();
        pg2.meta.buckets = buckets.clone();
        let pred = predict(&pg2, |g| {
            what_if_distributed(g, &cluster);
        });
        let label = if cap_mb >= 4096 {
            "one call".to_string()
        } else {
            format!("{cap_mb} MB")
        };
        t.row(vec![
            label,
            buckets.len().to_string(),
            ms(pred.predicted_ms()),
        ]);
    }
    t.note("small buckets pay per-call latency; one giant call loses overlap");
    t.note("with backward — 25 MB (the PyTorch default) sits in the flat middle");
    t
}

/// P3 slice-size sweep (the P3 paper defaults to fine slices).
pub fn slice_sweep() -> Table {
    let (pg, _) = profile_for("ResNet-50", Some(16), true);
    let cluster = ClusterConfig::new(4, 1, 2.0);
    let mut t = Table::new(
        "Ablation: P3 slice size (ResNet-50, 4x1 @ 2 Gbps)",
        &["slice", "predicted iter (ms)"],
    );
    let baseline = what_if_p3(&pg, &P3Config::baseline(cluster));
    t.row(vec![
        "whole tensors (no P3)".into(),
        ms(baseline.iteration_ms()),
    ]);
    for kb in [256u64, 1024, 4096, 16384] {
        let cfg = P3Config {
            cluster,
            slice_bytes: Some(kb << 10),
            iterations: 3,
        };
        let pred = what_if_p3(&pg, &cfg);
        t.row(vec![format!("{} KB", kb), ms(pred.iteration_ms())]);
    }
    t.note("slicing + priority lets input-side parameters overtake the backlog;");
    t.note("beyond a point smaller slices only add per-message latency");
    t
}

/// DGC compression-ratio sweep.
pub fn dgc_sweep() -> Table {
    let (pg, _) = profile_for("VGG-19", Some(16), false);
    let cluster = ClusterConfig::new(4, 1, 5.0);
    let mut t = Table::new(
        "Ablation: DGC compression ratio (VGG-19, 4x1 @ 5 Gbps)",
        &["ratio", "predicted iter (ms)"],
    );
    let plain = predict(&pg, |g| {
        what_if_distributed(g, &cluster);
    });
    t.row(vec![
        "1.0 (no compression)".into(),
        ms(plain.predicted_ms()),
    ]);
    for ratio in [0.1, 0.01, 0.001] {
        let pred = predict(&pg, |g| {
            let ars = what_if_distributed(g, &cluster);
            what_if_dgc(
                g,
                &ars,
                &DgcConfig {
                    compression_ratio: ratio,
                    ..DgcConfig::default()
                },
            );
        });
        t.row(vec![format!("{ratio}"), ms(pred.predicted_ms())]);
    }
    t.note("returns diminish once compression kernels outweigh the saved wire time");
    t
}

/// All three ablations merged into one exhibit table stream.
pub fn ablation() -> Table {
    let mut t = bucket_sweep();
    let slice = slice_sweep();
    let dgc = dgc_sweep();
    // Chain the extra tables as notes so one CSV captures the headline sweep
    // and the text output still shows all three.
    t.note(String::new());
    t.note(slice.to_string());
    t.note(dgc.to_string());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_sweep_shape() {
        let t = bucket_sweep();
        assert_eq!(t.rows.len(), 5);
        let times: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // The PyTorch default (25 MB) must not be the worst choice.
        let worst = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            times[2] < worst,
            "25 MB should beat the worst extreme: {times:?}"
        );
    }

    #[test]
    fn dgc_sweep_monotone_until_overhead() {
        let t = dgc_sweep();
        let times: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Any compression beats none at 5 Gbps for VGG-19.
        assert!(times[1] < times[0]);
    }
}
