//! Figure 8: distributed-training predictions from single-GPU profiles,
//! across machine layouts and network bandwidths.

use crate::util::{ms, pct, profile_for, Table};
use daydream_comm::{ClusterConfig, NcclExecution};
use daydream_core::{predict, whatif};
use daydream_runtime::{baseline_plan, run_distributed, ExecConfig};

/// Models of Fig. 8a-d.
pub const FIG8_MODELS: [&str; 4] = ["ResNet-50", "GNMT", "BERT_Base", "BERT_Large"];
/// Bandwidths of Fig. 8 in Gbps.
pub const FIG8_BANDWIDTHS: [f64; 3] = [10.0, 20.0, 40.0];

/// One Fig. 8 data point.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Model name.
    pub model: String,
    /// Cluster configuration.
    pub cluster: ClusterConfig,
    /// Measured (synced ground truth) iteration, ms.
    pub ground_truth_ms: f64,
    /// Predicted iteration, ms.
    pub prediction_ms: f64,
}

impl Fig8Point {
    /// Relative prediction error.
    pub fn error(&self) -> f64 {
        (self.prediction_ms - self.ground_truth_ms).abs() / self.ground_truth_ms
    }
}

/// Computes all Fig. 8 points for one model.
pub fn fig8_points(model_name: &str) -> Vec<Fig8Point> {
    let (pg, model) = profile_for(model_name, None, false);
    let cfg = ExecConfig::pytorch_2080ti();
    let plan = baseline_plan(&model, model.default_batch);
    let mut out = Vec::new();
    for bw in FIG8_BANDWIDTHS {
        for cluster in ClusterConfig::fig8_layouts(bw) {
            let pred = predict(&pg, |g| {
                whatif::what_if_distributed(g, &cluster);
            });
            // Fig. 8 compares against the baseline with a synchronization
            // before each allReduce (the paper's caption).
            let gt = run_distributed(&model, &cfg, cluster, NcclExecution::Synced, &plan);
            out.push(Fig8Point {
                model: model_name.to_string(),
                cluster,
                ground_truth_ms: gt.iteration_ms(),
                prediction_ms: pred.predicted_ms(),
            });
        }
    }
    out
}

/// Regenerates Fig. 8 (all four panels).
pub fn fig8() -> Table {
    let mut t = Table::new(
        "Figure 8: distributed training predictions (vs synced ground truth)",
        &[
            "model",
            "config",
            "ground truth (ms)",
            "prediction (ms)",
            "error",
        ],
    );
    let mut worst: f64 = 0.0;
    let results: Vec<Vec<Fig8Point>> = std::thread::scope(|s| {
        let handles: Vec<_> = FIG8_MODELS
            .iter()
            .map(|m| s.spawn(move || fig8_points(m)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig8 worker"))
            .collect()
    });
    for points in results {
        for p in points {
            worst = worst.max(p.error());
            t.row(vec![
                p.model.clone(),
                p.cluster.to_string(),
                ms(p.ground_truth_ms),
                ms(p.prediction_ms),
                pct(p.error()),
            ]);
        }
    }
    t.note(format!(
        "worst-case error {} (paper: mostly <10%, few exceptions)",
        pct(worst)
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_panel_errors_and_scaling() {
        let points = fig8_points("ResNet-50");
        assert_eq!(points.len(), 21);
        let mut over_ten = 0;
        for p in &points {
            if p.error() > 0.10 {
                over_ten += 1;
            }
            assert!(
                p.error() < 0.15,
                "{} error {:.3} too high",
                p.cluster,
                p.error()
            );
        }
        // Paper: at most 10% error with a few exceptions.
        assert!(over_ten <= 4, "{over_ten} of 21 configs exceed 10% error");
        // Iteration time grows with worker count at 10 Gbps.
        let t1 = points
            .iter()
            .find(|p| p.cluster.to_string() == "1x1@10Gbps")
            .unwrap();
        let t8 = points
            .iter()
            .find(|p| p.cluster.to_string() == "4x2@10Gbps")
            .unwrap();
        assert!(t8.prediction_ms > t1.prediction_ms);
    }
}
