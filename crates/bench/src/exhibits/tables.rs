//! Tables 1 and 2 of the paper.

use crate::util::Table;
use daydream_models::zoo;

/// Table 1: representative DNN training optimizations and how this
/// implementation models each one.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: representative optimizations for DNN training",
        &[
            "goal",
            "strategy",
            "technique",
            "daydream model",
            "evaluated",
        ],
    );
    let rows: [(&str, &str, &str, &str, &str); 10] = [
        (
            "single-worker utilization",
            "reducing precision",
            "Automatic Mixed Precision (Micikevicius et al.)",
            "whatif::what_if_amp",
            "Fig. 5/6",
        ),
        (
            "single-worker utilization",
            "fusing kernels/layers",
            "FusedAdam (Apex)",
            "whatif::what_if_fused_adam",
            "Fig. 7",
        ),
        (
            "single-worker utilization",
            "improving low-level kernels",
            "Restructuring Batchnorm (Jung et al.)",
            "whatif::what_if_reconstruct_bn",
            "Sec. 6.4",
        ),
        (
            "single-worker utilization",
            "fusing kernels/layers",
            "MetaFlow (Jia et al.)",
            "whatif::what_if_metaflow",
            "modeled (Sec. 5.2)",
        ),
        (
            "single-worker memory",
            "reducing memory footprint",
            "vDNN (Rhu et al.)",
            "whatif::what_if_vdnn",
            "modeled (Sec. 5.2)",
        ),
        (
            "single-worker memory",
            "reducing memory footprint",
            "Gist (Jain et al.)",
            "whatif::what_if_gist",
            "modeled (Sec. 5.2)",
        ),
        (
            "distributed scaling",
            "data parallelism",
            "PyTorch DDP + NCCL",
            "whatif::what_if_distributed",
            "Fig. 8/9",
        ),
        (
            "distributed communication",
            "overlap / scheduling",
            "P3 (Jayarajan et al.)",
            "whatif::what_if_p3",
            "Fig. 10",
        ),
        (
            "distributed communication",
            "network utilization",
            "BlueConnect (Cho et al.)",
            "whatif::what_if_blueconnect",
            "modeled (Sec. 5.2)",
        ),
        (
            "distributed communication",
            "gradient compression",
            "Deep Gradient Compression (Lin et al.)",
            "whatif::what_if_dgc",
            "modeled (Sec. 5.2)",
        ),
    ];
    for r in rows {
        t.row(vec![
            r.0.into(),
            r.1.into(),
            r.2.into(),
            r.3.into(),
            r.4.into(),
        ]);
    }
    t
}

/// Table 2: models and datasets of the evaluation.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: models and datasets",
        &[
            "application",
            "model",
            "dataset",
            "parameters",
            "batch",
            "optimizer",
        ],
    );
    for m in zoo::all_models() {
        t.row(vec![
            m.application.name().into(),
            m.name.clone(),
            m.dataset.clone(),
            format!("{:.1}M", m.param_count() as f64 / 1e6),
            m.default_batch.to_string(),
            m.optimizer.name().into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_ten_optimizations() {
        assert_eq!(table1().rows.len(), 10);
    }

    #[test]
    fn table2_covers_six_models() {
        let t = table2();
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows.iter().any(|r| r[1] == "ResNet-50"));
    }
}
