//! Figure 9 / §6.5: individual all-reduce calls of one GNMT iteration under
//! the four execution regimes, plus the "sync never hurts" sweep.

use crate::util::{ms, pct, Table};
use daydream_comm::{ClusterConfig, NcclExecution};
use daydream_models::zoo;
use daydream_runtime::{baseline_plan, run_distributed, ExecConfig};

/// Regenerates Fig. 9: per-call reduction times.
pub fn fig9() -> Table {
    let model = zoo::gnmt();
    let cfg = ExecConfig::pytorch_2080ti();
    let plan = baseline_plan(&model, model.default_batch);
    let cluster = ClusterConfig::new(4, 1, 10.0);

    let contended = run_distributed(&model, &cfg, cluster, NcclExecution::Contended, &plan);
    let synced = run_distributed(&model, &cfg, cluster, NcclExecution::Synced, &plan);
    let exclusive = run_distributed(&model, &cfg, cluster, NcclExecution::Exclusive, &plan);

    let mut t = Table::new(
        "Figure 9: GNMT all-reduce calls (4x1 @ 10 Gbps)",
        &[
            "call",
            "size (MB)",
            "baseline (ms)",
            "sync (ms)",
            "optimal (ms)",
            "theoretical (ms)",
        ],
    );
    let (mut sb, mut ss, mut se, mut st) = (0u64, 0u64, 0u64, 0u64);
    for (i, c) in contended.comm_calls.iter().enumerate() {
        let sc = &synced.comm_calls[i];
        let ec = &exclusive.comm_calls[i];
        sb += c.dur_ns;
        ss += sc.dur_ns;
        se += ec.dur_ns;
        st += c.theoretical_ns;
        t.row(vec![
            format!("#{i}"),
            format!("{:.1}", c.bytes as f64 / (1 << 20) as f64),
            ms(c.dur_ns as f64 / 1e6),
            ms(sc.dur_ns as f64 / 1e6),
            ms(ec.dur_ns as f64 / 1e6),
            ms(c.theoretical_ns as f64 / 1e6),
        ]);
    }
    let over = sb as f64 / st as f64 - 1.0;
    let sync_gain = 1.0 - ss as f64 / sb as f64;
    let optimal_over = se as f64 / st as f64 - 1.0;
    t.note(format!(
        "baseline {} over theoretical (paper: 34%); sync improves calls by {} (paper: 22.8%); exclusive runs {} over theory",
        pct(over),
        pct(sync_gain),
        pct(optimal_over)
    ));
    t.note(format!(
        "iteration: contended {} ms, synced {} ms, exclusive {} ms",
        ms(contended.iteration_ms()),
        ms(synced.iteration_ms()),
        ms(exclusive.iteration_ms())
    ));
    t
}

/// §6.5 sweep: adding a sync before NCCL calls never degrades iteration
/// time across the Fig. 8 configurations.
pub fn sync_sweep() -> Table {
    let model = zoo::resnet50();
    let cfg = ExecConfig::pytorch_2080ti();
    let plan = baseline_plan(&model, model.default_batch);
    let mut t = Table::new(
        "Section 6.5: effect of syncing before NCCL calls (ResNet-50)",
        &["config", "contended (ms)", "synced (ms)", "change"],
    );
    let mut max_gain: f64 = 0.0;
    for bw in [10.0, 20.0, 40.0] {
        for cluster in ClusterConfig::fig8_layouts(bw).into_iter().skip(1) {
            let base = run_distributed(&model, &cfg, cluster, NcclExecution::Contended, &plan);
            let sync = run_distributed(&model, &cfg, cluster, NcclExecution::Synced, &plan);
            let gain = 1.0 - sync.iteration_ms() / base.iteration_ms();
            max_gain = max_gain.max(gain);
            t.row(vec![
                cluster.to_string(),
                ms(base.iteration_ms()),
                ms(sync.iteration_ms()),
                pct(gain),
            ]);
        }
    }
    t.note(format!(
        "best improvement {} (paper: up to 22%)",
        pct(max_gain)
    ));
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig9_interference_structure() {
        let t = super::fig9();
        assert!(t.rows.len() > 10, "GNMT has many gradient buckets");
        // Per call: baseline >= sync >= theoretical (on average, asserted
        // via the aggregate note computed inside fig9()).
        assert!(t.notes[0].contains("over theoretical"));
    }

    #[test]
    fn sync_never_hurts() {
        let t = super::sync_sweep();
        for r in &t.rows {
            let gain: f64 = r[3].trim_end_matches('%').parse().unwrap();
            assert!(gain > -2.0, "{}: sync degraded by {gain}%", r[0]);
        }
    }
}
