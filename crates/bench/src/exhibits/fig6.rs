//! Figure 6: runtime breakdown (CPU-only / GPU-only / CPU+GPU) for the
//! FP32 baseline and the FP16 (AMP) execution.

use crate::util::{ms, pct, Table};
use daydream_models::zoo;
use daydream_runtime::{ground_truth, ExecConfig};
use daydream_trace::runtime_breakdown;

/// Models shown in Fig. 6.
pub const FIG6_MODELS: [&str; 4] = ["ResNet-50", "GNMT", "BERT_Base", "BERT_Large"];

/// Regenerates Fig. 6.
pub fn fig6() -> Table {
    let mut t = Table::new(
        "Figure 6: runtime breakdown, FP32 vs FP16",
        &[
            "model",
            "precision",
            "total (ms)",
            "cpu+gpu",
            "cpu-only",
            "gpu-only",
        ],
    );
    for name in FIG6_MODELS {
        let model = zoo::by_name(name).expect("known model");
        let cfg = ExecConfig::pytorch_2080ti();
        for (label, trace) in [
            ("FP32", ground_truth::run_baseline(&model, &cfg)),
            ("FP16", ground_truth::run_amp(&model, &cfg)),
        ] {
            let b = runtime_breakdown(&trace);
            t.row(vec![
                name.into(),
                label.into(),
                ms(b.total_ns as f64 / 1e6),
                pct(b.overlap_frac()),
                pct(b.cpu_only_frac()),
                pct(b.gpu_only_frac()),
            ]);
        }
    }
    t.note("paper Sec. 6.2: FP16 shrinks GPU-only time; CPU time barely changes,");
    t.note("so the CPU becomes the bottleneck for models with limited AMP speedups");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fp16_raises_cpu_share() {
        let t = super::fig6();
        assert_eq!(t.rows.len(), 8);
        // For each model: FP16 total < FP32 total and cpu-only share rises.
        for pair in t.rows.chunks(2) {
            let total32: f64 = pair[0][2].parse().unwrap();
            let total16: f64 = pair[1][2].parse().unwrap();
            assert!(total16 < total32, "{} FP16 must be faster", pair[0][0]);
            let cpu32: f64 = pair[0][4].trim_end_matches('%').parse().unwrap();
            let cpu16: f64 = pair[1][4].trim_end_matches('%').parse().unwrap();
            assert!(
                cpu16 >= cpu32 - 0.2,
                "{} CPU share must not shrink",
                pair[0][0]
            );
        }
    }
}
