//! Figure 7: FusedAdam — baseline vs ground truth vs prediction.

use crate::util::{ms, pct, profile_for, Table};
use daydream_core::{predict, whatif};
use daydream_runtime::{ground_truth, ExecConfig};

/// Models evaluated in Fig. 7 (the Adam-trained ones).
pub const FIG7_MODELS: [&str; 3] = ["BERT_Base", "BERT_Large", "Seq2Seq"];

/// Regenerates Fig. 7.
pub fn fig7() -> Table {
    let mut t = Table::new(
        "Figure 7: FusedAdam optimizer",
        &[
            "model",
            "baseline (ms)",
            "ground truth (ms)",
            "prediction (ms)",
            "improvement",
            "error",
        ],
    );
    for name in FIG7_MODELS {
        let (pg, model) = profile_for(name, None, false);
        let cfg = ExecConfig::pytorch_2080ti();
        let pred = predict(&pg, |g| {
            whatif::what_if_fused_adam(g);
        });
        let gt = ground_truth::run_fused_adam(&model, &cfg)
            .meta
            .iteration_ns();
        t.row(vec![
            name.into(),
            ms(pred.baseline_ms()),
            ms(gt as f64 / 1e6),
            ms(pred.predicted_ms()),
            pct(pred.improvement()),
            pct(pred.error_vs(gt)),
        ]);
    }
    t.note("paper: predictions within 13%; BERT gains large (weight update is");
    t.note("~30/45% of iteration), GNMT small (<10% in weight update)");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig7_errors_and_ordering() {
        let t = super::fig7();
        assert_eq!(t.rows.len(), 3);
        let mut improvements = Vec::new();
        for r in &t.rows {
            let err: f64 = r[5].trim_end_matches('%').parse().unwrap();
            assert!(err < 13.0, "{} FusedAdam error {err}%", r[0]);
            improvements.push(r[4].trim_end_matches('%').parse::<f64>().unwrap());
        }
        // BERT-large benefits most, GNMT least (paper Sec. 6.3).
        assert!(improvements[1] > improvements[0]);
        assert!(improvements[2] < improvements[0]);
    }
}
