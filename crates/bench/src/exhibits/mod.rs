//! One module per paper exhibit; each regenerates its table/figure data.

mod ablation;
mod fig1;
mod fig10;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod sec64;
mod tables;

pub use ablation::{ablation, bucket_sweep, dgc_sweep, slice_sweep};
pub use fig1::fig1;
pub use fig10::{fig10, fig10_bandwidths, fig10_points, Fig10Point};
pub use fig5::{fig5, FIG5_MODELS};
pub use fig6::{fig6, FIG6_MODELS};
pub use fig7::{fig7, FIG7_MODELS};
pub use fig8::{fig8, fig8_points, Fig8Point, FIG8_BANDWIDTHS, FIG8_MODELS};
pub use fig9::{fig9, sync_sweep};
pub use sec64::sec64;
pub use tables::{table1, table2};
