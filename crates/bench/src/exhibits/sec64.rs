//! Section 6.4: reconstructing batch normalization on DenseNet-121/Caffe.

use crate::util::{ms, pct, Table};
use daydream_core::{predict, whatif, ProfiledGraph};
use daydream_models::zoo;
use daydream_runtime::{ground_truth, ExecConfig};

/// Regenerates the §6.4 comparison.
pub fn sec64() -> Table {
    let model = zoo::densenet121();
    let cfg = ExecConfig::caffe_2080ti();
    let baseline = ground_truth::run_baseline(&model, &cfg);
    let pg = ProfiledGraph::from_trace(&baseline);
    let pred = predict(&pg, |g| whatif::what_if_reconstruct_bn(g, &model));
    let gt = ground_truth::run_reconstructed_bn(&model, &cfg)
        .meta
        .iteration_ns();
    let gt_gain = 1.0 - gt as f64 / pred.baseline_ns as f64;

    let mut t = Table::new(
        "Section 6.4: reconstructing batchnorm (DenseNet-121, Caffe)",
        &["quantity", "iteration (ms)", "improvement"],
    );
    t.row(vec!["baseline".into(), ms(pred.baseline_ms()), "-".into()]);
    t.row(vec![
        "Daydream prediction".into(),
        ms(pred.predicted_ms()),
        pct(pred.improvement()),
    ]);
    t.row(vec![
        "ground truth".into(),
        ms(gt as f64 / 1e6),
        pct(gt_gain),
    ]);
    t.note("paper: predicted 12.7% vs measured 7% (optimization paper claimed 17.5%);");
    t.note("the prediction overestimates because the real implementation uses new,");
    t.note("less-tuned kernels plus extra CUDA allocations/copies (Sec. 7.4)");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn prediction_overestimates_measured_gain() {
        let t = super::sec64();
        let pred: f64 = t.rows[1][2].trim_end_matches('%').parse().unwrap();
        let gt: f64 = t.rows[2][2].trim_end_matches('%').parse().unwrap();
        assert!(
            pred > gt,
            "prediction ({pred}%) must exceed ground truth ({gt}%)"
        );
        assert!(gt > 0.0, "the optimization still helps");
    }
}
