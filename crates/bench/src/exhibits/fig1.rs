//! Figure 1: the NVProf-style timeline observation — DNN training traces
//! are highly sequential despite thousands of tasks.

use crate::util::{profile_for, Table};
use daydream_models::zoo;
use daydream_runtime::{baseline_plan, ExecConfig, Executor};
use daydream_trace::{lane_stats, max_concurrency};

/// Per-lane statistics of one ResNet-50 training iteration.
pub fn fig1() -> Table {
    let model = zoo::resnet50();
    let cfg = ExecConfig::pytorch_2080ti();
    let ex = Executor::new(&model, &cfg);
    let trace = ex.run(&baseline_plan(&model, ex.batch()));

    let mut t = Table::new(
        "Figure 1: ResNet-50 trace timeline structure",
        &["lane", "tasks", "busy (ms)", "idle (ms)", "max gap (ms)"],
    );
    for (lane, s) in lane_stats(&trace) {
        t.row(vec![
            lane.to_string(),
            s.count.to_string(),
            format!("{:.1}", s.busy_ns as f64 / 1e6),
            format!("{:.1}", s.idle_ns as f64 / 1e6),
            format!("{:.2}", s.max_gap_ns as f64 / 1e6),
        ]);
    }
    t.note(format!(
        "{} activities total, max concurrency {} (paper Sec. 3: tasks are highly sequential)",
        trace.activities.len(),
        max_concurrency(&trace)
    ));
    let (pg, _) = profile_for("ResNet-50", None, false);
    t.note(format!(
        "dependency graph: {} tasks, {} edges",
        pg.graph.len(),
        pg.graph.edge_count()
    ));
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_shows_sequentiality() {
        let t = super::fig1();
        // Two busy CPU threads + loader + one GPU stream.
        assert!(t.rows.len() >= 3);
        assert!(t.notes[0].contains("max concurrency"));
    }
}
