//! Kernel classification from trace names.
//!
//! Going from a kernel's *name* back to its roofline class is what lets
//! Daydream answer hardware what-ifs ("would a V100 help?") from a trace
//! alone: each class scales with a different device rate. The vocabulary
//! matches [`crate::kernel_name`] plus the common real-world cuDNN/cuBLAS
//! spellings, so the classifier also works on names from genuine CUPTI
//! dumps.

use daydream_models::OpClass;

/// Infers the kernel class from a trace kernel name.
///
/// Returns `None` for names with no recognizable vocabulary (callers
/// usually fall back to treating those as memory-bound).
pub fn classify_kernel(name: &str) -> Option<OpClass> {
    let n = name.to_ascii_lowercase();
    // Order matters: cuDNN conv kernels contain "relu"/"gemm" fragments.
    if n.contains("cudnn_rnn")
        || n.contains("rnn_persist")
        || n.contains("lstm_fwd")
        || n.contains("lstm_dgrad")
        || n.contains("lstm_wgrad")
    {
        return Some(OpClass::RnnFused);
    }
    if n.contains("scudnn")
        || n.contains("h884cudnn")
        || n.contains("implicit_gemm")
        || n.contains("winograd")
        || n.contains("conv2d")
    {
        return Some(OpClass::Conv);
    }
    if n.contains("batched") {
        return Some(OpClass::BatchedGemm);
    }
    if n.contains("sgemm") || n.contains("h884gemm") || n.contains("hgemm") || n.contains("gemv") {
        return Some(OpClass::Gemm);
    }
    if n.contains("bn_") || n.contains("batch_norm") || n.contains("batchnorm") {
        return Some(OpClass::BatchNorm);
    }
    if n.contains("layer_norm") || n.contains("layernorm") {
        return Some(OpClass::LayerNorm);
    }
    if n.contains("softmax") {
        return Some(OpClass::Softmax);
    }
    if n.contains("pooling") || n.contains("pool_") {
        return Some(OpClass::Pool);
    }
    if n.contains("reduce") || n.contains("norm_kernel") {
        return Some(OpClass::Reduction);
    }
    if n.contains("indexselect")
        || n.contains("embedding")
        || n.contains("gather")
        || n.contains("scatter")
    {
        return Some(OpClass::Embedding);
    }
    if n.contains("dropout") {
        return Some(OpClass::Dropout);
    }
    if n.contains("elementwise") || n.contains("pointwise") || n.contains("vectorized") {
        return Some(OpClass::Elementwise);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kernel_name;
    use crate::gpu::Precision;
    use daydream_models::OpSpec;

    /// Every name this crate generates must classify back to its class.
    #[test]
    fn round_trips_generated_names() {
        for class in [
            OpClass::Conv,
            OpClass::Gemm,
            OpClass::BatchedGemm,
            OpClass::RnnFused,
            OpClass::Elementwise,
            OpClass::BatchNorm,
            OpClass::LayerNorm,
            OpClass::Softmax,
            OpClass::Pool,
            OpClass::Reduction,
            OpClass::Embedding,
            OpClass::Dropout,
        ] {
            for prec in [Precision::Fp32, Precision::Fp16] {
                let op = OpSpec::new("x", class, 1.0, 1.0);
                let name = kernel_name(&op, prec);
                assert_eq!(
                    classify_kernel(&name),
                    Some(class),
                    "name {name} misclassified"
                );
            }
        }
    }

    #[test]
    fn real_world_spellings() {
        assert_eq!(
            classify_kernel("volta_sgemm_128x64_tn"),
            Some(OpClass::Gemm)
        );
        assert_eq!(
            classify_kernel("volta_scudnn_128x128_relu_interior_nn_v1"),
            Some(OpClass::Conv)
        );
        assert_eq!(
            classify_kernel("maxwell_scudnn_winograd_128x128"),
            Some(OpClass::Conv)
        );
        assert_eq!(
            classify_kernel("void cudnn::detail::bn_fw_tr_1C11_kernel_NCHW"),
            Some(OpClass::BatchNorm)
        );
        assert_eq!(
            classify_kernel("softmax_warp_forward"),
            Some(OpClass::Softmax)
        );
        assert_eq!(
            classify_kernel("indexSelectLargeIndex"),
            Some(OpClass::Embedding)
        );
        assert_eq!(classify_kernel("totally_unknown_kernel"), None);
    }
}
