//! GPU specifications for the paper's two evaluation devices.

use serde::{Deserialize, Serialize};

/// Numeric precision a kernel executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE single precision (the paper's FP32 baseline).
    Fp32,
    /// Half precision with Tensor Core matrix math where available.
    Fp16,
}

/// Peak rates and overheads of a GPU.
///
/// Rates are *peaks*; the [`crate::CostModel`] applies per-kernel-class
/// achievable-efficiency factors, which is where calibration lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, also recorded in traces.
    pub name: String,
    /// Peak FP32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak FP16 Tensor Core throughput in TFLOP/s (equals `fp32_tflops`
    /// when the device has no Tensor Cores).
    pub fp16_tflops: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed device-side kernel startup latency in nanoseconds.
    pub kernel_overhead_ns: u64,
    /// Host-to-device PCIe bandwidth in GB/s (vDNN offload, input upload).
    pub pcie_gbs: f64,
    /// Whether the device has Tensor Cores (drives AMP compute gains).
    pub has_tensor_cores: bool,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 2080 Ti (Turing) — the paper's main evaluation GPU.
    pub fn rtx_2080ti() -> Self {
        GpuSpec {
            name: "RTX 2080 Ti".into(),
            fp32_tflops: 13.45,
            // Half-rate-accumulate Tensor Core peak; the cost model's
            // efficiency factor brings achieved gains to the ~3x the paper
            // cites for compute-bound kernels.
            fp16_tflops: 53.8,
            mem_bw_gbs: 616.0,
            kernel_overhead_ns: 3_000,
            pcie_gbs: 12.0,
            has_tensor_cores: true,
        }
    }

    /// NVIDIA Tesla V100 (Volta, 16 GB SXM2) — a common "what if we
    /// upgraded?" target of the paper's motivating questions.
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100".into(),
            fp32_tflops: 15.7,
            fp16_tflops: 125.0,
            mem_bw_gbs: 900.0,
            kernel_overhead_ns: 2_800,
            pcie_gbs: 12.0,
            has_tensor_cores: true,
        }
    }

    /// NVIDIA T4 (Turing, 16 GB) — a lower-power inference-class device.
    pub fn t4() -> Self {
        GpuSpec {
            name: "T4".into(),
            fp32_tflops: 8.1,
            fp16_tflops: 65.0,
            mem_bw_gbs: 320.0,
            kernel_overhead_ns: 3_200,
            pcie_gbs: 12.0,
            has_tensor_cores: true,
        }
    }

    /// NVIDIA Quadro P4000 (Pascal) — the GPU of the paper's P3 evaluation
    /// cluster (§6.6). No Tensor Cores.
    pub fn p4000() -> Self {
        GpuSpec {
            name: "P4000".into(),
            fp32_tflops: 5.3,
            fp16_tflops: 5.3,
            mem_bw_gbs: 243.0,
            kernel_overhead_ns: 3_500,
            pcie_gbs: 12.0,
            has_tensor_cores: false,
        }
    }

    /// Resolves a user-facing GPU name (case/punctuation-insensitive) to
    /// its spec — the single name table shared by the CLI `--gpu`/`--to`
    /// options and the sweep engine's upgrade-gpu scenarios.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name.to_lowercase().replace([' ', '-', '_'], "").as_str() {
            "2080ti" | "rtx2080ti" => Ok(GpuSpec::rtx_2080ti()),
            "v100" => Ok(GpuSpec::v100()),
            "t4" => Ok(GpuSpec::t4()),
            "p4000" => Ok(GpuSpec::p4000()),
            other => Err(format!("unknown GPU '{other}' (2080ti, v100, t4, p4000)")),
        }
    }

    /// Peak arithmetic throughput in FLOP/ns for a precision.
    pub fn peak_flops_per_ns(&self, prec: Precision) -> f64 {
        let tflops = match prec {
            Precision::Fp32 => self.fp32_tflops,
            Precision::Fp16 => self.fp16_tflops,
        };
        tflops * 1e12 / 1e9
    }

    /// Memory bandwidth in bytes/ns.
    pub fn bw_bytes_per_ns(&self) -> f64 {
        self.mem_bw_gbs * 1e9 / 1e9
    }
}

/// CPU-side timing constants of the host driving the GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Duration of a `cudaLaunchKernel` call in nanoseconds.
    pub launch_api_ns: u64,
    /// Duration of a `cudaMemcpyAsync` call in nanoseconds.
    pub memcpy_api_ns: u64,
    /// CPU-side cost of a synchronization API *excluding* wait time.
    pub sync_api_ns: u64,
    /// Duration of a `cudaMalloc` call in nanoseconds.
    pub malloc_ns: u64,
    /// Duration of a `cudaFree` call in nanoseconds.
    pub free_ns: u64,
}

impl CpuSpec {
    /// AMD EPYC 7601 — the paper's host CPU (§6.1).
    pub fn epyc_7601() -> Self {
        CpuSpec {
            launch_api_ns: 6_000,
            memcpy_api_ns: 9_000,
            sync_api_ns: 4_000,
            malloc_ns: 45_000,
            free_ns: 30_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_rates() {
        let gpu = GpuSpec::rtx_2080ti();
        assert!((gpu.peak_flops_per_ns(Precision::Fp32) - 13_450.0).abs() < 1.0);
        assert!((gpu.peak_flops_per_ns(Precision::Fp16) - 53_800.0).abs() < 1.0);
        assert!((gpu.bw_bytes_per_ns() - 616.0).abs() < 1e-9);
    }

    #[test]
    fn p4000_has_no_tensor_cores() {
        let gpu = GpuSpec::p4000();
        assert!(!gpu.has_tensor_cores);
        assert_eq!(
            gpu.peak_flops_per_ns(Precision::Fp32),
            gpu.peak_flops_per_ns(Precision::Fp16)
        );
    }

    #[test]
    fn cpu_spec_sane() {
        let cpu = CpuSpec::epyc_7601();
        assert!(cpu.launch_api_ns > 1_000);
        assert!(cpu.malloc_ns > cpu.launch_api_ns);
    }
}
