//! Hardware cost models for Daydream's execution simulator.
//!
//! Substitutes for the paper's physical GPUs (RTX 2080 Ti and Quadro P4000,
//! §6.1): a roofline model prices each [`daydream_models::OpSpec`] from its
//! FLOPs and memory traffic, with per-kernel-class achievable efficiencies
//! and precision-dependent rates. The calibration goals are the paper's own
//! modeling assumptions: Tensor Core kernels gain ~3x under mixed precision,
//! memory-bound kernels gain ~2x (§5.1).
//!
//! # Examples
//!
//! ```
//! use daydream_device::{CostModel, GpuSpec, Precision};
//! use daydream_models::{OpClass, OpSpec};
//!
//! let model = CostModel::new(GpuSpec::rtx_2080ti());
//! let gemm = OpSpec::new("fc", OpClass::Gemm, 2.0e9, 1.0e7);
//! let fp32 = model.op_duration_ns(&gemm, Precision::Fp32);
//! let fp16 = model.op_duration_ns(&gemm, Precision::Fp16);
//! assert!(fp16 < fp32);
//! ```

mod classify;
mod cost;
mod gpu;

pub use classify::classify_kernel;
pub use cost::{kernel_name, CostModel};
pub use gpu::{CpuSpec, GpuSpec, Precision};
