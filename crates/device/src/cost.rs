//! Roofline kernel cost model.
//!
//! Kernel duration is `max(flops / achievable_compute, bytes /
//! achievable_bandwidth) + fixed overhead`, with per-class achievable
//! efficiencies. This substitutes for real cuDNN/cuBLAS kernels: the paper's
//! what-if models only need *relative* durations with the correct
//! compute-bound vs memory-bound split (§5.1), which a calibrated roofline
//! provides.

use crate::gpu::{GpuSpec, Precision};
use daydream_models::{OpClass, OpSpec};
use serde::{Deserialize, Serialize};

/// FLOP count at which a Tensor Core kernel reaches half its peak rate.
const TENSOR_CORE_SATURATION_FLOPS: f64 = 0.7e9;

/// Prices [`OpSpec`]s on a specific GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The device being modeled.
    pub gpu: GpuSpec,
}

impl CostModel {
    /// Builds a cost model for a GPU.
    pub fn new(gpu: GpuSpec) -> Self {
        CostModel { gpu }
    }

    /// Fraction of peak arithmetic throughput a kernel class achieves.
    fn compute_efficiency(&self, class: OpClass, prec: Precision) -> f64 {
        let fp32 = match class {
            OpClass::Conv => 0.52,
            OpClass::Gemm => 0.60,
            OpClass::BatchedGemm => 0.38,
            OpClass::RnnFused => 0.50,
            // Memory-bound classes rarely hit arithmetic limits; the value
            // only matters for degenerate shapes.
            _ => 0.10,
        };
        match prec {
            Precision::Fp32 => fp32,
            // Tensor Core kernels reach a lower fraction of their (much
            // higher) peak; calibrated so compute-bound kernels gain ~3x,
            // matching the paper's observation (§5.1).
            Precision::Fp16 => {
                if self.gpu.has_tensor_cores && class.is_compute_bound() {
                    fp32 * 0.80
                } else {
                    fp32
                }
            }
        }
    }

    /// Fraction of peak memory bandwidth a kernel class achieves.
    fn memory_efficiency(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Elementwise | OpClass::Dropout => 0.78,
            OpClass::BatchNorm | OpClass::LayerNorm => 0.62,
            OpClass::Softmax | OpClass::Reduction => 0.58,
            OpClass::Pool => 0.65,
            OpClass::Embedding => 0.45,
            _ => 0.70,
        }
    }

    /// Duration of one kernel in nanoseconds.
    ///
    /// Under [`Precision::Fp16`] memory traffic is halved (half-width
    /// activations/weights) and compute-bound classes use the Tensor Core
    /// rate; FP32 gradients and optimizer state are the caller's concern
    /// (optimizer ops should simply be priced as FP32).
    pub fn op_duration_ns(&self, op: &OpSpec, prec: Precision) -> u64 {
        let bytes = match prec {
            Precision::Fp32 => op.bytes,
            Precision::Fp16 => op.bytes * 0.5,
        };
        let mut compute_rate =
            self.gpu.peak_flops_per_ns(prec) * self.compute_efficiency(op.class, prec);
        // Tensor Cores need large matrix tiles to reach their rate: small
        // GEMMs (e.g. BERT at tiny batch sizes) see far less than the
        // headline 3x, which is precisely where the paper's blanket AMP
        // rule overestimates (§7.4).
        if prec == Precision::Fp16 && self.gpu.has_tensor_cores && op.class.is_compute_bound() {
            compute_rate *= op.flops / (op.flops + TENSOR_CORE_SATURATION_FLOPS);
        }
        let mem_rate = self.gpu.bw_bytes_per_ns() * self.memory_efficiency(op.class);
        let t_compute = if op.flops > 0.0 {
            op.flops / compute_rate
        } else {
            0.0
        };
        let t_memory = if bytes > 0.0 { bytes / mem_rate } else { 0.0 };
        t_compute.max(t_memory) as u64 + self.gpu.kernel_overhead_ns
    }

    /// Whether the roofline classifies the kernel as compute-bound at the
    /// given precision (used by tests and diagnostics).
    pub fn is_compute_bound(&self, op: &OpSpec, prec: Precision) -> bool {
        let bytes = match prec {
            Precision::Fp32 => op.bytes,
            Precision::Fp16 => op.bytes * 0.5,
        };
        let compute_rate =
            self.gpu.peak_flops_per_ns(prec) * self.compute_efficiency(op.class, prec);
        let mem_rate = self.gpu.bw_bytes_per_ns() * self.memory_efficiency(op.class);
        op.flops / compute_rate > bytes / mem_rate
    }

    /// Duration of a host<->device memory copy of `bytes` over PCIe.
    pub fn pcie_copy_ns(&self, bytes: u64) -> u64 {
        let rate = self.gpu.pcie_gbs * 1e9 / 1e9; // bytes per ns
        (bytes as f64 / rate) as u64 + 2_000
    }
}

/// Generates the cuDNN/cuBLAS-style kernel name a trace would show.
///
/// Names matter: the paper's AMP model selects kernels by the substrings
/// `sgemm` / `scudnn` (Algorithm 3), and `Select`-by-keyword generally works
/// on names, so the synthetic trace must use realistic vocabulary.
pub fn kernel_name(op: &OpSpec, prec: Precision) -> String {
    let arch = "volta";
    match (op.class, prec) {
        (OpClass::Gemm, Precision::Fp32) => format!("{arch}_sgemm_128x64_tn_{}", op.label),
        (OpClass::Gemm, Precision::Fp16) => format!("{arch}_h884gemm_128x64_tn_{}", op.label),
        (OpClass::Conv, Precision::Fp32) => {
            format!("{arch}_scudnn_128x128_relu_interior_nn_{}", op.label)
        }
        (OpClass::Conv, Precision::Fp16) => {
            format!("{arch}_fp16_h884cudnn_256x64_interior_nn_{}", op.label)
        }
        (OpClass::BatchedGemm, Precision::Fp32) => {
            format!("{arch}_sgemm_64x32_batched_{}", op.label)
        }
        (OpClass::BatchedGemm, Precision::Fp16) => {
            format!("{arch}_h884gemm_64x32_batched_{}", op.label)
        }
        (OpClass::RnnFused, _) => format!("{arch}_scudnn_rnn_persist_{}", op.label),
        (OpClass::Elementwise, _) => format!("elementwise_kernel_{}", op.label),
        (OpClass::BatchNorm, _) => format!("bn_fw_tr_1C11_kernel_{}", op.label),
        (OpClass::LayerNorm, _) => format!("layer_norm_kernel_{}", op.label),
        (OpClass::Softmax, _) => format!("softmax_warp_kernel_{}", op.label),
        (OpClass::Pool, _) => format!("pooling_fw_4d_kernel_{}", op.label),
        (OpClass::Reduction, _) => format!("reduce_kernel_{}", op.label),
        (OpClass::Embedding, _) => format!("indexSelectLargeIndex_{}", op.label),
        (OpClass::Dropout, _) => format!("fused_dropout_kernel_{}", op.label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(GpuSpec::rtx_2080ti())
    }

    fn gemm(flops: f64, bytes: f64) -> OpSpec {
        OpSpec::new("t", OpClass::Gemm, flops, bytes)
    }

    #[test]
    fn duration_monotone_in_flops() {
        let m = model();
        let small = m.op_duration_ns(&gemm(1e9, 1e6), Precision::Fp32);
        let large = m.op_duration_ns(&gemm(4e9, 1e6), Precision::Fp32);
        assert!(large > small);
    }

    #[test]
    fn compute_bound_gemm_gains_about_3x_under_fp16() {
        let m = model();
        // A large, strongly compute-bound GEMM.
        let op = gemm(6e10, 1e8);
        assert!(m.is_compute_bound(&op, Precision::Fp32));
        let fp32 = m.op_duration_ns(&op, Precision::Fp32) as f64;
        let fp16 = m.op_duration_ns(&op, Precision::Fp16) as f64;
        let gain = fp32 / fp16;
        assert!(
            (2.6..3.6).contains(&gain),
            "tensor-core gain {gain:.2} outside paper's ~3x"
        );
    }

    #[test]
    fn memory_bound_elementwise_gains_about_2x_under_fp16() {
        let m = model();
        let op = OpSpec::new("ew", OpClass::Elementwise, 1e6, 4e8);
        let fp32 = m.op_duration_ns(&op, Precision::Fp32) as f64;
        let fp16 = m.op_duration_ns(&op, Precision::Fp16) as f64;
        let gain = fp32 / fp16;
        assert!(
            (1.8..2.1).contains(&gain),
            "memory-bound gain {gain:.2} should be ~2x"
        );
    }

    #[test]
    fn no_tensor_cores_no_compute_gain() {
        let m = CostModel::new(GpuSpec::p4000());
        let op = gemm(8e9, 1e7);
        let fp32 = m.op_duration_ns(&op, Precision::Fp32) as f64;
        let fp16 = m.op_duration_ns(&op, Precision::Fp16) as f64;
        // Only the (tiny) memory term improves; the compute term is unchanged.
        assert!(fp32 / fp16 < 1.1);
    }

    #[test]
    fn overhead_floors_tiny_kernels() {
        let m = model();
        let op = OpSpec::new("tiny", OpClass::Elementwise, 10.0, 100.0);
        let d = m.op_duration_ns(&op, Precision::Fp32);
        assert!(d >= m.gpu.kernel_overhead_ns);
        assert!(d < m.gpu.kernel_overhead_ns + 100);
    }

    #[test]
    fn kernel_names_carry_amp_keywords() {
        let g = gemm(1.0, 1.0);
        assert!(kernel_name(&g, Precision::Fp32).contains("sgemm"));
        assert!(!kernel_name(&g, Precision::Fp16).contains("sgemm"));
        let c = OpSpec::new("c", OpClass::Conv, 1.0, 1.0);
        assert!(kernel_name(&c, Precision::Fp32).contains("scudnn"));
        let e = OpSpec::new("e", OpClass::Elementwise, 1.0, 1.0);
        assert!(kernel_name(&e, Precision::Fp32).contains("elementwise"));
    }

    #[test]
    fn pcie_copy_scales_with_bytes() {
        let m = model();
        let one_mb = m.pcie_copy_ns(1 << 20);
        let four_mb = m.pcie_copy_ns(4 << 20);
        assert!(four_mb > 3 * one_mb && four_mb < 5 * one_mb);
    }
}
