//! `CompiledGraph::apply(patch)` against the mutate-then-recompile oracle.
//!
//! The delta pipeline (emit a [`GraphPatch`] through a [`PatchGraph`]
//! overlay, apply it to the shared compiled base) must be *simulation-
//! identical* to [`GraphPatch::apply_reference`] (clone the base, replay
//! the op log through `DependencyGraph`'s own mutators, recompile): same
//! per-task starts, waits, makespan, and per-thread ends — and the same
//! canonical structure (threads, costs, priorities, predecessor counts,
//! successor sets per task). Pinned on random DAGs with random op
//! sequences, and on profiled ResNet-50 / BERT graphs for every what-if
//! transform in the catalog, including P3 over its replicated base.

use daydream_comm::ClusterConfig;
use daydream_core::whatif::{
    p3_insert_plan, p3_replicated_base, plan_amp, plan_bandwidth, plan_batch_size,
    plan_blueconnect, plan_dgc, plan_distributed, plan_fused_adam, plan_gist, plan_metaflow,
    plan_p3_inserts, plan_reconstruct_bn, plan_upgrade_gpu, plan_vdnn, what_if_distributed,
    DgcConfig, GistConfig, P3Config, P3Scheduler, Substitution, VdnnConfig,
};
use daydream_core::{
    simulate_compiled_with, simulate_with_reference, CommChannel, CompactId, CompiledGraph,
    DepKind, DependencyGraph, EarliestStart, ExecThread, FrontierOrder, GraphEdit, GraphPatch,
    GraphView, PatchGraph, ProfiledGraph, SimResult, Task, TaskId, TaskKind,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};
use proptest::prelude::*;

/// Canonical structural form of a compiled graph: per live task, its
/// arena id, thread, cost, duration, priority, predecessor count, and
/// sorted successor arena ids. Interned thread *order* may differ between
/// `apply` and a fresh compile; everything here must not.
type CanonicalTask = (TaskId, ExecThread, u64, u64, i64, u32, Vec<TaskId>);

fn canonical(cg: &CompiledGraph) -> Vec<CanonicalTask> {
    (0..cg.len())
        .map(|i| {
            let c = CompactId(i as u32);
            let mut succs: Vec<TaskId> = cg.successors(c).iter().map(|&s| cg.task_id(s)).collect();
            succs.sort_unstable();
            (
                cg.task_id(c),
                cg.exec_thread(cg.thread_of(c)),
                cg.cost_ns(c),
                cg.duration_ns(c),
                cg.priority(c),
                cg.pred_count(c),
                succs,
            )
        })
        .collect()
}

/// Simulates a compiled graph and expands to arena-indexed results.
fn sim<O: FrontierOrder>(cg: &CompiledGraph, order: &O) -> SimResult {
    simulate_compiled_with(cg, order)
        .expect("graph must stay a DAG")
        .into_sim_result(cg)
}

/// Asserts `base.apply(patch)` is equivalent to the recompiled oracle
/// under `order`, returning the patched simulation for extra checks.
fn assert_equiv<O: FrontierOrder>(
    base: &DependencyGraph,
    patch: &GraphPatch,
    order: &O,
) -> SimResult {
    let compiled_base = CompiledGraph::compile(base);
    let applied = compiled_base.apply(patch);
    let oracle_graph = patch.apply_reference(base);
    let oracle = CompiledGraph::compile(&oracle_graph);

    assert_eq!(
        canonical(&applied),
        canonical(&oracle),
        "patched structure diverged from recompile-after-mutate"
    );
    let fast = sim(&applied, order);
    let slow = sim(&oracle, order);
    assert_eq!(fast, slow, "patched simulation diverged from the oracle");
    fast
}

/// The random-DAG universe of `sim_equivalence.rs`: two CPU threads, two
/// GPU streams, one communication channel.
fn thread_for(sel: u64) -> ExecThread {
    match sel % 5 {
        0 => ExecThread::Cpu(CpuThreadId(0)),
        1 => ExecThread::Cpu(CpuThreadId(1)),
        2 => ExecThread::Gpu(DeviceId(0), StreamId(0)),
        3 => ExecThread::Gpu(DeviceId(0), StreamId(1)),
        _ => ExecThread::Comm(CommChannel::Collective),
    }
}

fn build_dag(tasks: &[(u64, u64, u64)], edges: &[(u64, u64)]) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    let n = tasks.len();
    for (i, &(sel, dur, gap)) in tasks.iter().enumerate() {
        let mut t = Task::new(format!("t{i}"), TaskKind::CpuWork, thread_for(sel), dur);
        t.gap_ns = gap;
        t.priority = (dur % 7) as i64 - 3;
        g.add_task(t);
    }
    for &(a, b) in edges {
        let (x, y) = ((a as usize) % n, (b as usize) % n);
        if x == y {
            continue;
        }
        g.add_dep(TaskId(x.min(y)), TaskId(x.max(y)), DepKind::Transform);
    }
    g
}

/// One random mutation: `(selector, a, b, value)` decoded against the
/// overlay's current state. Inserts keep edges forward (low id -> high
/// id), so the patched graph stays a DAG by construction.
fn apply_random_op(p: &mut PatchGraph<'_>, op: (u64, u64, u64, u64)) {
    let (sel, a, b, v) = op;
    let live = p.live_ids();
    if live.is_empty() {
        return;
    }
    let pick = |x: u64| live[(x as usize) % live.len()];
    match sel % 8 {
        0 => p.set_duration(pick(a), v % 500),
        1 => p.set_priority(pick(a), v as i64 % 10 - 5),
        2 => {
            let (x, y) = (pick(a), pick(b));
            if x != y {
                p.add_dep(x.min(y), x.max(y), DepKind::Transform);
            }
        }
        3 => {
            let (x, y) = (pick(a), pick(b));
            p.remove_dep(x.min(y), x.max(y));
        }
        4 => {
            // Keep at least one task so the graph stays interesting.
            if live.len() > 1 {
                p.remove_task(pick(a));
            }
        }
        5 => {
            // Insert a task after an existing one (forward edge only).
            let anchor = pick(a);
            let mut t = Task::new("ins", TaskKind::CpuWork, thread_for(v), v % 300);
            t.gap_ns = v % 13;
            let id = p.add_task(t);
            p.add_dep(anchor, id, DepKind::Transform);
        }
        6 => p.set_thread(pick(a), thread_for(v)),
        _ => {
            // Chain insert: new task between an anchor and a fresh tail.
            let anchor = pick(a);
            let mid = p.add_task(Task::new("mid", TaskKind::CpuWork, thread_for(b), v % 100));
            let tail = p.add_task(Task::new("tail", TaskKind::CpuWork, thread_for(v), v % 50));
            p.add_dep(anchor, mid, DepKind::Transform);
            p.add_dep(mid, tail, DepKind::Transform);
        }
    }
}

proptest! {
    // Random DAGs x random op sequences: apply == recompile(replay),
    // structurally and under simulation with both frontier policies.
    #[test]
    fn random_patches_match_reference(
        tasks in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..60),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..150),
        ops in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..40),
    ) {
        let g = build_dag(&tasks, &edges);
        let mut p = PatchGraph::new(&g);
        for &op in &ops {
            apply_random_op(&mut p, op);
        }
        let patch = p.finish();
        assert_equiv(&g, &patch, &EarliestStart);
        assert_equiv(&g, &patch, &P3Scheduler);
        // The untouched base still simulates identically afterwards.
        let before = sim(&CompiledGraph::compile(&g), &EarliestStart);
        let after = sim(&CompiledGraph::compile(&g), &EarliestStart);
        prop_assert_eq!(before, after);
    }

    // The patched graph also agrees with the legacy quadratic reference
    // loop run over the replayed graph (three implementations, one
    // answer).
    #[test]
    fn patched_simulation_matches_quadratic_loop(
        tasks in prop::collection::vec((0u64..5, 0u64..120, 0u64..20), 1..40),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..80),
        ops in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..20),
    ) {
        let g = build_dag(&tasks, &edges);
        let mut p = PatchGraph::new(&g);
        for &op in &ops {
            apply_random_op(&mut p, op);
        }
        let patch = p.finish();
        let fast = assert_equiv(&g, &patch, &EarliestStart);
        let replayed = patch.apply_reference(&g);
        let quadratic = simulate_with_reference(&replayed, &mut EarliestStart).unwrap();
        prop_assert_eq!(fast, quadratic);
    }
}

// ---------------------------------------------------------------------------
// The full what-if catalog over profiled model graphs
// ---------------------------------------------------------------------------

fn resnet_profile() -> ProfiledGraph {
    let model = daydream_models::zoo::resnet50();
    let cfg = daydream_runtime::ExecConfig::pytorch_2080ti().with_batch(4);
    ProfiledGraph::from_trace(&daydream_runtime::ground_truth::run_baseline(&model, &cfg))
}

fn bert_profile() -> ProfiledGraph {
    let model = daydream_models::zoo::bert_base();
    let cfg = daydream_runtime::ExecConfig::pytorch_2080ti().with_batch(2);
    ProfiledGraph::from_trace(&daydream_runtime::ground_truth::run_baseline(&model, &cfg))
}

/// Emits a patch over `pg.graph` with `plan`, checks equivalence, and
/// requires the patch to be non-trivial.
fn check_transform(pg: &ProfiledGraph, plan: impl FnOnce(&mut PatchGraph<'_>)) -> SimResult {
    let mut p = PatchGraph::new(&pg.graph);
    plan(&mut p);
    let patch = p.finish();
    assert!(!patch.is_empty(), "transform must emit a non-empty patch");
    assert_equiv(&pg.graph, &patch, &EarliestStart)
}

#[test]
fn amp_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    check_transform(&pg, |g| plan_amp(g));
}

#[test]
fn upgrade_gpu_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let (old, new) = (
        daydream_device::GpuSpec::rtx_2080ti(),
        daydream_device::GpuSpec::v100(),
    );
    check_transform(&pg, |g| {
        plan_upgrade_gpu(g, &old, &new);
    });
}

#[test]
fn batch_size_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let old_batch = pg.meta.batch_size as u64;
    check_transform(&pg, |g| {
        plan_batch_size(g, old_batch, 16);
    });
}

#[test]
fn reconstruct_bn_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let model = daydream_models::zoo::resnet50();
    check_transform(&pg, |g| plan_reconstruct_bn(g, &model));
}

#[test]
fn vdnn_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let model = daydream_models::zoo::resnet50();
    let batch = pg.meta.batch_size as u64;
    check_transform(&pg, |g| {
        let n = plan_vdnn(g, &model, &VdnnConfig::default(), batch);
        assert_eq!(n, 53, "all ResNet-50 convolutions offload");
    });
}

#[test]
fn gist_patch_matches_reference_on_resnet_lossless_and_lossy() {
    let pg = resnet_profile();
    check_transform(&pg, |g| {
        plan_gist(g, &GistConfig::default());
    });
    check_transform(&pg, |g| {
        plan_gist(
            g,
            &GistConfig {
                lossy: true,
                launch_ns: 6_000,
            },
        );
    });
}

#[test]
fn ddp_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 1, 10.0);
    let buckets = pg.meta.buckets.clone();
    check_transform(&pg, |g| {
        let ars = plan_distributed(g, &buckets, &cluster);
        assert_eq!(ars.len(), buckets.len());
    });
}

#[test]
fn blueconnect_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 2, 10.0);
    let buckets = pg.meta.buckets.clone();
    check_transform(&pg, |g| {
        let ars = plan_distributed(g, &buckets, &cluster);
        plan_blueconnect(g, &cluster, &ars);
    });
}

#[test]
fn dgc_patch_matches_reference_on_resnet() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 1, 10.0);
    let buckets = pg.meta.buckets.clone();
    check_transform(&pg, |g| {
        let ars = plan_distributed(g, &buckets, &cluster);
        plan_dgc(g, &ars, &DgcConfig::default());
    });
}

#[test]
fn bandwidth_patch_matches_reference_on_distributed_resnet() {
    // Bandwidth scaling needs communication tasks: transform a profile
    // with DDP first (legacy path), then patch the transformed base.
    let mut pg = resnet_profile();
    what_if_distributed(&mut pg, &ClusterConfig::new(4, 1, 10.0));
    check_transform(&pg, |g| {
        let touched = plan_bandwidth(g, 2.0);
        assert!(!touched.is_empty());
    });
}

#[test]
fn fused_adam_patch_matches_reference_on_bert() {
    let pg = bert_profile();
    check_transform(&pg, |g| {
        plan_fused_adam(g).expect("BERT has weight-update GPU tasks");
    });
}

#[test]
fn metaflow_patch_matches_reference_on_bert() {
    let pg = bert_profile();
    let model = daydream_models::zoo::bert_base();
    let mut policy = Vec::new();
    for l in &model.layers {
        if l.name.ends_with("attn.key") || l.name.ends_with("attn.value") {
            policy.push(Substitution::RemoveLayer(l.id));
        } else if l.name.ends_with("attn.query") {
            policy.push(Substitution::ScaleLayer(l.id, 1.8));
        }
    }
    let pg_ref = &pg;
    check_transform(pg_ref, |g| plan_metaflow(g, &policy));
}

#[test]
fn p3_patch_matches_reference_on_replicated_base() {
    // P3 patches the *replicated* base (compiled once per profile in the
    // sweep engine); both the FIFO baseline and the sliced P3 plan must
    // match their oracles under the priority scheduler.
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 1, 4.0);
    for cfg in [P3Config::baseline(cluster), P3Config::p3(cluster)] {
        let rep = p3_replicated_base(&pg, cfg.iterations);
        let inserts = p3_insert_plan(&pg, &rep, &cfg);
        assert!(!inserts.is_empty());
        let mut p = PatchGraph::new(&rep.graph);
        plan_p3_inserts(&mut p, &inserts);
        let patch = p.finish();
        let fast = assert_equiv(&rep.graph, &patch, &P3Scheduler);

        // Steady-state extraction over the patched sim matches the legacy
        // mutate-in-place analysis end to end.
        let legacy = daydream_core::whatif::what_if_p3(&pg, &cfg);
        assert_eq!(rep.steady_iteration_ns(&fast), legacy.iteration_ns);
    }
}

/// The legacy mutate-in-place wrappers and the patch pipeline are the
/// same code (generic planners), so their simulations must agree exactly.
#[test]
fn legacy_wrapper_and_patch_agree_end_to_end() {
    let pg = resnet_profile();
    let patched = check_transform(&pg, |g| plan_amp(g));
    let mut legacy = pg.clone();
    daydream_core::whatif::what_if_amp(&mut legacy);
    let legacy_sim = daydream_core::simulate(&legacy.graph).unwrap();
    assert_eq!(patched, legacy_sim);
}

/// Removing a task whose thread then becomes empty must drop the thread
/// from the result set exactly like a recompile would.
#[test]
fn vacated_threads_are_dropped() {
    let mut g = DependencyGraph::new();
    let a = g.add_task(Task::new(
        "cpu",
        TaskKind::CpuWork,
        ExecThread::Cpu(CpuThreadId(0)),
        10,
    ));
    let b = g.add_task(Task::new(
        "gpu",
        TaskKind::GpuKernel,
        ExecThread::Gpu(DeviceId(0), StreamId(0)),
        20,
    ));
    g.add_dep(a, b, DepKind::Correlation);

    // Remove the only GPU task.
    let mut p = PatchGraph::new(&g);
    p.remove_task(b);
    let removed = p.finish();
    let r = assert_equiv(&g, &removed, &EarliestStart);
    assert!(!r
        .thread_end
        .contains_key(&ExecThread::Gpu(DeviceId(0), StreamId(0))));

    // Move the only CPU task to a new thread: old thread vacated, new
    // thread appears.
    let mut p = PatchGraph::new(&g);
    p.set_thread(a, ExecThread::Cpu(CpuThreadId(9)));
    let moved = p.finish();
    let r = assert_equiv(&g, &moved, &EarliestStart);
    assert!(r.thread_end.contains_key(&ExecThread::Cpu(CpuThreadId(9))));
    assert!(!r.thread_end.contains_key(&ExecThread::Cpu(CpuThreadId(0))));
}
