//! The heap-based simulator against the reference oracle.
//!
//! The compiled frontier ([`daydream_core::simulate`]) must dispatch the
//! *exact* sequence of the retained quadratic reference loop
//! ([`daydream_core::simulate_reference`]) under the default policy:
//! identical `start_ns`, `makespan_ns`, `wait_ns`, and `thread_end` on
//! arbitrary DAGs — varying thread counts, durations, gaps, and removed
//! tasks. Plus pinned tests that the P3 and vDNN schedule overrides still
//! steer dispatch order on the new frontier.

use daydream_core::whatif::P3Scheduler;
use daydream_core::{
    simulate, simulate_compiled, simulate_reference, simulate_windowed_with, simulate_with,
    CommChannel, CompiledGraph, DepKind, DependencyGraph, EarliestStart, ExecThread, Task,
    TaskKind, WindowedOptions,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};
use proptest::prelude::*;

/// The simulator's thread universe for random graphs: two CPU threads,
/// two GPU streams, one communication channel.
fn thread_for(sel: u64) -> ExecThread {
    match sel % 5 {
        0 => ExecThread::Cpu(CpuThreadId(0)),
        1 => ExecThread::Cpu(CpuThreadId(1)),
        2 => ExecThread::Gpu(DeviceId(0), StreamId(0)),
        3 => ExecThread::Gpu(DeviceId(0), StreamId(1)),
        _ => ExecThread::Comm(CommChannel::Collective),
    }
}

/// Builds a random DAG: tasks with arbitrary threads/durations/gaps,
/// forward edges only (acyclic by construction), then a few removals
/// (which exercise tombstone bridging).
fn build(tasks: &[(u64, u64, u64)], edges: &[(u64, u64)], removals: &[u64]) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    let n = tasks.len();
    for (i, &(sel, dur, gap)) in tasks.iter().enumerate() {
        let mut t = Task::new(format!("t{i}"), TaskKind::CpuWork, thread_for(sel), dur);
        t.gap_ns = gap;
        g.add_task(t);
    }
    for &(a, b) in edges {
        let (x, y) = ((a as usize) % n, (b as usize) % n);
        if x == y {
            continue;
        }
        let (from, to) = (x.min(y), x.max(y));
        g.add_dep(
            daydream_core::TaskId(from),
            daydream_core::TaskId(to),
            DepKind::Transform,
        );
    }
    for &r in removals {
        g.remove_task(daydream_core::TaskId((r as usize) % n));
    }
    g
}

proptest! {
    #[test]
    fn heap_simulator_matches_reference(
        tasks in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..90),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..250),
        removals in prop::collection::vec(0u64..10_000, 0..12),
    ) {
        let g = build(&tasks, &edges, &removals);
        let fast = simulate(&g).expect("forward-edge graphs are DAGs");
        let oracle = simulate_reference(&g).expect("forward-edge graphs are DAGs");
        prop_assert_eq!(&fast.start_ns, &oracle.start_ns);
        prop_assert_eq!(fast.makespan_ns, oracle.makespan_ns);
        prop_assert_eq!(&fast.wait_ns, &oracle.wait_ns);
        prop_assert_eq!(&fast.thread_end, &oracle.thread_end);
    }

    // Wide-frontier stress: many unchained tasks contending for one
    // channel — the exact shape that made the reference loop quadratic.
    #[test]
    fn heap_simulator_matches_reference_on_wide_frontiers(
        durs in prop::collection::vec(1u64..50, 2..120),
        feeders in prop::collection::vec((0u64..10_000, 1u64..100), 1..8),
    ) {
        let mut g = DependencyGraph::new();
        let chan = ExecThread::Comm(CommChannel::Collective);
        let feeder_ids: Vec<_> = feeders
            .iter()
            .enumerate()
            .map(|(i, &(_, d))| {
                g.add_task(Task::new(
                    format!("k{i}"),
                    TaskKind::GpuKernel,
                    ExecThread::Gpu(DeviceId(0), StreamId(i as u32 % 2)),
                    d,
                ))
            })
            .collect();
        for (i, &d) in durs.iter().enumerate() {
            let m = g.add_task(Task::new(format!("m{i}"), TaskKind::CpuWork, chan, d));
            let f = feeder_ids[i % feeder_ids.len()];
            g.add_dep(f, m, DepKind::Comm);
        }
        let fast = simulate(&g).unwrap();
        let oracle = simulate_reference(&g).unwrap();
        prop_assert_eq!(&fast.start_ns, &oracle.start_ns);
        prop_assert_eq!(fast.makespan_ns, oracle.makespan_ns);
    }

    // The speculative windowed path must be byte-identical to the serial
    // compiled simulator on arbitrary DAGs. Forced to engage on small
    // graphs (`min_tasks: 0`); adversarial shapes (zero durations,
    // cross-thread fan-in, removals) trigger both full certification and
    // rollback re-dispatch across runs, so both commit paths are covered.
    #[test]
    fn windowed_simulator_matches_serial(
        tasks in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..90),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..250),
        removals in prop::collection::vec(0u64..10_000, 0..12),
        windows in 1usize..9,
    ) {
        let g = build(&tasks, &edges, &removals);
        let cg = CompiledGraph::compile(&g);
        let serial = simulate_compiled(&cg).expect("forward-edge graphs are DAGs");
        let opts = WindowedOptions { windows, min_tasks: 0 };
        let (win, stats) = simulate_windowed_with(&cg, &EarliestStart, &opts)
            .expect("forward-edge graphs are DAGs");
        prop_assert_eq!(&win, &serial);
        prop_assert_eq!(stats.certified_tasks + stats.redispatched_tasks, cg.len());
    }
}

/// The two simulators agree on a real profiled model graph end to end.
#[test]
fn heap_simulator_matches_reference_on_profiled_model() {
    let model = daydream_models::zoo::resnet50();
    let cfg = daydream_runtime::ExecConfig::pytorch_2080ti().with_batch(4);
    let trace = daydream_runtime::ground_truth::run_baseline(&model, &cfg);
    let pg = daydream_core::ProfiledGraph::from_trace(&trace);
    let fast = simulate(&pg.graph).unwrap();
    let oracle = simulate_reference(&pg.graph).unwrap();
    assert_eq!(fast, oracle);
    assert!(fast.makespan_ns > 0);
}

/// Pinned: the P3 frontier policy reorders equal-feasibility transfers on
/// a communication channel by priority, where the default policy follows
/// task ids.
#[test]
fn p3_order_overrides_comm_dispatch_on_new_frontier() {
    let chan = ExecThread::Comm(CommChannel::Send);
    let mut g = DependencyGraph::new();
    let mk = |p: i64| {
        let mut t = Task::new(format!("push_p{p}"), TaskKind::CpuWork, chan, 10);
        t.priority = p;
        t
    };
    let low = g.add_task(mk(1));
    let high = g.add_task(mk(5));
    let mid = g.add_task(mk(3));

    // Default policy: id order.
    let d = simulate(&g).unwrap();
    assert_eq!(
        (d.start_of(low), d.start_of(high), d.start_of(mid)),
        (0, 10, 20),
        "EarliestStart dispatches in task-id order"
    );

    // P3 policy: priority order (high, mid, low).
    let p = simulate_with(&g, &P3Scheduler).unwrap();
    assert_eq!(
        (p.start_of(high), p.start_of(mid), p.start_of(low)),
        (0, 10, 20),
        "P3Scheduler dispatches the channel by descending priority"
    );
    assert_eq!(p.makespan_ns, d.makespan_ns);
}

/// Pinned: the canonical P3 semantics on a *mixed* comm/compute frontier.
/// A zero-cost compute dispatch can unlock a higher-priority transfer at
/// the channel's current feasibility; the heap frontier then prefers the
/// higher priority deterministically. (The legacy `Scheduler` oracle's
/// pairwise scan is intransitive on mixed ties and may pick differently —
/// which is why no equivalence proptest runs under the P3 policy.)
#[test]
fn p3_mixed_frontier_prefers_unlocked_high_priority_transfer() {
    let chan = ExecThread::Comm(CommChannel::Send);
    let mut g = DependencyGraph::new();
    let mut low = Task::new("push_low", TaskKind::CpuWork, chan, 10);
    low.priority = 5;
    let low = g.add_task(low);
    // Zero-cost compute task whose completion releases the high-priority
    // transfer at t=0.
    let unlock = g.add_task(Task::new(
        "launch",
        TaskKind::CpuWork,
        ExecThread::Cpu(CpuThreadId(0)),
        0,
    ));
    let mut high = Task::new("push_high", TaskKind::CpuWork, chan, 10);
    high.priority = 9;
    let high = g.add_task(high);
    g.add_dep(unlock, high, DepKind::Comm);

    let p = simulate_with(&g, &P3Scheduler).unwrap();
    assert_eq!(p.start_of(unlock), 0);
    assert_eq!(
        (p.start_of(high), p.start_of(low)),
        (0, 10),
        "the released higher-priority transfer wins the channel"
    );
}

/// Pinned: P3's priority override only touches communication channels —
/// compute threads keep id order under the P3 policy.
#[test]
fn p3_order_leaves_compute_threads_in_id_order() {
    let gpu = ExecThread::Gpu(DeviceId(0), StreamId(0));
    let mut g = DependencyGraph::new();
    let mk = |p: i64| {
        let mut t = Task::new(format!("k_p{p}"), TaskKind::GpuKernel, gpu, 10);
        t.priority = p;
        t
    };
    let a = g.add_task(mk(1));
    let b = g.add_task(mk(9));
    let p = simulate_with(&g, &P3Scheduler).unwrap();
    assert_eq!((p.start_of(a), p.start_of(b)), (0, 10));
}

/// Pinned: vDNN's schedule override (the look-ahead prefetch release,
/// modeled as Transform edges) still gates dispatch on the new frontier:
/// every re-allocation for a prefetch starts only after the releasing
/// backward task has finished.
#[test]
fn vdnn_prefetch_release_still_gates_dispatch() {
    use daydream_core::whatif::{what_if_vdnn, VdnnConfig};
    let model = daydream_models::zoo::vgg19();
    let cfg = daydream_runtime::ExecConfig::pytorch_2080ti().with_batch(8);
    let trace = daydream_runtime::ground_truth::run_baseline(&model, &cfg);
    let mut pg = daydream_core::ProfiledGraph::from_trace(&trace);
    let offloaded = what_if_vdnn(&mut pg, &model, &VdnnConfig::default());
    assert!(offloaded > 0);
    let sim = simulate(&pg.graph).unwrap();
    let mut checked = 0;
    for (id, t) in pg.graph.iter() {
        if t.name != "cudaMalloc_vDNN" {
            continue;
        }
        for &(pred, kind) in pg.graph.predecessors(id) {
            if kind != DepKind::Transform {
                continue;
            }
            let p = pg.graph.task(pred);
            assert!(
                sim.start_of(id) >= sim.start_of(pred) + p.duration_ns + p.gap_ns,
                "prefetch {} dispatched before its release task {}",
                t.name,
                p.name
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "look-ahead release edges must exist");
}
