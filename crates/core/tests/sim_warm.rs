//! Warm scratch-arena evaluation against the fresh-allocation oracle.
//!
//! `simulate_warm_with` reuses one epoch-stamped [`SimScratch`] arena
//! across back-to-back evaluations; a stale stamp surviving an epoch
//! bump, a buffer sized for the wrong base, or a missed overlay slot
//! would all show up as a divergence from `simulate_incremental_with`
//! run fresh. So: random DAGs, random op sequences (retimes, structural
//! inserts, removals), interleaved across *two* bases and three
//! frontier policies (priority-blind, priority-ranking, and one that is
//! not incremental-safe), with forced fallbacks mixed in — every step
//! on the one shared arena must be byte-identical to the oracle.

use daydream_core::whatif::P3Scheduler;
use daydream_core::{
    simulate_incremental_with, simulate_warm_with, CommChannel, CompactId, CompiledGraph, DepKind,
    DependencyGraph, EarliestStart, ExecThread, FrontierOrder, GraphEdit, GraphPatch, GraphView,
    IncrementalOptions, PatchGraph, Rank, Schedule, SimScratch, Task, TaskId, TaskKind,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};
use proptest::prelude::*;

/// Ranks by duration — not stable across retimes, so the warm path must
/// take the full-simulation fallback and still match the oracle's.
struct ByDuration;
impl FrontierOrder for ByDuration {
    fn rank(&self, graph: &CompiledGraph, task: CompactId) -> Rank {
        (graph.duration_ns(task), task.0 as u64)
    }
}

fn thread_for(sel: u64) -> ExecThread {
    match sel % 5 {
        0 => ExecThread::Cpu(CpuThreadId(0)),
        1 => ExecThread::Cpu(CpuThreadId(1)),
        2 => ExecThread::Gpu(DeviceId(0), StreamId(0)),
        3 => ExecThread::Gpu(DeviceId(0), StreamId(1)),
        _ => ExecThread::Comm(CommChannel::Collective),
    }
}

fn build_dag(tasks: &[(u64, u64, u64)], edges: &[(u64, u64)]) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    let n = tasks.len();
    for (i, &(sel, dur, gap)) in tasks.iter().enumerate() {
        let mut t = Task::new(format!("t{i}"), TaskKind::CpuWork, thread_for(sel), dur);
        t.gap_ns = gap;
        t.priority = (dur % 7) as i64 - 3;
        g.add_task(t);
    }
    for &(a, b) in edges {
        let (x, y) = ((a as usize) % n, (b as usize) % n);
        if x == y {
            continue;
        }
        g.add_dep(TaskId(x.min(y)), TaskId(x.max(y)), DepKind::Transform);
    }
    g
}

/// One random mutation decoded against the overlay's current state:
/// retimes (duration / priority / thread), structural edits (edge add
/// and remove, task insert), and task removal.
fn apply_random_op(p: &mut PatchGraph<'_>, op: (u64, u64, u64, u64)) {
    let (sel, a, b, v) = op;
    let live = p.live_ids();
    if live.is_empty() {
        return;
    }
    let pick = |x: u64| live[(x as usize) % live.len()];
    match sel % 8 {
        0 => p.set_duration(pick(a), v % 500),
        1 => p.set_priority(pick(a), v as i64 % 10 - 5),
        2 => {
            let (x, y) = (pick(a), pick(b));
            if x != y {
                p.add_dep(x.min(y), x.max(y), DepKind::Transform);
            }
        }
        3 => {
            let (x, y) = (pick(a), pick(b));
            p.remove_dep(x.min(y), x.max(y));
        }
        4 => {
            if live.len() > 1 {
                p.remove_task(pick(a));
            }
        }
        5 => {
            let anchor = pick(a);
            let mut t = Task::new("ins", TaskKind::CpuWork, thread_for(v), v % 300);
            t.gap_ns = v % 13;
            let id = p.add_task(t);
            p.add_dep(anchor, id, DepKind::Transform);
        }
        6 => p.set_thread(pick(a), thread_for(v)),
        _ => p.set_duration(pick(a), v % 50),
    }
}

/// One compiled base with a captured schedule per policy.
struct WarmBase {
    graph: DependencyGraph,
    cg: CompiledGraph,
    sched_es: Schedule,
    sched_p3: Schedule,
    sched_dur: Schedule,
}

impl WarmBase {
    fn build(tasks: &[(u64, u64, u64)], edges: &[(u64, u64)]) -> WarmBase {
        let graph = build_dag(tasks, edges);
        let cg = CompiledGraph::compile(&graph);
        let sched_es = Schedule::capture_with(&cg, &EarliestStart).expect("base must be a DAG");
        let sched_p3 = Schedule::capture_with(&cg, &P3Scheduler).expect("base must be a DAG");
        let sched_dur = Schedule::capture_with(&cg, &ByDuration).expect("base must be a DAG");
        WarmBase {
            graph,
            cg,
            sched_es,
            sched_p3,
            sched_dur,
        }
    }
}

/// Evaluates `patch` warm on the shared arena and fresh via the classic
/// clone-everything path; the makespan, the work accounting, and the
/// fully materialized per-task simulation must all agree.
fn check_step<O: FrontierOrder>(
    cg: &CompiledGraph,
    schedule: &Schedule,
    patch: &GraphPatch,
    order: &O,
    opts: &IncrementalOptions,
    scratch: &mut SimScratch,
) {
    let warm = simulate_warm_with(cg, schedule, patch, scratch, order, opts)
        .expect("patched graph must stay a DAG");
    let (applied, trace) = cg.apply_traced(patch);
    let oracle = simulate_incremental_with(cg, schedule, &applied, patch, &trace, order, opts)
        .expect("patched graph must stay a DAG");
    assert_eq!(
        warm.makespan_ns, oracle.sim.makespan_ns,
        "makespan diverged"
    );
    assert_eq!(warm.stats, oracle.stats, "path accounting diverged");
    let materialized = scratch
        .materialize(schedule)
        .expect("a completed warm evaluation must materialize");
    assert_eq!(
        materialized, oracle.sim,
        "arena simulation diverged from fresh allocation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Back-to-back warm evaluations on ONE arena, hopping between two
    // bases of different sizes and three policies, with the cone budget
    // cycling through default / forced / zero (forced full fallback).
    // Every step must be byte-identical to a fresh-allocation run.
    #[test]
    fn arena_reuse_is_byte_identical_to_fresh_allocation(
        tasks_a in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..40),
        edges_a in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..80),
        tasks_b in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..25),
        edges_b in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..50),
        steps in prop::collection::vec(
            (
                0u64..6, // base x policy selector
                0u64..3, // cone budget: default / forced / zero
                prop::collection::vec(
                    (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..8),
            ),
            1..10),
    ) {
        let bases = [
            WarmBase::build(&tasks_a, &edges_a),
            WarmBase::build(&tasks_b, &edges_b),
        ];
        let mut scratch = SimScratch::new();
        for (sel, budget, ops) in &steps {
            let base = &bases[(*sel as usize) % 2];
            let mut p = PatchGraph::new(&base.graph);
            for &op in ops {
                apply_random_op(&mut p, op);
            }
            let patch = p.finish();
            let opts = match budget {
                0 => IncrementalOptions::default(),
                1 => IncrementalOptions { max_cone_fraction: 1.0 },
                _ => IncrementalOptions { max_cone_fraction: 0.0 },
            };
            match (*sel / 2) % 3 {
                0 => check_step(
                    &base.cg, &base.sched_es, &patch, &EarliestStart, &opts, &mut scratch),
                1 => check_step(
                    &base.cg, &base.sched_p3, &patch, &P3Scheduler, &opts, &mut scratch),
                _ => check_step(
                    &base.cg, &base.sched_dur, &patch, &ByDuration, &opts, &mut scratch),
            }
        }
    }
}
