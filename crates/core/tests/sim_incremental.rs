//! Incremental cone re-simulation against the full simulator.
//!
//! `simulate_incremental_with` must be *byte-identical* to a full
//! `simulate_compiled_with` run of the patched graph: same per-task
//! starts and waits, same per-thread ends, same makespan — on random
//! DAGs with random op sequences under both frontier policies, on the
//! profiled ResNet-50 / BERT graphs for every what-if transform in the
//! catalog (including P3 over its replicated base), and on every
//! fallback path. Patch composition (`GraphPatch::compose`, layered
//! `PatchGraph`) is pinned against sequential apply here too.

use daydream_comm::ClusterConfig;
use daydream_core::whatif::{
    p3_insert_plan, p3_replicated_base, plan_amp, plan_bandwidth, plan_batch_size,
    plan_blueconnect, plan_dgc, plan_distributed, plan_fused_adam, plan_gist, plan_metaflow,
    plan_p3_inserts, plan_reconstruct_bn, plan_upgrade_gpu, plan_vdnn, what_if_distributed,
    DgcConfig, GistConfig, P3Config, P3Scheduler, Substitution, VdnnConfig,
};
use daydream_core::{
    simulate_compiled_with, simulate_incremental_with, CommChannel, CompactId, CompiledGraph,
    DepKind, DependencyGraph, EarliestStart, ExecThread, FallbackReason, FrontierOrder, GraphEdit,
    GraphPatch, GraphView, IncrementalOptions, IncrementalStats, PatchGraph, ProfiledGraph, Rank,
    Schedule, Task, TaskId, TaskKind,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};
use proptest::prelude::*;

/// Never fall back on cone size: exercises the incremental machinery on
/// every patch, however dense.
const FORCE: IncrementalOptions = IncrementalOptions {
    max_cone_fraction: 1.0,
};

/// Always fall back on cone size (unless the patch has no simulation
/// effect at all): exercises the full-fallback path.
const FALLBACK: IncrementalOptions = IncrementalOptions {
    max_cone_fraction: 0.0,
};

/// Runs the incremental simulator and the full simulator over the same
/// patched graph and asserts identical output (dense *and* expanded
/// arena-indexed forms), returning the incremental stats.
fn assert_incremental<O: FrontierOrder>(
    base: &DependencyGraph,
    patch: &GraphPatch,
    order: &O,
    opts: &IncrementalOptions,
) -> IncrementalStats {
    let cg = CompiledGraph::compile(base);
    let schedule = Schedule::capture_with(&cg, order).expect("base must be a DAG");
    let (applied, trace) = cg.apply_traced(patch);
    let incremental =
        simulate_incremental_with(&cg, &schedule, &applied, patch, &trace, order, opts)
            .expect("patched graph must stay a DAG");
    let full = simulate_compiled_with(&applied, order).expect("patched graph must stay a DAG");
    assert_eq!(
        incremental.sim, full,
        "incremental simulation diverged from the full run"
    );
    assert_eq!(
        incremental.sim.clone().into_sim_result(&applied),
        full.into_sim_result(&applied),
        "expanded SimResult diverged"
    );
    incremental.stats
}

// --- The random-DAG universe of patch_equivalence.rs -----------------------

fn thread_for(sel: u64) -> ExecThread {
    match sel % 5 {
        0 => ExecThread::Cpu(CpuThreadId(0)),
        1 => ExecThread::Cpu(CpuThreadId(1)),
        2 => ExecThread::Gpu(DeviceId(0), StreamId(0)),
        3 => ExecThread::Gpu(DeviceId(0), StreamId(1)),
        _ => ExecThread::Comm(CommChannel::Collective),
    }
}

fn build_dag(tasks: &[(u64, u64, u64)], edges: &[(u64, u64)]) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    let n = tasks.len();
    for (i, &(sel, dur, gap)) in tasks.iter().enumerate() {
        let mut t = Task::new(format!("t{i}"), TaskKind::CpuWork, thread_for(sel), dur);
        t.gap_ns = gap;
        t.priority = (dur % 7) as i64 - 3;
        g.add_task(t);
    }
    for &(a, b) in edges {
        let (x, y) = ((a as usize) % n, (b as usize) % n);
        if x == y {
            continue;
        }
        g.add_dep(TaskId(x.min(y)), TaskId(x.max(y)), DepKind::Transform);
    }
    g
}

/// One random mutation decoded against the overlay's current state
/// (inserts keep edges forward, so the patched graph stays a DAG).
fn apply_random_op(p: &mut PatchGraph<'_>, op: (u64, u64, u64, u64)) {
    let (sel, a, b, v) = op;
    let live = p.live_ids();
    if live.is_empty() {
        return;
    }
    let pick = |x: u64| live[(x as usize) % live.len()];
    match sel % 8 {
        0 => p.set_duration(pick(a), v % 500),
        1 => p.set_priority(pick(a), v as i64 % 10 - 5),
        2 => {
            let (x, y) = (pick(a), pick(b));
            if x != y {
                p.add_dep(x.min(y), x.max(y), DepKind::Transform);
            }
        }
        3 => {
            let (x, y) = (pick(a), pick(b));
            p.remove_dep(x.min(y), x.max(y));
        }
        4 => {
            if live.len() > 1 {
                p.remove_task(pick(a));
            }
        }
        5 => {
            let anchor = pick(a);
            let mut t = Task::new("ins", TaskKind::CpuWork, thread_for(v), v % 300);
            t.gap_ns = v % 13;
            let id = p.add_task(t);
            p.add_dep(anchor, id, DepKind::Transform);
        }
        6 => p.set_thread(pick(a), thread_for(v)),
        _ => {
            let anchor = pick(a);
            let mid = p.add_task(Task::new("mid", TaskKind::CpuWork, thread_for(b), v % 100));
            let tail = p.add_task(Task::new("tail", TaskKind::CpuWork, thread_for(v), v % 50));
            p.add_dep(anchor, mid, DepKind::Transform);
            p.add_dep(mid, tail, DepKind::Transform);
        }
    }
}

proptest! {
    // Random DAGs x random op sequences under both policies, with the
    // cone forced, with the default threshold, and with forced fallback:
    // every path must equal the full simulation.
    #[test]
    fn random_patches_match_full_simulation(
        tasks in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..60),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..150),
        ops in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..40),
    ) {
        let g = build_dag(&tasks, &edges);
        let mut p = PatchGraph::new(&g);
        for &op in &ops {
            apply_random_op(&mut p, op);
        }
        let patch = p.finish();
        let stats = assert_incremental(&g, &patch, &EarliestStart, &FORCE);
        prop_assert!(
            stats.fallback.is_none() || stats.fallback == Some(FallbackReason::VacatedThreads),
            "forced cone may only fall back on vacated threads, got {:?}",
            stats.fallback
        );
        assert_incremental(&g, &patch, &EarliestStart, &IncrementalOptions::default());
        assert_incremental(&g, &patch, &P3Scheduler, &FORCE);
        assert_incremental(&g, &patch, &P3Scheduler, &IncrementalOptions::default());
        let fb = assert_incremental(&g, &patch, &EarliestStart, &FALLBACK);
        prop_assert!(
            fb.fallback.is_some() || fb.redispatched == 0,
            "zero threshold must fall back unless the patch is a sim no-op"
        );
    }

    // The apply-free estimate surface of the sweep search's low-fidelity
    // rungs: `busy_time_bound` over the base + delta must equal summing
    // costs over the *applied* graph, and `incremental_cone_fits` must
    // mirror the real path's size decision — a `false` answer implies
    // the applied attempt refuses, a `true` answer implies it only ever
    // refuses for vacated threads (invisible before the apply).
    #[test]
    fn apply_free_estimates_match_the_applied_graph(
        tasks in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..60),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..150),
        ops in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..40),
        budget_pct in 0u64..101,
    ) {
        use daydream_core::{
            busy_time_bound, incremental_cone_fits, thread_busy_ns,
            try_simulate_incremental_with,
        };
        let g = build_dag(&tasks, &edges);
        let mut p = PatchGraph::new(&g);
        for &op in &ops {
            apply_random_op(&mut p, op);
        }
        let patch = p.finish();
        let base = CompiledGraph::compile(&g);
        let (applied, trace) = base.apply_traced(&patch);

        let base_busy = thread_busy_ns(&base);
        let bound = busy_time_bound(&base, &base_busy, &patch);
        let applied_busy = thread_busy_ns(&applied).into_iter().max().unwrap_or(0);
        prop_assert_eq!(
            bound, applied_busy,
            "delta busy bound diverged from the applied graph's busy time"
        );
        // Not asserted against the makespan: a trailing `gap_ns` on a
        // thread's last task occupies the thread but not the makespan,
        // so the busy sum is a lower bound only up to trailing gaps.

        let opts = IncrementalOptions { max_cone_fraction: budget_pct as f64 / 100.0 };
        let schedule = Schedule::capture_with(&base, &EarliestStart).unwrap();
        let fits = incremental_cone_fits(&base, &schedule, &patch, &EarliestStart, &opts);
        let attempt =
            try_simulate_incremental_with(&base, &schedule, &applied, &patch, &trace,
                &EarliestStart, &opts)
            .unwrap();
        match attempt {
            Ok(_) => prop_assert!(fits, "the attempt ran the cone but the precheck said no"),
            Err(FallbackReason::VacatedThreads) => {} // invisible pre-apply, either answer is fine
            Err(_) => prop_assert!(!fits, "the attempt refused on size but the precheck said fits"),
        }
    }

    // Composition: `prior.compose(base, refinement)` must equal applying
    // the two patches sequentially — structurally and under simulation.
    #[test]
    fn compose_matches_sequential_apply(
        tasks in prop::collection::vec((0u64..5, 0u64..200, 0u64..30), 1..40),
        edges in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..80),
        prior_ops in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..20),
        refine_ops in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000), 0..20),
    ) {
        let g = build_dag(&tasks, &edges);
        let mut p = PatchGraph::new(&g);
        for &op in &prior_ops {
            apply_random_op(&mut p, op);
        }
        let prior = p.finish();
        let mid = prior.apply_reference(&g);
        let mut r = PatchGraph::new(&mid);
        for &op in &refine_ops {
            apply_random_op(&mut r, op);
        }
        let refinement = r.finish();

        let composed = prior.compose(&g, &refinement);
        let sequential = refinement.apply_reference(&mid);
        let composed_cg = CompiledGraph::compile(&composed.apply_reference(&g));
        let sequential_cg = CompiledGraph::compile(&sequential);
        prop_assert_eq!(
            canonical(&composed_cg),
            canonical(&sequential_cg),
            "composed structure diverged from sequential apply"
        );
        // The incremental compiler handles the composed patch like any
        // other, and the incremental simulator agrees with full.
        assert_incremental(&g, &composed, &EarliestStart, &FORCE);
    }
}

/// Canonical structural form (as in patch_equivalence.rs): arena id,
/// thread, cost, duration, priority, pred count, sorted successor ids.
type CanonicalTask = (TaskId, ExecThread, u64, u64, i64, u32, Vec<TaskId>);

fn canonical(cg: &CompiledGraph) -> Vec<CanonicalTask> {
    (0..cg.len())
        .map(|i| {
            let c = CompactId(i as u32);
            let mut succs: Vec<TaskId> = cg.successors(c).iter().map(|&s| cg.task_id(s)).collect();
            succs.sort_unstable();
            (
                cg.task_id(c),
                cg.exec_thread(cg.thread_of(c)),
                cg.cost_ns(c),
                cg.duration_ns(c),
                cg.priority(c),
                cg.pred_count(c),
                succs,
            )
        })
        .collect()
}

// --- Pinned small-graph behavior -------------------------------------------

fn cpu(dur: u64) -> Task {
    Task::new("c", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), dur)
}

fn gpu(dur: u64) -> Task {
    Task::new(
        "g",
        TaskKind::GpuKernel,
        ExecThread::Gpu(DeviceId(0), StreamId(0)),
        dur,
    )
}

/// A serial CPU chain of `n` tasks, 10 ns each.
fn chain(n: usize) -> (DependencyGraph, Vec<TaskId>) {
    let mut g = DependencyGraph::new();
    let ids: Vec<TaskId> = (0..n).map(|_| g.add_task(cpu(10))).collect();
    for w in ids.windows(2) {
        g.add_dep(w[0], w[1], DepKind::CpuSeq);
    }
    (g, ids)
}

#[test]
fn tail_retime_redispatches_only_the_tail() {
    let (g, ids) = chain(100);
    let mut p = PatchGraph::new(&g);
    p.set_duration(ids[90], 500);
    let patch = p.finish();
    let stats = assert_incremental(&g, &patch, &EarliestStart, &IncrementalOptions::default());
    assert!(stats.is_incremental());
    assert_eq!(
        stats.redispatched, 10,
        "only the retimed task and its downstream chain re-dispatch"
    );
    assert_eq!(stats.cutoff_ns, Some(900), "cutoff at the retimed start");
}

#[test]
fn empty_patch_redispatches_nothing() {
    let (g, _) = chain(20);
    let patch = PatchGraph::new(&g).finish();
    let stats = assert_incremental(&g, &patch, &EarliestStart, &IncrementalOptions::default());
    assert!(stats.is_incremental());
    assert_eq!(stats.redispatched, 0);
}

#[test]
fn priority_patch_is_free_under_priority_blind_policy() {
    let (g, ids) = chain(20);
    let mut p = PatchGraph::new(&g);
    p.set_priority(ids[0], -99);
    let patch = p.finish();
    // EarliestStart ignores priority: zero cone.
    let stats = assert_incremental(&g, &patch, &EarliestStart, &IncrementalOptions::default());
    assert_eq!(stats.redispatched, 0);
    // P3 ranks comm tasks by priority: the change must be simulated
    // (here everything still agrees — the chain has no comm thread).
    assert_incremental(&g, &patch, &P3Scheduler, &FORCE);
}

/// A dependency removal can let a *later-ranked but earlier-timeline*
/// untouched task be overtaken: the prefix cutoff must not replay it.
/// Base: `x` (GPU, 100 ns) gates `u` (CPU id 1), so `w` (CPU id 2) runs
/// first on the CPU at t=0. Removing the edge frees `u` at t=0; with the
/// lower id it wins the tie and pushes `w` back.
#[test]
fn removed_dep_overtakes_earlier_timeline_task() {
    let mut g = DependencyGraph::new();
    let x = g.add_task(gpu(100));
    let u = g.add_task(cpu(10));
    let w = g.add_task(cpu(50));
    g.add_dep(x, u, DepKind::Sync);
    let mut p = PatchGraph::new(&g);
    p.remove_dep(x, u);
    let patch = p.finish();
    let stats = assert_incremental(&g, &patch, &EarliestStart, &FORCE);
    assert!(stats.is_incremental());
    assert_eq!(
        stats.cutoff_ns,
        Some(0),
        "u can become ready at t=0, so nothing may be replayed"
    );
    // And the semantics: u (id 1) now beats w (id 2) on the shared CPU.
    let cg = CompiledGraph::compile(&g).apply(&patch);
    let sim = simulate_compiled_with(&cg, &EarliestStart)
        .unwrap()
        .into_sim_result(&cg);
    assert_eq!(sim.start_of(u), 0);
    assert_eq!(sim.start_of(w), 10);
}

#[test]
fn late_removed_dep_replays_the_prefix() {
    // x (GPU, long) gates c4 of a CPU chain; removing the edge frees c4
    // at c3's finish. Everything dispatched before fin(c3) replays.
    let (mut g, ids) = chain(6);
    let x = g.add_task(gpu(1_000));
    g.add_dep(x, ids[4], DepKind::Sync);
    let mut p = PatchGraph::new(&g);
    p.remove_dep(x, ids[4]);
    let patch = p.finish();
    let stats = assert_incremental(&g, &patch, &EarliestStart, &IncrementalOptions::default());
    assert!(stats.is_incremental());
    assert_eq!(stats.cutoff_ns, Some(40), "cutoff at c3's finish");
    assert_eq!(
        stats.redispatched, 2,
        "only c4 and c5 re-dispatch; c0..c3 and x (dispatched at t=0) replay"
    );
}

#[test]
fn vacating_patch_falls_back() {
    let mut g = DependencyGraph::new();
    let a = g.add_task(cpu(10));
    let b = g.add_task(gpu(20));
    g.add_dep(a, b, DepKind::Correlation);
    let mut p = PatchGraph::new(&g);
    p.remove_task(b);
    let patch = p.finish();
    let stats = assert_incremental(&g, &patch, &EarliestStart, &FORCE);
    assert_eq!(stats.fallback, Some(FallbackReason::VacatedThreads));
}

#[test]
fn unsafe_policy_falls_back() {
    /// A policy that ranks by duration — not stable across retimes.
    struct ByDuration;
    impl FrontierOrder for ByDuration {
        fn rank(&self, graph: &CompiledGraph, task: CompactId) -> Rank {
            (graph.duration_ns(task), task.0 as u64)
        }
    }
    let (g, ids) = chain(10);
    let mut p = PatchGraph::new(&g);
    p.set_duration(ids[9], 99);
    let patch = p.finish();
    let stats = assert_incremental(&g, &patch, &ByDuration, &FORCE);
    assert_eq!(stats.fallback, Some(FallbackReason::PolicyUnsafe));
}

#[test]
fn layered_overlay_equals_compose() {
    let (g, ids) = chain(8);
    // Prior: retime + insert.
    let mut p = PatchGraph::new(&g);
    p.set_duration(ids[2], 77);
    let ins = p.add_task(gpu(30));
    p.add_dep(ids[3], ins, DepKind::Correlation);
    let prior = p.finish();
    // Refinement recorded two ways: on the materialized mid graph, and
    // on a layered overlay resumed from the prior patch.
    let mid = prior.apply_reference(&g);
    let mut r = PatchGraph::new(&mid);
    r.set_duration(ins, 5);
    r.remove_task(ids[7]);
    let refinement = r.finish();
    let composed = prior.compose(&g, &refinement);

    let mut layered = PatchGraph::layered(&g, &prior);
    layered.set_duration(ins, 5);
    layered.remove_task(ids[7]);
    let via_layered = layered.finish();

    assert_eq!(composed.ops(), via_layered.ops());
    assert_eq!(composed.fingerprint(), via_layered.fingerprint());
    let a = CompiledGraph::compile(&composed.apply_reference(&g));
    let b = CompiledGraph::compile(&refinement.apply_reference(&mid));
    assert_eq!(canonical(&a), canonical(&b));
    assert_incremental(&g, &composed, &EarliestStart, &FORCE);
}

// --- The full what-if catalog over profiled model graphs -------------------

fn resnet_profile() -> ProfiledGraph {
    let model = daydream_models::zoo::resnet50();
    let cfg = daydream_runtime::ExecConfig::pytorch_2080ti().with_batch(4);
    ProfiledGraph::from_trace(&daydream_runtime::ground_truth::run_baseline(&model, &cfg))
}

fn bert_profile() -> ProfiledGraph {
    let model = daydream_models::zoo::bert_base();
    let cfg = daydream_runtime::ExecConfig::pytorch_2080ti().with_batch(2);
    ProfiledGraph::from_trace(&daydream_runtime::ground_truth::run_baseline(&model, &cfg))
}

/// Checks a transform's patch on the profile under the forced cone, the
/// default threshold, and forced fallback — all must equal full.
fn check_transform(pg: &ProfiledGraph, plan: impl FnOnce(&mut PatchGraph<'_>)) {
    let mut p = PatchGraph::new(&pg.graph);
    plan(&mut p);
    let patch = p.finish();
    assert!(!patch.is_empty(), "transform must emit a non-empty patch");
    assert_incremental(&pg.graph, &patch, &EarliestStart, &FORCE);
    assert_incremental(
        &pg.graph,
        &patch,
        &EarliestStart,
        &IncrementalOptions::default(),
    );
    assert_incremental(&pg.graph, &patch, &EarliestStart, &FALLBACK);
}

#[test]
fn incremental_matches_full_for_amp_on_resnet() {
    check_transform(&resnet_profile(), |g| plan_amp(g));
}

#[test]
fn incremental_matches_full_for_upgrade_gpu_on_resnet() {
    let (old, new) = (
        daydream_device::GpuSpec::rtx_2080ti(),
        daydream_device::GpuSpec::v100(),
    );
    check_transform(&resnet_profile(), |g| {
        plan_upgrade_gpu(g, &old, &new);
    });
}

#[test]
fn incremental_matches_full_for_batch_size_on_resnet() {
    let pg = resnet_profile();
    let old_batch = pg.meta.batch_size as u64;
    check_transform(&pg, |g| {
        plan_batch_size(g, old_batch, 16);
    });
}

#[test]
fn incremental_matches_full_for_reconstruct_bn_on_resnet() {
    let model = daydream_models::zoo::resnet50();
    check_transform(&resnet_profile(), |g| plan_reconstruct_bn(g, &model));
}

#[test]
fn incremental_matches_full_for_vdnn_on_resnet() {
    let pg = resnet_profile();
    let model = daydream_models::zoo::resnet50();
    let batch = pg.meta.batch_size as u64;
    check_transform(&pg, |g| {
        plan_vdnn(g, &model, &VdnnConfig::default(), batch);
    });
}

#[test]
fn incremental_matches_full_for_gist_on_resnet() {
    check_transform(&resnet_profile(), |g| {
        plan_gist(g, &GistConfig::default());
    });
    check_transform(&resnet_profile(), |g| {
        plan_gist(
            g,
            &GistConfig {
                lossy: true,
                launch_ns: 6_000,
            },
        );
    });
}

#[test]
fn incremental_matches_full_for_ddp_on_resnet() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 1, 10.0);
    let buckets = pg.meta.buckets.clone();
    check_transform(&pg, |g| {
        plan_distributed(g, &buckets, &cluster);
    });
}

#[test]
fn incremental_matches_full_for_blueconnect_on_resnet() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 2, 10.0);
    let buckets = pg.meta.buckets.clone();
    check_transform(&pg, |g| {
        let ars = plan_distributed(g, &buckets, &cluster);
        plan_blueconnect(g, &cluster, &ars);
    });
}

#[test]
fn incremental_matches_full_for_dgc_on_resnet() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 1, 10.0);
    let buckets = pg.meta.buckets.clone();
    check_transform(&pg, |g| {
        let ars = plan_distributed(g, &buckets, &cluster);
        plan_dgc(g, &ars, &DgcConfig::default());
    });
}

#[test]
fn incremental_matches_full_for_bandwidth_on_distributed_resnet() {
    let mut pg = resnet_profile();
    what_if_distributed(&mut pg, &ClusterConfig::new(4, 1, 10.0));
    check_transform(&pg, |g| {
        plan_bandwidth(g, 2.0);
    });
}

#[test]
fn incremental_matches_full_for_fused_adam_on_bert() {
    check_transform(&bert_profile(), |g| {
        plan_fused_adam(g).expect("BERT has weight-update GPU tasks");
    });
}

#[test]
fn incremental_matches_full_for_metaflow_on_bert() {
    let model = daydream_models::zoo::bert_base();
    let mut policy = Vec::new();
    for l in &model.layers {
        if l.name.ends_with("attn.key") || l.name.ends_with("attn.value") {
            policy.push(Substitution::RemoveLayer(l.id));
        } else if l.name.ends_with("attn.query") {
            policy.push(Substitution::ScaleLayer(l.id, 1.8));
        }
    }
    check_transform(&bert_profile(), |g| plan_metaflow(g, &policy));
}

#[test]
fn incremental_matches_full_for_p3_on_replicated_base() {
    let pg = resnet_profile();
    let cluster = ClusterConfig::new(4, 1, 4.0);
    for cfg in [P3Config::baseline(cluster), P3Config::p3(cluster)] {
        let rep = p3_replicated_base(&pg, cfg.iterations);
        let inserts = p3_insert_plan(&pg, &rep, &cfg);
        let mut p = PatchGraph::new(&rep.graph);
        plan_p3_inserts(&mut p, &inserts);
        let patch = p.finish();
        assert_incremental(&rep.graph, &patch, &P3Scheduler, &FORCE);
        assert_incremental(
            &rep.graph,
            &patch,
            &P3Scheduler,
            &IncrementalOptions::default(),
        );
    }
}
