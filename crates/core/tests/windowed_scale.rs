//! Windowed dispatch at scale: a 100k-task distributed-training unroll
//! must simulate byte-identically to the serial path, with the
//! speculative fast path fully certified (CI's "Search smoke" runs this
//! in release mode). The falsifiability half — a corrupted speculation
//! being caught and rolled back — is pinned by the `#[cfg(test)]` hook
//! tests inside `daydream_core::windowed`.

use daydream_core::{
    simulate_compiled, simulate_windowed_with, CommChannel, CommPrimitive, CompiledGraph, DepKind,
    DependencyGraph, EarliestStart, ExecThread, Task, TaskKind, WindowedOptions,
};
use daydream_trace::{CpuThreadId, DeviceId, StreamId};

/// The `sim_scale` bench family: CPU launch chain, 4 GPU stream chains,
/// one collective channel.
fn synthetic_graph(n: usize) -> DependencyGraph {
    let steps = n / 3;
    let mut g = DependencyGraph::new();
    g.reserve(steps * 3);
    let cpu = ExecThread::Cpu(CpuThreadId(0));
    let chan = ExecThread::Comm(CommChannel::Collective);
    let mut prev_launch = None;
    let mut prev_kernel = [None; 4];
    for i in 0..steps {
        let stream = (i % 4) as u32;
        let launch = g.add_task(Task::new("cudaLaunchKernel", TaskKind::CpuWork, cpu, 4_000));
        let kernel = g.add_task(Task::new(
            "kernel",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(stream)),
            30_000,
        ));
        let comm = g.add_task(Task::new(
            "allreduce_slice",
            TaskKind::Communication {
                prim: CommPrimitive::AllReduce,
                bytes: 1 << 20,
            },
            chan,
            45_000,
        ));
        if let Some(p) = prev_launch {
            g.add_dep(p, launch, DepKind::CpuSeq);
        }
        if let Some(p) = prev_kernel[stream as usize] {
            g.add_dep(p, kernel, DepKind::GpuSeq);
        }
        g.add_dep(launch, kernel, DepKind::Correlation);
        g.add_dep(kernel, comm, DepKind::Comm);
        prev_launch = Some(launch);
        prev_kernel[stream as usize] = Some(kernel);
    }
    g
}

#[test]
fn windowed_is_byte_identical_to_serial_at_100k() {
    let cg = CompiledGraph::compile(&synthetic_graph(100_000));
    let serial = simulate_compiled(&cg).unwrap();
    let (win, stats) =
        simulate_windowed_with(&cg, &EarliestStart, &WindowedOptions::default()).unwrap();
    assert_eq!(win, serial, "windowed schedule must be byte-identical");
    assert!(stats.engaged, "100k tasks must engage the windowed path");
    assert_eq!(
        stats.rollbacks, 0,
        "replay-shaped unrolls must certify without rollback"
    );
    assert_eq!(stats.certified_tasks, cg.len());
    assert!(stats.windows >= 4);
}
