//! Speculative window-parallel dispatch for very large simulations.
//!
//! The frontier simulator ([`crate::simulate_compiled`]) spends most of
//! its time at 10^6-task scale churning the per-thread binary heaps: on
//! long distributed-training unrolls the communication channel's ready
//! backlog grows linearly, so every dispatch pays `log`-depth sift costs
//! on a heap that no longer fits in cache. This module removes the heaps
//! from the common path:
//!
//! 1. **Speculate** ([`presim`]): a heap-free FIFO-topological pass
//!    computes an *estimated* schedule — per-task start / finish /
//!    dependency-ready times and per-thread dispatch sequences — in one
//!    O(V+E) sweep. On replay-shaped graphs (chain-structured threads,
//!    which is what profiled DNN iterations compile to) the estimate is
//!    exactly the greedy schedule; on adversarial graphs it may diverge.
//! 2. **Certify** ([`verify`]): a linear backward sweep per thread checks
//!    that the estimate is a fixpoint of the greedy dispatch rule — each
//!    start equals `max(ready, prev finish)`, and no later task on the
//!    same thread could have preempted an idle gap (exact check on
//!    `(ready, rank, id)` suffix minima) or won a same-instant tie
//!    (conservative check on `(rank, id)` suffix minima). Any violation
//!    yields the earliest instant the speculation can differ from the
//!    serial execution (the *corruption instant*).
//! 3. **Commit / roll back per window**: task starts are bucketed into
//!    start-time windows; every window strictly below the corruption
//!    instant commits its speculated starts verbatim, and the remainder
//!    is re-dispatched through the *same* [`dispatch_loop`] the serial
//!    simulator runs, seeded from the committed prefix exactly like the
//!    incremental simulator seeds from a cutoff. A fully certified run
//!    never touches a heap; a rollback is never wrong, only slower.
//!
//! The result is **byte-identical to the serial simulator by
//! construction**: commits are only taken where the certification proves
//! the speculation equals the greedy schedule, and everything else runs
//! the real dispatch loop. The equivalence proptests extend to this path
//! (`tests/sim_equivalence.rs`), and a `#[cfg(test)]` corruption hook
//! pins that a *wrong* speculation is caught and rolled back rather than
//! committed.
//!
//! This is a single-process algorithmic optimization (the container this
//! grows on is single-core); it does not spawn worker threads. The win
//! comes from replacing heap churn with linear sweeps, not parallelism.

use crate::compiled::{CompactId, CompiledGraph};
use crate::graph::GraphError;
use crate::sim::{
    dispatch_loop, sim_compiled_core, CompiledSim, EarliestStart, FrontierOrder, Rank,
    ThreadFrontier,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning for [`simulate_windowed_with`].
#[derive(Debug, Clone)]
pub struct WindowedOptions {
    /// Number of start-time windows; `0` picks one per ~16k tasks,
    /// clamped to 4..=64. Windows only set the rollback granularity —
    /// correctness never depends on their placement.
    pub windows: usize,
    /// Below this task count the serial simulator runs directly
    /// (`engaged = false`); the speculative pass only pays off at scale.
    pub min_tasks: usize,
}

impl Default for WindowedOptions {
    fn default() -> Self {
        WindowedOptions {
            windows: 0,
            min_tasks: 32_768,
        }
    }
}

/// Accounting for one windowed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedStats {
    /// Total start-time windows the run was partitioned into.
    pub windows: usize,
    /// Windows committed verbatim from the certified speculation.
    pub certified_windows: usize,
    /// Windows re-dispatched through the serial loop.
    pub redispatched_windows: usize,
    /// 1 if certification found a divergence and rolled back, else 0.
    pub rollbacks: usize,
    /// Tasks committed from the speculation.
    pub certified_tasks: usize,
    /// Tasks re-dispatched through the serial loop.
    pub redispatched_tasks: usize,
    /// `false` when the graph was below `min_tasks` and the serial
    /// simulator ran directly.
    pub engaged: bool,
}

impl WindowedStats {
    fn disengaged(tasks: usize) -> Self {
        WindowedStats {
            windows: 0,
            certified_windows: 0,
            redispatched_windows: 0,
            rollbacks: 0,
            certified_tasks: 0,
            redispatched_tasks: tasks,
            engaged: false,
        }
    }
}

/// Speculated schedule: estimated start/finish/ready per task plus the
/// per-thread dispatch sequences the estimates imply.
struct Presim {
    est_start: Vec<u64>,
    est_tent: Vec<u64>,
    est_fin: Vec<u64>,
    seqs: Vec<Vec<u32>>,
}

/// Windowed simulation under the default policy.
pub fn simulate_windowed(cg: &CompiledGraph) -> Result<CompiledSim, GraphError> {
    simulate_windowed_with(cg, &EarliestStart, &WindowedOptions::default()).map(|(sim, _)| sim)
}

/// Windowed simulation under `order`, returning commit/rollback stats.
pub fn simulate_windowed_with<O: FrontierOrder>(
    cg: &CompiledGraph,
    order: &O,
    opts: &WindowedOptions,
) -> Result<(CompiledSim, WindowedStats), GraphError> {
    windowed_core(cg, order, opts, None)
}

/// Test-only entry that corrupts the speculated starts before
/// certification — pins that a wrong speculation (e.g. a bogus window
/// seeded from a bad boundary) is *detected* and rolled back, not
/// committed.
#[cfg(test)]
pub(crate) fn simulate_windowed_corrupted<O: FrontierOrder>(
    cg: &CompiledGraph,
    order: &O,
    opts: &WindowedOptions,
    corrupt: &dyn Fn(&mut Vec<u64>),
) -> Result<(CompiledSim, WindowedStats), GraphError> {
    windowed_core(cg, order, opts, Some(corrupt))
}

#[allow(clippy::type_complexity)]
fn windowed_core<O: FrontierOrder>(
    cg: &CompiledGraph,
    order: &O,
    opts: &WindowedOptions,
    corrupt: Option<&dyn Fn(&mut Vec<u64>)>,
) -> Result<(CompiledSim, WindowedStats), GraphError> {
    let n = cg.len();
    if n < opts.min_tasks || n == 0 {
        let (sim, _) = sim_compiled_core(cg, order)?;
        return Ok((sim, WindowedStats::disengaged(n)));
    }

    let mut p = presim(cg)?;
    if let Some(f) = corrupt {
        f(&mut p.est_start);
    }
    let ranks: Vec<Rank> = (0..n)
        .map(|i| order.rank(cg, CompactId(i as u32)))
        .collect();
    let cut = verify(&p, &ranks);

    let w_target = if opts.windows == 0 {
        (n / 16_384).clamp(4, 64)
    } else {
        opts.windows.max(1)
    };
    let boundaries = window_boundaries(&p.est_start, w_target);
    let windows = boundaries.len() + 1;

    // Roll back to the last window boundary at or below the corruption
    // instant: windows strictly below it commit, the rest re-dispatch.
    let (commit_h, certified_windows) = if cut == u64::MAX {
        (u64::MAX, windows)
    } else {
        let idx = boundaries.partition_point(|&b| b <= cut);
        if idx == 0 {
            (0, 0)
        } else {
            (boundaries[idx - 1], idx)
        }
    };

    let t_count = cg.thread_count();
    let mut start = vec![0u64; n];
    let mut wait = vec![0u64; n];
    let mut progress = vec![0u64; t_count];
    let mut makespan = 0u64;
    let mut committed = vec![false; n];
    let mut committed_tasks = 0usize;

    // Commit each thread's certified prefix. Estimated starts are
    // monotone along a thread sequence wherever they are genuine, and
    // the corruption cut guarantees everything below `commit_h` is.
    for (t, seq) in p.seqs.iter().enumerate() {
        let mut pf = 0u64;
        for &u in seq {
            let ui = u as usize;
            let s = p.est_start[ui];
            if s >= commit_h {
                break;
            }
            start[ui] = s;
            wait[ui] = s - pf;
            pf = p.est_fin[ui];
            progress[t] = pf;
            makespan = makespan.max(s + cg.duration_ns(CompactId(u)));
            committed[ui] = true;
            committed_tasks += 1;
        }
    }

    let redispatched_tasks = n - committed_tasks;
    if redispatched_tasks > 0 {
        // Seed the serial loop from the committed prefix, exactly like
        // the incremental simulator seeds from a cutoff: remaining
        // predecessor counts and tentative starts relative to the
        // committed tasks' (certified, hence true) finish times.
        let mut tentative = vec![0u64; n];
        let mut preds = cg.pred_counts();
        for ui in 0..n {
            if !committed[ui] {
                continue;
            }
            let fin = p.est_fin[ui];
            for &v in cg.successors(CompactId(ui as u32)) {
                let vi = v.0 as usize;
                if !committed[vi] {
                    tentative[vi] = tentative[vi].max(fin);
                    preds[vi] -= 1;
                }
            }
        }
        let mut fronts: Vec<ThreadFrontier> =
            (0..t_count).map(|_| ThreadFrontier::default()).collect();
        for ui in 0..n {
            if committed[ui] || preds[ui] != 0 {
                continue;
            }
            let t = cg.thread_of(CompactId(ui as u32)).0 as usize;
            fronts[t].push(tentative[ui], ranks[ui], ui as u32, progress[t]);
        }
        let mut global: BinaryHeap<Reverse<(u64, Rank, u32, u32)>> = BinaryHeap::new();
        for (t, front) in fronts.iter_mut().enumerate() {
            front.refresh(progress[t]);
            if let Some((f, r, id)) = front.best(progress[t]) {
                global.push(Reverse((f, r, id, t as u32)));
            }
        }
        let done = dispatch_loop(
            cg,
            &ranks,
            &mut tentative,
            &mut preds,
            &mut start,
            &mut wait,
            &mut progress,
            &mut fronts,
            &mut global,
            &mut makespan,
        );
        if done != redispatched_tasks {
            return Err(GraphError::Cycle);
        }
    }

    Ok((
        CompiledSim {
            start_ns: start,
            wait_ns: wait,
            thread_end: progress,
            makespan_ns: makespan,
        },
        WindowedStats {
            windows,
            certified_windows,
            redispatched_windows: windows - certified_windows,
            rollbacks: usize::from(cut != u64::MAX),
            certified_tasks: committed_tasks,
            redispatched_tasks,
            engaged: true,
        },
    ))
}

/// Heap-free FIFO-topological speculation: O(V+E), no comparisons beyond
/// per-edge maxes. Estimated starts are monotone along each thread's
/// sequence (`est_start >= previous est_fin` by the progress update), and
/// `est_tent` is the *final* dependency-ready time because a task is
/// only popped once every predecessor has relaxed it.
fn presim(cg: &CompiledGraph) -> Result<Presim, GraphError> {
    let n = cg.len();
    let t_count = cg.thread_count();
    let mut preds = cg.pred_counts();
    let mut tentative = vec![0u64; n];
    let mut est_start = vec![0u64; n];
    let mut est_tent = vec![0u64; n];
    let mut est_fin = vec![0u64; n];
    let mut progress = vec![0u64; t_count];
    let mut seqs: Vec<Vec<u32>> = vec![Vec::new(); t_count];

    let mut queue: Vec<u32> = (0..n as u32).filter(|&i| preds[i as usize] == 0).collect();
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let ui = u as usize;
        let t = cg.thread_of(CompactId(u)).0 as usize;
        est_tent[ui] = tentative[ui];
        let s = tentative[ui].max(progress[t]);
        est_start[ui] = s;
        let fin = s + cg.cost_ns(CompactId(u));
        est_fin[ui] = fin;
        progress[t] = fin;
        seqs[t].push(u);
        for &v in cg.successors(CompactId(u)) {
            let vi = v.0 as usize;
            tentative[vi] = tentative[vi].max(fin);
            preds[vi] -= 1;
            if preds[vi] == 0 {
                queue.push(v.0);
            }
        }
    }
    if queue.len() != n {
        return Err(GraphError::Cycle);
    }
    Ok(Presim {
        est_start,
        est_tent,
        est_fin,
        seqs,
    })
}

/// Certifies the speculation against the greedy dispatch rule and returns
/// the earliest instant the serial execution could diverge from it
/// (`u64::MAX` when it provably cannot — then the speculation *is* the
/// serial schedule).
///
/// Per thread, scanning the speculated sequence backward with suffix
/// minima over `(ready, rank, id)` and `(rank, id)`:
///
/// * **consistency** — each start must equal `max(ready, prev finish)`;
///   a mismatch corrupts at the smaller of the two values;
/// * **idle gaps** (prev finish < start) — a later task `v` with
///   `(ready_v, rank_v, v) < (start, rank_u, u)` would have been
///   dispatched inside the gap; the schedule corrupts at
///   `max(prev finish, ready_v)`. This check is exact: `ready` values
///   below the corruption cut are genuine finish-time maxima.
/// * **same-instant ties** (prev finish == start) — a later task with a
///   smaller `(rank, id)` *may* have won the tie; conservatively flag at
///   the start. Over-flagging costs re-dispatch work, never correctness.
fn verify(p: &Presim, ranks: &[Rank]) -> u64 {
    let mut cut = u64::MAX;
    for seq in &p.seqs {
        let mut min_tent: (u64, Rank, u32) = (u64::MAX, (u64::MAX, u64::MAX), u32::MAX);
        let mut min_rank: (Rank, u32) = ((u64::MAX, u64::MAX), u32::MAX);
        for i in (0..seq.len()).rev() {
            let u = seq[i];
            let ui = u as usize;
            let s = p.est_start[ui];
            let pf = if i == 0 {
                0
            } else {
                p.est_fin[seq[i - 1] as usize]
            };
            let expected = p.est_tent[ui].max(pf);
            if s != expected {
                cut = cut.min(s.min(expected));
            } else if pf < s {
                if min_tent < (s, ranks[ui], u) {
                    cut = cut.min(pf.max(min_tent.0));
                }
            } else if min_rank < (ranks[ui], u) {
                cut = cut.min(s);
            }
            let cand = (p.est_tent[ui], ranks[ui], u);
            if cand < min_tent {
                min_tent = cand;
            }
            let cand = (ranks[ui], u);
            if cand < min_rank {
                min_rank = cand;
            }
        }
    }
    cut
}

/// Inner window boundaries: quantiles of a strided sample of the
/// speculated starts, deduplicated, zero excluded (a boundary at 0 would
/// make the first window empty). Ascending; `len + 1` windows.
fn window_boundaries(est_start: &[u64], windows: usize) -> Vec<u64> {
    if windows <= 1 || est_start.is_empty() {
        return Vec::new();
    }
    let stride = (est_start.len() / 4096).max(1);
    let mut sample: Vec<u64> = est_start.iter().step_by(stride).copied().collect();
    sample.sort_unstable();
    let mut boundaries: Vec<u64> = (1..windows)
        .map(|i| sample[i * sample.len() / windows])
        .collect();
    boundaries.dedup();
    boundaries.retain(|&b| b > 0);
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::sim::simulate_compiled;
    use crate::task::{ExecThread, Task, TaskKind};
    use crate::DepKind;
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    /// The `sim_scale` bench family: CPU launch chain, 4 GPU stream
    /// chains, one collective channel — per-thread id order.
    fn synthetic(steps: usize) -> CompiledGraph {
        let mut g = DependencyGraph::new();
        let cpu = ExecThread::Cpu(CpuThreadId(0));
        let chan = ExecThread::Comm(crate::task::CommChannel::Collective);
        let mut prev_launch = None;
        let mut prev_kernel = [None; 4];
        for i in 0..steps {
            let stream = (i % 4) as u32;
            let launch = g.add_task(Task::new("launch", TaskKind::CpuWork, cpu, 4_000));
            let kernel = g.add_task(Task::new(
                "kernel",
                TaskKind::GpuKernel,
                ExecThread::Gpu(DeviceId(0), StreamId(stream)),
                30_000,
            ));
            let comm = g.add_task(Task::new(
                "allreduce",
                TaskKind::Communication {
                    prim: crate::task::CommPrimitive::AllReduce,
                    bytes: 1 << 20,
                },
                chan,
                45_000,
            ));
            if let Some(p) = prev_launch {
                g.add_dep(p, launch, DepKind::CpuSeq);
            }
            if let Some(p) = prev_kernel[stream as usize] {
                g.add_dep(p, kernel, DepKind::GpuSeq);
            }
            g.add_dep(launch, kernel, DepKind::Correlation);
            g.add_dep(kernel, comm, DepKind::Comm);
            prev_launch = Some(launch);
            prev_kernel[stream as usize] = Some(kernel);
        }
        CompiledGraph::compile(&g)
    }

    fn forced() -> WindowedOptions {
        WindowedOptions {
            windows: 6,
            min_tasks: 0,
        }
    }

    #[test]
    fn windowed_matches_serial_and_certifies() {
        let cg = synthetic(400);
        let serial = simulate_compiled(&cg).unwrap();
        let (win, stats) = simulate_windowed_with(&cg, &EarliestStart, &forced()).unwrap();
        assert_eq!(win, serial);
        assert!(stats.engaged);
        assert_eq!(stats.rollbacks, 0, "replay-shaped graph must certify");
        assert_eq!(stats.certified_tasks, cg.len());
    }

    #[test]
    fn below_min_tasks_runs_serial() {
        let cg = synthetic(40);
        let serial = simulate_compiled(&cg).unwrap();
        let (win, stats) =
            simulate_windowed_with(&cg, &EarliestStart, &WindowedOptions::default()).unwrap();
        assert_eq!(win, serial);
        assert!(!stats.engaged);
    }

    #[test]
    fn window_count_never_affects_the_result() {
        let cg = synthetic(300);
        let serial = simulate_compiled(&cg).unwrap();
        for windows in [1, 2, 7, 1000] {
            let opts = WindowedOptions {
                windows,
                min_tasks: 0,
            };
            let (win, _) = simulate_windowed_with(&cg, &EarliestStart, &opts).unwrap();
            assert_eq!(win, serial, "windows={windows}");
        }
    }

    /// The commit/rollback safety net must be falsifiable: corrupt the
    /// speculated starts (a bogus window seeded from a bad boundary) and
    /// the certification has to catch it — rolling back to the serial
    /// loop instead of committing a wrong schedule.
    #[test]
    fn corrupted_speculation_rolls_back_and_stays_identical() {
        let cg = synthetic(400);
        let serial = simulate_compiled(&cg).unwrap();
        let victim = cg.len() / 2;
        let (win, stats) = simulate_windowed_corrupted(&cg, &EarliestStart, &forced(), &|est| {
            est[victim] += 123_456;
        })
        .unwrap();
        assert!(stats.rollbacks > 0, "corruption must be detected");
        assert!(stats.redispatched_tasks > 0);
        assert_eq!(win, serial, "rollback must restore the serial schedule");
    }

    #[test]
    fn corruption_to_zero_rolls_back_everything_yet_matches() {
        let cg = synthetic(200);
        let serial = simulate_compiled(&cg).unwrap();
        let (win, stats) = simulate_windowed_corrupted(&cg, &EarliestStart, &forced(), &|est| {
            for s in est.iter_mut() {
                *s = 0;
            }
        })
        .unwrap();
        assert!(stats.rollbacks > 0);
        assert_eq!(stats.certified_tasks, 0);
        assert_eq!(win, serial);
    }

    #[test]
    fn cycle_reported() {
        let mut g = DependencyGraph::new();
        let cpu = ExecThread::Cpu(CpuThreadId(0));
        let a = g.add_task(Task::new("a", TaskKind::CpuWork, cpu, 10));
        let b = g.add_task(Task::new("b", TaskKind::CpuWork, cpu, 10));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, a, DepKind::CpuSeq);
        let cg = CompiledGraph::compile(&g);
        let opts = WindowedOptions {
            windows: 0,
            min_tasks: 0,
        };
        assert!(matches!(
            simulate_windowed_with(&cg, &EarliestStart, &opts),
            Err(GraphError::Cycle)
        ));
    }
}
