//! What-if: hardware upgrade ("would a faster GPU improve my training?").
//!
//! One of the paper's §1 motivating questions. Each GPU kernel is
//! classified from its trace name ([`daydream_device::classify_kernel`])
//! and its duration rescaled by the ratio of the device rates that bind
//! its class: arithmetic throughput for compute-bound kernels, memory
//! bandwidth for the rest — the same first-order model behind the paper's
//! AMP rule, applied across devices instead of across precisions.

use crate::construct::ProfiledGraph;
use crate::graph::{GraphEdit, TaskId};
use daydream_device::{classify_kernel, GpuSpec, Precision};
use daydream_models::OpClass;

/// The hardware-upgrade transformation over any graph edit target.
pub fn plan_upgrade_gpu<G: GraphEdit>(g: &mut G, old: &GpuSpec, new: &GpuSpec) -> Vec<TaskId> {
    let compute_ratio =
        old.peak_flops_per_ns(Precision::Fp32) / new.peak_flops_per_ns(Precision::Fp32);
    let memory_ratio = old.bw_bytes_per_ns() / new.bw_bytes_per_ns();
    let pcie_ratio = old.pcie_gbs / new.pcie_gbs;

    let gpu_tasks = g.select_ids(|t| t.is_on_gpu());
    for &id in &gpu_tasks {
        let t = g.task(id);
        let ratio = match &t.kind {
            crate::task::TaskKind::GpuMemcpy { .. } => pcie_ratio,
            _ => {
                let class = classify_kernel(&t.name).unwrap_or(OpClass::Elementwise);
                if class.is_compute_bound() {
                    compute_ratio
                } else {
                    memory_ratio
                }
            }
        };
        let scaled = (t.duration_ns as f64 * ratio).round() as u64;
        g.set_duration(id, scaled);
    }
    gpu_tasks
}

/// Rescales GPU kernels for a move from `old` to `new` hardware; memory
/// copies scale with PCIe bandwidth. Returns the affected tasks.
pub fn what_if_upgrade_gpu(pg: &mut ProfiledGraph, old: &GpuSpec, new: &GpuSpec) -> Vec<TaskId> {
    plan_upgrade_gpu(&mut pg.graph, old, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn profile(model: &daydream_models::Model) -> ProfiledGraph {
        let cfg = ExecConfig::pytorch_2080ti();
        ProfiledGraph::from_trace(&ground_truth::run_baseline(model, &cfg))
    }

    #[test]
    fn v100_prediction_tracks_ground_truth() {
        let model = zoo::resnet50();
        let pg = profile(&model);
        let (old, new) = (GpuSpec::rtx_2080ti(), GpuSpec::v100());
        let pred = predict(&pg, |g| {
            what_if_upgrade_gpu(g, &old, &new);
        });
        // Ground truth: actually execute the plan on the V100 cost model.
        let gt_cfg = ExecConfig {
            gpu: GpuSpec::v100(),
            ..ExecConfig::pytorch_2080ti().with_seed(0xF00D)
        };
        let gt = ground_truth::run_baseline(&model, &gt_cfg)
            .meta
            .iteration_ns();
        let err = pred.error_vs(gt);
        assert!(err < 0.10, "V100 upgrade prediction error {err:.3}");
        assert!(pred.speedup() > 1.1, "a V100 must beat a 2080 Ti in FP32");
    }

    #[test]
    fn downgrade_predicts_slowdown() {
        let model = zoo::bert_base();
        let pg = profile(&model);
        let (old, new) = (GpuSpec::rtx_2080ti(), GpuSpec::t4());
        let pred = predict(&pg, |g| {
            what_if_upgrade_gpu(g, &old, &new);
        });
        assert!(pred.speedup() < 1.0, "a T4 must be slower than a 2080 Ti");
    }

    #[test]
    fn cpu_bound_models_gain_less_from_hardware() {
        // BERT-large's CPU-bound weight update caps hardware gains, exactly
        // like it caps AMP gains (paper §6.2) — the kind of insight the
        // upgrade what-if exists to surface.
        let (old, new) = (GpuSpec::rtx_2080ti(), GpuSpec::v100());
        let resnet = profile(&zoo::resnet50());
        let bert = profile(&zoo::bert_large());
        let r = predict(&resnet, |g| {
            what_if_upgrade_gpu(g, &old, &new);
        });
        let b = predict(&bert, |g| {
            what_if_upgrade_gpu(g, &old, &new);
        });
        assert!(
            r.speedup() > b.speedup(),
            "ResNet ({:.2}x) should gain more than CPU-bound BERT-large ({:.2}x)",
            r.speedup(),
            b.speedup()
        );
    }

    #[test]
    fn identity_upgrade_is_noop() {
        let model = zoo::resnet50();
        let pg = profile(&model);
        let spec = GpuSpec::rtx_2080ti();
        let pred = predict(&pg, |g| {
            what_if_upgrade_gpu(g, &spec, &spec);
        });
        assert_eq!(pred.baseline_ns, pred.predicted_ns);
    }
}
