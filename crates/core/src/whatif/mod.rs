//! What-if models of the paper's ten optimizations (§5, appendix A).
//!
//! Every model is a composition of the §4.4 primitives — select, shrink/
//! scale, insert/remove, schedule — applied to a profiled dependency graph.
//! The five evaluated in §6 are tested against their ground-truth
//! executions in `daydream-runtime`; the other five are the §5.2 modeling
//! demonstrations.

mod amp;
mod bandwidth;
mod batch_size;
mod blueconnect;
mod dgc;
mod distributed;
mod fused_adam;
mod gist;
mod metaflow;
mod p3;
mod reconstruct_bn;
mod upgrade_gpu;
mod vdnn;

pub use amp::{plan_amp, what_if_amp, COMPUTE_BOUND_GAIN, MEMORY_BOUND_GAIN};
pub use bandwidth::{plan_bandwidth, what_if_bandwidth};
pub use batch_size::{plan_batch_size, what_if_batch_size, KERNEL_OVERHEAD_NS};
pub use blueconnect::{plan_blueconnect, what_if_blueconnect};
pub use dgc::{plan_dgc, what_if_dgc, DgcConfig};
pub use distributed::{plan_distributed, what_if_distributed};
pub use fused_adam::{plan_fused_adam, what_if_fused_adam};
pub use gist::{plan_gist, what_if_gist, GistConfig};
pub use metaflow::{plan_metaflow, what_if_metaflow, Substitution};
pub use p3::{
    p3_insert_plan, p3_replicated_base, plan_p3_inserts, what_if_p3, P3Config, P3Insert,
    P3Prediction, P3Scheduler,
};
pub use reconstruct_bn::{plan_reconstruct_bn, what_if_reconstruct_bn};
pub use upgrade_gpu::{plan_upgrade_gpu, what_if_upgrade_gpu};
pub use vdnn::{plan_vdnn, what_if_vdnn, VdnnConfig, VDNN_STREAM, VDNN_THREAD};
