//! What-if: BlueConnect (paper §5.2, Algorithm 8).
//!
//! BlueConnect decomposes each all-reduce into reduce-scatter stages over a
//! factorization of the worker count, followed by the mirrored all-gather
//! stages, with each stage on its own (intra- or inter-node) channel so
//! heterogeneous link bandwidths are used concurrently. Modeled by
//! rewriting every inserted all-reduce task into the stage chain.

use crate::construct::ProfiledGraph;
use crate::graph::{DepKind, GraphEdit, TaskId};
use crate::task::{CommChannel, CommPrimitive, ExecThread, Task, TaskKind};
use daydream_comm::{reduce_scatter_ns, ClusterConfig};

/// The BlueConnect transformation over any graph edit target.
pub fn plan_blueconnect<G: GraphEdit>(
    g: &mut G,
    cluster: &ClusterConfig,
    allreduce_tasks: &[TaskId],
) -> Vec<TaskId> {
    // (group size, bytes/ns, latency) per stage, innermost first.
    let mut stages: Vec<(u32, f64, f64)> = Vec::new();
    if cluster.gpus_per_machine > 1 {
        stages.push((
            cluster.gpus_per_machine,
            cluster.intra_bytes_per_ns(),
            2_000.0,
        ));
    }
    if cluster.machines > 1 {
        stages.push((
            cluster.machines,
            cluster.inter_bytes_per_ns(),
            cluster.latency_ns(),
        ));
    }
    let mut chain_tasks = Vec::new();
    if stages.is_empty() {
        return chain_tasks;
    }

    for &ar in allreduce_tasks {
        let TaskKind::Communication { bytes, .. } = g.task(ar).kind else {
            continue;
        };
        let succs: Vec<TaskId> = g.successors(ar).iter().map(|&(s, _)| s).collect();
        let order_hint = g.task(ar).measured_start_ns;

        // Rewrite the all-reduce node into the first reduce-scatter stage.
        let mut shard = bytes as f64;
        let rs0_name = format!("{}_rs0", g.task(ar).name);
        g.set_name(ar, rs0_name);
        g.set_kind(
            ar,
            TaskKind::Communication {
                prim: CommPrimitive::ReduceScatter,
                bytes,
            },
        );
        g.set_thread(ar, ExecThread::Comm(CommChannel::Stage(0)));
        g.set_duration(
            ar,
            reduce_scatter_ns(stages[0].0, bytes, stages[0].1, stages[0].2),
        );
        chain_tasks.push(ar);
        let mut tail = ar;
        shard /= stages[0].0 as f64;

        // Remaining reduce-scatters, then mirrored all-gathers.
        let mut plan: Vec<(usize, CommPrimitive, u64)> = Vec::new();
        for (si, st) in stages.iter().enumerate().skip(1) {
            plan.push((si, CommPrimitive::ReduceScatter, shard as u64));
            shard /= st.0 as f64;
        }
        for (si, _) in stages.iter().enumerate().rev() {
            shard *= stages[si].0 as f64;
            plan.push((si, CommPrimitive::AllGather, shard as u64));
        }
        for (hop, (si, prim, payload)) in plan.into_iter().enumerate() {
            let st = stages[si];
            let mut task = Task::new(
                format!("bc_{prim:?}_s{si}"),
                TaskKind::Communication {
                    prim,
                    bytes: payload,
                },
                ExecThread::Comm(CommChannel::Stage(si as u8)),
                reduce_scatter_ns(st.0, payload, st.1, st.2),
            );
            task.measured_start_ns = order_hint + hop as u64 + 1;
            let id = g.add_task(task);
            g.add_dep(tail, id, DepKind::Comm);
            tail = id;
            chain_tasks.push(id);
        }
        // The chain's end takes over the all-reduce's outgoing edges.
        for s in succs {
            g.remove_dep(ar, s);
            g.add_dep(tail, s, DepKind::Comm);
        }
    }
    chain_tasks
}

/// Applies the BlueConnect transformation to previously inserted
/// all-reduce tasks (from [`crate::whatif::what_if_distributed`]).
///
/// Uses the natural two-level factorization of the cluster: GPUs within a
/// machine over PCIe, then machines over the network. Returns the tasks of
/// the rewritten chains.
pub fn what_if_blueconnect(
    pg: &mut ProfiledGraph,
    cluster: &ClusterConfig,
    allreduce_tasks: &[TaskId],
) -> Vec<TaskId> {
    plan_blueconnect(&mut pg.graph, cluster, allreduce_tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use crate::whatif::what_if_distributed;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn profile() -> ProfiledGraph {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg))
    }

    #[test]
    fn blueconnect_beats_flat_ring_on_hierarchical_cluster() {
        let pg = profile();
        let cluster = ClusterConfig::new(4, 2, 10.0);
        let ring = predict(&pg, |g| {
            what_if_distributed(g, &cluster);
        });
        let bc = predict(&pg, |g| {
            let ars = what_if_distributed(g, &cluster);
            what_if_blueconnect(g, &cluster, &ars);
        });
        assert!(
            bc.predicted_ns < ring.predicted_ns,
            "BlueConnect {:.1}ms should beat flat ring {:.1}ms",
            bc.predicted_ms(),
            ring.predicted_ms()
        );
    }

    #[test]
    fn chain_structure_is_valid() {
        let mut pg = profile();
        let cluster = ClusterConfig::new(4, 2, 10.0);
        let ars = what_if_distributed(&mut pg, &cluster);
        let chain = what_if_blueconnect(&mut pg, &cluster, &ars);
        // Two stages -> rs0, rs1, ag1, ag0 per call.
        assert_eq!(chain.len(), ars.len() * 4);
        pg.graph
            .validate()
            .expect("BlueConnect graph must stay a DAG");
    }

    #[test]
    fn single_machine_multi_gpu_uses_one_stage() {
        let mut pg = profile();
        let cluster = ClusterConfig::new(1, 2, 10.0);
        let ars = what_if_distributed(&mut pg, &cluster);
        let chain = what_if_blueconnect(&mut pg, &cluster, &ars);
        // One stage -> rs0 + ag0 per call.
        assert_eq!(chain.len(), ars.len() * 2);
        pg.graph.validate().unwrap();
    }
}
