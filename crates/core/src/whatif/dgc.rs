//! What-if: Deep Gradient Compression (paper §5.2, Algorithm 12).
//!
//! DGC sends only heavily compressed gradients: communication shrinks by
//! the compression ratio, but compression/decompression kernels run on the
//! GPU around every transfer. Applied after
//! [`crate::whatif::what_if_distributed`] has inserted the all-reduce tasks.

use crate::construct::ProfiledGraph;
use crate::graph::{DepKind, GraphEdit, TaskId};
use crate::task::{Task, TaskKind};

/// Configuration of the DGC what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DgcConfig {
    /// Fraction of gradient bytes that still travels (0.01 = 1%, the DGC
    /// paper's headline ratio plus metadata overhead).
    pub compression_ratio: f64,
    /// GPU time to compress one megabyte of gradients, ns (estimated from
    /// existing element-wise kernels, per the paper's guideline).
    pub compress_ns_per_mb: u64,
    /// GPU time to decompress one megabyte, ns.
    pub decompress_ns_per_mb: u64,
}

impl Default for DgcConfig {
    fn default() -> Self {
        DgcConfig {
            compression_ratio: 0.01,
            compress_ns_per_mb: 55_000,
            decompress_ns_per_mb: 35_000,
        }
    }
}

/// The DGC transformation over any graph edit target.
pub fn plan_dgc<G: GraphEdit>(g: &mut G, comm_tasks: &[TaskId], cfg: &DgcConfig) -> Vec<TaskId> {
    // Compression runs on the compute stream before each transfer.
    let gpu_thread = g
        .live_ids()
        .into_iter()
        .map(|id| g.task(id))
        .find(|t| t.kind.is_gpu())
        .map(|t| t.thread);
    let mut inserted = Vec::new();
    for &r in comm_tasks {
        let TaskKind::Communication { bytes, .. } = g.task(r).kind else {
            continue;
        };
        let mb = (bytes >> 20).max(1);
        // Scale the transfer itself.
        let compressed = (g.task(r).duration_ns as f64 * cfg.compression_ratio).round() as u64;
        g.set_duration(r, compressed);
        let gpu_thread = gpu_thread.expect("profile has GPU tasks");
        let hint = g.task(r).measured_start_ns;
        let mut comp = Task::new(
            "dgc_compress_kernel",
            TaskKind::GpuKernel,
            gpu_thread,
            cfg.compress_ns_per_mb * mb,
        );
        comp.measured_start_ns = hint;
        let comp_id = g.add_task(comp);
        let mut dec = Task::new(
            "dgc_decompress_kernel",
            TaskKind::GpuKernel,
            gpu_thread,
            cfg.decompress_ns_per_mb * mb,
        );
        dec.measured_start_ns = hint + 1;
        let dec_id = g.add_task(dec);

        // Rewire: preds -> compress -> transfer -> decompress -> succs.
        let preds: Vec<TaskId> = g
            .predecessors(r)
            .iter()
            .filter(|&&(_, k)| k == DepKind::Comm)
            .map(|&(p, _)| p)
            .filter(|&p| !g.task(p).thread.is_comm())
            .collect();
        let succs: Vec<TaskId> = g
            .successors(r)
            .iter()
            .filter(|&&(_, k)| k == DepKind::Comm)
            .map(|&(s, _)| s)
            .collect();
        for p in preds {
            g.remove_dep(p, r);
            g.add_dep(p, comp_id, DepKind::Comm);
        }
        g.add_dep(comp_id, r, DepKind::Comm);
        for s in succs {
            g.remove_dep(r, s);
            g.add_dep(dec_id, s, DepKind::Comm);
        }
        g.add_dep(r, dec_id, DepKind::Comm);
        inserted.push(comp_id);
        inserted.push(dec_id);
    }
    inserted
}

/// Applies the DGC transformation to previously inserted communication
/// tasks; returns the inserted compression kernels.
pub fn what_if_dgc(pg: &mut ProfiledGraph, comm_tasks: &[TaskId], cfg: &DgcConfig) -> Vec<TaskId> {
    plan_dgc(&mut pg.graph, comm_tasks, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use crate::whatif::what_if_distributed;
    use daydream_comm::ClusterConfig;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn profile() -> ProfiledGraph {
        // VGG-19: the communication-dominated model where DGC shines.
        let model = zoo::vgg19();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg))
    }

    #[test]
    fn dgc_helps_on_slow_networks() {
        let pg = profile();
        let cluster = ClusterConfig::new(4, 1, 5.0);
        let plain = predict(&pg, |g| {
            what_if_distributed(g, &cluster);
        });
        let dgc = predict(&pg, |g| {
            let ars = what_if_distributed(g, &cluster);
            what_if_dgc(g, &ars, &DgcConfig::default());
        });
        assert!(
            dgc.predicted_ns < plain.predicted_ns,
            "DGC {:.0}ms must beat plain DDP {:.0}ms at 5 Gbps",
            dgc.predicted_ms(),
            plain.predicted_ms()
        );
    }

    #[test]
    fn dgc_overhead_can_dominate_on_fast_networks() {
        // On a fast network the compression kernels outweigh the tiny
        // remaining transfers — the kind of negative result Daydream is
        // built to predict cheaply.
        let pg = profile();
        let cluster = ClusterConfig::new(2, 1, 40.0);
        let plain = predict(&pg, |g| {
            what_if_distributed(g, &cluster);
        });
        let dgc = predict(&pg, |g| {
            let ars = what_if_distributed(g, &cluster);
            what_if_dgc(g, &ars, &DgcConfig::default());
        });
        let gain = 1.0 - dgc.predicted_ns as f64 / plain.predicted_ns as f64;
        assert!(
            gain < 0.10,
            "DGC gain {gain:.3} must shrink on fast networks"
        );
    }

    #[test]
    fn structure_valid_and_transfer_scaled() {
        let mut pg = profile();
        let cluster = ClusterConfig::new(4, 1, 10.0);
        let ars = what_if_distributed(&mut pg, &cluster);
        let before: u64 = ars.iter().map(|&id| pg.graph.task(id).duration_ns).sum();
        let kernels = what_if_dgc(&mut pg, &ars, &DgcConfig::default());
        let after: u64 = ars.iter().map(|&id| pg.graph.task(id).duration_ns).sum();
        assert!(after < before / 50, "transfers must shrink ~100x");
        assert_eq!(kernels.len(), ars.len() * 2);
        pg.graph.validate().expect("DGC graph must stay a DAG");
    }
}
