//! What-if: distributed data-parallel training from a single-GPU profile
//! (paper §5.1, Algorithm 6).
//!
//! For every DDP gradient bucket recorded by the instrumentation
//! ([`daydream_trace::BucketInfo`]), insert one `allReduce` task on the
//! collective channel. The call depends on the last backward GPU kernel of
//! each layer in the bucket (wait-free backpropagation, §4.2.2) and the
//! weight-update phase depends on every call. Durations come from the ring
//! formula the paper cites from nccl-tests \[56\] — the *theoretical* time,
//! which is what makes predictions deviate from interference-afflicted
//! ground truth (Fig. 9).

use crate::construct::ProfiledGraph;
use crate::graph::{DepKind, GraphEdit, TaskId};
use crate::task::{CommChannel, CommPrimitive, ExecThread, Task, TaskKind};
use crate::transform::select;
use daydream_comm::{ring_allreduce_ns, ClusterConfig};
use daydream_trace::{BucketInfo, LayerId, Phase};
use std::collections::HashMap;

/// The distributed-training transformation (Algorithm 6) over any graph
/// edit target; the caller supplies the profiled gradient buckets (graph
/// views carry no metadata).
pub fn plan_distributed<G: GraphEdit>(
    g: &mut G,
    buckets: &[BucketInfo],
    cluster: &ClusterConfig,
) -> Vec<TaskId> {
    // Last backward-phase GPU task of each layer (gradient readiness).
    let mut last_bwd: HashMap<LayerId, TaskId> = HashMap::new();
    for id in g.live_ids() {
        let t = g.task(id);
        if !(t.is_on_gpu() && t.in_phase(Phase::Backward)) {
            continue;
        }
        let layer = t.layer.expect("in_phase implies layer").layer;
        match last_bwd.entry(layer) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if g.task(*e.get()).measured_start_ns < t.measured_start_ns {
                    e.insert(id);
                }
            }
        }
    }

    // The earliest node of the weight-update phase gates on communication.
    let wu_first = select::in_phase(g, Phase::WeightUpdate)
        .into_iter()
        .min_by_key(|&id| g.task(id).measured_start_ns);

    let mut inserted = Vec::with_capacity(buckets.len());
    for b in buckets {
        let dur = ring_allreduce_ns(cluster, b.bytes);
        let mut task = Task::new(
            format!("allReduce_bucket{}", b.id),
            TaskKind::Communication {
                prim: CommPrimitive::AllReduce,
                bytes: b.bytes,
            },
            ExecThread::Comm(CommChannel::Collective),
            dur,
        );
        // Order hint for the channel: when the bucket's gradients appeared.
        task.measured_start_ns = b
            .layers
            .iter()
            .filter_map(|l| last_bwd.get(l))
            .map(|&id| g.task(id).measured_start_ns)
            .max()
            .unwrap_or(0);
        let id = g.add_task(task);
        for layer in &b.layers {
            if let Some(&dep) = last_bwd.get(layer) {
                g.add_dep(dep, id, DepKind::Comm);
            }
        }
        if let Some(wu) = wu_first {
            g.add_dep(id, wu, DepKind::Comm);
        }
        inserted.push(id);
    }
    inserted
}

/// Applies the distributed-training transformation (Algorithm 6).
///
/// Returns the inserted all-reduce tasks in bucket order, so follow-up
/// transformations (BlueConnect, DGC) can rewrite them.
pub fn what_if_distributed(pg: &mut ProfiledGraph, cluster: &ClusterConfig) -> Vec<TaskId> {
    let buckets = pg.meta.buckets.clone();
    plan_distributed(&mut pg.graph, &buckets, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_comm::NcclExecution;
    use daydream_models::zoo;
    use daydream_runtime::{baseline_plan, ground_truth, run_distributed, ExecConfig};

    fn profile(model: &daydream_models::Model, cfg: &ExecConfig) -> ProfiledGraph {
        ProfiledGraph::from_trace(&ground_truth::run_baseline(model, cfg))
    }

    #[test]
    fn prediction_tracks_synced_ground_truth() {
        // Fig. 8 compares predictions against the baseline with a sync
        // before each allReduce; errors are mostly under 10%.
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        let pg = profile(&model, &cfg);
        let plan = baseline_plan(&model, 16);
        for cluster in [
            ClusterConfig::new(2, 1, 10.0),
            ClusterConfig::new(4, 2, 10.0),
        ] {
            let pred = predict(&pg, |g| {
                what_if_distributed(g, &cluster);
            });
            let gt = run_distributed(&model, &cfg, cluster, NcclExecution::Synced, &plan)
                .trace
                .meta
                .iteration_ns();
            let err = pred.error_vs(gt);
            assert!(err < 0.12, "{cluster}: prediction error {err:.3} too high");
        }
    }

    #[test]
    fn more_workers_cost_more_at_fixed_bandwidth() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        let pg = profile(&model, &cfg);
        let t = |m: u32, g: u32| {
            predict(&pg, |pgg| {
                what_if_distributed(pgg, &ClusterConfig::new(m, g, 10.0));
            })
            .predicted_ns
        };
        let t1 = t(1, 1);
        let t2 = t(2, 1);
        let t8 = t(4, 2);
        assert!(t1 < t2 && t2 < t8, "iteration time grows with ring size");
    }

    #[test]
    fn bandwidth_upgrade_helps() {
        let model = zoo::gnmt();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        let pg = profile(&model, &cfg);
        let t = |bw: f64| {
            predict(&pg, |pgg| {
                what_if_distributed(pgg, &ClusterConfig::new(4, 1, bw));
            })
            .predicted_ns
        };
        assert!(t(10.0) > t(20.0));
        assert!(t(20.0) > t(40.0));
    }

    #[test]
    fn comm_overlaps_with_backward() {
        // Wait-free backprop: total time must be far less than compute +
        // full communication (the calls overlap backward kernels).
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        let pg = profile(&model, &cfg);
        let cluster = ClusterConfig::new(4, 1, 10.0);
        let pred = predict(&pg, |g| {
            what_if_distributed(g, &cluster);
        });
        let total_comm: u64 = pg
            .meta
            .buckets
            .iter()
            .map(|b| ring_allreduce_ns(&cluster, b.bytes))
            .sum();
        assert!(pred.predicted_ns < pred.baseline_ns + total_comm);
        assert!(pred.predicted_ns > pred.baseline_ns);
    }

    #[test]
    fn one_call_per_bucket_and_graph_stays_valid() {
        let model = zoo::bert_base();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(2);
        let mut pg = profile(&model, &cfg);
        let cluster = ClusterConfig::new(2, 1, 10.0);
        let calls = what_if_distributed(&mut pg, &cluster);
        assert_eq!(calls.len(), pg.meta.buckets.len());
        pg.graph
            .validate()
            .expect("transformed graph must stay a DAG");
    }
}
