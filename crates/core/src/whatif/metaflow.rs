//! What-if: MetaFlow relaxed graph substitutions (paper §5.2, Algorithm 9).
//!
//! MetaFlow rewrites the *layer* topology (fusing layers, enlarging
//! kernels); after a substitution policy is chosen, its runtime effect is
//! just per-layer task removal and scaling, which Daydream models directly.
//! The paper notes Daydream can serve as a precise cost model inside
//! MetaFlow's backtracking search; [`what_if_metaflow`] is that evaluation
//! function.

use crate::construct::ProfiledGraph;
use crate::graph::GraphEdit;
use crate::transform::{remove_all, scale_durations, select};
use daydream_trace::LayerId;

/// One step of a MetaFlow substitution policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Substitution {
    /// The layer is absorbed into another: its GPU tasks disappear.
    RemoveLayer(LayerId),
    /// The layer's kernels change dimensions: scale their durations.
    ScaleLayer(LayerId, f64),
}

/// The substitution policy (Algorithm 9) over any graph edit target.
pub fn plan_metaflow<G: GraphEdit>(g: &mut G, policy: &[Substitution]) {
    for sub in policy {
        match *sub {
            Substitution::RemoveLayer(layer) => {
                let sel = select::gpu_of_layer(g, layer);
                remove_all(g, &sel);
            }
            Substitution::ScaleLayer(layer, s) => {
                let sel = select::gpu_of_layer(g, layer);
                scale_durations(g, &sel, s);
            }
        }
    }
}

/// Applies a substitution policy (Algorithm 9's `Remove_layer` /
/// `Scale_layer` helpers).
pub fn what_if_metaflow(pg: &mut ProfiledGraph, policy: &[Substitution]) {
    plan_metaflow(&mut pg.graph, policy);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    #[test]
    fn qkv_fusion_substitution_speeds_up_bert() {
        // Fuse the per-block query/key/value projections into one widened
        // GEMM: remove key and value layers, scale query by ~1.8x.
        let model = zoo::bert_base();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(4);
        let pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        let mut policy = Vec::new();
        for l in &model.layers {
            if l.name.ends_with("attn.key") || l.name.ends_with("attn.value") {
                policy.push(Substitution::RemoveLayer(l.id));
            } else if l.name.ends_with("attn.query") {
                policy.push(Substitution::ScaleLayer(l.id, 1.8));
            }
        }
        let pred = predict(&pg, |g| what_if_metaflow(g, &policy));
        assert!(
            pred.improvement() > 0.0,
            "fusing QKV should help: {:.4}",
            pred.improvement()
        );
        assert!(pred.improvement() < 0.3, "gain must stay plausible");
    }

    #[test]
    fn scaling_up_predicts_slowdown() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        let conv1 = model.layers.iter().find(|l| l.name == "conv1").unwrap().id;
        let pred = predict(&pg, |g| {
            what_if_metaflow(g, &[Substitution::ScaleLayer(conv1, 4.0)])
        });
        assert!(
            pred.improvement() < 0.0,
            "4x slower conv1 must slow the iteration"
        );
    }

    #[test]
    fn graph_stays_valid() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let mut pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        let relu = model.layers.iter().find(|l| l.name == "relu").unwrap().id;
        what_if_metaflow(&mut pg, &[Substitution::RemoveLayer(relu)]);
        pg.graph.validate().unwrap();
        assert!(select::gpu_of_layer(&pg.graph, relu).is_empty());
    }
}
