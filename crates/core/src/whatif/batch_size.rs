//! What-if: a different mini-batch size.
//!
//! Table 1's first optimization strategy is *increasing the mini-batch size*
//! (enabled by memory optimizations like vDNN and Gist), and §1 asks "does
//! GPU memory capacity limit the performance of my model?". This model
//! predicts iteration time at a new batch size from one profile: GPU kernel
//! work scales with the batch (above each kernel's fixed startup overhead),
//! input copies scale with the payload, and CPU launch work — per-kernel,
//! not per-sample — stays put, which is exactly why larger batches improve
//! hardware utilization.

use crate::construct::ProfiledGraph;
use crate::graph::{GraphEdit, TaskId};
use crate::task::TaskKind;

/// Device-side startup latency assumed fixed per kernel, ns. Public so
/// analytic stand-ins (the sweep search's rung-0 surrogate) can split
/// kernel time into the fixed and batch-scalable shares the same way.
pub const KERNEL_OVERHEAD_NS: u64 = 3_000;

/// The batch-size transformation over any graph edit target; the caller
/// supplies the profiled batch size (graph views carry no metadata).
pub fn plan_batch_size<G: GraphEdit>(g: &mut G, old_batch: u64, new_batch: u64) -> Vec<TaskId> {
    assert!(new_batch > 0, "batch size must be positive");
    let factor = new_batch as f64 / old_batch as f64;
    let gpu_tasks = g.select_ids(|t| t.is_on_gpu());
    for &id in &gpu_tasks {
        let t = g.task(id);
        match t.kind {
            TaskKind::GpuMemcpy { dir, bytes } => {
                let scaled_bytes = (bytes as f64 * factor).round() as u64;
                let scaled_dur = (t.duration_ns as f64 * factor).round() as u64;
                g.set_kind(
                    id,
                    TaskKind::GpuMemcpy {
                        dir,
                        bytes: scaled_bytes,
                    },
                );
                g.set_duration(id, scaled_dur);
            }
            _ => {
                // Scale the work above the fixed startup overhead.
                let work = t.duration_ns.saturating_sub(KERNEL_OVERHEAD_NS);
                let scaled =
                    KERNEL_OVERHEAD_NS.min(t.duration_ns) + (work as f64 * factor).round() as u64;
                g.set_duration(id, scaled);
            }
        }
    }
    gpu_tasks
}

/// Rescales GPU work for a change from the profiled batch size to
/// `new_batch`. Returns the affected tasks.
pub fn what_if_batch_size(pg: &mut ProfiledGraph, new_batch: u64) -> Vec<TaskId> {
    let old_batch = pg.meta.batch_size as u64;
    let affected = plan_batch_size(&mut pg.graph, old_batch, new_batch);
    pg.meta.batch_size = new_batch as u32;
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    #[test]
    fn doubling_batch_tracks_ground_truth() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        let pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        let pred = predict(&pg, |g| {
            what_if_batch_size(g, 32);
        });
        let gt_cfg = cfg.with_batch(32).with_seed(0xBA7C);
        let gt = ground_truth::run_baseline(&model, &gt_cfg)
            .meta
            .iteration_ns();
        let err = pred.error_vs(gt);
        assert!(err < 0.08, "batch-32 prediction error {err:.3}");
    }

    #[test]
    fn throughput_improves_with_batch() {
        // Per-sample time falls as fixed CPU/overhead costs amortize —
        // the reason larger mini-batches utilize hardware better.
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        let t8 = predict(&pg, |g| {
            what_if_batch_size(g, 8);
        });
        let t32 = predict(&pg, |g| {
            what_if_batch_size(g, 32);
        });
        let per_sample_8 = t8.predicted_ns as f64 / 8.0;
        let per_sample_32 = t32.predicted_ns as f64 / 32.0;
        assert!(
            per_sample_32 < per_sample_8,
            "per-sample time must fall: {per_sample_8:.0} -> {per_sample_32:.0}"
        );
    }

    #[test]
    fn identity_batch_is_noop() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        let pred = predict(&pg, |g| {
            what_if_batch_size(g, 8);
        });
        assert_eq!(pred.baseline_ns, pred.predicted_ns);
    }
}
