//! What-if: Priority-Based Parameter Propagation (paper §5.1, Algorithm 7).
//!
//! P3 slices each gradient tensor and schedules slice transfers by layer
//! priority, so parameters of input-side layers — needed first by the next
//! iteration's forward pass — arrive first. Modeling it exercises all
//! three advanced primitives at once: the profile is unrolled over
//! iterations, push/pull tasks are *inserted* per slice between a layer's
//! backward task and its next-iteration forward task, and the simulator's
//! `Schedule` function is overridden with a priority queue.
//!
//! The predicted transfer times are pure wire times (`bytes / bandwidth`,
//! Algorithm 7); real MXNet messages also pay server/worker engine
//! overheads, which is why the paper overestimates P3's speedup at higher
//! bandwidths (§6.6).

use crate::compiled::{CompactId, CompiledGraph};
use crate::construct::ProfiledGraph;
use crate::graph::{DepKind, GraphEdit, TaskId};
use crate::replicate::{replicate_iterations, ReplicatedGraph};
use crate::sim::{simulate_with, Candidate, FrontierOrder, Rank, Scheduler, SimResult};
use crate::task::{CommChannel, CommPrimitive, ExecThread, Task, TaskKind};
use daydream_comm::{ClusterConfig, PsModel};
use daydream_trace::{LayerId, Phase};
use std::collections::HashMap;

/// Configuration of the P3 what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P3Config {
    /// The parameter-server cluster.
    pub cluster: ClusterConfig,
    /// Gradient slice size in bytes; `None` models the layer-granularity
    /// MXNet baseline instead of P3.
    pub slice_bytes: Option<u64>,
    /// Iterations to unroll for steady state.
    pub iterations: usize,
}

impl P3Config {
    /// P3 with its 4 MB slices over three unrolled iterations.
    pub fn p3(cluster: ClusterConfig) -> Self {
        P3Config {
            cluster,
            slice_bytes: Some(4 << 20),
            iterations: 3,
        }
    }

    /// The layer-granularity FIFO baseline.
    pub fn baseline(cluster: ClusterConfig) -> Self {
        P3Config {
            cluster,
            slice_bytes: None,
            iterations: 3,
        }
    }
}

/// The P3 scheduler: earliest feasible start, ties on communication
/// channels broken by priority (Algorithm 7's `Schedule` override).
///
/// Implements both [`FrontierOrder`] (the compiled heap frontier the
/// simulator actually runs) and the legacy [`Scheduler`] trait (the
/// reference-loop oracle).
#[derive(Debug, Default, Clone, Copy)]
pub struct P3Scheduler;

/// Maps a priority to a rank component so *higher* priorities order
/// *first* (ranks are min-ordered).
fn descending(priority: i64) -> u64 {
    !((priority as u64) ^ (1 << 63))
}

impl FrontierOrder for P3Scheduler {
    fn rank(&self, graph: &CompiledGraph, task: CompactId) -> Rank {
        if graph.on_comm_thread(task) {
            // Highest priority first; ties by task id.
            (descending(graph.priority(task)), task.0 as u64)
        } else {
            // Compute threads keep the default earliest-id order. The id
            // component stays below any comm rank's priority component, so
            // cross-thread ties at equal feasibility favor compute tasks.
            //
            // This total order is the canonical P3 semantics. The legacy
            // `Scheduler` impl below scans the frontier with a *pairwise*
            // comparison that is intransitive across mixed comm/compute
            // candidates — its pick on such ties depends on frontier
            // layout, so the two implementations can legitimately differ
            // there (pinned in `sim_equivalence.rs`). Equal-feasibility
            // mixed ties are rare and were arbitrary before; the heap
            // frontier makes them deterministic.
            (task.0 as u64, 0)
        }
    }

    // Ranks are a fixed function of (comm flag, priority, id order), so
    // the incremental simulator may reuse a base schedule across patches
    // — priority edits influence it from the task's ready time.
    fn incremental_safe(&self) -> bool {
        true
    }

    fn rank_uses_priority(&self) -> bool {
        true
    }
}

impl Scheduler for P3Scheduler {
    fn pick(&mut self, frontier: &[Candidate], graph: &crate::graph::DependencyGraph) -> usize {
        let mut best = 0usize;
        for (i, c) in frontier.iter().enumerate().skip(1) {
            let b = frontier[best];
            if c.feasible_start < b.feasible_start {
                best = i;
                continue;
            }
            if c.feasible_start == b.feasible_start {
                let (tc, tb) = (graph.task(c.task), graph.task(b.task));
                let both_comm = tc.thread.is_comm() && tb.thread.is_comm();
                let better = if both_comm {
                    (tc.priority, std::cmp::Reverse(c.task.0))
                        > (tb.priority, std::cmp::Reverse(b.task.0))
                } else {
                    c.task.0 < b.task.0
                };
                if better {
                    best = i;
                }
            }
        }
        best
    }
}

/// Result of the P3 what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P3Prediction {
    /// Predicted steady-state iteration time, ns.
    pub iteration_ns: u64,
    /// Push/pull task pairs inserted per iteration.
    pub messages_per_iteration: usize,
}

impl P3Prediction {
    /// Predicted iteration time in milliseconds.
    pub fn iteration_ms(&self) -> f64 {
        self.iteration_ns as f64 / 1e6
    }
}

/// Splits `bytes` into slices (whole tensor when slicing is off).
fn slices(bytes: u64, cfg: &P3Config) -> Vec<u64> {
    match cfg.slice_bytes {
        None => vec![bytes],
        Some(s) => {
            let s = s.max(1);
            let mut rem = bytes;
            let mut out = Vec::new();
            while rem > 0 {
                let take = rem.min(s);
                out.push(take);
                rem -= take;
            }
            out
        }
    }
}

/// One push/pull pair of the P3 insertion plan: everything needed to
/// splice a gradient slice's transfer into the replicated graph, computed
/// up front so the insertion itself can run against any graph edit target
/// (including a patch-recording overlay over a shared replicated base).
#[derive(Debug, Clone, PartialEq)]
pub struct P3Insert {
    /// The replica backward task whose completion releases the push.
    pub bwd: TaskId,
    /// The next-iteration forward task gated by the pull, if any.
    pub consumer: Option<TaskId>,
    /// Transfer priority (input-side layers first).
    pub priority: i64,
    /// Slice payload, bytes.
    pub bytes: u64,
    /// Wire time of the slice, ns.
    pub wire_ns: u64,
    /// Push task name (`push_<layer>_<slice>`).
    pub push_name: String,
    /// Pull task name.
    pub pull_name: String,
    /// Channel-order hint (the backward anchor's measured start).
    pub start_hint_ns: u64,
    /// `true` for the first unrolled iteration (messages-per-iteration
    /// accounting).
    pub first_iteration: bool,
}

/// Computes the P3 insertion plan for an unrolled profile: one push/pull
/// pair per gradient slice per iteration, anchored between each layer's
/// backward completion and its next-iteration forward start.
pub fn p3_insert_plan(pg: &ProfiledGraph, rep: &ReplicatedGraph, cfg: &P3Config) -> Vec<P3Insert> {
    let ps = PsModel::new(cfg.cluster);

    // Per-layer anchors in the original graph.
    let mut last_bwd: HashMap<LayerId, TaskId> = HashMap::new();
    let mut first_fwd: HashMap<LayerId, TaskId> = HashMap::new();
    let mut fwd_index: HashMap<LayerId, i64> = HashMap::new();
    for (id, t) in pg.graph.iter() {
        let Some(lr) = t.layer else { continue };
        match lr.phase {
            Phase::Backward if t.is_on_gpu() => {
                let e = last_bwd.entry(lr.layer).or_insert(id);
                if pg.graph.task(*e).measured_start_ns < t.measured_start_ns {
                    *e = id;
                }
            }
            Phase::Forward => {
                let e = first_fwd.entry(lr.layer).or_insert(id);
                if pg.graph.task(*e).measured_start_ns > t.measured_start_ns {
                    *e = id;
                }
                let idx = fwd_index.entry(lr.layer).or_insert(i64::MAX);
                *idx = (*idx).min(t.measured_start_ns as i64);
            }
            _ => {}
        }
    }

    let mut inserts = Vec::new();
    let n = rep.iterations();
    for (layer, grad) in pg.meta.gradients.iter().map(|g| (g.layer, g.bytes)) {
        let Some(&bwd) = last_bwd.get(&layer) else {
            continue;
        };
        // P3 priority: input-side layers (earlier forward start) first.
        let priority = -fwd_index.get(&layer).copied().unwrap_or(0);
        for k in 0..n {
            let bwd_k = rep.replica(k, bwd);
            let consumer = if k + 1 < n {
                first_fwd.get(&layer).map(|&f| rep.replica(k + 1, f))
            } else {
                None
            };
            for (si, s) in slices(grad, cfg).into_iter().enumerate() {
                // Pure wire time: Daydream computes the duration "from the
                // slice size and the network bandwidth" (§5.1).
                inserts.push(P3Insert {
                    bwd: bwd_k,
                    consumer,
                    priority,
                    bytes: s,
                    wire_ns: ps.wire_ns(s),
                    push_name: format!("push_{layer}_{si}"),
                    pull_name: format!("pull_{layer}_{si}"),
                    start_hint_ns: rep.graph.task(bwd_k).measured_start_ns,
                    first_iteration: k == 0,
                });
            }
        }
    }
    inserts
}

/// Splices a P3 insertion plan into a replicated graph (or a patch
/// overlay of one); returns the messages-per-iteration count.
pub fn plan_p3_inserts<G: GraphEdit>(g: &mut G, inserts: &[P3Insert]) -> usize {
    let mut messages = 0usize;
    for ins in inserts {
        let mut push = Task::new(
            ins.push_name.clone(),
            TaskKind::Communication {
                prim: CommPrimitive::Push,
                bytes: ins.bytes,
            },
            ExecThread::Comm(CommChannel::Send),
            ins.wire_ns,
        );
        push.priority = ins.priority;
        push.measured_start_ns = ins.start_hint_ns + 1;
        let mut pull = Task::new(
            ins.pull_name.clone(),
            TaskKind::Communication {
                prim: CommPrimitive::Pull,
                bytes: ins.bytes,
            },
            ExecThread::Comm(CommChannel::Receive),
            ins.wire_ns,
        );
        pull.priority = ins.priority;
        pull.measured_start_ns = ins.start_hint_ns + 2;
        let push_id = g.add_task(push);
        let pull_id = g.add_task(pull);
        g.add_dep(ins.bwd, push_id, DepKind::Comm);
        g.add_dep(push_id, pull_id, DepKind::Comm);
        if let Some(c) = ins.consumer {
            g.add_dep(pull_id, c, DepKind::Comm);
        }
        if ins.first_iteration {
            messages += 1;
        }
    }
    messages
}

/// Unrolls a profile for P3's steady-state analysis (at least two
/// iterations). The result is the shared base the sweep engine compiles
/// once and patches per P3 scenario.
pub fn p3_replicated_base(pg: &ProfiledGraph, iterations: usize) -> ReplicatedGraph {
    replicate_iterations(&pg.graph, iterations.max(2))
}

/// Runs the P3 (or PS-baseline) what-if analysis on a single-GPU profile.
///
/// Unrolls the profile, inserts push/pull tasks per gradient slice between
/// each layer's backward completion and its next-iteration forward start,
/// and simulates with the priority scheduler.
pub fn what_if_p3(pg: &ProfiledGraph, cfg: &P3Config) -> P3Prediction {
    let mut rep = p3_replicated_base(pg, cfg.iterations);
    let inserts = p3_insert_plan(pg, &rep, cfg);
    let messages = plan_p3_inserts(&mut rep.graph, &inserts);
    let sim: SimResult = simulate_with(&rep.graph, &P3Scheduler).expect("P3 graph must stay a DAG");
    P3Prediction {
        iteration_ns: steady(&rep, &sim),
        messages_per_iteration: messages,
    }
}

fn steady(rep: &ReplicatedGraph, sim: &SimResult) -> u64 {
    rep.steady_iteration_ns(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daydream_models::zoo;
    use daydream_runtime::ExecConfig;

    fn worker_profile(model: &daydream_models::Model, batch: u64) -> ProfiledGraph {
        // MXNet parameter-server workers do not run a local weight update.
        let cfg = ExecConfig::mxnet_p4000().with_batch(batch);
        let ex = daydream_runtime::Executor::new(model, &cfg);
        let mut plan = daydream_runtime::baseline_plan(model, batch);
        plan.wu.clear();
        ProfiledGraph::from_trace(&ex.run(&plan))
    }

    #[test]
    fn p3_beats_ps_baseline_at_low_bandwidth() {
        // At 2 Gbps ResNet-50's gradient traffic outlasts the compute it
        // can hide behind, so scheduling order matters.
        let model = zoo::resnet50();
        let pg = worker_profile(&model, 16);
        let cluster = ClusterConfig::new(4, 1, 2.0);
        let base = what_if_p3(&pg, &P3Config::baseline(cluster));
        let p3 = what_if_p3(&pg, &P3Config::p3(cluster));
        assert!(
            p3.iteration_ns < base.iteration_ns,
            "P3 {:.1}ms must beat baseline {:.1}ms",
            p3.iteration_ms(),
            base.iteration_ms()
        );
        assert!(p3.messages_per_iteration > base.messages_per_iteration);
    }

    #[test]
    fn prediction_decreases_with_bandwidth() {
        let model = zoo::resnet50();
        let pg = worker_profile(&model, 16);
        let t = |bw: f64| what_if_p3(&pg, &P3Config::p3(ClusterConfig::new(4, 1, bw))).iteration_ns;
        assert!(t(2.0) > t(4.0));
        assert!(t(4.0) > t(8.0));
    }

    #[test]
    fn prediction_overestimates_p3_speedup_at_high_bandwidth() {
        // §6.6: wire-only modeling ignores server overheads, so the
        // predicted P3 iteration is *faster* than ground truth, more so at
        // higher bandwidth.
        let model = zoo::vgg19();
        let pg = worker_profile(&model, 8);
        let cfg = ExecConfig::mxnet_p4000().with_batch(8);
        let cluster = ClusterConfig::new(4, 1, 10.0);
        let pred = what_if_p3(&pg, &P3Config::p3(cluster));
        let gt = daydream_runtime::run_parameter_server(
            &model,
            &cfg,
            daydream_runtime::PsTrainingConfig::p3(cluster),
            3,
        );
        assert!(
            pred.iteration_ns < gt.iteration_ns,
            "prediction {:.0}ms should undershoot ground truth {:.0}ms",
            pred.iteration_ms(),
            gt.iteration_ms()
        );
    }

    #[test]
    fn prediction_error_within_paper_bound() {
        // Paper: at most 16.2% error across configurations.
        let model = zoo::resnet50();
        let pg = worker_profile(&model, 16);
        let cfg = ExecConfig::mxnet_p4000().with_batch(16);
        for bw in [1.0, 2.0, 4.0, 8.0] {
            let cluster = ClusterConfig::new(4, 1, bw);
            let pred = what_if_p3(&pg, &P3Config::p3(cluster));
            let gt = daydream_runtime::run_parameter_server(
                &model,
                &cfg,
                daydream_runtime::PsTrainingConfig::p3(cluster),
                3,
            );
            let err =
                (pred.iteration_ns as f64 - gt.iteration_ns as f64).abs() / gt.iteration_ns as f64;
            assert!(
                err < 0.162,
                "P3 error {err:.3} at {bw} Gbps exceeds the paper's 16.2%"
            );
        }
    }
}
