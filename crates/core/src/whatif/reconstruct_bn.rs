//! What-if: restructuring batch normalization (paper §5.1/§6.4,
//! Algorithm 5).
//!
//! Jung et al. split each batchnorm layer and fuse its halves with the
//! surrounding convolution/activation layers. Daydream models this as:
//! remove the GPU kernels of ReLU layers (now fused into convolutions) and
//! halve the durations of batchnorm kernels (each sub-layer loads half the
//! data). The paper notes this *overestimates* the real gain (predicted
//! 12.7% vs measured 7%) because the ground-truth implementation uses new,
//! less-tuned kernels plus extra allocations — information a trace-level
//! model cannot know (§7.4).

use crate::construct::ProfiledGraph;
use crate::graph::GraphEdit;
use crate::transform::remove_all;
use daydream_models::Model;
use daydream_trace::LayerId;

/// The reconstruct-batchnorm transformation over any graph edit target.
pub fn plan_reconstruct_bn<G: GraphEdit>(g: &mut G, model: &Model) {
    let kind_of = |layer: LayerId| model.layer(layer).map(|l| l.kind.type_name());
    let relu_tasks = g.select_ids(|t| {
        t.is_on_gpu()
            && t.layer
                .map(|l| kind_of(l.layer) == Some("ReLU"))
                .unwrap_or(false)
    });
    remove_all(g, &relu_tasks);

    let bn_tasks = g.select_ids(|t| {
        t.is_on_gpu()
            && t.layer
                .map(|l| kind_of(l.layer) == Some("BatchNorm"))
                .unwrap_or(false)
    });
    for id in bn_tasks {
        let halved = g.task(id).duration_ns / 2;
        g.set_duration(id, halved);
    }
}

/// Applies the reconstruct-batchnorm transformation (Algorithm 5).
///
/// `model` supplies the layer-kind lookup (`u.layer is ReLU` in the paper's
/// pseudo-code).
pub fn what_if_reconstruct_bn(pg: &mut ProfiledGraph, model: &Model) {
    plan_reconstruct_bn(&mut pg.graph, model);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    #[test]
    fn densenet_prediction_overestimates_like_the_paper() {
        let model = zoo::densenet121();
        let cfg = ExecConfig::caffe_2080ti();
        let baseline = ground_truth::run_baseline(&model, &cfg);
        let pg = ProfiledGraph::from_trace(&baseline);
        let pred = predict(&pg, |g| what_if_reconstruct_bn(g, &model));
        let gt_trace = ground_truth::run_reconstructed_bn(&model, &cfg);
        let gt = gt_trace.meta.iteration_ns();

        let predicted_gain = pred.improvement();
        let measured_gain = 1.0 - gt as f64 / pred.baseline_ns as f64;
        // Paper §6.4: prediction 12.7%, ground truth 7% — the model must
        // predict a moderate gain and overshoot the measured one.
        // Our DenseNet substrate carries relatively more activation traffic
        // than the authors' Caffe build, so the absolute gains run ~2x the
        // paper's 12.7%/7% — the prediction:truth ratio is what transfers.
        assert!(
            (0.10..0.32).contains(&predicted_gain),
            "predicted gain {predicted_gain:.3} should be moderate"
        );
        assert!(
            predicted_gain > measured_gain,
            "prediction ({predicted_gain:.3}) must overestimate ground truth ({measured_gain:.3})"
        );
        assert!(
            measured_gain > 0.0,
            "the optimization still helps in ground truth"
        );
    }

    #[test]
    fn removes_relu_halves_bn() {
        // Note: conv kernels ("scudnn_..._relu_interior_nn") also contain
        // the substring "relu"; selection must go through the layer map.
        let model = zoo::densenet121();
        let cfg = ExecConfig::caffe_2080ti().with_batch(8);
        let trace = ground_truth::run_baseline(&model, &cfg);
        let mut pg = ProfiledGraph::from_trace(&trace);
        let bn_before: u64 = pg
            .graph
            .iter()
            .filter(|(_, t)| t.is_on_gpu() && t.name.contains("bn_"))
            .map(|(_, t)| t.duration_ns)
            .sum();
        what_if_reconstruct_bn(&mut pg, &model);
        let relu_left = pg
            .graph
            .select(|t| {
                t.is_on_gpu()
                    && t.layer
                        .map(|l| model.layer(l.layer).map(|x| x.kind.type_name()) == Some("ReLU"))
                        .unwrap_or(false)
            })
            .len();
        assert_eq!(relu_left, 0, "all ReLU-layer kernels must be removed");
        let bn_after: u64 = pg
            .graph
            .iter()
            .filter(|(_, t)| t.is_on_gpu() && t.name.contains("bn_"))
            .map(|(_, t)| t.duration_ns)
            .sum();
        assert!(
            bn_after < bn_before * 6 / 10,
            "batchnorm kernels must halve"
        );
        pg.graph.validate().unwrap();
    }
}
