//! What-if: virtualized DNN memory (vDNN, paper §5.2, Algorithm 10).
//!
//! vDNN offloads convolution feature maps to host memory after their
//! forward pass and prefetches them back before the matching backward
//! pass, trading PCIe traffic for GPU memory. Daydream predicts the
//! *performance overhead* of the policy by inserting the offload/prefetch
//! memcpy chains (with their CPU launch/allocation tasks) and simulating.
//!
//! Prefetch timing follows the `vDNN_conv` policy: the prefetch of layer
//! `L` is released by the backward pass of a configurable number of layers
//! *after* `L` (look-ahead), modeling the paper's `findPrefetchLayer`
//! schedule override.

use crate::construct::ProfiledGraph;
use crate::graph::{DepKind, GraphEdit, TaskId};
use crate::task::{ExecThread, Task, TaskKind};
use daydream_models::{LayerKind, Model};
use daydream_trace::{CpuThreadId, CudaApi, DeviceId, LayerId, MemcpyDir, Phase, StreamId};
use std::collections::HashMap;

/// The CUDA stream vDNN uses for its offload/prefetch copies.
pub const VDNN_STREAM: StreamId = StreamId(7);
/// The host thread driving vDNN's memory manager.
pub const VDNN_THREAD: CpuThreadId = CpuThreadId(7);

/// Configuration of the vDNN what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VdnnConfig {
    /// Host-device PCIe bandwidth, bytes per nanosecond.
    pub pcie_bytes_per_ns: f64,
    /// How many backward layers ahead of a convolution its prefetch is
    /// released (1 = just-in-time).
    pub prefetch_lookahead: usize,
}

impl Default for VdnnConfig {
    fn default() -> Self {
        VdnnConfig {
            pcie_bytes_per_ns: 12.0,
            prefetch_lookahead: 2,
        }
    }
}

/// The vDNN(conv) transformation over any graph edit target; the caller
/// supplies the profiled batch size. Returns the number of offloaded
/// layers.
pub fn plan_vdnn<G: GraphEdit>(g: &mut G, model: &Model, cfg: &VdnnConfig, batch: u64) -> usize {
    // Anchors per conv layer: last forward GPU task and first backward task.
    let mut fwd_last: HashMap<LayerId, TaskId> = HashMap::new();
    let mut bwd_first: HashMap<LayerId, TaskId> = HashMap::new();
    for id in g.live_ids() {
        let t = g.task(id);
        let Some(lr) = t.layer else { continue };
        if !t.is_on_gpu() {
            continue;
        }
        match lr.phase {
            Phase::Forward => {
                let e = fwd_last.entry(lr.layer).or_insert(id);
                if g.task(*e).measured_start_ns < t.measured_start_ns {
                    *e = id;
                }
            }
            Phase::Backward => {
                let e = bwd_first.entry(lr.layer).or_insert(id);
                if g.task(*e).measured_start_ns > t.measured_start_ns {
                    *e = id;
                }
            }
            Phase::WeightUpdate => {}
        }
    }

    // Convolution layers in forward order.
    let convs: Vec<&daydream_models::Layer> = model
        .layers
        .iter()
        .filter(|l| matches!(l.kind, LayerKind::Conv2d { .. }))
        .collect();

    let mut offloaded = 0usize;
    for (ci, layer) in convs.iter().enumerate() {
        let (Some(&u), Some(&v)) = (fwd_last.get(&layer.id), bwd_first.get(&layer.id)) else {
            continue;
        };
        let bytes = 4 * layer.output.numel() * batch;
        let copy_ns = (bytes as f64 / cfg.pcie_bytes_per_ns) as u64 + 2_000;
        let hint = g.task(u).measured_start_ns;
        let layer_ref = g.task(u).layer;
        let cpu = ExecThread::Cpu(VDNN_THREAD);
        let gpu = ExecThread::Gpu(DeviceId(0), VDNN_STREAM);

        let mk = move |name: &str, kind: TaskKind, thread: ExecThread, dur: u64, off: u64| {
            let mut t = Task::new(name, kind, thread, dur);
            t.measured_start_ns = hint + off;
            t.layer = layer_ref;
            t
        };
        // Offload: launch + DtoH copy + free of the device buffer.
        let t1 = g.add_task(mk(
            "vdnn_memcpy_launch",
            TaskKind::CpuApi(CudaApi::MemcpyAsync(MemcpyDir::DeviceToHost)),
            cpu,
            9_000,
            1,
        ));
        let t2 = g.add_task(mk(
            "vdnn_offload_DtoH",
            TaskKind::GpuMemcpy {
                dir: MemcpyDir::DeviceToHost,
                bytes,
            },
            gpu,
            copy_ns,
            2,
        ));
        let t3 = g.add_task(mk(
            "cudaFree_vDNN",
            TaskKind::CpuApi(CudaApi::Free),
            cpu,
            30_000,
            3,
        ));
        // Prefetch: re-allocate, launch, HtoD copy.
        let t4 = g.add_task(mk(
            "cudaMalloc_vDNN",
            TaskKind::CpuApi(CudaApi::Malloc),
            cpu,
            45_000,
            4,
        ));
        let t5 = g.add_task(mk(
            "vdnn_memcpy_launch",
            TaskKind::CpuApi(CudaApi::MemcpyAsync(MemcpyDir::HostToDevice)),
            cpu,
            9_000,
            5,
        ));
        let t6 = g.add_task(mk(
            "vdnn_prefetch_HtoD",
            TaskKind::GpuMemcpy {
                dir: MemcpyDir::HostToDevice,
                bytes,
            },
            gpu,
            copy_ns,
            6,
        ));
        // u -> t1 -> t2 -> t3 -> t4 -> t5 -> t6 -> v (Algorithm 10).
        g.add_dep(u, t1, DepKind::Transform);
        g.add_dep(t1, t2, DepKind::Correlation);
        g.add_dep(t2, t3, DepKind::Sync);
        g.add_dep(t3, t4, DepKind::CpuSeq);
        g.add_dep(t4, t5, DepKind::CpuSeq);
        g.add_dep(t5, t6, DepKind::Correlation);
        g.add_dep(t6, v, DepKind::Transform);

        // Prefetch release: the look-ahead layer's backward start (the
        // schedule-override part of Algorithm 10).
        if let Some(release_layer) = convs.get(ci + cfg.prefetch_lookahead) {
            if let Some(&r) = bwd_first.get(&release_layer.id) {
                g.add_dep(r, t4, DepKind::Transform);
            }
        }
        offloaded += 1;
    }
    offloaded
}

/// Applies the vDNN(conv) transformation; returns the number of offloaded
/// layers.
pub fn what_if_vdnn(pg: &mut ProfiledGraph, model: &Model, cfg: &VdnnConfig) -> usize {
    let batch = pg.meta.batch_size as u64;
    plan_vdnn(&mut pg.graph, model, cfg, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn profile(model: &daydream_models::Model) -> ProfiledGraph {
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        ProfiledGraph::from_trace(&ground_truth::run_baseline(model, &cfg))
    }

    #[test]
    fn vdnn_predicts_overhead_not_speedup() {
        let model = zoo::vgg19();
        let pg = profile(&model);
        let pred = predict(&pg, |g| {
            what_if_vdnn(g, &model, &VdnnConfig::default());
        });
        assert!(
            pred.improvement() <= 0.0,
            "vDNN must cost time, not save it"
        );
        // But the overlap with compute keeps the overhead bounded.
        assert!(
            pred.improvement() > -0.8,
            "overhead {:.3} should stay moderate thanks to overlap",
            -pred.improvement()
        );
    }

    #[test]
    fn offloads_every_convolution() {
        let model = zoo::resnet50();
        let mut pg = profile(&model);
        let n = what_if_vdnn(&mut pg, &model, &VdnnConfig::default());
        assert_eq!(n, 53, "all ResNet-50 convolutions offload");
        pg.graph.validate().expect("vDNN graph must stay a DAG");
    }

    #[test]
    fn slower_pcie_costs_more() {
        let model = zoo::vgg19();
        let pg = profile(&model);
        let t = |bw: f64| {
            predict(&pg, |g| {
                what_if_vdnn(
                    g,
                    &model,
                    &VdnnConfig {
                        pcie_bytes_per_ns: bw,
                        prefetch_lookahead: 2,
                    },
                );
            })
            .predicted_ns
        };
        assert!(t(4.0) > t(12.0), "PCIe bandwidth must matter");
    }
}
