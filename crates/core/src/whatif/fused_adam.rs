//! What-if: the FusedAdam optimizer (paper §5.1, Algorithm 4).
//!
//! The kernel-to-layer mapping identifies every CPU and GPU task of the
//! weight-update phase; all are removed and replaced by a single fused GPU
//! kernel whose duration is estimated as the sum of the removed kernels —
//! eliminating the thousands of CUDA launches that make unfused Adam
//! CPU-bound on BERT (§6.3).

use crate::construct::ProfiledGraph;
use crate::graph::{GraphEdit, TaskId};
use crate::transform::{remove_all, select};
use daydream_trace::Phase;

/// The FusedAdam transformation (Algorithm 4) over any graph edit target.
pub fn plan_fused_adam<G: GraphEdit>(g: &mut G) -> Option<TaskId> {
    let wu_gpu = select::gpu_in_phase(g, Phase::WeightUpdate);
    if wu_gpu.is_empty() {
        return None;
    }
    // §5.1: the fused kernel's duration "is roughly estimated by the sum of
    // all removed compute-intensive kernels". Adam's unfused kernels are
    // memory-bound element-wise passes over redundant optimizer state, so a
    // multi-tensor kernel does far less work than their plain sum; the
    // compute-intensive subset (plus one kernel's floor) is the paper's
    // deliberately optimistic estimate.
    let total: u64 = wu_gpu
        .iter()
        .map(|&id| g.task(id))
        .filter(|t| t.name.contains("sgemm") || t.name.contains("scudnn"))
        .map(|t| t.duration_ns)
        .sum();
    let floor = wu_gpu
        .iter()
        .map(|&id| g.task(id).duration_ns)
        .max()
        .unwrap_or(0);
    let total = total.max(floor);

    // Keep the first-launched GPU task as the fused kernel.
    let keep = *wu_gpu
        .iter()
        .min_by_key(|&&id| g.task(id).measured_start_ns)
        .expect("non-empty selection");
    g.set_duration(keep, total);
    g.set_name(keep, "multi_tensor_apply_fused_adam".into());
    let keep_launch = g
        .predecessors(keep)
        .iter()
        .find(|&&(_, k)| k == crate::graph::DepKind::Correlation)
        .map(|&(p, _)| p);

    // Remove every other weight-update task, CPU and GPU alike.
    let doomed: Vec<TaskId> = select::in_phase(g, Phase::WeightUpdate)
        .into_iter()
        .filter(|&id| id != keep && Some(id) != keep_launch)
        .collect();
    remove_all(g, &doomed);
    Some(keep)
}

/// Applies the FusedAdam transformation (Algorithm 4).
///
/// Returns the id of the surviving fused kernel, or `None` if the profile
/// has no weight-update GPU tasks.
pub fn what_if_fused_adam(pg: &mut ProfiledGraph) -> Option<TaskId> {
    plan_fused_adam(&mut pg.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn check_model(model: daydream_models::Model, max_err: f64) -> (f64, f64) {
        let cfg = ExecConfig::pytorch_2080ti();
        let baseline = ground_truth::run_baseline(&model, &cfg);
        let pg = ProfiledGraph::from_trace(&baseline);
        let pred = predict(&pg, |g| {
            what_if_fused_adam(g);
        });
        let gt = ground_truth::run_fused_adam(&model, &cfg)
            .meta
            .iteration_ns();
        let err = pred.error_vs(gt);
        assert!(
            err < max_err,
            "{} FusedAdam error {err:.3} over budget",
            model.name
        );
        (pred.improvement(), err)
    }

    #[test]
    fn bert_large_prediction_near_paper() {
        // Paper: 38.7% improvement predicted within 7%.
        let (imp, _) = check_model(zoo::bert_large(), 0.13);
        assert!(
            (0.25..0.55).contains(&imp),
            "BERT-large improvement {imp:.3} should be ~0.39"
        );
    }

    #[test]
    fn bert_base_prediction_within_13_percent() {
        let (imp, _) = check_model(zoo::bert_base(), 0.13);
        assert!(
            imp > 0.12,
            "BERT-base improvement {imp:.3} should be substantial"
        );
    }

    #[test]
    fn gnmt_prediction_shows_small_gain() {
        let (imp, _) = check_model(zoo::gnmt(), 0.13);
        assert!(
            imp < 0.18,
            "GNMT improvement {imp:.3} should be small (paper §6.3)"
        );
    }

    #[test]
    fn transformation_leaves_single_wu_kernel() {
        let model = zoo::bert_base();
        let cfg = ExecConfig::pytorch_2080ti();
        let trace = ground_truth::run_baseline(&model, &cfg);
        let mut pg = ProfiledGraph::from_trace(&trace);
        let before = select::gpu_in_phase(&pg.graph, Phase::WeightUpdate).len();
        assert!(
            before > 2_000,
            "unfused BERT Adam launches thousands of kernels"
        );
        let kept = what_if_fused_adam(&mut pg).expect("fused kernel inserted");
        let after = select::gpu_in_phase(&pg.graph, Phase::WeightUpdate);
        assert_eq!(after, vec![kept]);
        pg.graph.validate().expect("graph stays a DAG");
    }
}
