//! What-if: Gist data encodings (paper §5.2, Algorithm 11).
//!
//! Gist shrinks stored feature maps by encoding them after the forward
//! pass and decoding before the backward pass, at the cost of extra GPU
//! kernels. Daydream estimates the *performance overhead* by inserting
//! encode/decode kernels — with their CPU launches, per Fig. 4b — sized
//! from the existing element-wise kernels of the same layer (the paper's
//! estimation guideline).

use crate::construct::ProfiledGraph;
use crate::graph::{DepKind, GraphEdit, GraphView, TaskId};
use crate::task::{Task, TaskKind};
use crate::transform::insert_gpu_task_with_launch;
use daydream_trace::Phase;

/// Configuration of the Gist what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GistConfig {
    /// Also insert the delayed-precision-reduction kernels of Gist's lossy
    /// mode.
    pub lossy: bool,
    /// CPU cost of each inserted kernel launch, ns.
    pub launch_ns: u64,
}

impl Default for GistConfig {
    fn default() -> Self {
        GistConfig {
            lossy: false,
            launch_ns: 6_000,
        }
    }
}

/// The Gist transformation over any graph edit target; returns the
/// inserted GPU kernels.
pub fn plan_gist<G: GraphEdit>(g: &mut G, cfg: &GistConfig) -> Vec<TaskId> {
    // Encode after each ReLU-family forward kernel; decode before the
    // layer's backward kernel. Sizes mirror the host kernels.
    // Keyword selection must be specific: cuDNN conv kernels also carry
    // "relu" in their names ("scudnn_..._relu_interior_nn").
    let relu_fwd: Vec<TaskId> = g.select_ids(|t| {
        t.is_on_gpu() && t.in_phase(Phase::Forward) && t.name.contains("elementwise_kernel_relu")
    });
    let relu_bwd: Vec<TaskId> = g.select_ids(|t| {
        t.is_on_gpu() && t.in_phase(Phase::Backward) && t.name.contains("elementwise_kernel_relu")
    });
    let mut inserted = Vec::new();
    for &u in &relu_fwd {
        let (dur, layer, launch_pred) = anchor(g, u);
        // Binarization writes 1 bit per element: roughly half the host
        // kernel's traffic (read activations, write compact form).
        let dur = dur / 2;
        let mut k = Task::new(
            "gist_encode_kernel",
            TaskKind::GpuKernel,
            g.task(u).thread,
            dur,
        );
        k.layer = layer;
        let (_, kid) = insert_gpu_task_with_launch(g, launch_pred, u, k, cfg.launch_ns);
        inserted.push(kid);
    }
    for &u in &relu_bwd {
        let (dur, layer, launch_pred) = anchor(g, u);
        let dur = dur / 2;
        let mut k = Task::new(
            "gist_decode_kernel",
            TaskKind::GpuKernel,
            g.task(u).thread,
            dur,
        );
        k.layer = layer;
        // Decode must precede the backward kernel: insert before it on the
        // stream, launched from the same CPU position.
        let before = crate::transform::thread_predecessor(g, u).unwrap_or(u);
        let (_, kid) = insert_gpu_task_with_launch(g, launch_pred, before, k, cfg.launch_ns);
        g.add_dep(kid, u, DepKind::Transform);
        inserted.push(kid);
    }
    if cfg.lossy {
        // Delayed precision reduction after every non-ReLU forward kernel.
        let others: Vec<TaskId> = g.select_ids(|t| {
            t.is_on_gpu()
                && t.in_phase(Phase::Forward)
                && !t.name.contains("relu")
                && !t.name.contains("gist_")
                && !t.name.contains("memcpy")
        });
        for &u in &others {
            let (dur, layer, launch_pred) = anchor(g, u);
            let mut k = Task::new(
                "gist_dpr_kernel",
                TaskKind::GpuKernel,
                g.task(u).thread,
                dur / 2,
            );
            k.layer = layer;
            let (_, kid) = insert_gpu_task_with_launch(g, launch_pred, u, k, cfg.launch_ns);
            inserted.push(kid);
        }
    }
    inserted
}

/// Applies the Gist transformation; returns the inserted GPU kernels.
pub fn what_if_gist(pg: &mut ProfiledGraph, cfg: &GistConfig) -> Vec<TaskId> {
    plan_gist(&mut pg.graph, cfg)
}

/// Duration estimate, layer tag, and CPU anchor for an insertion next to
/// task `u` — the "estimate from existing element-wise kernels" rule.
fn anchor<G: GraphView>(g: &G, u: TaskId) -> (u64, Option<crate::task::LayerRef>, TaskId) {
    let t = g.task(u);
    let launch = g
        .predecessors(u)
        .iter()
        .find(|&&(_, k)| k == DepKind::Correlation)
        .map(|&(p, _)| p)
        .unwrap_or(u);
    (t.duration_ns, t.layer, launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn profile() -> ProfiledGraph {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg))
    }

    #[test]
    fn gist_predicts_bounded_overhead() {
        let pg = profile();
        let pred = predict(&pg, |g| {
            what_if_gist(g, &GistConfig::default());
        });
        let overhead = -pred.improvement();
        assert!(overhead > 0.0, "encode/decode kernels must cost something");
        assert!(
            overhead < 0.25,
            "Gist overhead {overhead:.3} should be modest"
        );
    }

    #[test]
    fn lossy_costs_more_than_lossless() {
        let pg = profile();
        let lossless = predict(&pg, |g| {
            what_if_gist(g, &GistConfig::default());
        });
        let lossy = predict(&pg, |g| {
            what_if_gist(
                g,
                &GistConfig {
                    lossy: true,
                    launch_ns: 6_000,
                },
            );
        });
        assert!(lossy.predicted_ns > lossless.predicted_ns);
    }

    #[test]
    fn inserted_kernels_match_relu_count_and_graph_valid() {
        let mut pg = profile();
        let relus = pg
            .graph
            .select(|t| t.is_on_gpu() && t.name.contains("elementwise_kernel_relu"))
            .len();
        let inserted = what_if_gist(&mut pg, &GistConfig::default());
        assert_eq!(inserted.len(), relus);
        pg.graph.validate().expect("Gist graph must stay a DAG");
    }
}
