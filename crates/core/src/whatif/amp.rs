//! What-if: Automatic Mixed Precision (paper §5.1, Algorithm 3).
//!
//! Select every GPU task; shrink Tensor-Core-eligible kernels (names
//! containing `sgemm` or `scudnn`) by 3x and everything else — memory-bound
//! kernels whose traffic halves — by 2x. This is deliberately a blanket
//! rule: the paper shows it already predicts end-to-end AMP within ~13%
//! (Fig. 5) because the CPU side, which AMP does not change, is modeled
//! exactly.

use crate::construct::ProfiledGraph;
use crate::graph::GraphEdit;
use crate::transform::select;

/// Kernel-duration divisor for Tensor-Core-eligible kernels.
pub const COMPUTE_BOUND_GAIN: f64 = 3.0;
/// Kernel-duration divisor for memory-bound kernels.
pub const MEMORY_BOUND_GAIN: f64 = 2.0;

/// The AMP transformation (Algorithm 3) over any graph edit target —
/// a [`crate::DependencyGraph`] in place or a patch-recording
/// [`crate::patch::PatchGraph`].
pub fn plan_amp<G: GraphEdit>(g: &mut G) {
    for id in select::gpu_tasks(g) {
        let t = g.task(id);
        let divisor = if t.name.contains("sgemm") || t.name.contains("scudnn") {
            COMPUTE_BOUND_GAIN
        } else {
            MEMORY_BOUND_GAIN
        };
        let shrunk = (t.duration_ns as f64 / divisor).round() as u64;
        g.set_duration(id, shrunk);
    }
}

/// Applies the AMP transformation to the graph (Algorithm 3).
pub fn what_if_amp(pg: &mut ProfiledGraph) {
    plan_amp(&mut pg.graph);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    #[test]
    fn amp_prediction_matches_ground_truth_for_resnet() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti();
        let baseline = ground_truth::run_baseline(&model, &cfg);
        let pg = ProfiledGraph::from_trace(&baseline);
        let pred = predict(&pg, what_if_amp);
        let gt = ground_truth::run_amp(&model, &cfg).meta.iteration_ns();
        let err = pred.error_vs(gt);
        assert!(
            err < 0.13,
            "ResNet-50 AMP prediction error {err:.3} exceeds the paper's 13%"
        );
        assert!(
            pred.improvement() > 0.2,
            "AMP must predict a real gain for ResNet-50"
        );
    }

    #[test]
    fn amp_prediction_matches_ground_truth_for_bert_large() {
        let model = zoo::bert_large();
        let cfg = ExecConfig::pytorch_2080ti();
        let baseline = ground_truth::run_baseline(&model, &cfg);
        let pg = ProfiledGraph::from_trace(&baseline);
        let pred = predict(&pg, what_if_amp);
        let gt = ground_truth::run_amp(&model, &cfg).meta.iteration_ns();
        let err = pred.error_vs(gt);
        assert!(
            err < 0.13,
            "BERT-large AMP prediction error {err:.3} exceeds the paper's 13%"
        );
        // Paper: 17.2% improvement for BERT-large — far below per-kernel
        // gains. Our substrate profiles batch 2, where forward/backward is
        // a larger share, so the absolute improvement runs higher; the
        // sub-2x ceiling is the transferable claim.
        let imp = pred.improvement();
        assert!(
            (0.05..0.45).contains(&imp),
            "BERT-large AMP improvement {imp:.3}"
        );
    }

    #[test]
    fn amp_shrinks_only_gpu_tasks() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let trace = ground_truth::run_baseline(&model, &cfg);
        let mut pg = ProfiledGraph::from_trace(&trace);
        let cpu_before: u64 = pg
            .graph
            .iter()
            .filter(|(_, t)| t.thread.is_cpu())
            .map(|(_, t)| t.duration_ns)
            .sum();
        what_if_amp(&mut pg);
        let cpu_after: u64 = pg
            .graph
            .iter()
            .filter(|(_, t)| t.thread.is_cpu())
            .map(|(_, t)| t.duration_ns)
            .sum();
        assert_eq!(cpu_before, cpu_after, "CPU tasks must be untouched");
    }
}
