//! What-if: network bandwidth change (the paper's Fig. 2 walkthrough).
//!
//! The worked example of §4 asks *"what if network bandwidth is 2x?"* and
//! answers it by shrinking every `allReduce` task's duration by 2x and
//! re-simulating. This operates on profiles that already contain
//! communication tasks — either a distributed ground-truth trace or a graph
//! produced by [`crate::whatif::what_if_distributed`].

use crate::construct::ProfiledGraph;
use crate::graph::{GraphEdit, TaskId};
use crate::task::TaskKind;

/// The bandwidth-change transformation over any graph edit target.
///
/// Returns the affected tasks.
pub fn plan_bandwidth<G: GraphEdit>(g: &mut G, factor: f64) -> Vec<TaskId> {
    assert!(factor > 0.0, "bandwidth factor must be positive");
    let comm = g.select_ids(|t| matches!(t.kind, TaskKind::Communication { .. }));
    for &id in &comm {
        let scaled = (g.task(id).duration_ns as f64 / factor).round() as u64;
        g.set_duration(id, scaled);
    }
    comm
}

/// Scales every communication task for a bandwidth change of `factor`
/// (2.0 = twice the bandwidth, halving transfer times).
///
/// Returns the affected tasks.
pub fn what_if_bandwidth(pg: &mut ProfiledGraph, factor: f64) -> Vec<TaskId> {
    plan_bandwidth(&mut pg.graph, factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::predict;
    use daydream_comm::{ClusterConfig, NcclExecution};
    use daydream_models::zoo;
    use daydream_runtime::{baseline_plan, run_distributed, ExecConfig};

    /// The full Fig. 2 workflow: profile a distributed run, then predict a
    /// bandwidth doubling by shrinking the allReduce tasks.
    #[test]
    fn fig2_workflow_predicts_bandwidth_doubling() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(16);
        let plan = baseline_plan(&model, 16);
        let slow = ClusterConfig::new(4, 1, 10.0);
        let fast = ClusterConfig::new(4, 1, 20.0);

        // Profile the 10 Gbps cluster (this trace contains comm activities).
        let profiled = run_distributed(&model, &cfg, slow, NcclExecution::Synced, &plan);
        let pg = ProfiledGraph::from_trace(&profiled.trace);

        // Transform: "what if network bandwidth is 2x?"
        let pred = predict(&pg, |g| {
            what_if_bandwidth(g, 2.0);
        });
        // Ground truth: actually run at 20 Gbps.
        let gt = run_distributed(&model, &cfg, fast, NcclExecution::Synced, &plan);
        let err = pred.error_vs(gt.trace.meta.iteration_ns());
        assert!(err < 0.10, "Fig. 2 bandwidth prediction error {err:.3}");
        assert!(
            pred.predicted_ns < pred.baseline_ns,
            "faster network must help"
        );
    }

    #[test]
    fn factor_one_is_identity() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let plan = baseline_plan(&model, 8);
        let run = run_distributed(
            &model,
            &cfg,
            ClusterConfig::new(2, 1, 10.0),
            NcclExecution::Synced,
            &plan,
        );
        let pg = ProfiledGraph::from_trace(&run.trace);
        let pred = predict(&pg, |g| {
            what_if_bandwidth(g, 1.0);
        });
        assert_eq!(pred.baseline_ns, pred.predicted_ns);
    }

    #[test]
    fn single_gpu_profiles_are_unaffected() {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let trace = daydream_runtime::ground_truth::run_baseline(&model, &cfg);
        let mut pg = ProfiledGraph::from_trace(&trace);
        let touched = what_if_bandwidth(&mut pg, 4.0);
        assert!(touched.is_empty(), "no comm tasks in a single-GPU profile");
    }
}
