//! Delta-based what-if transforms: patches over an immutable base graph.
//!
//! Daydream's exploration loop (paper §4.4, §5) applies a transformation
//! and re-simulates — thousands of times per sweep. Before this module,
//! every scenario paid for a full clone of the `Vec`-of-`Vec`
//! [`DependencyGraph`] plus a fresh [`crate::CompiledGraph::compile`].
//! A [`GraphPatch`] makes the transformation itself the unit of work:
//!
//! * planners run against a [`PatchGraph`] — a copy-on-write overlay of a
//!   shared immutable base graph that records every mutation as a typed
//!   [`PatchOp`] while staying read-consistent (reads see the patched
//!   state, untouched regions are borrowed from the base);
//! * [`PatchGraph::finish`] yields the [`GraphPatch`]: the ordered op log
//!   (replayable, fingerprintable, explainable) plus the net final-state
//!   delta the incremental compiler consumes;
//! * [`crate::CompiledGraph::apply`] turns base + patch into a patched
//!   compiled graph by reusing untouched CSR regions — no base clone, no
//!   full recompile;
//! * [`GraphPatch::apply_reference`] is the oracle: clone the base, replay
//!   the op log through [`DependencyGraph`]'s own mutators, recompile.
//!   Equivalence proptests pin `apply == apply_reference` for every
//!   what-if transform in the catalog.
//!
//! The overlay stores its state in dense, arena-indexed arrays (boxed
//! slots, a touched-id list, a removal bitmap) rather than hash maps:
//! catalog transforms like AMP retime most of the graph, and per-op hash
//! lookups would make emit as expensive as the clone it replaces.

use crate::graph::{DepKind, DependencyGraph, GraphEdit, GraphView, TaskId};
use crate::task::{ExecThread, Task, TaskKind};
use std::fmt;

/// One recorded mutation of a base graph.
///
/// The op vocabulary is exactly the mutation surface of
/// [`crate::graph::GraphEdit`]: every §4.4 primitive and every what-if
/// transform decomposes into these.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchOp {
    /// Append a new task. Ids are assigned densely after the base arena:
    /// the `k`-th `AddTask` of a patch creates `TaskId(base_capacity + k)`.
    AddTask {
        /// The task to add (complete initial state). Boxed so the hot
        /// all-integer ops stay a cache-line-friendly 24 bytes.
        task: Box<Task>,
    },
    /// Remove a task, bridging its thread sequences (Remove primitive).
    RemoveTask {
        /// The doomed task.
        id: TaskId,
    },
    /// Add a dependency edge.
    AddDep {
        /// Edge source.
        from: TaskId,
        /// Edge target.
        to: TaskId,
        /// Dependency kind.
        kind: DepKind,
    },
    /// Remove a dependency edge.
    RemoveDep {
        /// Edge source.
        from: TaskId,
        /// Edge target.
        to: TaskId,
    },
    /// Set a task's duration (shrink/scale primitives).
    SetDuration {
        /// Target task.
        id: TaskId,
        /// New duration, ns.
        ns: u64,
    },
    /// Rename a task.
    SetName {
        /// Target task.
        id: TaskId,
        /// New name.
        name: String,
    },
    /// Change what a task does (e.g. compressed payload bytes).
    SetKind {
        /// Target task.
        id: TaskId,
        /// New kind.
        kind: TaskKind,
    },
    /// Move a task to another execution thread.
    SetThread {
        /// Target task.
        id: TaskId,
        /// New thread.
        thread: ExecThread,
    },
    /// Override a task's scheduling priority (Schedule primitive).
    SetPriority {
        /// Target task.
        id: TaskId,
        /// New priority.
        priority: i64,
    },
}

/// Net final-state delta of a patch against its base — what
/// [`crate::CompiledGraph::apply`] consumes. Derived incrementally while
/// recording; the op log stays the authoritative definition (the overlay
/// mirrors [`DependencyGraph`]'s mutation semantics op by op).
///
/// All per-task storage is dense and arena-indexed; `None` slots mean
/// "untouched, read the base". Field updates are stored as sparse scalar
/// overrides — materializing a full `Task` per touched node (a `String`
/// clone each) would make dense retimes as expensive as the graph clone
/// this module exists to avoid; the merged `Task` view is built lazily,
/// only when a planner actually re-reads a modified task.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetDelta {
    /// Per-task override bitmap (0 = untouched); the flat field arrays
    /// below are valid only where the matching bit is set. Flat storage
    /// keeps a field write at "index + flag + store" — no allocation.
    flags: Vec<u8>,
    dur: Vec<u64>,
    gap: Vec<u64>,
    prio: Vec<i64>,
    thread: Vec<ExecThread>,
    /// Rare structured overrides (blueconnect/batch-size rewrites).
    kind: std::collections::HashMap<usize, TaskKind>,
    name: std::collections::HashMap<usize, String>,
    /// Lazily merged full-`Task` views: pre-filled for inserted tasks,
    /// built on first read for modified base tasks, kept in sync by
    /// every later setter. `OnceLock` (not `OnceCell`) so finished
    /// patches are `Sync` — the sweep engine shares cached DDP patches
    /// across worker threads and layers refinements on top.
    merged: Vec<std::sync::OnceLock<Box<Task>>>,
    /// Ids with a nonzero flag byte, in first-touch order.
    touched: Vec<TaskId>,
    /// Removal bitmap (base or new tasks removed by this patch).
    removed: Vec<bool>,
    /// Number of set bits in `removed`.
    removed_count: usize,
    /// Final successor lists of every task whose out-edges changed.
    succ: Vec<Option<Box<EdgeList>>>,
    /// Final predecessor lists of every task whose in-edges changed.
    pred: Vec<Option<Box<EdgeList>>>,
    /// `true` once any adjacency list has been touched.
    edges_touched: bool,
    /// Ids of added tasks, ascending (includes ones removed again).
    new_ids: Vec<TaskId>,
}

/// Field-override flag bits (`NetDelta::flags`).
const F_DUR: u8 = 1 << 0;
const F_GAP: u8 = 1 << 1;
const F_PRIO: u8 = 1 << 2;
const F_THREAD: u8 = 1 << 3;
const F_KIND: u8 = 1 << 4;
const F_NAME: u8 = 1 << 5;

/// Filler for unset dense `thread` slots (never read: guarded by
/// `F_THREAD`).
const NO_THREAD: ExecThread = ExecThread::Cpu(daydream_trace::CpuThreadId(u32::MAX));

/// A task's typed adjacency list.
type EdgeList = Vec<(TaskId, DepKind)>;

/// Copy-out of a slot's simulation-relevant overrides (what
/// [`crate::CompiledGraph::apply`] merges onto its base arrays).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScalarOver {
    /// Overridden duration, ns.
    pub(crate) duration_ns: Option<u64>,
    /// Overridden trailing gap, ns.
    pub(crate) gap_ns: Option<u64>,
    /// Overridden scheduling priority.
    pub(crate) priority: Option<i64>,
    /// Overridden execution thread.
    pub(crate) thread: Option<ExecThread>,
}

fn dense_get<T>(v: &[Option<Box<T>>], i: usize) -> Option<&T> {
    v.get(i).and_then(|o| o.as_deref())
}

impl NetDelta {
    fn flag(&self, id: TaskId) -> u8 {
        self.flags.get(id.0).copied().unwrap_or(0)
    }

    /// Grows the flag array to cover at least `len` slots; the per-field
    /// arrays grow lazily on first use of their field, so a pure retime
    /// patch allocates exactly flags + durations.
    fn ensure(&mut self, len: usize) {
        if self.flags.len() < len {
            self.flags.resize(len, 0);
            self.merged.resize_with(len, std::sync::OnceLock::new);
        }
    }

    fn ensure_dur(&mut self, len: usize) {
        if self.dur.len() < len {
            self.dur.resize(len, 0);
        }
    }

    fn ensure_gap(&mut self, len: usize) {
        if self.gap.len() < len {
            self.gap.resize(len, 0);
        }
    }

    fn ensure_prio(&mut self, len: usize) {
        if self.prio.len() < len {
            self.prio.resize(len, 0);
        }
    }

    fn ensure_thread(&mut self, len: usize) {
        if self.thread.len() < len {
            self.thread.resize(len, NO_THREAD);
        }
    }

    /// Simulation-relevant field overrides of a touched task.
    pub(crate) fn scalars(&self, id: TaskId) -> Option<ScalarOver> {
        let f = self.flag(id);
        if f == 0 {
            return None;
        }
        let i = id.0;
        Some(ScalarOver {
            duration_ns: (f & F_DUR != 0).then(|| self.dur[i]),
            gap_ns: (f & F_GAP != 0).then(|| self.gap[i]),
            priority: (f & F_PRIO != 0).then(|| self.prio[i]),
            thread: (f & F_THREAD != 0).then(|| self.thread[i]),
        })
    }

    /// Pending merged-view cell for `id`, if the cache array covers it.
    fn merged_mut(&mut self, i: usize) -> Option<&mut Task> {
        self.merged
            .get_mut(i)
            .and_then(|c| c.get_mut())
            .map(|b| &mut **b)
    }

    /// The full task state of an *inserted* task (always materialized).
    pub(crate) fn new_task(&self, id: TaskId) -> &Task {
        self.merged
            .get(id.0)
            .and_then(|c| c.get())
            .expect("inserted tasks are fully materialized")
    }

    pub(crate) fn succ_over(&self, id: TaskId) -> Option<&EdgeList> {
        dense_get(&self.succ, id.0)
    }

    pub(crate) fn pred_over(&self, id: TaskId) -> Option<&EdgeList> {
        dense_get(&self.pred, id.0)
    }

    pub(crate) fn is_removed(&self, id: TaskId) -> bool {
        self.removed.get(id.0).copied().unwrap_or(false)
    }

    /// Modified-or-added task ids in first-touch order.
    pub(crate) fn touched(&self) -> &[TaskId] {
        &self.touched
    }

    pub(crate) fn new_ids(&self) -> &[TaskId] {
        &self.new_ids
    }

    /// `true` when the patch changes topology (tasks in/out, edges, or
    /// anything that invalidates the base CSR).
    pub(crate) fn is_structural(&self) -> bool {
        self.removed_count > 0 || !self.new_ids.is_empty() || self.edges_touched
    }

    /// Ids the patch removed (set bits of the removal bitmap), ascending.
    pub(crate) fn removed_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.removed
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| TaskId(i))
    }

    /// Ids whose final predecessor list the patch overrides, ascending.
    /// (Every edge add/remove dirties the `to` side's list, and task
    /// removal dirties every neighbour — so this is exactly the set of
    /// tasks whose dependency-readiness the patch can move.)
    pub(crate) fn pred_overlay_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.pred
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| TaskId(i))
    }
}

/// A typed, replayable delta over an immutable base [`DependencyGraph`].
#[derive(Debug, Clone, Default)]
pub struct GraphPatch {
    base_capacity: usize,
    ops: Vec<PatchOp>,
    delta: NetDelta,
}

/// Op-type counts of a patch, for `daydream sweep --explain` and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchSummary {
    /// Arena capacity of the base graph the patch applies to.
    pub base_capacity: usize,
    /// Tasks inserted.
    pub tasks_added: usize,
    /// Tasks removed (with thread-sequence bridging).
    pub tasks_removed: usize,
    /// Explicit dependency edges added (bridging edges not counted —
    /// they are part of `RemoveTask`).
    pub deps_added: usize,
    /// Explicit dependency edges removed.
    pub deps_removed: usize,
    /// Distinct tasks whose duration changed.
    pub tasks_retimed: usize,
    /// Distinct tasks renamed.
    pub tasks_renamed: usize,
    /// Distinct tasks whose kind changed.
    pub tasks_rekinded: usize,
    /// Distinct tasks moved to another thread.
    pub tasks_rethreaded: usize,
    /// Distinct tasks whose scheduling priority changed.
    pub tasks_reprioritized: usize,
}

impl PatchSummary {
    /// Total number of distinct changes the summary covers.
    pub fn op_count(&self) -> usize {
        self.tasks_added
            + self.tasks_removed
            + self.deps_added
            + self.deps_removed
            + self.tasks_retimed
            + self.tasks_renamed
            + self.tasks_rekinded
            + self.tasks_rethreaded
            + self.tasks_reprioritized
    }
}

impl fmt::Display for PatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "base arena:          {} tasks", self.base_capacity)?;
        writeln!(f, "tasks inserted:      {}", self.tasks_added)?;
        writeln!(f, "tasks removed:       {}", self.tasks_removed)?;
        writeln!(f, "tasks retimed:       {}", self.tasks_retimed)?;
        writeln!(f, "tasks renamed:       {}", self.tasks_renamed)?;
        writeln!(f, "tasks rekinded:      {}", self.tasks_rekinded)?;
        writeln!(f, "tasks rethreaded:    {}", self.tasks_rethreaded)?;
        writeln!(f, "tasks reprioritized: {}", self.tasks_reprioritized)?;
        writeln!(f, "deps added:          {}", self.deps_added)?;
        write!(f, "deps removed:        {}", self.deps_removed)
    }
}

/// Incremental stable 64-bit hash: FNV-1a over byte slices, with a
/// word-at-a-time multiply-xorshift round for the hot integer fields
/// (hashing a dense retime patch byte-wise would cost more than applying
/// it). Stable across processes by construction — no `DefaultHasher`
/// randomness.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        let mut x = self.0 ^ v;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
    }
}

impl GraphPatch {
    /// Arena capacity of the base graph this patch was recorded against.
    pub fn base_capacity(&self) -> usize {
        self.base_capacity
    }

    /// The ordered op log.
    pub fn ops(&self) -> &[PatchOp] {
        &self.ops
    }

    /// `true` when the patch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub(crate) fn delta(&self) -> &NetDelta {
        &self.delta
    }

    /// Stable 64-bit content hash of the op log (plus the base arena
    /// size), usable as a per-base evaluation cache key: two scenarios
    /// that emit identical patches over the same base predict identically.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.base_capacity as u64);
        // Hot all-integer ops hash their fields directly; the colder
        // structured ops (task payloads, kinds, threads) go through their
        // `Debug` form — a pure function of the fields, so stable.
        let mut buf = String::new();
        for op in &self.ops {
            match op {
                PatchOp::SetDuration { id, ns } => {
                    h.u64(1);
                    h.u64(id.0 as u64);
                    h.u64(*ns);
                }
                PatchOp::SetPriority { id, priority } => {
                    h.u64(2);
                    h.u64(id.0 as u64);
                    h.u64(*priority as u64);
                }
                PatchOp::AddDep { from, to, kind } => {
                    h.u64(3);
                    h.u64(from.0 as u64);
                    h.u64(to.0 as u64);
                    h.u64(*kind as u64);
                }
                PatchOp::RemoveDep { from, to } => {
                    h.u64(4);
                    h.u64(from.0 as u64);
                    h.u64(to.0 as u64);
                }
                PatchOp::RemoveTask { id } => {
                    h.u64(5);
                    h.u64(id.0 as u64);
                }
                PatchOp::SetName { id, name } => {
                    h.u64(6);
                    h.u64(id.0 as u64);
                    h.bytes(name.as_bytes());
                }
                other => {
                    use fmt::Write;
                    buf.clear();
                    let _ = write!(buf, "{other:?}");
                    h.u64(7);
                    h.bytes(buf.as_bytes());
                }
            }
        }
        h.0
    }

    /// Op-type counts (distinct task ids for the field-update families).
    pub fn summary(&self) -> PatchSummary {
        let mut s = PatchSummary {
            base_capacity: self.base_capacity,
            ..PatchSummary::default()
        };
        let mut retimed = std::collections::HashSet::new();
        let mut renamed = std::collections::HashSet::new();
        let mut rekinded = std::collections::HashSet::new();
        let mut rethreaded = std::collections::HashSet::new();
        let mut reprioritized = std::collections::HashSet::new();
        for op in &self.ops {
            match op {
                PatchOp::AddTask { .. } => s.tasks_added += 1,
                PatchOp::RemoveTask { .. } => s.tasks_removed += 1,
                PatchOp::AddDep { .. } => s.deps_added += 1,
                PatchOp::RemoveDep { .. } => s.deps_removed += 1,
                PatchOp::SetDuration { id, .. } => {
                    retimed.insert(*id);
                }
                PatchOp::SetName { id, .. } => {
                    renamed.insert(*id);
                }
                PatchOp::SetKind { id, .. } => {
                    rekinded.insert(*id);
                }
                PatchOp::SetThread { id, .. } => {
                    rethreaded.insert(*id);
                }
                PatchOp::SetPriority { id, .. } => {
                    reprioritized.insert(*id);
                }
            }
        }
        s.tasks_retimed = retimed.len();
        s.tasks_renamed = renamed.len();
        s.tasks_rekinded = rekinded.len();
        s.tasks_rethreaded = rethreaded.len();
        s.tasks_reprioritized = reprioritized.len();
        s
    }

    /// Distinct *base* tasks whose duration the patch changes, ascending.
    /// (Memory-objective derivation maps these to layers via the base
    /// graph; inserted tasks carry their own state.)
    pub fn retimed_base_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self
            .ops
            .iter()
            .filter_map(|op| match op {
                PatchOp::SetDuration { id, .. } if id.0 < self.base_capacity => Some(*id),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Final state of the tasks this patch inserts (and keeps), in
    /// insertion order.
    pub fn inserted_tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.delta
            .new_ids
            .iter()
            .filter(|id| !self.delta.is_removed(**id))
            .map(|id| (*id, self.delta.new_task(*id)))
    }

    /// Replays the op log onto `g` through [`DependencyGraph`]'s own
    /// mutators — the reference semantics of the patch.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s arena capacity differs from the base the patch was
    /// recorded against (task-id assignment would diverge).
    pub fn replay_on(&self, g: &mut DependencyGraph) {
        assert_eq!(
            g.capacity(),
            self.base_capacity,
            "patch recorded against a different base arena"
        );
        replay_ops(&self.ops, g);
    }

    /// The mutate-then-recompile oracle: clones the base, replays the op
    /// log, and returns the mutated graph (compile it for the compiled
    /// oracle). [`crate::CompiledGraph::apply`] must be simulation-
    /// equivalent to this path — the patch-equivalence proptests pin it.
    pub fn apply_reference(&self, base: &DependencyGraph) -> DependencyGraph {
        let mut g = base.clone();
        self.replay_on(&mut g);
        g
    }

    /// Composes this patch with a `refinement` recorded *on top of it*
    /// (i.e. against `self.apply_reference(base)`), yielding one patch
    /// over `base` whose effect equals applying the two sequentially.
    ///
    /// This is how the sweep engine layers BlueConnect/DGC refinements
    /// over a cached DDP patch without re-planning the DDP stage: the
    /// composed patch's delta is rebuilt by replaying both op logs
    /// through a fresh [`PatchGraph`], so `AddTask` id assignment and
    /// removal bridging come out exactly as a sequential apply would.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not the arena this patch was recorded against,
    /// or if `refinement` was not recorded against this patch's output
    /// arena.
    pub fn compose(&self, base: &DependencyGraph, refinement: &GraphPatch) -> GraphPatch {
        let mut pg = PatchGraph::layered(base, self);
        assert_eq!(
            refinement.base_capacity,
            pg.capacity(),
            "refinement recorded against a different patched arena"
        );
        replay_ops(&refinement.ops, &mut pg);
        pg.finish()
    }
}

/// Replays an op log through any [`GraphEdit`] sink.
fn replay_ops<G: GraphEdit>(ops: &[PatchOp], g: &mut G) {
    for op in ops {
        match op {
            PatchOp::AddTask { task } => {
                g.add_task((**task).clone());
            }
            PatchOp::RemoveTask { id } => g.remove_task(*id),
            PatchOp::AddDep { from, to, kind } => g.add_dep(*from, *to, *kind),
            PatchOp::RemoveDep { from, to } => g.remove_dep(*from, *to),
            PatchOp::SetDuration { id, ns } => g.set_duration(*id, *ns),
            PatchOp::SetName { id, name } => g.set_name(*id, name.clone()),
            PatchOp::SetKind { id, kind } => g.set_kind(*id, kind.clone()),
            PatchOp::SetThread { id, thread } => g.set_thread(*id, *thread),
            PatchOp::SetPriority { id, priority } => g.set_priority(*id, *priority),
        }
    }
}

/// A copy-on-write overlay over an immutable base graph that what-if
/// planners mutate through [`GraphEdit`]; every mutation is recorded as a
/// [`PatchOp`] and mirrored into an overlay, so reads observe the patched
/// state without the base ever being cloned or written.
#[derive(Debug)]
pub struct PatchGraph<'a> {
    base: &'a DependencyGraph,
    ops: Vec<PatchOp>,
    delta: NetDelta,
}

const NO_EDGES: &[(TaskId, DepKind)] = &[];

/// Grows `v` with `None` up to (at least) `len` slots.
fn ensure_slots<T>(v: &mut Vec<Option<Box<T>>>, len: usize) {
    if v.len() < len {
        v.resize_with(len, || None);
    }
}

impl<'a> PatchGraph<'a> {
    /// A fresh overlay over `base`.
    pub fn new(base: &'a DependencyGraph) -> Self {
        PatchGraph {
            base,
            ops: Vec::new(),
            delta: NetDelta::default(),
        }
    }

    /// An overlay over `base` resumed from a previously recorded `prior`
    /// patch: reads see base-plus-prior, new mutations append to prior's
    /// op log, and [`PatchGraph::finish`] yields the *composed* patch.
    /// This is the layered form behind [`GraphPatch::compose`] — a
    /// BlueConnect/DGC planner records its refinement on top of a cached
    /// DDP patch without the DDP stage ever being re-planned.
    ///
    /// # Panics
    ///
    /// Panics if `prior` was recorded against a different base arena.
    pub fn layered(base: &'a DependencyGraph, prior: &GraphPatch) -> Self {
        assert_eq!(
            base.capacity(),
            prior.base_capacity,
            "prior patch recorded against a different base arena"
        );
        PatchGraph {
            base,
            ops: prior.ops.clone(),
            delta: prior.delta.clone(),
        }
    }

    /// The base graph under the overlay.
    pub fn base(&self) -> &DependencyGraph {
        self.base
    }

    /// Arena capacity including overlay-added tasks.
    pub fn capacity(&self) -> usize {
        self.base.capacity() + self.delta.new_ids.len()
    }

    /// `true` if the task is removed (in the base or by the overlay).
    pub fn is_removed(&self, id: TaskId) -> bool {
        self.delta.is_removed(id) || (id.0 < self.base.capacity() && self.base.is_removed(id))
    }

    /// Finalizes the overlay into the recorded patch.
    pub fn finish(self) -> GraphPatch {
        GraphPatch {
            base_capacity: self.base.capacity(),
            ops: self.ops,
            delta: self.delta,
        }
    }

    /// Overlay successor list for `id`, cloned from the base on first
    /// write (empty for overlay-added tasks).
    fn succ_mut(&mut self, id: TaskId) -> &mut Vec<(TaskId, DepKind)> {
        self.delta.edges_touched = true;
        let len = self.capacity().max(id.0 + 1);
        ensure_slots(&mut self.delta.succ, len);
        let base = self.base;
        self.delta.succ[id.0].get_or_insert_with(|| {
            Box::new(if id.0 < base.capacity() {
                base.successors(id).to_vec()
            } else {
                Vec::new()
            })
        })
    }

    fn pred_mut(&mut self, id: TaskId) -> &mut Vec<(TaskId, DepKind)> {
        self.delta.edges_touched = true;
        let len = self.capacity().max(id.0 + 1);
        ensure_slots(&mut self.delta.pred, len);
        let base = self.base;
        self.delta.pred[id.0].get_or_insert_with(|| {
            Box::new(if id.0 < base.capacity() {
                base.predecessors(id).to_vec()
            } else {
                Vec::new()
            })
        })
    }

    /// Marks `id` touched (growing the override arrays as needed) and
    /// returns its index. No base `Task` clone — overrides are sparse.
    fn touch(&mut self, id: TaskId) -> usize {
        let len = self.capacity().max(id.0 + 1);
        self.delta.ensure(len);
        if self.delta.flags[id.0] == 0 {
            self.delta.touched.push(id);
        }
        id.0
    }

    fn edge_exists(&self, from: TaskId, to: TaskId) -> bool {
        GraphView::successors(self, from)
            .iter()
            .any(|&(t, _)| t == to)
    }

    /// Inserts the edge without recording an op (bridging inside
    /// `remove_task` is part of the `RemoveTask` op's semantics).
    fn insert_edge(&mut self, from: TaskId, to: TaskId, kind: DepKind) -> bool {
        if from == to || self.edge_exists(from, to) {
            return false;
        }
        self.succ_mut(from).push((to, kind));
        self.pred_mut(to).push((from, kind));
        true
    }
}

impl GraphView for PatchGraph<'_> {
    fn task(&self, id: TaskId) -> &Task {
        let d = &self.delta;
        let f = d.flag(id);
        if f == 0 {
            return self.base.task(id);
        }
        // Merge lazily: the cell is pre-filled for inserted tasks and
        // kept in sync by every setter, so a hit is always current.
        d.merged[id.0].get_or_init(|| {
            let i = id.0;
            let mut t = self.base.task(id).clone();
            if f & F_DUR != 0 {
                t.duration_ns = d.dur[i];
            }
            if f & F_GAP != 0 {
                t.gap_ns = d.gap[i];
            }
            if f & F_PRIO != 0 {
                t.priority = d.prio[i];
            }
            if f & F_THREAD != 0 {
                t.thread = d.thread[i];
            }
            if let Some(k) = d.kind.get(&i) {
                t.kind = k.clone();
            }
            if let Some(n) = d.name.get(&i) {
                t.name = n.clone();
            }
            Box::new(t)
        })
    }

    fn successors(&self, id: TaskId) -> &[(TaskId, DepKind)] {
        match self.delta.succ_over(id) {
            Some(v) => v,
            None if id.0 < self.base.capacity() => self.base.successors(id),
            None => NO_EDGES,
        }
    }

    fn predecessors(&self, id: TaskId) -> &[(TaskId, DepKind)] {
        match self.delta.pred_over(id) {
            Some(v) => v,
            None if id.0 < self.base.capacity() => self.base.predecessors(id),
            None => NO_EDGES,
        }
    }

    fn live_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self
            .base
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !self.delta.is_removed(*id))
            .collect();
        // New ids all sort after base ids, so the result stays ascending.
        ids.extend(
            self.delta
                .new_ids
                .iter()
                .filter(|id| !self.delta.is_removed(**id)),
        );
        ids
    }

    // Specialized over the default: walks the base arena directly (one
    // pass, no intermediate id vector) and only detours through the
    // merged-view cache for tasks the overlay actually modified.
    fn select_ids(&self, pred: impl Fn(&Task) -> bool) -> Vec<TaskId> {
        let mut out = Vec::new();
        for (id, t) in self.base.iter() {
            if self.delta.is_removed(id) {
                continue;
            }
            let t = if self.delta.flag(id) == 0 {
                t
            } else {
                GraphView::task(self, id)
            };
            if pred(t) {
                out.push(id);
            }
        }
        for &id in self.delta.new_ids() {
            if !self.delta.is_removed(id) && pred(self.delta.new_task(id)) {
                out.push(id);
            }
        }
        out
    }
}

impl GraphEdit for PatchGraph<'_> {
    fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.capacity());
        self.ops.push(PatchOp::AddTask {
            task: Box::new(task.clone()),
        });
        let i = self.touch(id);
        let d = &mut self.delta;
        d.flags[i] = F_DUR | F_GAP | F_PRIO | F_THREAD;
        d.ensure_dur(i + 1);
        d.ensure_gap(i + 1);
        d.ensure_prio(i + 1);
        d.ensure_thread(i + 1);
        d.dur[i] = task.duration_ns;
        d.gap[i] = task.gap_ns;
        d.prio[i] = task.priority;
        d.thread[i] = task.thread;
        let _ = d.merged[i].set(Box::new(task));
        d.new_ids.push(id);
        id
    }

    fn add_dep(&mut self, from: TaskId, to: TaskId, kind: DepKind) {
        assert!(
            from.0 < self.capacity() && to.0 < self.capacity(),
            "edge endpoint out of bounds"
        );
        if self.insert_edge(from, to, kind) {
            self.ops.push(PatchOp::AddDep { from, to, kind });
        }
    }

    fn remove_dep(&mut self, from: TaskId, to: TaskId) {
        if !self.edge_exists(from, to) {
            return;
        }
        self.succ_mut(from).retain(|&(t, _)| t != to);
        self.pred_mut(to).retain(|&(t, _)| t != from);
        self.ops.push(PatchOp::RemoveDep { from, to });
    }

    // Mirrors `DependencyGraph::remove_task` exactly: detach both sides,
    // then bridge predecessors to successors with kind merging. Recorded
    // as a single `RemoveTask` op; replay re-derives the same bridging.
    fn remove_task(&mut self, id: TaskId) {
        if self.is_removed(id) {
            return;
        }
        self.ops.push(PatchOp::RemoveTask { id });
        if self.delta.removed.len() <= id.0 {
            self.delta
                .removed
                .resize(self.capacity().max(id.0 + 1), false);
        }
        self.delta.removed[id.0] = true;
        self.delta.removed_count += 1;
        let preds = GraphView::predecessors(self, id).to_vec();
        let succs = GraphView::successors(self, id).to_vec();
        for &(p, _) in &preds {
            self.succ_mut(p).retain(|&(t, _)| t != id);
        }
        for &(s, _) in &succs {
            self.pred_mut(s).retain(|&(t, _)| t != id);
        }
        self.succ_mut(id).clear();
        self.pred_mut(id).clear();
        for &(p, pk) in &preds {
            for &(s, sk) in &succs {
                let kind = if pk == sk { pk } else { DepKind::Transform };
                self.insert_edge(p, s, kind);
            }
        }
    }

    fn set_duration(&mut self, id: TaskId, duration_ns: u64) {
        let i = self.touch(id);
        let d = &mut self.delta;
        d.flags[i] |= F_DUR;
        d.ensure_dur(i + 1);
        d.dur[i] = duration_ns;
        if let Some(m) = d.merged_mut(i) {
            m.duration_ns = duration_ns;
        }
        self.ops.push(PatchOp::SetDuration {
            id,
            ns: duration_ns,
        });
    }

    fn set_name(&mut self, id: TaskId, name: String) {
        let i = self.touch(id);
        let d = &mut self.delta;
        d.flags[i] |= F_NAME;
        d.name.insert(i, name.clone());
        if let Some(m) = d.merged_mut(i) {
            m.name = name.clone();
        }
        self.ops.push(PatchOp::SetName { id, name });
    }

    fn set_kind(&mut self, id: TaskId, kind: TaskKind) {
        let i = self.touch(id);
        let d = &mut self.delta;
        d.flags[i] |= F_KIND;
        d.kind.insert(i, kind.clone());
        if let Some(m) = d.merged_mut(i) {
            m.kind = kind.clone();
        }
        self.ops.push(PatchOp::SetKind { id, kind });
    }

    fn set_thread(&mut self, id: TaskId, thread: ExecThread) {
        let i = self.touch(id);
        let d = &mut self.delta;
        d.flags[i] |= F_THREAD;
        d.ensure_thread(i + 1);
        d.thread[i] = thread;
        if let Some(m) = d.merged_mut(i) {
            m.thread = thread;
        }
        self.ops.push(PatchOp::SetThread { id, thread });
    }

    fn set_priority(&mut self, id: TaskId, priority: i64) {
        let i = self.touch(id);
        let d = &mut self.delta;
        d.flags[i] |= F_PRIO;
        d.ensure_prio(i + 1);
        d.prio[i] = priority;
        if let Some(m) = d.merged_mut(i) {
            m.priority = priority;
        }
        self.ops.push(PatchOp::SetPriority { id, priority });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daydream_trace::CpuThreadId;

    fn cpu(name: &str, dur: u64) -> Task {
        Task::new(
            name,
            TaskKind::CpuWork,
            ExecThread::Cpu(CpuThreadId(0)),
            dur,
        )
    }

    fn chain(n: usize) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        let ids: Vec<TaskId> = (0..n)
            .map(|i| {
                let mut t = cpu(&format!("t{i}"), 10);
                t.measured_start_ns = i as u64 * 100;
                g.add_task(t)
            })
            .collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1], DepKind::CpuSeq);
        }
        g
    }

    #[test]
    fn overlay_reads_reflect_writes_and_base_stays_untouched() {
        let g = chain(3);
        let mut p = PatchGraph::new(&g);
        p.set_duration(TaskId(1), 99);
        let id = p.add_task(cpu("new", 5));
        p.add_dep(TaskId(2), id, DepKind::Transform);
        assert_eq!(GraphView::task(&p, TaskId(1)).duration_ns, 99);
        assert_eq!(GraphView::task(&p, id).name, "new");
        assert_eq!(
            GraphView::successors(&p, TaskId(2)),
            &[(id, DepKind::Transform)]
        );
        assert_eq!(p.live_ids().len(), 4);
        // The base never saw any of it.
        assert_eq!(g.task(TaskId(1)).duration_ns, 10);
        assert_eq!(g.successors(TaskId(2)), &[]);
    }

    #[test]
    fn replay_matches_overlay_semantics() {
        let g = chain(4);
        let mut p = PatchGraph::new(&g);
        // Exercise every op family, including bridging removal.
        p.set_duration(TaskId(0), 77);
        p.set_priority(TaskId(3), -4);
        p.set_name(TaskId(3), "renamed".into());
        let extra = p.add_task(cpu("extra", 30));
        p.add_dep(TaskId(0), extra, DepKind::Transform);
        p.remove_dep(TaskId(2), TaskId(3));
        p.remove_task(TaskId(1));
        let live = p.live_ids();
        let overlay_succ0 = GraphView::successors(&p, TaskId(0)).to_vec();
        let patch = p.finish();

        let replayed = patch.apply_reference(&g);
        assert_eq!(
            replayed.iter().map(|(id, _)| id).collect::<Vec<_>>(),
            live,
            "live sets must agree"
        );
        assert_eq!(replayed.task(TaskId(0)).duration_ns, 77);
        assert_eq!(replayed.task(TaskId(3)).priority, -4);
        assert_eq!(replayed.task(TaskId(3)).name, "renamed");
        let mut a = replayed.successors(TaskId(0)).to_vec();
        let mut b = overlay_succ0;
        a.sort_unstable_by_key(|&(t, _)| t);
        b.sort_unstable_by_key(|&(t, _)| t);
        assert_eq!(a, b, "bridged successor lists must agree");
        replayed.validate().unwrap();
    }

    #[test]
    fn duplicate_edges_and_double_removal_record_nothing() {
        let g = chain(2);
        let mut p = PatchGraph::new(&g);
        p.add_dep(TaskId(0), TaskId(1), DepKind::Transform); // already exists
        p.add_dep(TaskId(0), TaskId(0), DepKind::Transform); // self edge
        p.remove_dep(TaskId(1), TaskId(0)); // absent
        p.remove_task(TaskId(1));
        p.remove_task(TaskId(1)); // second removal is a no-op
        let patch = p.finish();
        assert_eq!(patch.ops().len(), 1);
        assert_eq!(patch.summary().tasks_removed, 1);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let g = chain(3);
        let build = |dur: u64| {
            let mut p = PatchGraph::new(&g);
            p.set_duration(TaskId(1), dur);
            p.finish()
        };
        assert_eq!(build(50).fingerprint(), build(50).fingerprint());
        assert_ne!(build(50).fingerprint(), build(51).fingerprint());
        assert_ne!(
            build(50).fingerprint(),
            PatchGraph::new(&g).finish().fingerprint()
        );
    }

    #[test]
    fn summary_counts_distinct_targets() {
        let g = chain(3);
        let mut p = PatchGraph::new(&g);
        p.set_duration(TaskId(0), 1);
        p.set_duration(TaskId(0), 2); // same task twice: counted once
        p.set_duration(TaskId(1), 3);
        let n = p.add_task(cpu("n", 1));
        p.add_dep(TaskId(2), n, DepKind::Transform);
        let s = p.finish().summary();
        assert_eq!(s.tasks_retimed, 2);
        assert_eq!(s.tasks_added, 1);
        assert_eq!(s.deps_added, 1);
        assert_eq!(s.op_count(), 4, "3 SetDuration ops collapse to 2 tasks");
    }

    #[test]
    fn inserted_tasks_skip_removed_again() {
        let g = chain(1);
        let mut p = PatchGraph::new(&g);
        let a = p.add_task(cpu("keep", 1));
        let b = p.add_task(cpu("drop", 1));
        p.remove_task(b);
        let patch = p.finish();
        let kept: Vec<TaskId> = patch.inserted_tasks().map(|(id, _)| id).collect();
        assert_eq!(kept, vec![a]);
    }

    #[test]
    #[should_panic(expected = "different base arena")]
    fn replay_rejects_mismatched_base() {
        let g = chain(2);
        let patch = {
            let mut p = PatchGraph::new(&g);
            p.set_duration(TaskId(0), 1);
            p.finish()
        };
        let mut other = chain(3);
        patch.replay_on(&mut other);
    }
}
