//! Dependency-graph construction from traces (paper §4.2, Phase 2).
//!
//! Five dependency types are materialized:
//!
//! 1. **CpuSeq** — consecutive CPU tasks on one thread, with the recorded
//!    inter-task gap attached to the predecessor (Algorithm 1, line 13).
//!    Cross-thread framework control flow (the script handing off to the
//!    autograd engine, the optimizer resuming after backward, the data
//!    loader feeding the input copy) is the same sequential-control relation
//!    and is inferred from measured timestamps, since only one or two CPU
//!    threads drive computation at a time (§3 observation).
//! 2. **GpuSeq** — consecutive GPU tasks on one CUDA stream.
//! 3. **Correlation** — launch API to the GPU task with the same CUPTI
//!    correlation id.
//! 4. **Sync** — the GPU task a blocking CUDA API waits for; the blocked
//!    API's duration is reduced to its post-wait residue so simulation
//!    recomputes the wait from dependencies instead of replaying it.
//! 5. **Comm** — communication tasks: gradient-ready GPU task to transfer.

use crate::graph::{DepKind, DependencyGraph, TaskId};
use crate::layer_map::map_tasks_to_layers;
use crate::task::{CommChannel, CommPrimitive, ExecThread, Task, TaskKind};
use daydream_trace::{Activity, ActivityKind, Lane, Trace, TraceMeta};
use std::collections::HashMap;

/// CPU-side cost of issuing a memcpy API before any waiting begins.
const MEMCPY_ISSUE_NS: u64 = 9_000;

/// CPU gaps longer than this are treated as cross-thread waits rather than
/// real framework work, and replaced by an inferred handoff dependency.
const HANDOFF_GAP_THRESHOLD_NS: u64 = 200_000;
/// Residual gap charged to a task whose recorded gap was a cross-thread
/// wait (the true handoff cost).
const HANDOFF_GAP_CAP_NS: u64 = 25_000;

/// A dependency graph built from a profiled trace, with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledGraph {
    /// The kernel-granularity dependency graph.
    pub graph: DependencyGraph,
    /// Training metadata carried over from the trace.
    pub meta: TraceMeta,
}

impl ProfiledGraph {
    /// Builds the graph from a trace and runs the synchronization-free
    /// task-to-layer mapping (§4.3).
    pub fn from_trace(trace: &Trace) -> Self {
        let (mut graph, a2t) = build_graph(trace);
        map_tasks_to_layers(&mut graph, trace, &a2t);
        ProfiledGraph {
            graph,
            meta: trace.meta.clone(),
        }
    }
}

fn task_from_activity(a: &Activity) -> Task {
    let (kind, thread) = match (&a.kind, a.lane) {
        (ActivityKind::RuntimeApi(api), Lane::Cpu(t)) => {
            (TaskKind::CpuApi(*api), ExecThread::Cpu(t))
        }
        (ActivityKind::DataLoading { .. }, Lane::Cpu(t)) => (TaskKind::CpuWork, ExecThread::Cpu(t)),
        (ActivityKind::Kernel, Lane::Gpu(d, s)) => (TaskKind::GpuKernel, ExecThread::Gpu(d, s)),
        (ActivityKind::GpuMemset { .. }, Lane::Gpu(d, s)) => {
            (TaskKind::GpuKernel, ExecThread::Gpu(d, s))
        }
        (ActivityKind::GpuMemcpy { dir, bytes }, Lane::Gpu(d, s)) => (
            TaskKind::GpuMemcpy {
                dir: *dir,
                bytes: *bytes,
            },
            ExecThread::Gpu(d, s),
        ),
        (ActivityKind::Communication { bytes }, _) => (
            TaskKind::Communication {
                prim: CommPrimitive::AllReduce,
                bytes: *bytes,
            },
            ExecThread::Comm(CommChannel::Collective),
        ),
        // Fallbacks for records on unexpected lanes: treat as plain work.
        (_, Lane::Cpu(t)) => (TaskKind::CpuWork, ExecThread::Cpu(t)),
        (_, Lane::Gpu(d, s)) => (TaskKind::GpuKernel, ExecThread::Gpu(d, s)),
    };
    let mut task = Task::new(a.name.clone(), kind, thread, a.dur_ns);
    task.correlation = a.correlation;
    task.measured_start_ns = a.start_ns;
    task
}

/// Builds the dependency graph; returns it plus the activity-index-to-task
/// mapping used by the layer mapper.
pub fn build_graph(trace: &Trace) -> (DependencyGraph, Vec<TaskId>) {
    let mut g = DependencyGraph::new();
    let a2t: Vec<TaskId> = trace
        .activities
        .iter()
        .map(|a| g.add_task(task_from_activity(a)))
        .collect();

    // A blocking memcpy API both launches the copy and waits for it; as one
    // node that would be a correlation/sync cycle. Split it: the recorded
    // task keeps the issue cost and the correlation, and a synthetic "wait"
    // task carries the blocked time (fed by the Sync edge).
    let mut wait_of: HashMap<usize, TaskId> = HashMap::new();
    for (id, a) in trace.iter() {
        let Some(api) = a.runtime_api() else { continue };
        if api.is_blocking_sync() && api.launches_gpu_work() {
            let launch = a2t[id.0];
            g.task_mut(launch).duration_ns = a.dur_ns.min(MEMCPY_ISSUE_NS);
            let mut wait = Task::new(
                format!("{} [wait]", a.name),
                TaskKind::CpuApi(api),
                g.task(launch).thread,
                0,
            );
            wait.measured_start_ns = a.start_ns + g.task(launch).duration_ns;
            let wait_id = g.add_task(wait);
            g.add_dep(launch, wait_id, DepKind::CpuSeq);
            wait_of.insert(id.0, wait_id);
        }
    }
    // Thread-sequence exit node of an activity: the wait half if split.
    let out_node = |aid: usize| -> TaskId { wait_of.get(&aid).copied().unwrap_or(a2t[aid]) };

    // Per-lane sequences: CpuSeq / GpuSeq edges and CPU gaps.
    for (lane, ids) in trace.lanes() {
        for w in ids.windows(2) {
            let (cur, next) = (out_node(w[0].0), a2t[w[1].0]);
            let (a_cur, a_next) = (&trace.activities[w[0].0], &trace.activities[w[1].0]);
            match lane {
                Lane::Cpu(_) => {
                    g.add_dep(cur, next, DepKind::CpuSeq);
                    let gap = a_next.start_ns.saturating_sub(a_cur.end_ns());
                    g.task_mut(cur).gap_ns = gap;
                }
                Lane::Gpu(_, _) => {
                    let kind = if matches!(a_cur.kind, ActivityKind::Communication { .. })
                        || matches!(a_next.kind, ActivityKind::Communication { .. })
                    {
                        DepKind::Comm
                    } else {
                        DepKind::GpuSeq
                    };
                    g.add_dep(cur, next, kind);
                }
            }
        }
    }

    // Correlation edges: launch APIs to the GPU work they trigger.
    let launches = trace.launch_by_correlation();
    for (id, a) in trace.iter() {
        if !a.is_gpu_side() {
            continue;
        }
        if let Some(c) = a.correlation {
            if let Some(&api) = launches.get(&c) {
                g.add_dep(a2t[api.0], a2t[id.0], DepKind::Correlation);
            }
        }
    }

    // Synchronization edges: blocked CPU APIs depend on GPU completion.
    let gpu_by_corr = trace.gpu_by_correlation();
    // GPU-side tasks sorted by end time for "last kernel before t" queries.
    let mut gpu_ends: Vec<(u64, usize)> = trace
        .iter()
        .filter(|(_, a)| a.is_gpu_side())
        .map(|(id, a)| (a.end_ns(), id.0))
        .collect();
    gpu_ends.sort_unstable();
    let last_gpu_before = |t: u64| -> Option<usize> {
        let idx = gpu_ends.partition_point(|&(e, _)| e <= t);
        idx.checked_sub(1).map(|i| gpu_ends[i].1)
    };

    for (id, a) in trace.iter() {
        let Some(api) = a.runtime_api() else { continue };
        if !api.is_blocking_sync() {
            continue;
        }
        match wait_of.get(&id.0) {
            // Split blocking memcpy: the wait half depends on the copy.
            Some(&wait_id) => {
                let dep = a
                    .correlation
                    .and_then(|c| gpu_by_corr.get(&c))
                    .map(|aid| aid.0)
                    .or_else(|| last_gpu_before(a.end_ns()));
                if let Some(dep) = dep {
                    let dep_end = trace.activities[dep].end_ns();
                    g.add_dep(a2t[dep], wait_id, DepKind::Sync);
                    g.task_mut(wait_id).duration_ns = a.end_ns().saturating_sub(dep_end);
                }
            }
            // Pure synchronization APIs: one node, fed by the last GPU task
            // to finish before the API returned.
            None => {
                if let Some(dep) = last_gpu_before(a.end_ns()) {
                    let dep_end = trace.activities[dep].end_ns();
                    if dep_end <= a.end_ns() && dep_end >= a.start_ns {
                        g.add_dep(a2t[dep], a2t[id.0], DepKind::Sync);
                        // The wait is recomputed from the dependency at
                        // simulation time; only the residue stays.
                        g.task_mut(a2t[id.0]).duration_ns = a.end_ns() - dep_end;
                    }
                }
            }
        }
    }

    // Communication readiness: a comm task cannot start before the compute
    // kernels that produced its payload.
    for (id, a) in trace.iter() {
        if !matches!(a.kind, ActivityKind::Communication { .. }) {
            continue;
        }
        if let Some(dep) = last_gpu_before(a.start_ns) {
            if !matches!(
                trace.activities[dep].kind,
                ActivityKind::Communication { .. }
            ) {
                g.add_dep(a2t[dep], a2t[id.0], DepKind::Comm);
            }
        }
    }

    // Cross-thread control-flow handoffs: the first task of a thread, or a
    // task following an abnormally long on-thread gap, waits on whichever
    // CPU task of another thread finished right before it.
    let cpu_tasks_sorted: Vec<(u64, usize)> = {
        let mut v: Vec<(u64, usize)> = trace
            .iter()
            .filter(|(_, a)| a.lane.is_cpu())
            .map(|(id, a)| (a.end_ns(), id.0))
            .collect();
        v.sort_unstable();
        v
    };
    let last_cpu_before = |t: u64, not_lane: Lane| -> Option<usize> {
        let idx = cpu_tasks_sorted.partition_point(|&(e, _)| e <= t);
        cpu_tasks_sorted[..idx]
            .iter()
            .rev()
            .find(|&&(_, i)| trace.activities[i].lane != not_lane)
            .map(|&(_, i)| i)
    };
    for (lane, ids) in trace.lanes() {
        if !lane.is_cpu() {
            continue;
        }
        for (pos, aid) in ids.iter().enumerate() {
            let a = &trace.activities[aid.0];
            let needs_handoff = if pos == 0 {
                a.start_ns > 0
            } else {
                let prev = &trace.activities[ids[pos - 1].0];
                a.start_ns.saturating_sub(prev.end_ns()) > HANDOFF_GAP_THRESHOLD_NS
            };
            if !needs_handoff {
                continue;
            }
            if let Some(dep) = last_cpu_before(a.start_ns, lane) {
                g.add_dep(out_node(dep), a2t[aid.0], DepKind::CpuSeq);
                if pos > 0 {
                    // The recorded gap was a wait, not work: charge only the
                    // true handoff cost to the on-thread predecessor.
                    let prev_task = out_node(ids[pos - 1].0);
                    let t = g.task_mut(prev_task);
                    t.gap_ns = t.gap_ns.min(HANDOFF_GAP_CAP_NS);
                }
            }
        }
    }

    (g, a2t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daydream_models::zoo;
    use daydream_runtime::{baseline_plan, ExecConfig, Executor};
    use daydream_trace::CudaApi;

    fn resnet_trace() -> Trace {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let ex = Executor::new(&model, &cfg);
        ex.run(&baseline_plan(&model, 8))
    }

    #[test]
    fn graph_has_task_per_activity_plus_waits() {
        let trace = resnet_trace();
        let (g, a2t) = build_graph(&trace);
        let blocking_memcpys = trace
            .activities
            .iter()
            .filter(|a| {
                a.runtime_api()
                    .map(|x| x.is_blocking_sync() && x.launches_gpu_work())
                    .unwrap_or(false)
            })
            .count();
        // One task per activity, plus a synthetic wait half per blocking copy.
        assert_eq!(g.len(), trace.activities.len() + blocking_memcpys);
        assert!(blocking_memcpys >= 1, "the loss read-back must appear");
        assert_eq!(a2t.len(), trace.activities.len());
    }

    #[test]
    fn graph_is_acyclic() {
        let trace = resnet_trace();
        let (g, _) = build_graph(&trace);
        g.validate().expect("constructed graph must be a DAG");
    }

    #[test]
    fn all_five_dependency_kinds_present() {
        let trace = resnet_trace();
        let (g, _) = build_graph(&trace);
        let mut kinds = std::collections::HashSet::new();
        for (id, _) in g.iter() {
            for &(_, k) in g.successors(id) {
                kinds.insert(k);
            }
        }
        assert!(kinds.contains(&DepKind::CpuSeq));
        assert!(kinds.contains(&DepKind::GpuSeq));
        assert!(kinds.contains(&DepKind::Correlation));
        assert!(kinds.contains(&DepKind::Sync));
    }

    #[test]
    fn every_gpu_task_has_a_launch_correlation() {
        let trace = resnet_trace();
        let (g, _) = build_graph(&trace);
        for (id, t) in g.iter() {
            if t.kind.is_gpu() {
                let has_corr = g
                    .predecessors(id)
                    .iter()
                    .any(|&(_, k)| k == DepKind::Correlation);
                assert!(has_corr, "GPU task {} lacks correlation edge", t.name);
            }
        }
    }

    #[test]
    fn blocking_sync_duration_is_residual() {
        let trace = resnet_trace();
        let (g, a2t) = build_graph(&trace);
        for (aid, a) in trace.iter() {
            if a.runtime_api() == Some(CudaApi::DeviceSynchronize) {
                let t = g.task(a2t[aid.0]);
                assert!(
                    t.duration_ns <= a.dur_ns,
                    "sync duration must not exceed measured"
                );
                // The final sync waits megaseconds; its residue is tiny.
                assert!(t.duration_ns < 100_000);
            }
        }
    }

    #[test]
    fn cpu_gaps_recorded() {
        let trace = resnet_trace();
        let (g, _) = build_graph(&trace);
        let gaps: u64 = g
            .iter()
            .filter(|(_, t)| t.thread.is_cpu())
            .map(|(_, t)| t.gap_ns)
            .sum();
        assert!(gaps > 0, "framework gaps must be captured");
    }

    #[test]
    fn handoff_edges_connect_threads() {
        let trace = resnet_trace();
        let (g, _) = build_graph(&trace);
        // The first backward-thread task must depend on a main-thread task.
        let threads = g.threads();
        let bwd_thread = ExecThread::Cpu(daydream_trace::CpuThreadId(1));
        let first_bwd = threads[&bwd_thread][0];
        let preds = g.predecessors(first_bwd);
        assert!(
            preds.iter().any(|&(p, _)| g.task(p).thread != bwd_thread),
            "backward thread must be gated by the script thread"
        );
    }
}
