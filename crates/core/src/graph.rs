//! The kernel-granularity dependency graph (paper §4.2).
//!
//! An arena of [`Task`]s plus typed edges. Removal uses tombstones and
//! bridges thread-sequence edges so the per-thread "linked list" the paper
//! describes stays intact (Fig. 4).

use crate::task::{ExecThread, Task, TaskKind};
use serde::{map_get, DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Index of a task in the graph arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// The five dependency types of paper §4.2.2, plus edges added by
/// graph transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Sequential order of CPU tasks in the same thread.
    CpuSeq,
    /// Sequential order of GPU tasks in the same CUDA stream.
    GpuSeq,
    /// Correlation from a CUDA launch API to the GPU task it triggers.
    Correlation,
    /// CUDA synchronization: GPU task to blocked CPU task.
    Sync,
    /// Communication dependency (gradient ready -> transfer -> consumer).
    Comm,
    /// Edge introduced by a what-if transformation.
    Transform,
}

/// Errors from graph structural validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a dependency cycle.
    Cycle,
    /// An edge references a removed task.
    EdgeToRemoved(TaskId, TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "dependency graph contains a cycle"),
            GraphError::EdgeToRemoved(a, b) => {
                write!(f, "edge {} -> {} touches a removed task", a.0, b.0)
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Read access to a (possibly virtual) dependency graph.
///
/// Implemented by [`DependencyGraph`] itself and by
/// [`crate::patch::PatchGraph`], the copy-on-write overlay that what-if
/// planners emit [`crate::patch::GraphPatch`]es through. The §4.4
/// primitives ([`crate::transform`]) are generic over this trait, so one
/// implementation serves both the legacy mutate-in-place path and the
/// patch-emitting path.
pub trait GraphView {
    /// Immutable task access.
    fn task(&self, id: TaskId) -> &Task;

    /// Successors of a task.
    fn successors(&self, id: TaskId) -> &[(TaskId, DepKind)];

    /// Predecessors of a task.
    fn predecessors(&self, id: TaskId) -> &[(TaskId, DepKind)];

    /// Live task ids in ascending order.
    fn live_ids(&self) -> Vec<TaskId>;

    /// Live tasks satisfying a predicate (the Select primitive, §4.4).
    fn select_ids(&self, pred: impl Fn(&Task) -> bool) -> Vec<TaskId> {
        self.live_ids()
            .into_iter()
            .filter(|&id| pred(self.task(id)))
            .collect()
    }
}

/// Mutation access to a (possibly virtual) dependency graph.
///
/// [`DependencyGraph`] applies these directly; [`crate::patch::PatchGraph`]
/// records them as typed [`crate::patch::PatchOp`]s while maintaining a
/// read-consistent overlay. Field updates are typed (no `task_mut`
/// escape hatch) precisely so they stay recordable.
pub trait GraphEdit: GraphView {
    /// Adds a task, returning its id.
    fn add_task(&mut self, task: Task) -> TaskId;

    /// Adds a dependency edge (duplicates and self-edges ignored).
    fn add_dep(&mut self, from: TaskId, to: TaskId, kind: DepKind);

    /// Removes the edge `from -> to` if present.
    fn remove_dep(&mut self, from: TaskId, to: TaskId);

    /// Removes a task, bridging its thread sequences (Remove primitive).
    fn remove_task(&mut self, id: TaskId);

    /// Sets a task's duration (the shrink/scale primitives).
    fn set_duration(&mut self, id: TaskId, duration_ns: u64);

    /// Renames a task.
    fn set_name(&mut self, id: TaskId, name: String);

    /// Changes what a task does (e.g. rewritten payload bytes).
    fn set_kind(&mut self, id: TaskId, kind: TaskKind);

    /// Moves a task to a different execution thread.
    fn set_thread(&mut self, id: TaskId, thread: ExecThread);

    /// Sets a task's scheduling priority (the Schedule override).
    fn set_priority(&mut self, id: TaskId, priority: i64);
}

impl GraphView for DependencyGraph {
    fn task(&self, id: TaskId) -> &Task {
        DependencyGraph::task(self, id)
    }

    fn successors(&self, id: TaskId) -> &[(TaskId, DepKind)] {
        DependencyGraph::successors(self, id)
    }

    fn predecessors(&self, id: TaskId) -> &[(TaskId, DepKind)] {
        DependencyGraph::predecessors(self, id)
    }

    fn live_ids(&self) -> Vec<TaskId> {
        self.iter().map(|(id, _)| id).collect()
    }
}

impl GraphEdit for DependencyGraph {
    fn add_task(&mut self, task: Task) -> TaskId {
        DependencyGraph::add_task(self, task)
    }

    fn add_dep(&mut self, from: TaskId, to: TaskId, kind: DepKind) {
        DependencyGraph::add_dep(self, from, to, kind)
    }

    fn remove_dep(&mut self, from: TaskId, to: TaskId) {
        DependencyGraph::remove_dep(self, from, to)
    }

    fn remove_task(&mut self, id: TaskId) {
        DependencyGraph::remove_task(self, id)
    }

    fn set_duration(&mut self, id: TaskId, duration_ns: u64) {
        self.task_mut(id).duration_ns = duration_ns;
    }

    fn set_name(&mut self, id: TaskId, name: String) {
        self.task_mut(id).name = name;
    }

    fn set_kind(&mut self, id: TaskId, kind: TaskKind) {
        self.task_mut(id).kind = kind;
    }

    fn set_thread(&mut self, id: TaskId, thread: ExecThread) {
        self.task_mut(id).thread = thread;
    }

    fn set_priority(&mut self, id: TaskId, priority: i64) {
        self.task_mut(id).priority = priority;
    }
}

/// The dependency graph: tasks plus typed edges.
///
/// An `edges` hash set mirrors the adjacency lists so duplicate detection
/// in [`DependencyGraph::add_dep`] is O(1) amortized instead of a linear
/// scan of the source's out-list — bulk construction (profiles with
/// hundreds of thousands of edges, iteration unrolling) is linear overall.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DependencyGraph {
    tasks: Vec<Task>,
    removed: Vec<bool>,
    succ: Vec<Vec<(TaskId, DepKind)>>,
    pred: Vec<Vec<(TaskId, DepKind)>>,
    edges: HashSet<u64>,
}

/// Packed `(from, to)` key for the edge set.
fn edge_key(from: TaskId, to: TaskId) -> u64 {
    debug_assert!(from.0 < u32::MAX as usize && to.0 < u32::MAX as usize);
    ((from.0 as u64) << 32) | (to.0 as u64 & 0xffff_ffff)
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves arena capacity for at least `additional` more tasks.
    pub fn reserve(&mut self, additional: usize) {
        self.tasks.reserve(additional);
        self.removed.reserve(additional);
        self.succ.reserve(additional);
        self.pred.reserve(additional);
    }

    /// Adds a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        self.removed.push(false);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Adds a dependency edge `from -> to`.
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_dep(&mut self, from: TaskId, to: TaskId, kind: DepKind) {
        assert!(from.0 < self.tasks.len() && to.0 < self.tasks.len());
        if from == to || !self.edges.insert(edge_key(from, to)) {
            return;
        }
        self.succ[from.0].push((to, kind));
        self.pred[to.0].push((from, kind));
    }

    /// Removes a task, bridging its predecessors to its successors so
    /// per-thread sequences stay connected (paper's Remove primitive).
    pub fn remove_task(&mut self, id: TaskId) {
        if self.removed[id.0] {
            return;
        }
        self.removed[id.0] = true;
        let preds = self.pred[id.0].clone();
        let succs = self.succ[id.0].clone();
        // Detach.
        for &(p, _) in &preds {
            self.succ[p.0].retain(|&(t, _)| t != id);
            self.edges.remove(&edge_key(p, id));
        }
        for &(s, _) in &succs {
            self.pred[s.0].retain(|&(t, _)| t != id);
            self.edges.remove(&edge_key(id, s));
        }
        self.pred[id.0].clear();
        self.succ[id.0].clear();
        // Bridge.
        for &(p, pk) in &preds {
            for &(s, sk) in &succs {
                let kind = if pk == sk { pk } else { DepKind::Transform };
                self.add_dep(p, s, kind);
            }
        }
    }

    /// Returns `true` if the task has been removed.
    pub fn is_removed(&self, id: TaskId) -> bool {
        self.removed[id.0]
    }

    /// Immutable task access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Mutable task access (the shrink/scale primitives go through this).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0]
    }

    /// Iterates over live `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .filter(move |(i, _)| !self.removed[*i])
            .map(|(i, t)| (TaskId(i), t))
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.removed.iter().filter(|r| !**r).count()
    }

    /// Arena capacity including removed tasks, for index-aligned side
    /// tables (every `TaskId` ever issued is `< capacity()`).
    pub fn capacity(&self) -> usize {
        self.tasks.len()
    }

    /// Removes the edge `from -> to` if present.
    pub fn remove_dep(&mut self, from: TaskId, to: TaskId) {
        if !self.edges.remove(&edge_key(from, to)) {
            return;
        }
        self.succ[from.0].retain(|&(t, _)| t != to);
        self.pred[to.0].retain(|&(t, _)| t != from);
    }

    /// Returns `true` if the graph has no live tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Successors of a task.
    pub fn successors(&self, id: TaskId) -> &[(TaskId, DepKind)] {
        &self.succ[id.0]
    }

    /// Predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> &[(TaskId, DepKind)] {
        &self.pred[id.0]
    }

    /// Live tasks grouped by execution thread, in measured-start order.
    pub fn threads(&self) -> BTreeMap<ExecThread, Vec<TaskId>> {
        let mut map: BTreeMap<ExecThread, Vec<TaskId>> = BTreeMap::new();
        for (id, t) in self.iter() {
            map.entry(t.thread).or_default().push(id);
        }
        for ids in map.values_mut() {
            ids.sort_by_key(|id| (self.tasks[id.0].measured_start_ns, id.0));
        }
        map
    }

    /// Selects live tasks satisfying a predicate (the Select primitive,
    /// §4.4).
    pub fn select<F: Fn(&Task) -> bool>(&self, pred: F) -> Vec<TaskId> {
        self.iter()
            .filter(|(_, t)| pred(t))
            .map(|(id, _)| id)
            .collect()
    }

    /// Checks the graph is acyclic and edges touch only live tasks.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (id, _) in self.iter() {
            for &(s, _) in self.successors(id) {
                if self.removed[s.0] {
                    return Err(GraphError::EdgeToRemoved(id, s));
                }
            }
        }
        // Kahn's algorithm over live tasks.
        let mut indeg: Vec<usize> = vec![0; self.tasks.len()];
        let mut live = 0usize;
        for (id, _) in self.iter() {
            live += 1;
            indeg[id.0] = self.pred[id.0].len();
        }
        let mut stack: Vec<TaskId> = self
            .iter()
            .filter(|(id, _)| indeg[id.0] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &(v, _) in &self.succ[u.0] {
                indeg[v.0] -= 1;
                if indeg[v.0] == 0 {
                    stack.push(v);
                }
            }
        }
        if seen == live {
            Ok(())
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Total number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

// The serde shim has no `HashSet` support (and the set is pure derived
// state), so the graph serializes its four list fields and rebuilds the
// edge set on deserialization.
impl Serialize for DependencyGraph {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("tasks".to_string(), self.tasks.to_value()),
            ("removed".to_string(), self.removed.to_value()),
            ("succ".to_string(), self.succ.to_value()),
            ("pred".to_string(), self.pred.to_value()),
        ])
    }
}

impl Deserialize for DependencyGraph {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::expected("map", "DependencyGraph"))?;
        let tasks: Vec<Task> = Deserialize::from_value(map_get(m, "tasks"))?;
        let removed: Vec<bool> = Deserialize::from_value(map_get(m, "removed"))?;
        let succ: Vec<Vec<(TaskId, DepKind)>> = Deserialize::from_value(map_get(m, "succ"))?;
        let pred: Vec<Vec<(TaskId, DepKind)>> = Deserialize::from_value(map_get(m, "pred"))?;
        let mut edges = HashSet::with_capacity(succ.iter().map(Vec::len).sum());
        for (from, outs) in succ.iter().enumerate() {
            for &(to, _) in outs {
                edges.insert(edge_key(TaskId(from), to));
            }
        }
        Ok(DependencyGraph {
            tasks,
            removed,
            succ,
            pred,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu_task(name: &str) -> Task {
        Task::new(name, TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), 10)
    }

    fn gpu_task(name: &str) -> Task {
        Task::new(
            name,
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            50,
        )
    }

    #[test]
    fn add_and_edge() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(gpu_task("b"));
        g.add_dep(a, b, DepKind::Correlation);
        assert_eq!(g.len(), 2);
        assert_eq!(g.successors(a), &[(b, DepKind::Correlation)]);
        assert_eq!(g.predecessors(b), &[(a, DepKind::Correlation)]);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(cpu_task("b"));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(a, a, DepKind::CpuSeq);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn removal_bridges_sequences() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(cpu_task("b"));
        let c = g.add_task(cpu_task("c"));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, c, DepKind::CpuSeq);
        g.remove_task(b);
        assert!(g.is_removed(b));
        assert_eq!(g.len(), 2);
        // a -> c bridged with the common kind.
        assert_eq!(g.successors(a), &[(c, DepKind::CpuSeq)]);
        g.validate().unwrap();
    }

    #[test]
    fn removal_bridges_mixed_kinds_as_transform() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(gpu_task("b"));
        let c = g.add_task(cpu_task("c"));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(b, c, DepKind::Sync);
        g.remove_task(b);
        assert_eq!(g.successors(a), &[(c, DepKind::Transform)]);
    }

    #[test]
    fn double_removal_is_noop() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        g.remove_task(a);
        g.remove_task(a);
        assert_eq!(g.len(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn cycle_detected() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(cpu_task("b"));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, a, DepKind::Transform);
        assert_eq!(g.validate(), Err(GraphError::Cycle));
    }

    #[test]
    fn threads_grouping_sorted_by_measured_start() {
        let mut g = DependencyGraph::new();
        let mut t1 = cpu_task("late");
        t1.measured_start_ns = 100;
        let mut t2 = cpu_task("early");
        t2.measured_start_ns = 5;
        let a = g.add_task(t1);
        let b = g.add_task(t2);
        let threads = g.threads();
        assert_eq!(threads.len(), 1);
        let ids = &threads[&ExecThread::Cpu(CpuThreadId(0))];
        assert_eq!(ids, &[b, a]);
    }

    #[test]
    fn serde_roundtrip_rebuilds_edge_set() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(gpu_task("b"));
        let c = g.add_task(cpu_task("c"));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(b, c, DepKind::Sync);
        g.remove_task(b);
        let json = serde_json::to_string(&g).unwrap();
        let back: DependencyGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        // The rebuilt edge set still deduplicates.
        let mut back = back;
        back.add_dep(a, c, DepKind::Transform);
        assert_eq!(back.edge_count(), 1);
    }

    #[test]
    fn remove_dep_clears_dedup_state() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu_task("a"));
        let b = g.add_task(cpu_task("b"));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.remove_dep(a, b);
        assert_eq!(g.edge_count(), 0);
        g.add_dep(a, b, DepKind::Transform);
        assert_eq!(g.successors(a), &[(b, DepKind::Transform)]);
    }

    #[test]
    fn select_by_predicate() {
        let mut g = DependencyGraph::new();
        g.add_task(cpu_task("a"));
        let b = g.add_task(gpu_task("sgemm_1"));
        g.add_task(gpu_task("relu"));
        let sel = g.select(|t| t.is_on_gpu() && t.name.contains("sgemm"));
        assert_eq!(sel, vec![b]);
    }
}
