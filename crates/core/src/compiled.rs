//! Compiled (frozen) dependency graphs: the simulation hot-path format.
//!
//! [`DependencyGraph`] is built for *editing*: an arena with tombstones,
//! per-node `Vec`s of typed edges, and `ExecThread` keys looked up through
//! `BTreeMap`s. None of that is what a simulator wants to touch tens of
//! thousands of times per scenario. [`CompiledGraph::compile`] freezes a
//! graph after its transformations:
//!
//! * tombstoned tasks are compacted out — live tasks get dense
//!   [`CompactId`]s in ascending [`TaskId`] order (so id-based tie-breaks
//!   survive compilation unchanged),
//! * `ExecThread`s are interned to dense `u32` [`ThreadId`]s,
//! * successor lists are flattened into one CSR array (dependency kinds
//!   are dropped — Algorithm 1 treats every edge the same),
//! * per-task thread cost (`duration + gap`), duration, priority, and
//!   predecessor counts are precomputed into flat slices.
//!
//! Simulation over this form ([`crate::sim::simulate_compiled_with`])
//! touches only dense arrays and binary heaps: O((V+E) log V) with small
//! constants, no `BTreeMap` in the loop.

use crate::graph::{DependencyGraph, TaskId};
use crate::patch::GraphPatch;
use crate::task::ExecThread;
use std::collections::HashMap;
use std::sync::Arc;

/// Dense index of a live task in a [`CompiledGraph`] (the compaction of
/// [`TaskId`]; ascending `CompactId` order equals ascending `TaskId`
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompactId(pub u32);

/// Interned execution-thread id, dense in `0..thread_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// What [`CompiledGraph::apply_traced`] did to the base: the inputs the
/// incremental simulator ([`crate::sim::simulate_incremental_with`])
/// needs to decide between cone re-dispatch and full fallback.
#[derive(Debug, Clone)]
pub struct ApplyTrace {
    /// `true` if the structural path ran (topology or thread changes);
    /// `false` for the retime-only fast path (identical compaction).
    pub structural: bool,
    /// `true` if the patch left a base thread without tasks — base
    /// `ThreadId`s are then re-compacted and no longer stable, so the
    /// incremental simulator must fall back to a full run.
    pub vacated_threads: bool,
    /// Base-compact → new-compact id remap (`u32::MAX` for removed
    /// tasks); `None` means identity (retime-only patches).
    pub remap: Option<Vec<u32>>,
    /// Directly-touched task ids in the *new* compact space: retimed,
    /// reprioritized, rethreaded, edge-rewired, and inserted tasks.
    /// Removed tasks are reported by absence through `remap`.
    pub touched: Vec<CompactId>,
}

/// A frozen dependency graph in CSR form, ready for simulation.
///
/// Every array is behind an [`Arc`], so [`CompiledGraph::apply`] can
/// produce a patched graph that *shares* untouched regions with its base
/// (a retime-only patch shares the whole topology; clones are O(1)).
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// `CompactId -> TaskId` (ascending).
    task_ids: Arc<Vec<TaskId>>,
    /// Arena capacity of the source graph (for index-aligned outputs).
    arena_len: usize,
    /// Interned threads, `ThreadId -> ExecThread` (first-appearance order).
    threads: Arc<Vec<ExecThread>>,
    /// Per-task interned thread.
    thread_of: Arc<Vec<ThreadId>>,
    /// Per-task `duration + gap`: what dispatch advances the thread by.
    cost_ns: Arc<Vec<u64>>,
    /// Per-task duration (what the makespan sees).
    duration_ns: Arc<Vec<u64>>,
    /// Per-task scheduling priority (P3's `Schedule` override).
    priority: Arc<Vec<i64>>,
    /// Per-thread "is a communication channel" flag.
    comm_thread: Arc<Vec<bool>>,
    /// CSR offsets into `succ`, length `len() + 1`.
    succ_off: Arc<Vec<u32>>,
    /// Flattened successor lists.
    succ: Arc<Vec<CompactId>>,
    /// Predecessor counts (the simulator's initial reference counts).
    pred_count: Arc<Vec<u32>>,
}

impl CompiledGraph {
    /// Freezes `g` into CSR form. O(V + E).
    pub fn compile(g: &DependencyGraph) -> CompiledGraph {
        let cap = g.capacity();
        let mut task_ids = Vec::with_capacity(g.len());
        let mut compact = vec![u32::MAX; cap];
        for (id, _) in g.iter() {
            compact[id.0] = task_ids.len() as u32;
            task_ids.push(id);
        }
        let n = task_ids.len();

        let mut threads: Vec<ExecThread> = Vec::new();
        let mut intern: HashMap<ExecThread, ThreadId> = HashMap::new();
        let mut thread_of = Vec::with_capacity(n);
        let mut cost_ns = Vec::with_capacity(n);
        let mut duration_ns = Vec::with_capacity(n);
        let mut priority = Vec::with_capacity(n);
        let mut pred_count = Vec::with_capacity(n);
        let mut edge_total = 0usize;
        for &id in &task_ids {
            let t = g.task(id);
            let tid = *intern.entry(t.thread).or_insert_with(|| {
                threads.push(t.thread);
                ThreadId(threads.len() as u32 - 1)
            });
            thread_of.push(tid);
            cost_ns.push(t.cost_ns());
            duration_ns.push(t.duration_ns);
            priority.push(t.priority);
            pred_count.push(g.predecessors(id).len() as u32);
            edge_total += g.successors(id).len();
        }
        let comm_thread = threads.iter().map(ExecThread::is_comm).collect();

        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ = Vec::with_capacity(edge_total);
        succ_off.push(0u32);
        for &id in &task_ids {
            for &(s, _) in g.successors(id) {
                succ.push(CompactId(compact[s.0]));
            }
            succ_off.push(succ.len() as u32);
        }

        CompiledGraph {
            task_ids: Arc::new(task_ids),
            arena_len: cap,
            threads: Arc::new(threads),
            thread_of: Arc::new(thread_of),
            cost_ns: Arc::new(cost_ns),
            duration_ns: Arc::new(duration_ns),
            priority: Arc::new(priority),
            comm_thread: Arc::new(comm_thread),
            succ_off: Arc::new(succ_off),
            succ: Arc::new(succ),
            pred_count: Arc::new(pred_count),
        }
    }

    /// Number of (live) tasks.
    pub fn len(&self) -> usize {
        self.task_ids.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.task_ids.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of distinct execution threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The original arena id of a compacted task.
    #[inline]
    pub fn task_id(&self, c: CompactId) -> TaskId {
        self.task_ids[c.0 as usize]
    }

    /// Arena capacity of the source graph (for `SimResult` expansion).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// The interned thread a task runs on.
    #[inline]
    pub fn thread_of(&self, c: CompactId) -> ThreadId {
        self.thread_of[c.0 as usize]
    }

    /// The execution thread behind an interned id.
    #[inline]
    pub fn exec_thread(&self, t: ThreadId) -> ExecThread {
        self.threads[t.0 as usize]
    }

    /// `duration + gap` of a task.
    #[inline]
    pub fn cost_ns(&self, c: CompactId) -> u64 {
        self.cost_ns[c.0 as usize]
    }

    /// Duration of a task.
    #[inline]
    pub fn duration_ns(&self, c: CompactId) -> u64 {
        self.duration_ns[c.0 as usize]
    }

    /// Scheduling priority of a task.
    #[inline]
    pub fn priority(&self, c: CompactId) -> i64 {
        self.priority[c.0 as usize]
    }

    /// Returns `true` if the task runs on a communication channel.
    #[inline]
    pub fn on_comm_thread(&self, c: CompactId) -> bool {
        self.comm_thread[self.thread_of[c.0 as usize].0 as usize]
    }

    /// Successors of a task.
    #[inline]
    pub fn successors(&self, c: CompactId) -> &[CompactId] {
        let i = c.0 as usize;
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Predecessor count of a task.
    #[inline]
    pub fn pred_count(&self, c: CompactId) -> u32 {
        self.pred_count[c.0 as usize]
    }

    /// A copy of all predecessor counts (the simulator's working state).
    pub fn pred_counts(&self) -> Vec<u32> {
        (*self.pred_count).clone()
    }

    /// The compact id of a live task, if present.
    pub fn compact_of(&self, id: TaskId) -> Option<CompactId> {
        self.task_ids
            .binary_search(&id)
            .ok()
            .map(|i| CompactId(i as u32))
    }

    /// Applies a [`GraphPatch`] by incremental recompilation, producing
    /// the compiled form of the patched graph without touching the base.
    ///
    /// Retime-only patches (scale/shrink durations, priority overrides on
    /// unchanged topology) rebuild only the affected dense arrays and
    /// share everything else with the base via `Arc`. Structural patches
    /// (insert/remove tasks, edge changes, thread moves) rebuild the CSR
    /// and per-task state in flat O(V + E) array passes — no `Task`
    /// structs, no `BTreeMap`s, no arena walk — which is what makes a
    /// per-scenario evaluation "emit + apply + simulate" instead of
    /// "clone + mutate + recompile".
    ///
    /// Simulation over the result is pinned (proptests) to be identical to
    /// [`GraphPatch::apply_reference`] + [`CompiledGraph::compile`]: same
    /// task starts, waits, makespan, and per-thread ends. Compact ids stay
    /// in ascending `TaskId` order, so id-based tie-breaks survive; the
    /// interned thread *order* may differ from a fresh compile, but the
    /// thread set (and thus every simulation output) does not.
    ///
    /// # Panics
    ///
    /// Panics if the patch was recorded against a different base arena.
    pub fn apply(&self, patch: &GraphPatch) -> CompiledGraph {
        self.apply_traced(patch).0
    }

    /// [`CompiledGraph::apply`] plus an [`ApplyTrace`] describing what
    /// the patch did: the compaction remap, the vacated-thread flag (the
    /// two fallback inputs [`crate::sim::simulate_incremental_with`]
    /// consumes — its cone itself is derived from the patch delta plus
    /// the remap), and the directly-touched new-space ids for tooling
    /// and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if the patch was recorded against a different base arena.
    pub fn apply_traced(&self, patch: &GraphPatch) -> (CompiledGraph, ApplyTrace) {
        assert_eq!(
            self.arena_len,
            patch.base_capacity(),
            "patch recorded against a different base arena"
        );
        let d = patch.delta();
        if d.is_structural() {
            return self.traced_structural(patch);
        }
        // Dense retimes (AMP touches every GPU task) amortize one flat
        // inverse pass; sparse ones binary-search per touched task.
        let old_of = (d.touched().len() > 64).then(|| self.compact_inverse());
        let compact = |id: TaskId| -> usize {
            match &old_of {
                Some(inv) => inv[id.0] as usize,
                None => self.compact_of(id).expect("retimed task must be live").0 as usize,
            }
        };
        // Topology untouched; a thread move still needs the structural
        // path (thread_of rewrite + possible vacated-thread compaction).
        let thread_changed = d.touched().iter().any(|&id| {
            let s = d.scalars(id).expect("touched task has a slot");
            s.thread
                .is_some_and(|t| self.threads[self.thread_of[compact(id)].0 as usize] != t)
        });
        if thread_changed {
            return self.traced_structural(patch);
        }
        let applied = self.apply_retime(patch, &compact);
        // Retime-only: compaction is identity and edges are untouched,
        // so the touched set is exactly the scalar-touched ids (already
        // unique), mapped through the same compact lookup apply used.
        let mut touched: Vec<CompactId> = d
            .touched()
            .iter()
            .map(|&id| CompactId(compact(id) as u32))
            .collect();
        touched.sort_unstable();
        (
            applied,
            ApplyTrace {
                structural: false,
                vacated_threads: false,
                remap: None,
                touched,
            },
        )
    }

    /// The structural arm of [`CompiledGraph::apply_traced`].
    fn traced_structural(&self, patch: &GraphPatch) -> (CompiledGraph, ApplyTrace) {
        let (applied, vacated_threads, remap) = self.apply_structural(patch);
        let d = patch.delta();
        // Directly-touched ids in the *new* compact space: retimed /
        // reprioritized / rethreaded / rewired survivors plus every
        // inserted task. Removed tasks have no new id — they are
        // reported by absence (`remap` sends them to `u32::MAX`).
        let mut touched: Vec<CompactId> = d
            .touched()
            .iter()
            .copied()
            .chain(d.pred_overlay_ids())
            .filter(|id| !d.is_removed(*id))
            .filter_map(|id| applied.compact_of(id))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        (
            applied,
            ApplyTrace {
                structural: true,
                vacated_threads,
                remap: Some(remap),
                touched,
            },
        )
    }

    /// Arena-indexed `TaskId -> old CompactId` inverse (u32::MAX for
    /// tombstones). One flat O(arena) pass that replaces per-task binary
    /// searches in the apply loops.
    fn compact_inverse(&self) -> Vec<u32> {
        let mut inv = vec![u32::MAX; self.arena_len];
        for (i, &tid) in self.task_ids.iter().enumerate() {
            inv[tid.0] = i as u32;
        }
        inv
    }

    /// The structural path: rebuild compaction, per-task state, and CSR
    /// in flat array passes, reusing every untouched base span. Also
    /// returns whether any base thread was vacated (its `ThreadId`s then
    /// compact — base thread ids are *stable* otherwise) and the
    /// old-compact → new-compact remap (`u32::MAX` for removed tasks).
    fn apply_structural(&self, patch: &GraphPatch) -> (CompiledGraph, bool, Vec<u32>) {
        let d = patch.delta();
        let base_cap = self.arena_len;
        let n_old = self.len();
        let arena_new = base_cap + d.new_ids().len();
        let old_of = self.compact_inverse();

        // Final live task list, ascending (new ids all sort after base).
        let mut live: Vec<TaskId> = Vec::with_capacity(n_old + d.new_ids().len());
        live.extend(
            self.task_ids
                .iter()
                .copied()
                .filter(|id| !d.is_removed(*id)),
        );
        live.extend(d.new_ids().iter().copied().filter(|id| !d.is_removed(*id)));
        let n = live.len();

        // TaskId -> new compact id, arena-indexed.
        let mut new_compact = vec![u32::MAX; arena_new];
        for (i, &tid) in live.iter().enumerate() {
            new_compact[tid.0] = i as u32;
        }
        // Old compact -> new compact (for remapping untouched CSR spans).
        let remap_old: Vec<u32> = self.task_ids.iter().map(|id| new_compact[id.0]).collect();

        // Per-task state. Untouched base tasks copy straight from the base
        // arrays (no hashing, no Task access); only overlay tasks intern.
        let mut threads_new: Vec<ExecThread> = (*self.threads).clone();
        let mut intern: HashMap<ExecThread, u32> = threads_new
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        let mut thread_idx: Vec<u32> = Vec::with_capacity(n);
        let mut cost_ns = Vec::with_capacity(n);
        let mut duration_ns = Vec::with_capacity(n);
        let mut priority = Vec::with_capacity(n);
        let mut pred_count = Vec::with_capacity(n);
        for &tid in &live {
            match d.scalars(tid) {
                // New tasks carry every field in their slot; modified base
                // tasks merge sparse overrides onto the base arrays.
                Some(s) if tid.0 >= base_cap => {
                    let thread = s.thread.expect("new task slot is complete");
                    let ti = *intern.entry(thread).or_insert_with(|| {
                        threads_new.push(thread);
                        threads_new.len() as u32 - 1
                    });
                    thread_idx.push(ti);
                    let dur = s.duration_ns.expect("new task slot is complete");
                    let gap = s.gap_ns.expect("new task slot is complete");
                    cost_ns.push(dur + gap);
                    duration_ns.push(dur);
                    priority.push(s.priority.expect("new task slot is complete"));
                }
                Some(s) => {
                    let oc = old_of[tid.0] as usize;
                    let ti = match s.thread {
                        Some(thread) => *intern.entry(thread).or_insert_with(|| {
                            threads_new.push(thread);
                            threads_new.len() as u32 - 1
                        }),
                        None => self.thread_of[oc].0,
                    };
                    thread_idx.push(ti);
                    let dur = s.duration_ns.unwrap_or(self.duration_ns[oc]);
                    let gap = s.gap_ns.unwrap_or(self.cost_ns[oc] - self.duration_ns[oc]);
                    cost_ns.push(dur + gap);
                    duration_ns.push(dur);
                    priority.push(s.priority.unwrap_or(self.priority[oc]));
                }
                None => {
                    let oc = old_of[tid.0] as usize;
                    thread_idx.push(self.thread_of[oc].0);
                    cost_ns.push(self.cost_ns[oc]);
                    duration_ns.push(self.duration_ns[oc]);
                    priority.push(self.priority[oc]);
                }
            }
            pred_count.push(match d.pred_over(tid) {
                Some(list) => list.len() as u32,
                // A new task with no overlay entry never gained an edge.
                None if tid.0 >= base_cap => 0,
                None => self.pred_count[old_of[tid.0] as usize],
            });
        }

        // Drop threads the patch vacated (a recompile would never intern
        // them, and `SimResult::thread_end` must agree with the oracle).
        let mut live_per_thread = vec![0u32; threads_new.len()];
        for &t in &thread_idx {
            live_per_thread[t as usize] += 1;
        }
        let vacated = live_per_thread.contains(&0);
        if vacated {
            let mut remap = vec![u32::MAX; threads_new.len()];
            let mut compacted = Vec::with_capacity(threads_new.len());
            for (i, &t) in threads_new.iter().enumerate() {
                if live_per_thread[i] > 0 {
                    remap[i] = compacted.len() as u32;
                    compacted.push(t);
                }
            }
            for t in thread_idx.iter_mut() {
                *t = remap[*t as usize];
            }
            threads_new = compacted;
        }
        let comm_thread: Vec<bool> = threads_new.iter().map(ExecThread::is_comm).collect();
        let thread_of: Vec<ThreadId> = thread_idx.into_iter().map(ThreadId).collect();

        // Successor CSR: untouched rows are remapped base spans; dirty
        // rows come from the overlay (they never reference removed tasks —
        // removal detaches both sides, dirtying every neighbour).
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ: Vec<CompactId> = Vec::with_capacity(self.succ.len());
        succ_off.push(0u32);
        for &tid in &live {
            match d.succ_over(tid) {
                Some(list) => {
                    for &(to, _) in list {
                        let c = new_compact[to.0];
                        debug_assert_ne!(c, u32::MAX, "overlay edge to a removed task");
                        succ.push(CompactId(c));
                    }
                }
                // A new task with no overlay entry has no out-edges.
                None if tid.0 >= base_cap => {}
                None => {
                    let oc = CompactId(old_of[tid.0]);
                    for &s in self.successors(oc) {
                        let c = remap_old[s.0 as usize];
                        debug_assert_ne!(c, u32::MAX, "stale base edge to a removed task");
                        succ.push(CompactId(c));
                    }
                }
            }
            succ_off.push(succ.len() as u32);
        }

        let applied = CompiledGraph {
            task_ids: Arc::new(live),
            arena_len: arena_new,
            threads: Arc::new(threads_new),
            thread_of: Arc::new(thread_of),
            cost_ns: Arc::new(cost_ns),
            duration_ns: Arc::new(duration_ns),
            priority: Arc::new(priority),
            comm_thread: Arc::new(comm_thread),
            succ_off: Arc::new(succ_off),
            succ: Arc::new(succ),
            pred_count: Arc::new(pred_count),
        };
        (applied, vacated, remap_old)
    }

    /// The retime-only fast path: topology and threads are shared with the
    /// base; only the duration/cost (and, if touched, priority) arrays are
    /// rebuilt.
    fn apply_retime(&self, patch: &GraphPatch, compact: &dyn Fn(TaskId) -> usize) -> CompiledGraph {
        let d = patch.delta();
        let mut cost_ns = (*self.cost_ns).clone();
        let mut duration_ns = (*self.duration_ns).clone();
        let mut priority: Option<Vec<i64>> = None;
        for &id in d.touched() {
            let s = d.scalars(id).expect("touched task has a slot");
            let c = compact(id);
            let dur = s.duration_ns.unwrap_or(self.duration_ns[c]);
            let gap = s.gap_ns.unwrap_or(self.cost_ns[c] - self.duration_ns[c]);
            cost_ns[c] = dur + gap;
            duration_ns[c] = dur;
            if let Some(p) = s.priority {
                if p != self.priority[c] {
                    priority.get_or_insert_with(|| (*self.priority).clone())[c] = p;
                }
            }
        }
        CompiledGraph {
            task_ids: Arc::clone(&self.task_ids),
            arena_len: self.arena_len,
            threads: Arc::clone(&self.threads),
            thread_of: Arc::clone(&self.thread_of),
            cost_ns: Arc::new(cost_ns),
            duration_ns: Arc::new(duration_ns),
            priority: priority
                .map(Arc::new)
                .unwrap_or_else(|| Arc::clone(&self.priority)),
            comm_thread: Arc::clone(&self.comm_thread),
            succ_off: Arc::clone(&self.succ_off),
            succ: Arc::clone(&self.succ),
            pred_count: Arc::clone(&self.pred_count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::task::{Task, TaskKind};
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu(dur: u64, gap: u64) -> Task {
        let mut t = Task::new("c", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), dur);
        t.gap_ns = gap;
        t
    }

    fn gpu(dur: u64) -> Task {
        Task::new(
            "g",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            dur,
        )
    }

    #[test]
    fn compaction_skips_tombstones_and_preserves_order() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 1));
        let b = g.add_task(gpu(50));
        let c = g.add_task(cpu(5, 0));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(b, c, DepKind::Sync);
        g.remove_task(b);
        let cg = CompiledGraph::compile(&g);
        assert_eq!(cg.len(), 2);
        assert_eq!(cg.arena_len(), 3);
        assert_eq!(cg.task_id(CompactId(0)), a);
        assert_eq!(cg.task_id(CompactId(1)), c);
        // Bridged a -> c edge survives compaction.
        assert_eq!(cg.successors(CompactId(0)), &[CompactId(1)]);
        assert_eq!(cg.pred_count(CompactId(1)), 1);
        assert_eq!(cg.edge_count(), 1);
    }

    #[test]
    fn threads_interned_densely() {
        let mut g = DependencyGraph::new();
        g.add_task(cpu(1, 0));
        g.add_task(gpu(1));
        g.add_task(cpu(1, 0));
        let mut comm = Task::new(
            "ar",
            TaskKind::CpuWork,
            ExecThread::Comm(crate::task::CommChannel::Collective),
            3,
        );
        comm.priority = -7;
        let m = g.add_task(comm);
        let cg = CompiledGraph::compile(&g);
        assert_eq!(cg.thread_count(), 3);
        assert_eq!(cg.thread_of(CompactId(0)), cg.thread_of(CompactId(2)));
        assert_ne!(cg.thread_of(CompactId(0)), cg.thread_of(CompactId(1)));
        assert_eq!(
            cg.exec_thread(cg.thread_of(CompactId(0))),
            ExecThread::Cpu(CpuThreadId(0))
        );
        let mc = CompactId(m.0 as u32);
        assert!(cg.on_comm_thread(mc));
        assert!(!cg.on_comm_thread(CompactId(1)));
        assert_eq!(cg.priority(mc), -7);
    }

    #[test]
    fn costs_fold_gaps() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 5));
        let cg = CompiledGraph::compile(&g);
        let c = CompactId(a.0 as u32);
        assert_eq!(cg.cost_ns(c), 15);
        assert_eq!(cg.duration_ns(c), 10);
    }

    #[test]
    fn empty_graph_compiles() {
        let cg = CompiledGraph::compile(&DependencyGraph::new());
        assert!(cg.is_empty());
        assert_eq!(cg.thread_count(), 0);
        assert_eq!(cg.edge_count(), 0);
    }
}
