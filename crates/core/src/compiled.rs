//! Compiled (frozen) dependency graphs: the simulation hot-path format.
//!
//! [`DependencyGraph`] is built for *editing*: an arena with tombstones,
//! per-node `Vec`s of typed edges, and `ExecThread` keys looked up through
//! `BTreeMap`s. None of that is what a simulator wants to touch tens of
//! thousands of times per scenario. [`CompiledGraph::compile`] freezes a
//! graph after its transformations:
//!
//! * tombstoned tasks are compacted out — live tasks get dense
//!   [`CompactId`]s in ascending [`TaskId`] order (so id-based tie-breaks
//!   survive compilation unchanged),
//! * `ExecThread`s are interned to dense `u32` [`ThreadId`]s,
//! * successor lists are flattened into one CSR array (dependency kinds
//!   are dropped — Algorithm 1 treats every edge the same),
//! * per-task thread cost (`duration + gap`), duration, priority, and
//!   predecessor counts are precomputed into flat slices.
//!
//! Simulation over this form ([`crate::sim::simulate_compiled_with`])
//! touches only dense arrays and binary heaps: O((V+E) log V) with small
//! constants, no `BTreeMap` in the loop.

use crate::graph::{DependencyGraph, TaskId};
use crate::task::ExecThread;
use std::collections::HashMap;

/// Dense index of a live task in a [`CompiledGraph`] (the compaction of
/// [`TaskId`]; ascending `CompactId` order equals ascending `TaskId`
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompactId(pub u32);

/// Interned execution-thread id, dense in `0..thread_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// A frozen dependency graph in CSR form, ready for simulation.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    /// `CompactId -> TaskId` (ascending).
    task_ids: Vec<TaskId>,
    /// Arena capacity of the source graph (for index-aligned outputs).
    arena_len: usize,
    /// Interned threads, `ThreadId -> ExecThread` (first-appearance order).
    threads: Vec<ExecThread>,
    /// Per-task interned thread.
    thread_of: Vec<ThreadId>,
    /// Per-task `duration + gap`: what dispatch advances the thread by.
    cost_ns: Vec<u64>,
    /// Per-task duration (what the makespan sees).
    duration_ns: Vec<u64>,
    /// Per-task scheduling priority (P3's `Schedule` override).
    priority: Vec<i64>,
    /// Per-thread "is a communication channel" flag.
    comm_thread: Vec<bool>,
    /// CSR offsets into `succ`, length `len() + 1`.
    succ_off: Vec<u32>,
    /// Flattened successor lists.
    succ: Vec<CompactId>,
    /// Predecessor counts (the simulator's initial reference counts).
    pred_count: Vec<u32>,
}

impl CompiledGraph {
    /// Freezes `g` into CSR form. O(V + E).
    pub fn compile(g: &DependencyGraph) -> CompiledGraph {
        let cap = g.capacity();
        let mut task_ids = Vec::with_capacity(g.len());
        let mut compact = vec![u32::MAX; cap];
        for (id, _) in g.iter() {
            compact[id.0] = task_ids.len() as u32;
            task_ids.push(id);
        }
        let n = task_ids.len();

        let mut threads: Vec<ExecThread> = Vec::new();
        let mut intern: HashMap<ExecThread, ThreadId> = HashMap::new();
        let mut thread_of = Vec::with_capacity(n);
        let mut cost_ns = Vec::with_capacity(n);
        let mut duration_ns = Vec::with_capacity(n);
        let mut priority = Vec::with_capacity(n);
        let mut pred_count = Vec::with_capacity(n);
        let mut edge_total = 0usize;
        for &id in &task_ids {
            let t = g.task(id);
            let tid = *intern.entry(t.thread).or_insert_with(|| {
                threads.push(t.thread);
                ThreadId(threads.len() as u32 - 1)
            });
            thread_of.push(tid);
            cost_ns.push(t.cost_ns());
            duration_ns.push(t.duration_ns);
            priority.push(t.priority);
            pred_count.push(g.predecessors(id).len() as u32);
            edge_total += g.successors(id).len();
        }
        let comm_thread = threads.iter().map(ExecThread::is_comm).collect();

        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ = Vec::with_capacity(edge_total);
        succ_off.push(0u32);
        for &id in &task_ids {
            for &(s, _) in g.successors(id) {
                succ.push(CompactId(compact[s.0]));
            }
            succ_off.push(succ.len() as u32);
        }

        CompiledGraph {
            task_ids,
            arena_len: cap,
            threads,
            thread_of,
            cost_ns,
            duration_ns,
            priority,
            comm_thread,
            succ_off,
            succ,
            pred_count,
        }
    }

    /// Number of (live) tasks.
    pub fn len(&self) -> usize {
        self.task_ids.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.task_ids.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of distinct execution threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The original arena id of a compacted task.
    #[inline]
    pub fn task_id(&self, c: CompactId) -> TaskId {
        self.task_ids[c.0 as usize]
    }

    /// Arena capacity of the source graph (for `SimResult` expansion).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// The interned thread a task runs on.
    #[inline]
    pub fn thread_of(&self, c: CompactId) -> ThreadId {
        self.thread_of[c.0 as usize]
    }

    /// The execution thread behind an interned id.
    #[inline]
    pub fn exec_thread(&self, t: ThreadId) -> ExecThread {
        self.threads[t.0 as usize]
    }

    /// `duration + gap` of a task.
    #[inline]
    pub fn cost_ns(&self, c: CompactId) -> u64 {
        self.cost_ns[c.0 as usize]
    }

    /// Duration of a task.
    #[inline]
    pub fn duration_ns(&self, c: CompactId) -> u64 {
        self.duration_ns[c.0 as usize]
    }

    /// Scheduling priority of a task.
    #[inline]
    pub fn priority(&self, c: CompactId) -> i64 {
        self.priority[c.0 as usize]
    }

    /// Returns `true` if the task runs on a communication channel.
    #[inline]
    pub fn on_comm_thread(&self, c: CompactId) -> bool {
        self.comm_thread[self.thread_of[c.0 as usize].0 as usize]
    }

    /// Successors of a task.
    #[inline]
    pub fn successors(&self, c: CompactId) -> &[CompactId] {
        let i = c.0 as usize;
        &self.succ[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Predecessor count of a task.
    #[inline]
    pub fn pred_count(&self, c: CompactId) -> u32 {
        self.pred_count[c.0 as usize]
    }

    /// A copy of all predecessor counts (the simulator's working state).
    pub fn pred_counts(&self) -> Vec<u32> {
        self.pred_count.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::task::{Task, TaskKind};
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu(dur: u64, gap: u64) -> Task {
        let mut t = Task::new("c", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), dur);
        t.gap_ns = gap;
        t
    }

    fn gpu(dur: u64) -> Task {
        Task::new(
            "g",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            dur,
        )
    }

    #[test]
    fn compaction_skips_tombstones_and_preserves_order() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 1));
        let b = g.add_task(gpu(50));
        let c = g.add_task(cpu(5, 0));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(b, c, DepKind::Sync);
        g.remove_task(b);
        let cg = CompiledGraph::compile(&g);
        assert_eq!(cg.len(), 2);
        assert_eq!(cg.arena_len(), 3);
        assert_eq!(cg.task_id(CompactId(0)), a);
        assert_eq!(cg.task_id(CompactId(1)), c);
        // Bridged a -> c edge survives compaction.
        assert_eq!(cg.successors(CompactId(0)), &[CompactId(1)]);
        assert_eq!(cg.pred_count(CompactId(1)), 1);
        assert_eq!(cg.edge_count(), 1);
    }

    #[test]
    fn threads_interned_densely() {
        let mut g = DependencyGraph::new();
        g.add_task(cpu(1, 0));
        g.add_task(gpu(1));
        g.add_task(cpu(1, 0));
        let mut comm = Task::new(
            "ar",
            TaskKind::CpuWork,
            ExecThread::Comm(crate::task::CommChannel::Collective),
            3,
        );
        comm.priority = -7;
        let m = g.add_task(comm);
        let cg = CompiledGraph::compile(&g);
        assert_eq!(cg.thread_count(), 3);
        assert_eq!(cg.thread_of(CompactId(0)), cg.thread_of(CompactId(2)));
        assert_ne!(cg.thread_of(CompactId(0)), cg.thread_of(CompactId(1)));
        assert_eq!(
            cg.exec_thread(cg.thread_of(CompactId(0))),
            ExecThread::Cpu(CpuThreadId(0))
        );
        let mc = CompactId(m.0 as u32);
        assert!(cg.on_comm_thread(mc));
        assert!(!cg.on_comm_thread(CompactId(1)));
        assert_eq!(cg.priority(mc), -7);
    }

    #[test]
    fn costs_fold_gaps() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 5));
        let cg = CompiledGraph::compile(&g);
        let c = CompactId(a.0 as u32);
        assert_eq!(cg.cost_ns(c), 15);
        assert_eq!(cg.duration_ns(c), 10);
    }

    #[test]
    fn empty_graph_compiles() {
        let cg = CompiledGraph::compile(&DependencyGraph::new());
        assert!(cg.is_empty());
        assert_eq!(cg.thread_count(), 0);
        assert_eq!(cg.edge_count(), 0);
    }
}
