//! Schedule → trace export: turns a simulated schedule back into the
//! same [`Trace`] artifact ground-truth runs produce.
//!
//! The graph builder is lossy in exactly two places, and this exporter
//! inverts both so exported traces are shape-comparable with recorded
//! ones (and feed the same chrome export, JSONL emission, and
//! `trace-diff` fidelity analysis):
//!
//! - **Split blocking memcpys** — `build_graph` splits a blocking
//!   `cudaMemcpyAsync` into a launch task plus a synthetic `"… [wait]"`
//!   task fed by the Sync edge. Export merges the pair back into one
//!   activity spanning issue through wait completion.
//! - **Residualized syncs** — a blocking sync task's duration is reduced
//!   to its post-wait residue; the simulator recomputes the wait as idle
//!   time before the task. Export folds that simulated wait back into
//!   the activity so the record covers the full blocked window, the way
//!   CUPTI reports it.
//!
//! Layer markers are synthesized from the tasks' layer/phase mapping:
//! one window per (layer, phase, thread) spanning its CPU tasks.

use crate::construct::ProfiledGraph;
use crate::graph::{DependencyGraph, GraphError};
use crate::sim::{simulate, SimResult};
use crate::task::{CommChannel, ExecThread, Task, TaskKind};
use daydream_trace::{
    Activity, ActivityKind, CpuThreadId, DeviceId, Lane, LayerMarker, StreamId, Trace, TraceMeta,
};
use std::collections::BTreeMap;

/// Stream id communication tasks are exported on, mirroring the
/// runtime's NCCL stream so distributed round trips align by lane.
const COLLECTIVE_STREAM: StreamId = StreamId(13);

/// Lane a communication channel's tasks are exported on. Comm channels
/// have no CUPTI equivalent; they borrow pseudo-streams on device 0
/// next to the collective stream the runtime records.
fn comm_lane(ch: CommChannel) -> Lane {
    let stream = match ch {
        CommChannel::Collective => COLLECTIVE_STREAM,
        CommChannel::Send => StreamId(COLLECTIVE_STREAM.0 + 1),
        CommChannel::Receive => StreamId(COLLECTIVE_STREAM.0 + 2),
        CommChannel::Stage(i) => StreamId(COLLECTIVE_STREAM.0 + 3 + i as u32),
    };
    Lane::Gpu(DeviceId(0), stream)
}

fn lane_of(thread: ExecThread) -> Lane {
    match thread {
        ExecThread::Cpu(t) => Lane::Cpu(t),
        ExecThread::Gpu(d, s) => Lane::Gpu(d, s),
        ExecThread::Comm(ch) => comm_lane(ch),
    }
}

fn kind_of(task: &Task) -> ActivityKind {
    match &task.kind {
        TaskKind::CpuApi(api) => ActivityKind::RuntimeApi(*api),
        TaskKind::CpuWork => ActivityKind::DataLoading { bytes: 0 },
        TaskKind::GpuKernel => ActivityKind::Kernel,
        TaskKind::GpuMemcpy { dir, bytes } => ActivityKind::GpuMemcpy {
            dir: *dir,
            bytes: *bytes,
        },
        TaskKind::Communication { bytes, .. } => ActivityKind::Communication { bytes: *bytes },
    }
}

/// Exports a simulated schedule as a [`Trace`]: one activity per live
/// task at its *simulated* start time, split waits merged, residualized
/// sync waits folded back, and layer markers synthesized from the
/// task-to-layer mapping. `meta`'s iteration window is rewritten to
/// `[0, makespan]`.
///
/// The export targets graphs whose GPU tasks carry correlations (every
/// profiled baseline does); traces of synthetic or patched graphs may
/// fail [`Trace::validate`]'s correlation checks.
pub fn sim_to_trace(graph: &DependencyGraph, sim: &SimResult, meta: &TraceMeta) -> Trace {
    // Per-thread task lists in simulated start order, so the [wait]
    // halves sit right after their launch half.
    let mut threads: BTreeMap<ExecThread, Vec<usize>> = BTreeMap::new();
    for (id, task) in graph.iter() {
        if sim.start_ns[id.0].is_some() {
            threads.entry(task.thread).or_default().push(id.0);
        }
    }
    for ids in threads.values_mut() {
        ids.sort_by_key(|&i| (sim.start_ns[i].unwrap(), i));
    }

    let mut activities = Vec::with_capacity(graph.len());
    for ids in threads.values() {
        let mut lane_acts: Vec<Activity> = Vec::with_capacity(ids.len());
        for &i in ids {
            let task = graph.task(crate::graph::TaskId(i));
            let start = sim.start_ns[i].unwrap();
            // Merge a split "<name> [wait]" task into its launch half.
            if let Some(base) = task.name.strip_suffix(" [wait]") {
                if let Some(prev) = lane_acts.last_mut() {
                    if prev.name == base {
                        prev.dur_ns = (start + task.duration_ns).saturating_sub(prev.start_ns);
                        continue;
                    }
                }
            }
            // Fold a residualized sync's simulated wait back into the
            // record: it occupied the CPU from thread-availability on.
            let mut start = start;
            let mut dur = task.duration_ns;
            if let TaskKind::CpuApi(api) = task.kind {
                if api.is_blocking_sync() && !api.launches_gpu_work() {
                    let wait = sim.wait_ns[i];
                    start = start.saturating_sub(wait);
                    dur += wait;
                }
            }
            lane_acts.push(Activity {
                name: task.name.clone(),
                kind: kind_of(task),
                lane: lane_of(task.thread),
                start_ns: start,
                dur_ns: dur,
                correlation: task.correlation,
            });
        }
        activities.append(&mut lane_acts);
    }
    activities.sort_by(|a, b| {
        (a.start_ns, a.lane, a.end_ns(), &a.name).cmp(&(b.start_ns, b.lane, b.end_ns(), &b.name))
    });

    // One marker per (layer, phase, thread) spanning its CPU tasks'
    // simulated windows.
    let mut windows: BTreeMap<(u32, daydream_trace::Phase, CpuThreadId), (u64, u64)> =
        BTreeMap::new();
    for (id, task) in graph.iter() {
        let (Some(lr), Some(start), ExecThread::Cpu(thread)) =
            (task.layer, sim.start_ns[id.0], task.thread)
        else {
            continue;
        };
        let end = start + task.duration_ns;
        let w = windows
            .entry((lr.layer.0, lr.phase, thread))
            .or_insert((start, end));
        w.0 = w.0.min(start);
        w.1 = w.1.max(end);
    }
    let mut markers: Vec<LayerMarker> = windows
        .into_iter()
        .map(|((layer, phase, thread), (start, end))| LayerMarker {
            layer: daydream_trace::LayerId(layer),
            phase,
            thread,
            start_ns: start,
            end_ns: end.max(start + 1),
        })
        .collect();
    markers.sort_by_key(|m| (m.start_ns, m.layer, m.phase, m.thread));

    let mut meta = meta.clone();
    meta.iteration_start_ns = 0;
    meta.iteration_end_ns = sim.makespan_ns;
    Trace {
        activities,
        markers,
        meta,
    }
}

/// Simulates a profiled graph and exports the schedule as a trace —
/// the "what the simulator thinks the iteration looks like" artifact
/// `daydream profile --fidelity` diffs against the recorded run.
pub fn simulate_to_trace(pg: &ProfiledGraph) -> Result<Trace, GraphError> {
    let sim = simulate(&pg.graph)?;
    Ok(sim_to_trace(&pg.graph, &sim, &pg.meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};
    use daydream_trace::diff_traces;

    fn profile() -> (Trace, ProfiledGraph) {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(4);
        let truth = ground_truth::run_baseline(&model, &cfg);
        let pg = ProfiledGraph::from_trace(&truth);
        (truth, pg)
    }

    #[test]
    fn exported_trace_is_valid_and_spans_the_makespan() {
        let (truth, pg) = profile();
        let sim = simulate(&pg.graph).unwrap();
        let trace = sim_to_trace(&pg.graph, &sim, &pg.meta);
        assert!(
            trace.validate().is_ok(),
            "exported schedule must satisfy trace invariants: {:?}",
            trace.validate().unwrap_err().first()
        );
        assert_eq!(trace.meta.iteration_ns(), sim.makespan_ns);
        assert!(!trace.markers.is_empty());
        // Split memcpy waits were merged back: no synthetic names leak.
        assert!(trace.activities.iter().all(|a| !a.name.contains("[wait]")));
        // Same GPU work as the recorded run.
        assert_eq!(trace.gpu_activity_count(), truth.gpu_activity_count());
    }

    #[test]
    fn exported_trace_aligns_with_ground_truth() {
        let (truth, pg) = profile();
        let exported = simulate_to_trace(&pg).unwrap();
        let d = diff_traces(&exported, &truth);
        // Every recorded op finds a simulated partner and vice versa.
        assert_eq!(d.sim_only, 0, "sim-only ops: {:?}", d.lanes);
        assert_eq!(d.truth_only, 0);
        // The baseline replay tracks the recorded iteration closely
        // (paper §6.1 reports <2% on single-GPU baselines).
        assert!(
            d.end_to_end_rel_err().abs() < 0.02,
            "end-to-end error {:.3}%",
            d.end_to_end_rel_err() * 100.0
        );
    }
}
