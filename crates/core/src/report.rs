//! Per-layer time attribution — the "framework built-in profiler" view.
//!
//! The paper (§2.3) contrasts framework profilers (intuitive per-layer
//! times, but no CPU detail) with Daydream's task graph. Since the graph
//! already carries the task-to-layer mapping, the familiar per-layer report
//! falls out of it for free — including the CPU-side component framework
//! tools omit, which §2.3 calls "crucial" for prediction.

use crate::construct::ProfiledGraph;
use daydream_trace::{LayerId, Phase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregated times of one layer across the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerTimes {
    /// The layer.
    pub layer: LayerId,
    /// GPU kernel time in the forward phase, ns.
    pub fwd_gpu_ns: u64,
    /// GPU kernel time in the backward phase, ns.
    pub bwd_gpu_ns: u64,
    /// GPU kernel time in the weight-update phase, ns.
    pub wu_gpu_ns: u64,
    /// CPU time (APIs + recorded gaps) attributed to the layer, ns.
    pub cpu_ns: u64,
    /// Number of GPU kernels the layer launched.
    pub kernels: usize,
}

impl LayerTimes {
    /// Total GPU time across phases.
    pub fn gpu_total_ns(&self) -> u64 {
        self.fwd_gpu_ns + self.bwd_gpu_ns + self.wu_gpu_ns
    }
}

/// Builds the per-layer report, sorted by descending total GPU time.
pub fn layer_report(pg: &ProfiledGraph) -> Vec<LayerTimes> {
    let mut map: HashMap<LayerId, LayerTimes> = HashMap::new();
    for (_, t) in pg.graph.iter() {
        let Some(lr) = t.layer else { continue };
        let e = map.entry(lr.layer).or_insert(LayerTimes {
            layer: lr.layer,
            fwd_gpu_ns: 0,
            bwd_gpu_ns: 0,
            wu_gpu_ns: 0,
            cpu_ns: 0,
            kernels: 0,
        });
        if t.kind.is_gpu() {
            match lr.phase {
                Phase::Forward => e.fwd_gpu_ns += t.duration_ns,
                Phase::Backward => e.bwd_gpu_ns += t.duration_ns,
                Phase::WeightUpdate => e.wu_gpu_ns += t.duration_ns,
            }
            e.kernels += 1;
        } else if t.thread.is_cpu() {
            e.cpu_ns += t.duration_ns + t.gap_ns;
        }
    }
    let mut rows: Vec<LayerTimes> = map.into_values().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.gpu_total_ns()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use daydream_models::zoo;
    use daydream_runtime::{ground_truth, ExecConfig};

    fn report_for(name: &str) -> (Vec<LayerTimes>, daydream_models::Model, ProfiledGraph) {
        let model = zoo::by_name(name).unwrap();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let pg = ProfiledGraph::from_trace(&ground_truth::run_baseline(&model, &cfg));
        (layer_report(&pg), model, pg)
    }

    #[test]
    fn gpu_totals_match_graph_sums() {
        let (rows, _, pg) = report_for("ResNet-50");
        let report_total: u64 = rows.iter().map(|r| r.gpu_total_ns()).sum();
        let graph_total: u64 = pg
            .graph
            .iter()
            .filter(|(_, t)| t.kind.is_gpu() && t.layer.is_some())
            .map(|(_, t)| t.duration_ns)
            .sum();
        assert_eq!(report_total, graph_total);
    }

    #[test]
    fn convolutions_dominate_resnet() {
        let (rows, model, _) = report_for("ResNet-50");
        let top = &rows[0];
        let kind = model.layer(top.layer).unwrap().kind.type_name();
        assert_eq!(
            kind, "Conv2d",
            "heaviest ResNet layer must be a convolution"
        );
    }

    #[test]
    fn report_covers_every_model_layer_with_kernels() {
        let (rows, model, _) = report_for("BERT_Base");
        // Every parameterized layer must appear.
        for l in model.param_layers() {
            assert!(
                rows.iter().any(|r| r.layer == l.id),
                "layer {} missing from report",
                l.name
            );
        }
    }

    #[test]
    fn cpu_component_is_reported() {
        let (rows, _, _) = report_for("BERT_Base");
        let cpu_total: u64 = rows.iter().map(|r| r.cpu_ns).sum();
        assert!(cpu_total > 0, "the report must include the CPU side (§2.3)");
    }
}
