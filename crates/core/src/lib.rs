//! Daydream: what-if analysis for DNN training (Zhu et al., USENIX ATC'20).
//!
//! Daydream answers questions like *"will mixed precision help my model on
//! my hardware?"* without implementing the optimization. The pipeline
//! (paper §4):
//!
//! 1. **Trace collection** — a CUPTI-style profile plus layer markers
//!    (`daydream-trace`, produced here by the `daydream-runtime` execution
//!    simulator).
//! 2. **Graph construction** ([`ProfiledGraph::from_trace`]) — a
//!    kernel-granularity dependency graph with the five dependency types of
//!    §4.2.2, and the synchronization-free task-to-layer mapping of §4.3.
//! 3. **Graph transformation** ([`transform`], [`whatif`]) — model an
//!    optimization with select / shrink / insert / remove / schedule
//!    primitives; ten ready-made models cover the paper's Table 1 set.
//! 4. **Simulation** ([`simulate`], paper Algorithm 1) — replay the
//!    transformed graph to predict iteration time.
//!
//! # Examples
//!
//! ```
//! use daydream_core::{predict, whatif, ProfiledGraph};
//! use daydream_models::zoo;
//! use daydream_runtime::{ground_truth, ExecConfig};
//!
//! // Profile one training iteration of ResNet-50 (batch 8 for speed).
//! let model = zoo::resnet50();
//! let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
//! let trace = ground_truth::run_baseline(&model, &cfg);
//!
//! // What if we enabled mixed precision?
//! let profile = ProfiledGraph::from_trace(&trace);
//! let prediction = predict(&profile, whatif::what_if_amp);
//! assert!(prediction.speedup() > 1.0);
//! ```

pub mod compiled;
pub mod construct;
pub mod export;
pub mod graph;
pub mod layer_map;
pub mod patch;
pub mod predict;
pub mod replicate;
pub mod report;
pub mod sim;
pub mod task;
pub mod transform;
pub mod whatif;
pub mod windowed;

pub use compiled::{ApplyTrace, CompactId, CompiledGraph, ThreadId};
pub use construct::{build_graph, ProfiledGraph};
pub use export::{sim_to_trace, simulate_to_trace};
pub use graph::{DepKind, DependencyGraph, GraphEdit, GraphError, GraphView, TaskId};
pub use patch::{GraphPatch, PatchGraph, PatchOp, PatchSummary};
pub use predict::{
    makespan_ns, predict, predict_from_baseline, predict_incremental, predict_patched,
    predict_with, Prediction,
};
pub use replicate::{replicate_iterations, ReplicatedGraph};
pub use report::{layer_report, LayerTimes};
pub use sim::{
    busy_time_bound, incremental_cone_fits, simulate, simulate_compiled, simulate_compiled_with,
    simulate_incremental, simulate_incremental_with, simulate_reference, simulate_warm,
    simulate_warm_with, simulate_with, simulate_with_reference, thread_busy_after, thread_busy_ns,
    try_simulate_incremental_with, Candidate, CompiledSim, EarliestStart, FallbackReason,
    FrontierOrder, IncrementalOptions, IncrementalOutcome, IncrementalStats, Rank, Schedule,
    Scheduler, ScratchCounters, ScratchPool, SimResult, SimScratch, WarmOutcome,
};
pub use task::{CommChannel, CommPrimitive, ExecThread, LayerRef, Task, TaskKind};
pub use windowed::{simulate_windowed, simulate_windowed_with, WindowedOptions, WindowedStats};
