//! Multi-iteration graph replication.
//!
//! Some optimizations couple *consecutive* iterations: a parameter-server
//! pull produced by iteration `k`'s backward gates iteration `k+1`'s
//! forward (P3, Algorithm 7). Daydream handles these by unrolling the
//! profiled iteration `n` times — cloning tasks and intra-iteration edges,
//! and chaining each execution thread across copies — then measuring the
//! steady-state span between consecutive copies.

use crate::graph::{DepKind, DependencyGraph, TaskId};
use crate::sim::SimResult;
use crate::task::ExecThread;

/// A graph unrolled over `n` iterations.
#[derive(Debug, Clone)]
pub struct ReplicatedGraph {
    /// The unrolled graph.
    pub graph: DependencyGraph,
    /// `maps[k][orig.0]` is copy `k`'s clone of original task `orig`.
    maps: Vec<Vec<TaskId>>,
}

impl ReplicatedGraph {
    /// The clone of `orig` in iteration `copy`.
    ///
    /// # Panics
    ///
    /// Panics if `copy` or `orig` is out of range.
    pub fn replica(&self, copy: usize, orig: TaskId) -> TaskId {
        self.maps[copy][orig.0]
    }

    /// Number of unrolled iterations.
    pub fn iterations(&self) -> usize {
        self.maps.len()
    }

    /// End time of iteration `copy` in a simulation of the unrolled graph:
    /// the maximum end over the copy's live tasks.
    pub fn iteration_end_ns(&self, copy: usize, sim: &SimResult) -> u64 {
        self.maps[copy]
            .iter()
            .filter_map(|&id| sim.start_ns[id.0].map(|s| s + self.graph.task(id).duration_ns))
            .max()
            .unwrap_or(0)
    }

    /// Steady-state iteration time: the span between the last two copies'
    /// ends.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two iterations were unrolled.
    pub fn steady_iteration_ns(&self, sim: &SimResult) -> u64 {
        let n = self.iterations();
        assert!(
            n >= 2,
            "steady state needs at least two unrolled iterations"
        );
        self.iteration_end_ns(n - 1, sim) - self.iteration_end_ns(n - 2, sim)
    }
}

/// Unrolls the live tasks of `src` over `n` iterations.
pub fn replicate_iterations(src: &DependencyGraph, n: usize) -> ReplicatedGraph {
    assert!(n >= 1, "need at least one iteration");
    let mut graph = DependencyGraph::new();
    let span = src
        .iter()
        .map(|(_, t)| t.measured_start_ns + t.duration_ns)
        .max()
        .unwrap_or(0)
        + 1;

    let cap = src.capacity();
    graph.reserve(src.len() * n);
    let mut maps: Vec<Vec<TaskId>> = Vec::with_capacity(n);
    for k in 0..n {
        let mut map = vec![TaskId(usize::MAX); cap];
        for (id, t) in src.iter() {
            let mut clone = t.clone();
            clone.measured_start_ns = t.measured_start_ns + span * k as u64;
            map[id.0] = graph.add_task(clone);
        }
        // Intra-copy edges.
        for (id, _) in src.iter() {
            for &(s, kind) in src.successors(id) {
                graph.add_dep(map[id.0], map[s.0], kind);
            }
        }
        maps.push(map);
    }

    // Chain each execution thread across copies: the framework's training
    // loop serializes iterations on every thread.
    let threads = src.threads();
    for k in 0..n.saturating_sub(1) {
        for (thread, ids) in &threads {
            let (Some(&last), Some(&first)) = (ids.last(), ids.first()) else {
                continue;
            };
            let kind = match thread {
                ExecThread::Cpu(_) => DepKind::CpuSeq,
                ExecThread::Gpu(_, _) => DepKind::GpuSeq,
                ExecThread::Comm(_) => DepKind::Comm,
            };
            graph.add_dep(maps[k][last.0], maps[k + 1][first.0], kind);
        }
    }

    ReplicatedGraph { graph, maps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::task::{Task, TaskKind};
    use daydream_trace::CpuThreadId;

    fn two_task_graph() -> DependencyGraph {
        let mut g = DependencyGraph::new();
        let mut a = Task::new("a", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), 10);
        a.gap_ns = 2;
        let mut b = Task::new("b", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), 20);
        b.measured_start_ns = 12;
        let ia = g.add_task(a);
        let ib = g.add_task(b);
        g.add_dep(ia, ib, DepKind::CpuSeq);
        g
    }

    #[test]
    fn replication_multiplies_makespan() {
        let g = two_task_graph();
        let single = simulate(&g).unwrap().makespan_ns;
        let rep = replicate_iterations(&g, 3);
        rep.graph.validate().unwrap();
        assert_eq!(rep.graph.len(), 6);
        let sim = simulate(&rep.graph).unwrap();
        // Each iteration costs single + the trailing gap of task b's pred.
        assert!(sim.makespan_ns >= 3 * single);
        let steady = rep.steady_iteration_ns(&sim);
        assert!(steady >= single);
    }

    #[test]
    fn replica_lookup() {
        let g = two_task_graph();
        let rep = replicate_iterations(&g, 2);
        let r0 = rep.replica(0, TaskId(0));
        let r1 = rep.replica(1, TaskId(0));
        assert_ne!(r0, r1);
        assert_eq!(rep.graph.task(r0).name, "a");
        assert_eq!(rep.graph.task(r1).name, "a");
        assert!(rep.graph.task(r1).measured_start_ns > rep.graph.task(r0).measured_start_ns);
    }

    #[test]
    fn removed_tasks_not_replicated() {
        let mut g = two_task_graph();
        g.remove_task(TaskId(0));
        let rep = replicate_iterations(&g, 2);
        assert_eq!(rep.graph.len(), 2);
    }

    #[test]
    fn iteration_ends_are_monotone() {
        let g = two_task_graph();
        let rep = replicate_iterations(&g, 3);
        let sim = simulate(&rep.graph).unwrap();
        let e0 = rep.iteration_end_ns(0, &sim);
        let e1 = rep.iteration_end_ns(1, &sim);
        let e2 = rep.iteration_end_ns(2, &sim);
        assert!(e0 < e1 && e1 < e2);
    }
}
