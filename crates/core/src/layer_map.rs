//! Synchronization-free task-to-layer mapping (paper §4.3, Fig. 3).
//!
//! The framework instrumentation records a CPU window `[start, end)` per
//! layer phase. Every CPU task whose measured start lies inside the window
//! belongs to that layer; every GPU task launched by such a task (same
//! CUPTI correlation id) inherits the mapping. No CUDA synchronization is
//! ever inserted — the timestamps come for free from the instrumented
//! framework, so the profiled execution is undisturbed.

use crate::graph::{DepKind, DependencyGraph, TaskId};
use crate::task::LayerRef;
use daydream_trace::{Lane, Trace};

/// Applies the layer mapping in place.
///
/// `a2t` maps activity indices to task ids (from
/// [`crate::construct::build_graph`]).
pub fn map_tasks_to_layers(graph: &mut DependencyGraph, trace: &Trace, a2t: &[TaskId]) {
    // Sort marker indices per thread by window start for sweep matching.
    let mut markers: Vec<usize> = (0..trace.markers.len()).collect();
    markers.sort_by_key(|&i| (trace.markers[i].thread, trace.markers[i].start_ns));

    // CPU activities per thread, by start time.
    for (lane, ids) in trace.lanes() {
        let Lane::Cpu(thread) = lane else { continue };
        let thread_markers: Vec<usize> = markers
            .iter()
            .copied()
            .filter(|&i| trace.markers[i].thread == thread)
            .collect();
        if thread_markers.is_empty() {
            continue;
        }
        let mut mi = 0usize;
        for aid in ids {
            let a = &trace.activities[aid.0];
            // Advance past windows that ended before this task.
            while mi < thread_markers.len()
                && trace.markers[thread_markers[mi]].end_ns <= a.start_ns
            {
                mi += 1;
            }
            if mi >= thread_markers.len() {
                break;
            }
            let m = &trace.markers[thread_markers[mi]];
            if m.contains(a.start_ns) {
                graph.task_mut(a2t[aid.0]).layer = Some(LayerRef {
                    layer: m.layer,
                    phase: m.phase,
                });
            }
        }
    }

    // Propagate along correlation edges: launched GPU work inherits the
    // launching API's layer.
    let updates: Vec<(TaskId, LayerRef)> = graph
        .iter()
        .filter_map(|(id, t)| t.layer.map(|l| (id, l)))
        .flat_map(|(id, l)| {
            graph
                .successors(id)
                .iter()
                .filter(|&&(_, k)| k == DepKind::Correlation)
                .map(move |&(s, _)| (s, l))
                .collect::<Vec<_>>()
        })
        .collect();
    for (id, l) in updates {
        graph.task_mut(id).layer = Some(l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::build_graph;
    use daydream_models::zoo;
    use daydream_runtime::{baseline_plan, ExecConfig, Executor};
    use daydream_trace::Phase;

    fn mapped_graph() -> (
        DependencyGraph,
        daydream_trace::Trace,
        daydream_models::Model,
    ) {
        let model = zoo::resnet50();
        let cfg = ExecConfig::pytorch_2080ti().with_batch(8);
        let ex = Executor::new(&model, &cfg);
        let trace = ex.run(&baseline_plan(&model, 8));
        let (mut g, a2t) = build_graph(&trace);
        map_tasks_to_layers(&mut g, &trace, &a2t);
        (g, trace, model)
    }

    #[test]
    fn every_kernel_is_mapped() {
        let (g, _, _) = mapped_graph();
        let unmapped: Vec<_> = g
            .iter()
            .filter(|(_, t)| t.kind.is_gpu() && t.layer.is_none())
            .map(|(_, t)| t.name.clone())
            .collect();
        // The input HtoD upload and loss copy are not layer work; everything
        // else must map.
        assert!(
            unmapped.iter().all(|n| n.contains("memcpy")),
            "unmapped GPU tasks: {unmapped:?}"
        );
    }

    #[test]
    fn kernels_map_to_correct_phase() {
        let (g, _, model) = mapped_graph();
        // Count GPU kernels per phase and compare with the plan structure.
        let fwd = g
            .select(|t| t.kind.is_gpu() && t.in_phase(Phase::Forward))
            .len();
        let bwd = g
            .select(|t| t.kind.is_gpu() && t.in_phase(Phase::Backward))
            .len();
        let wu = g
            .select(|t| t.kind.is_gpu() && t.in_phase(Phase::WeightUpdate))
            .len();
        let plan = baseline_plan(&model, 8);
        let plan_fwd: usize = plan.fwd.iter().map(|l| l.ops.len()).sum();
        let plan_bwd: usize = plan.bwd.iter().map(|l| l.ops.len()).sum();
        assert_eq!(fwd, plan_fwd);
        assert_eq!(bwd, plan_bwd);
        assert_eq!(wu, plan.wu_kernel_count());
    }

    #[test]
    fn specific_layer_kernels_found() {
        let (g, _, model) = mapped_graph();
        let conv1 = model.layers.iter().find(|l| l.name == "conv1").unwrap();
        let kernels = g.select(|t| {
            t.kind.is_gpu()
                && t.layer
                    .map(|l| l.layer == conv1.id && l.phase == Phase::Forward)
                    .unwrap_or(false)
        });
        // conv1 forward launches exactly one convolution kernel.
        assert_eq!(kernels.len(), 1);
        assert!(g.task(kernels[0]).name.contains("scudnn"));
    }

    #[test]
    fn launch_apis_mapped_too() {
        let (g, _, _) = mapped_graph();
        let mapped_apis = g.select(|t| t.thread.is_cpu() && t.layer.is_some()).len();
        assert!(
            mapped_apis > 500,
            "launch APIs inside layer windows must map"
        );
    }
}
