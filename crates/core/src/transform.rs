//! Graph-transformation primitives (paper §4.4).
//!
//! The primitives are deliberately small: **select** tasks of interest (by
//! thread, name keyword, or layer), **shrink/scale** their durations,
//! **insert/remove** tasks in an execution thread's sequence (inserting a
//! GPU task also inserts the CPU launch that triggers it — Fig. 4), and
//! **schedule** (override the simulator's policy via
//! [`crate::sim::FrontierOrder`]; the legacy [`crate::sim::Scheduler`]
//! trait drives only the reference oracle). §5 shows ten optimizations
//! built from these.
//!
//! Every primitive is generic over [`GraphEdit`], so the same code serves
//! two call paths: mutate a [`crate::DependencyGraph`] in place (the
//! legacy `what_if_*` API), or record a [`crate::patch::GraphPatch`]
//! through a [`crate::patch::PatchGraph`] overlay for the
//! compile-once-patch-per-scenario pipeline.

use crate::graph::{DepKind, GraphEdit, GraphView, TaskId};
use crate::task::{ExecThread, Task, TaskKind};
use daydream_trace::{CudaApi, Phase};

/// Returns the same-thread sequence successor of a task, if any.
pub fn thread_successor<G: GraphView>(g: &G, id: TaskId) -> Option<TaskId> {
    let thread = g.task(id).thread;
    g.successors(id)
        .iter()
        .filter(|&&(s, k)| {
            matches!(k, DepKind::CpuSeq | DepKind::GpuSeq) && g.task(s).thread == thread
        })
        .map(|&(s, _)| s)
        .min_by_key(|s| g.task(*s).measured_start_ns)
}

/// Returns the same-thread sequence predecessor of a task, if any.
pub fn thread_predecessor<G: GraphView>(g: &G, id: TaskId) -> Option<TaskId> {
    let thread = g.task(id).thread;
    g.predecessors(id)
        .iter()
        .filter(|&&(p, k)| {
            matches!(k, DepKind::CpuSeq | DepKind::GpuSeq) && g.task(p).thread == thread
        })
        .map(|&(p, _)| p)
        .max_by_key(|p| g.task(*p).measured_start_ns)
}

/// Sequence-edge kind for a thread.
fn seq_kind(thread: ExecThread) -> DepKind {
    match thread {
        ExecThread::Cpu(_) => DepKind::CpuSeq,
        ExecThread::Gpu(_, _) => DepKind::GpuSeq,
        ExecThread::Comm(_) => DepKind::Comm,
    }
}

/// Inserts `task` into its thread's sequence directly after `after`
/// (the paper's Insert primitive, Fig. 4a).
///
/// The new task inherits `after`'s measured start for stable ordering.
///
/// # Panics
///
/// Panics if `task.thread` differs from `after`'s thread.
pub fn insert_after<G: GraphEdit>(g: &mut G, after: TaskId, mut task: Task) -> TaskId {
    let thread = g.task(after).thread;
    assert_eq!(
        task.thread, thread,
        "insert_after requires matching threads"
    );
    task.measured_start_ns = g.task(after).measured_start_ns + 1;
    let succ = thread_successor(g, after);
    let id = g.add_task(task);
    let kind = seq_kind(thread);
    if let Some(s) = succ {
        g.remove_dep(after, s);
        g.add_dep(id, s, kind);
    }
    g.add_dep(after, id, kind);
    id
}

/// Inserts `task` into its thread's sequence directly before `before`.
///
/// # Panics
///
/// Panics if `task.thread` differs from `before`'s thread.
pub fn insert_before<G: GraphEdit>(g: &mut G, before: TaskId, mut task: Task) -> TaskId {
    let thread = g.task(before).thread;
    assert_eq!(
        task.thread, thread,
        "insert_before requires matching threads"
    );
    task.measured_start_ns = g.task(before).measured_start_ns.saturating_sub(1);
    let pred = thread_predecessor(g, before);
    let id = g.add_task(task);
    let kind = seq_kind(thread);
    if let Some(p) = pred {
        g.remove_dep(p, before);
        g.add_dep(p, id, kind);
    }
    g.add_dep(id, before, kind);
    id
}

/// Inserts a GPU task after `gpu_after` on its stream, together with the
/// CPU launch API that triggers it after `cpu_after` (paper Fig. 4b).
///
/// Returns `(launch_id, kernel_id)`.
pub fn insert_gpu_task_with_launch<G: GraphEdit>(
    g: &mut G,
    cpu_after: TaskId,
    gpu_after: TaskId,
    kernel: Task,
    launch_dur_ns: u64,
) -> (TaskId, TaskId) {
    let cpu_thread = g.task(cpu_after).thread;
    let mut launch = Task::new(
        "cudaLaunchKernel",
        TaskKind::CpuApi(CudaApi::LaunchKernel),
        cpu_thread,
        launch_dur_ns,
    );
    launch.layer = kernel.layer;
    let launch_id = insert_after(g, cpu_after, launch);
    let kernel_id = insert_after(g, gpu_after, kernel);
    g.add_dep(launch_id, kernel_id, DepKind::Correlation);
    (launch_id, kernel_id)
}

/// Scales the durations of selected tasks by `factor` (shrink when < 1).
pub fn scale_durations<G: GraphEdit>(g: &mut G, sel: &[TaskId], factor: f64) {
    for &id in sel {
        let scaled = (g.task(id).duration_ns as f64 * factor).round() as u64;
        g.set_duration(id, scaled);
    }
}

/// Removes all selected tasks, bridging their thread sequences.
pub fn remove_all<G: GraphEdit>(g: &mut G, sel: &[TaskId]) {
    for &id in sel {
        g.remove_task(id);
    }
}

/// Selection helpers mirroring the paper's `Select` examples (§4.4).
pub mod select {
    use super::*;

    /// All live GPU tasks (`Select(funcPtr(IsOnGPU))` in the algorithms).
    pub fn gpu_tasks<G: GraphView>(g: &G) -> Vec<TaskId> {
        g.select_ids(|t| t.is_on_gpu())
    }

    /// Tasks whose name contains a keyword (e.g. `"sgemm"`).
    pub fn by_keyword<G: GraphView>(g: &G, keyword: &str) -> Vec<TaskId> {
        g.select_ids(|t| t.name.contains(keyword))
    }

    /// GPU tasks of a given phase.
    pub fn gpu_in_phase<G: GraphView>(g: &G, phase: Phase) -> Vec<TaskId> {
        g.select_ids(|t| t.is_on_gpu() && t.in_phase(phase))
    }

    /// All tasks (CPU and GPU) of a given phase.
    pub fn in_phase<G: GraphView>(g: &G, phase: Phase) -> Vec<TaskId> {
        g.select_ids(|t| t.in_phase(phase))
    }

    /// GPU tasks belonging to a specific layer id.
    pub fn gpu_of_layer<G: GraphView>(g: &G, layer: daydream_trace::LayerId) -> Vec<TaskId> {
        g.select_ids(|t| t.is_on_gpu() && t.layer.map(|l| l.layer == layer).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::sim::simulate;
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu(name: &str, dur: u64) -> Task {
        Task::new(
            name,
            TaskKind::CpuWork,
            ExecThread::Cpu(CpuThreadId(0)),
            dur,
        )
    }

    fn gpu(name: &str, dur: u64) -> Task {
        Task::new(
            name,
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            dur,
        )
    }

    fn chain(g: &mut DependencyGraph, names: &[&str]) -> Vec<TaskId> {
        let mut ids = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let mut t = cpu(n, 10);
            t.measured_start_ns = i as u64 * 100;
            let id = g.add_task(t);
            if let Some(&prev) = ids.last() {
                g.add_dep(prev, id, DepKind::CpuSeq);
            }
            ids.push(id);
        }
        ids
    }

    #[test]
    fn insert_after_splices() {
        let mut g = DependencyGraph::new();
        let ids = chain(&mut g, &["a", "b"]);
        let new = insert_after(&mut g, ids[0], cpu("x", 5));
        assert_eq!(thread_successor(&g, ids[0]), Some(new));
        assert_eq!(thread_successor(&g, new), Some(ids[1]));
        g.validate().unwrap();
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan_ns, 25);
    }

    #[test]
    fn insert_before_splices() {
        let mut g = DependencyGraph::new();
        let ids = chain(&mut g, &["a", "b"]);
        let new = insert_before(&mut g, ids[1], cpu("x", 5));
        assert_eq!(thread_successor(&g, ids[0]), Some(new));
        assert_eq!(thread_successor(&g, new), Some(ids[1]));
        g.validate().unwrap();
    }

    #[test]
    fn insert_then_remove_restores_makespan() {
        let mut g = DependencyGraph::new();
        let ids = chain(&mut g, &["a", "b", "c"]);
        let before = simulate(&g).unwrap().makespan_ns;
        let new = insert_after(&mut g, ids[1], cpu("x", 50));
        let with = simulate(&g).unwrap().makespan_ns;
        assert_eq!(with, before + 50);
        g.remove_task(new);
        let after = simulate(&g).unwrap().makespan_ns;
        assert_eq!(after, before);
    }

    #[test]
    fn gpu_insert_includes_launch() {
        let mut g = DependencyGraph::new();
        let c = g.add_task(cpu("launch0", 10));
        let k = g.add_task(gpu("k0", 100));
        g.add_dep(c, k, DepKind::Correlation);
        let (launch, kernel) = insert_gpu_task_with_launch(&mut g, c, k, gpu("injected", 40), 6);
        g.validate().unwrap();
        assert!(g.task(launch).thread.is_cpu());
        assert!(g.task(kernel).is_on_gpu());
        let r = simulate(&g).unwrap();
        // Kernel order: k0 (starts after its launch) then injected (GpuSeq).
        assert!(r.start_of(kernel) >= r.start_of(k) + 100);
        assert_eq!(r.makespan_ns, 150);
    }

    #[test]
    fn scaling_shrinks() {
        let mut g = DependencyGraph::new();
        let ids = chain(&mut g, &["a", "b"]);
        scale_durations(&mut g, &ids, 0.5);
        assert_eq!(g.task(ids[0]).duration_ns, 5);
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan_ns, 10);
    }

    #[test]
    fn selection_helpers() {
        let mut g = DependencyGraph::new();
        g.add_task(cpu("cudaLaunchKernel", 5));
        let k = g.add_task(gpu("volta_sgemm_128x64", 50));
        g.add_task(gpu("elementwise_kernel_relu", 20));
        assert_eq!(select::gpu_tasks(&g).len(), 2);
        assert_eq!(select::by_keyword(&g, "sgemm"), vec![k]);
        assert!(select::gpu_in_phase(&g, Phase::Forward).is_empty());
    }

    #[test]
    fn remove_all_bridges() {
        let mut g = DependencyGraph::new();
        let ids = chain(&mut g, &["a", "b", "c", "d"]);
        remove_all(&mut g, &[ids[1], ids[2]]);
        assert_eq!(g.len(), 2);
        g.validate().unwrap();
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan_ns, 20);
    }
}
