//! Runtime simulation (paper Algorithm 1, Phase 4).
//!
//! Traverses the dependency graph, dispatching each ready task to its
//! execution thread and advancing per-thread progress by `duration + gap`.
//! The scheduling policy is pluggable (paper §4.4 "Schedule" primitive):
//! the default picks the frontier task with the earliest feasible start;
//! P3 overrides the tie-break on communication channels.
//!
//! # The hot path
//!
//! [`simulate`] freezes the graph into a [`CompiledGraph`] and runs a
//! heap-based frontier in O((V+E) log V):
//!
//! * each execution thread keeps a **two-tier frontier**: a `pending`
//!   min-heap ordered by `(tentative_start, rank)` for tasks whose
//!   dependency-induced start is still ahead of the thread's progress, and
//!   a `ready` min-heap ordered by `rank` alone for tasks the thread could
//!   start immediately. When progress advances, pending entries whose
//!   tentative start has been overtaken migrate to `ready` (each task
//!   migrates at most once);
//! * a **global lazy heap** holds the best `(feasible_start, rank)`
//!   candidate per thread; stale entries are discarded on pop by
//!   revalidating against the thread's current best.
//!
//! This dispatches exactly the same task sequence as the quadratic
//! reference loop ([`simulate_reference`]), which refreshes every frontier
//! candidate against thread progress on each step and linear-scans for the
//! minimum: within one thread all ready candidates share the thread's
//! progress as feasible start (ordered by rank), pending candidates are
//! ordered by their fixed tentative starts, and the cross-thread minimum
//! is the global one. The reference loop is retained as the oracle for the
//! equivalence proptests and the `sim_scale` benchmark.

use crate::compiled::{ApplyTrace, CompactId, CompiledGraph, ThreadId};
use crate::graph::{DependencyGraph, GraphError, TaskId};
use crate::patch::{GraphPatch, NetDelta};
use crate::task::ExecThread;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Secondary dispatch key: breaks ties among candidates feasible at the
/// same instant. Lower ranks dispatch first; ranks must be fixed per task
/// for the whole simulation.
pub type Rank = (u64, u64);

/// Scheduling policy over the compiled frontier (paper §4.4 "Schedule").
///
/// The frontier always dispatches the candidate with the smallest
/// `(feasible_start, rank)` pair; a policy only chooses the rank. The
/// default [`EarliestStart`] ranks by task id, reproducing Algorithm 1's
/// "earliest start, ties by id" exactly; P3 ranks communication tasks by
/// priority.
pub trait FrontierOrder {
    /// The tie-break rank of `task`.
    fn rank(&self, graph: &CompiledGraph, task: CompactId) -> Rank;

    /// `true` if [`simulate_incremental_with`] may trust this policy
    /// across a patch: ranks must be a fixed function of the task's
    /// compact-id *order*, priority, and comm-thread flag, so the
    /// relative rank of two untouched tasks cannot change when a patch
    /// shifts compact ids or edits other tasks. Policies ranking on
    /// anything else (durations, successor counts, global state) must
    /// return `false` — the conservative default — which routes every
    /// patched simulation through the full fallback.
    fn incremental_safe(&self) -> bool {
        false
    }

    /// `true` if ranks depend on task priority. Priority-only patches
    /// then influence scheduling from the task's dependency-ready time;
    /// policies that ignore priority (the default [`EarliestStart`])
    /// let the incremental simulator skip them entirely.
    fn rank_uses_priority(&self) -> bool {
        true
    }
}

/// The default policy: earliest feasible start, ties broken by task id
/// (paper: "picks the task with the earliest start").
#[derive(Debug, Default, Clone, Copy)]
pub struct EarliestStart;

impl FrontierOrder for EarliestStart {
    fn rank(&self, _graph: &CompiledGraph, task: CompactId) -> Rank {
        // Compact ids ascend with TaskIds, so this is the reference
        // tie-break.
        (task.0 as u64, 0)
    }

    fn incremental_safe(&self) -> bool {
        true
    }

    fn rank_uses_priority(&self) -> bool {
        false
    }
}

/// Output of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Simulated start time of each task (`None` for removed tasks).
    pub start_ns: Vec<Option<u64>>,
    /// End of the last task — the predicted iteration time.
    pub makespan_ns: u64,
    /// Final progress of each execution thread.
    pub thread_end: BTreeMap<ExecThread, u64>,
    /// Per-task wait between thread availability and actual start (time the
    /// thread sat idle before the task, e.g. a CPU blocked on the GPU).
    pub wait_ns: Vec<u64>,
}

impl SimResult {
    /// Predicted iteration time in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }

    /// Simulated start of one task.
    ///
    /// # Panics
    ///
    /// Panics if the task was removed from the graph before simulation.
    pub fn start_of(&self, id: TaskId) -> u64 {
        self.start_ns[id.0].expect("task was removed before simulation")
    }
}

/// Dense simulation output over a [`CompiledGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSim {
    /// Start time per compact task.
    pub start_ns: Vec<u64>,
    /// Idle wait per compact task.
    pub wait_ns: Vec<u64>,
    /// Final progress per interned thread.
    pub thread_end: Vec<u64>,
    /// End of the last task.
    pub makespan_ns: u64,
}

impl CompiledSim {
    /// Expands dense results back to arena-indexed [`SimResult`] form.
    pub fn into_sim_result(self, graph: &CompiledGraph) -> SimResult {
        let mut start = vec![None; graph.arena_len()];
        let mut wait = vec![0u64; graph.arena_len()];
        for i in 0..self.start_ns.len() {
            let c = CompactId(i as u32);
            let id = graph.task_id(c);
            start[id.0] = Some(self.start_ns[i]);
            wait[id.0] = self.wait_ns[i];
        }
        let thread_end = self
            .thread_end
            .iter()
            .enumerate()
            .map(|(t, &end)| (graph.exec_thread(ThreadId(t as u32)), end))
            .collect();
        SimResult {
            start_ns: start,
            makespan_ns: self.makespan_ns,
            thread_end,
            wait_ns: wait,
        }
    }
}

/// One execution thread's frontier: `ready` holds tasks startable at the
/// thread's current progress (ordered by rank), `pending` holds tasks
/// whose dependency-induced start is still in the thread's future
/// (ordered by that start, then rank).
#[derive(Debug, Default)]
pub(crate) struct ThreadFrontier {
    pending: BinaryHeap<Reverse<(u64, Rank, u32)>>,
    ready: BinaryHeap<Reverse<(Rank, u32)>>,
}

impl ThreadFrontier {
    /// Migrates pending tasks overtaken by `progress` into the ready tier.
    #[inline]
    pub(crate) fn refresh(&mut self, progress: u64) {
        while let Some(&Reverse((t, rank, id))) = self.pending.peek() {
            if t > progress {
                break;
            }
            self.pending.pop();
            self.ready.push(Reverse((rank, id)));
        }
    }

    /// The thread's best candidate as `(feasible_start, rank, task)`.
    /// Call [`ThreadFrontier::refresh`] first.
    #[inline]
    pub(crate) fn best(&self, progress: u64) -> Option<(u64, Rank, u32)> {
        if let Some(&Reverse((rank, id))) = self.ready.peek() {
            return Some((progress, rank, id));
        }
        self.pending
            .peek()
            .map(|&Reverse((t, rank, id))| (t, rank, id))
    }

    /// Inserts a newly dispatchable task.
    #[inline]
    pub(crate) fn push(&mut self, tentative: u64, rank: Rank, task: u32, progress: u64) {
        if tentative <= progress {
            self.ready.push(Reverse((rank, task)));
        } else {
            self.pending.push(Reverse((tentative, rank, task)));
        }
    }

    /// Removes the current best (after [`ThreadFrontier::refresh`]).
    #[inline]
    pub(crate) fn pop_best(&mut self) {
        if self.ready.pop().is_none() {
            self.pending.pop();
        }
    }

    /// Empties both tiers, retaining heap capacity for reuse.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.pending.clear();
        self.ready.clear();
    }
}

/// The graph surface [`dispatch_loop`] reads — everything the frontier
/// needs to dispatch a task and release its successors. Implemented by
/// [`CompiledGraph`] itself and by [`RetimeView`], the copy-on-write
/// overlay that serves retime patches without materializing an applied
/// graph. The loop is monomorphized per implementation, so the compiled
/// hot path is unchanged.
pub(crate) trait SimGraphView {
    fn len(&self) -> usize;
    fn thread_count(&self) -> usize;
    fn cost_ns(&self, c: CompactId) -> u64;
    fn duration_ns(&self, c: CompactId) -> u64;
    fn thread_of(&self, c: CompactId) -> ThreadId;
    fn successors(&self, c: CompactId) -> &[CompactId];
    fn pred_count(&self, c: CompactId) -> u32;
}

impl SimGraphView for CompiledGraph {
    // Inherent methods shadow the trait methods, so each delegation below
    // resolves to the inherent accessor (no recursion).
    #[inline]
    fn len(&self) -> usize {
        CompiledGraph::len(self)
    }
    #[inline]
    fn thread_count(&self) -> usize {
        CompiledGraph::thread_count(self)
    }
    #[inline]
    fn cost_ns(&self, c: CompactId) -> u64 {
        CompiledGraph::cost_ns(self, c)
    }
    #[inline]
    fn duration_ns(&self, c: CompactId) -> u64 {
        CompiledGraph::duration_ns(self, c)
    }
    #[inline]
    fn thread_of(&self, c: CompactId) -> ThreadId {
        CompiledGraph::thread_of(self, c)
    }
    #[inline]
    fn successors(&self, c: CompactId) -> &[CompactId] {
        CompiledGraph::successors(self, c)
    }
    #[inline]
    fn pred_count(&self, c: CompactId) -> u32 {
        CompiledGraph::pred_count(self, c)
    }
}

/// Simulates the graph with the default earliest-start policy.
pub fn simulate(graph: &DependencyGraph) -> Result<SimResult, GraphError> {
    simulate_with(graph, &EarliestStart)
}

/// Simulates the graph with a custom frontier policy (Algorithm 1).
pub fn simulate_with<O: FrontierOrder>(
    graph: &DependencyGraph,
    order: &O,
) -> Result<SimResult, GraphError> {
    let cg = CompiledGraph::compile(graph);
    Ok(simulate_compiled_with(&cg, order)?.into_sim_result(&cg))
}

/// Simulates a compiled graph with the default policy.
pub fn simulate_compiled(graph: &CompiledGraph) -> Result<CompiledSim, GraphError> {
    simulate_compiled_with(graph, &EarliestStart)
}

/// Simulates a compiled graph: the O((V+E) log V) hot path.
pub fn simulate_compiled_with<O: FrontierOrder>(
    cg: &CompiledGraph,
    order: &O,
) -> Result<CompiledSim, GraphError> {
    sim_compiled_core(cg, order).map(|(sim, _)| sim)
}

/// The full-simulation core, additionally returning each task's final
/// dependency-induced start (`max` over predecessor finishes) — the
/// readiness times [`Schedule::capture_with`] indexes for incremental
/// cutoff computation.
pub(crate) fn sim_compiled_core<O: FrontierOrder>(
    cg: &CompiledGraph,
    order: &O,
) -> Result<(CompiledSim, Vec<u64>), GraphError> {
    let n = cg.len();
    let t_count = cg.thread_count();
    let ranks: Vec<Rank> = (0..n)
        .map(|i| order.rank(cg, CompactId(i as u32)))
        .collect();

    let mut tentative = vec![0u64; n];
    let mut preds = cg.pred_counts();
    let mut start = vec![0u64; n];
    let mut wait = vec![0u64; n];
    let mut progress = vec![0u64; t_count];
    let mut fronts: Vec<ThreadFrontier> = (0..t_count).map(|_| ThreadFrontier::default()).collect();

    // Global lazy heap over per-thread bests: (feasible, rank, task, thread).
    let mut global: BinaryHeap<Reverse<(u64, Rank, u32, u32)>> = BinaryHeap::new();

    for i in 0..n {
        if preds[i] == 0 {
            let t = cg.thread_of(CompactId(i as u32)).0 as usize;
            fronts[t].push(0, ranks[i], i as u32, 0);
        }
    }
    for (t, front) in fronts.iter_mut().enumerate() {
        if let Some((f, r, id)) = front.best(0) {
            global.push(Reverse((f, r, id, t as u32)));
        }
    }

    let mut makespan = 0u64;
    let done = dispatch_loop(
        cg,
        &ranks,
        &mut tentative,
        &mut preds,
        &mut start,
        &mut wait,
        &mut progress,
        &mut fronts,
        &mut global,
        &mut makespan,
    );

    if done != n {
        return Err(GraphError::Cycle);
    }
    Ok((
        CompiledSim {
            start_ns: start,
            wait_ns: wait,
            thread_end: progress,
            makespan_ns: makespan,
        },
        tentative,
    ))
}

/// The frontier dispatch loop shared by the full, incremental, and
/// windowed simulators: drains the seeded heaps to completion, returning
/// how many tasks were dispatched. All entry points run *this* code, so
/// no derived path can drift from full-simulation semantics.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch_loop<G: SimGraphView>(
    cg: &G,
    ranks: &[Rank],
    tentative: &mut [u64],
    preds: &mut [u32],
    start: &mut [u64],
    wait: &mut [u64],
    progress: &mut [u64],
    fronts: &mut [ThreadFrontier],
    global: &mut BinaryHeap<Reverse<(u64, Rank, u32, u32)>>,
    makespan: &mut u64,
) -> usize {
    let mut done = 0usize;
    while let Some(Reverse((feas, rank, u, t))) = global.pop() {
        let ti = t as usize;
        let front = &mut fronts[ti];
        front.refresh(progress[ti]);
        // Discard stale entries: the thread's real best was re-pushed when
        // it changed, so a mismatch means this entry is outdated.
        if front.best(progress[ti]) != Some((feas, rank, u)) {
            continue;
        }
        front.pop_best();

        let ui = u as usize;
        let s = feas;
        start[ui] = s;
        wait[ui] = s - progress[ti];
        let fin = s + cg.cost_ns(CompactId(u));
        *makespan = (*makespan).max(s + cg.duration_ns(CompactId(u)));
        progress[ti] = fin;
        done += 1;

        for &v in cg.successors(CompactId(u)) {
            let vi = v.0 as usize;
            tentative[vi] = tentative[vi].max(fin);
            preds[vi] -= 1;
            if preds[vi] == 0 {
                let tv = cg.thread_of(v).0 as usize;
                fronts[tv].push(tentative[vi], ranks[vi], v.0, progress[tv]);
                if tv != ti {
                    // The other thread's best may have improved.
                    if let Some((f, r, id)) = fronts[tv].best(progress[tv]) {
                        global.push(Reverse((f, r, id, tv as u32)));
                    }
                }
            }
        }
        // This thread's progress advanced and its best was consumed:
        // re-announce whatever is best now.
        let front = &mut fronts[ti];
        front.refresh(progress[ti]);
        if let Some((f, r, id)) = front.best(progress[ti]) {
            global.push(Reverse((f, r, id, t)));
        }
    }
    done
}

// ---------------------------------------------------------------------------
// Incremental cone re-simulation
// ---------------------------------------------------------------------------

/// A captured base simulation plus the acceleration indices incremental
/// re-simulation needs: per-task start/finish/ready times, the dispatch
/// sequence sorted by start, per-thread timelines, and per-task
/// predecessor arrays sorted by predecessor start with running-max
/// finishes. Built once per base profile ([`Schedule::capture_with`]);
/// every patched scenario then reuses the schedule to replay the
/// unaffected prefix verbatim and re-dispatch only its cone.
///
/// The indices make cutoff seeding sublinear in the prefix: thread
/// progress at a cutoff is one binary search per thread, and a suffix
/// task's remaining-predecessor count and seeded tentative start are one
/// binary search over its sorted predecessor segment.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The base simulation output (dense, compiled-space).
    sim: CompiledSim,
    /// Final dependency-induced start per task (max predecessor finish).
    tentative_ns: Vec<u64>,
    /// `start + cost` per task: when the thread moves past it.
    fin_ns: Vec<u64>,
    /// Task ids sorted by start time (the dispatch sequence up to
    /// same-instant ties, which a time cutoff never splits).
    by_start: Vec<u32>,
    /// Starts parallel to `by_start` (ascending).
    sorted_starts: Vec<u64>,
    /// `makespan_prefix[i]` = max `start + duration` over `by_start[..i]`.
    makespan_prefix: Vec<u64>,
    /// Per-thread timeline CSR offsets into `tl_start`/`tl_fin`.
    tl_off: Vec<u32>,
    /// Per-thread task starts in dispatch order.
    tl_start: Vec<u64>,
    /// Per-thread task finishes in dispatch order (monotone per thread).
    tl_fin: Vec<u64>,
    /// Per-task predecessor CSR offsets into `pred_start`/`pred_fin_max`.
    pred_off: Vec<u32>,
    /// Predecessor starts per task, ascending within each segment.
    pred_start: Vec<u64>,
    /// Running max of predecessor finishes along `pred_start` order.
    pred_fin_max: Vec<u64>,
}

impl Schedule {
    /// Captures the base schedule under the default policy.
    pub fn capture(cg: &CompiledGraph) -> Result<Schedule, GraphError> {
        Self::capture_with(cg, &EarliestStart)
    }

    /// Simulates `cg` and builds the incremental-seeding indices.
    /// O(V log V + E log E) once per base.
    pub fn capture_with<O: FrontierOrder>(
        cg: &CompiledGraph,
        order: &O,
    ) -> Result<Schedule, GraphError> {
        let (sim, tentative_ns) = sim_compiled_core(cg, order)?;
        let n = cg.len();
        let fin_ns: Vec<u64> = (0..n)
            .map(|i| sim.start_ns[i] + cg.cost_ns(CompactId(i as u32)))
            .collect();

        let mut by_start: Vec<u32> = (0..n as u32).collect();
        by_start.sort_unstable_by_key(|&i| sim.start_ns[i as usize]);
        let sorted_starts: Vec<u64> = by_start.iter().map(|&i| sim.start_ns[i as usize]).collect();
        let mut makespan_prefix = Vec::with_capacity(n + 1);
        makespan_prefix.push(0u64);
        let mut running = 0u64;
        for &i in &by_start {
            running = running.max(sim.start_ns[i as usize] + cg.duration_ns(CompactId(i)));
            makespan_prefix.push(running);
        }

        // Per-thread timelines in dispatch order. Finishes are stored as
        // a running max per segment: serial execution makes them monotone
        // already *except* when a zero-cost task ties a same-thread
        // neighbour on start and the unstable by-start sort orders the
        // tie against dispatch order — `progress_at` must still see the
        // true thread progress.
        let t_count = cg.thread_count();
        let mut tl_counts = vec![0u32; t_count];
        for i in 0..n {
            tl_counts[cg.thread_of(CompactId(i as u32)).0 as usize] += 1;
        }
        let mut tl_off = Vec::with_capacity(t_count + 1);
        tl_off.push(0u32);
        for t in 0..t_count {
            tl_off.push(tl_off[t] + tl_counts[t]);
        }
        let mut cursor: Vec<u32> = tl_off[..t_count].to_vec();
        let mut tl_start = vec![0u64; n];
        let mut tl_fin = vec![0u64; n];
        for &i in &by_start {
            let t = cg.thread_of(CompactId(i)).0 as usize;
            let slot = cursor[t] as usize;
            cursor[t] += 1;
            tl_start[slot] = sim.start_ns[i as usize];
            tl_fin[slot] = if slot > tl_off[t] as usize {
                fin_ns[i as usize].max(tl_fin[slot - 1])
            } else {
                fin_ns[i as usize]
            };
        }

        // Predecessor CSR (inverted from the successor CSR), each segment
        // sorted by predecessor start with a running max of finishes: one
        // binary search then seeds a suffix task's remaining-predecessor
        // count and tentative start.
        let mut pred_off = vec![0u32; n + 1];
        for u in 0..n {
            for &v in cg.successors(CompactId(u as u32)) {
                pred_off[v.0 as usize + 1] += 1;
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let e = *pred_off.last().unwrap_or(&0) as usize;
        let mut cursor: Vec<u32> = pred_off[..n].to_vec();
        let mut pred_task = vec![0u32; e];
        for u in 0..n {
            for &v in cg.successors(CompactId(u as u32)) {
                let slot = cursor[v.0 as usize] as usize;
                cursor[v.0 as usize] += 1;
                pred_task[slot] = u as u32;
            }
        }
        let mut pred_start = vec![0u64; e];
        let mut pred_fin_max = vec![0u64; e];
        for v in 0..n {
            let seg = pred_off[v] as usize..pred_off[v + 1] as usize;
            pred_task[seg.clone()].sort_unstable_by_key(|&p| sim.start_ns[p as usize]);
            let mut running = 0u64;
            for s in seg {
                let p = pred_task[s] as usize;
                pred_start[s] = sim.start_ns[p];
                running = running.max(fin_ns[p]);
                pred_fin_max[s] = running;
            }
        }

        Ok(Schedule {
            sim,
            tentative_ns,
            fin_ns,
            by_start,
            sorted_starts,
            makespan_prefix,
            tl_off,
            tl_start,
            tl_fin,
            pred_off,
            pred_start,
            pred_fin_max,
        })
    }

    /// Number of tasks the schedule covers.
    pub fn len(&self) -> usize {
        self.sim.start_ns.len()
    }

    /// `true` if the schedule covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.sim.start_ns.is_empty()
    }

    /// The base simulation's makespan.
    pub fn makespan_ns(&self) -> u64 {
        self.sim.makespan_ns
    }

    /// The captured base simulation.
    pub fn sim(&self) -> &CompiledSim {
        &self.sim
    }

    /// Index of the first dispatch at or after `cutoff` in start order.
    fn first_suffix(&self, cutoff: u64) -> usize {
        self.sorted_starts.partition_point(|&s| s < cutoff)
    }

    /// Thread progress after every dispatch strictly before `cutoff`.
    fn progress_at(&self, thread: usize, cutoff: u64) -> u64 {
        let seg = self.tl_off[thread] as usize..self.tl_off[thread + 1] as usize;
        let idx = self.tl_start[seg.clone()].partition_point(|&s| s < cutoff);
        if idx == 0 {
            0
        } else {
            self.tl_fin[seg.start + idx - 1]
        }
    }

    /// Splits a task's predecessors at `cutoff`: how many dispatch at or
    /// after it (still owed in the continuation) and the max finish of
    /// those already replayed (the seeded tentative start).
    fn pred_split(&self, task: usize, cutoff: u64) -> (u32, u64) {
        let seg = self.pred_off[task] as usize..self.pred_off[task + 1] as usize;
        let idx = self.pred_start[seg.clone()].partition_point(|&s| s < cutoff);
        let remaining = (seg.len() - idx) as u32;
        let tentative = if idx == 0 {
            0
        } else {
            self.pred_fin_max[seg.start + idx - 1]
        };
        (remaining, tentative)
    }
}

/// Tuning knobs for [`simulate_incremental_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalOptions {
    /// Fall back to a full simulation when the re-dispatch cone exceeds
    /// this fraction of the patched graph's tasks (`1.0` never falls
    /// back on size, `0.0` always does). Past roughly three quarters of
    /// the graph, seeding overhead cancels the skipped prefix.
    pub max_cone_fraction: f64,
}

impl Default for IncrementalOptions {
    fn default() -> Self {
        IncrementalOptions {
            max_cone_fraction: 0.75,
        }
    }
}

/// Why an incremental simulation fell back to the full path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The frontier policy did not declare itself incremental-safe
    /// ([`FrontierOrder::incremental_safe`]).
    PolicyUnsafe,
    /// The patch vacated a base thread, so base `ThreadId`s are not
    /// stable in the patched graph.
    VacatedThreads,
    /// The cone exceeded [`IncrementalOptions::max_cone_fraction`].
    ConeTooLarge,
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FallbackReason::PolicyUnsafe => "frontier policy is not incremental-safe",
            FallbackReason::VacatedThreads => "patch vacates a base thread",
            FallbackReason::ConeTooLarge => "re-dispatch cone exceeds the size threshold",
        })
    }
}

/// Work accounting of one incremental simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalStats {
    /// Tasks the simulator actually dispatched (the cone on the
    /// incremental path; every task on a full fallback).
    pub redispatched: usize,
    /// Live tasks in the patched graph.
    pub total: usize,
    /// The divergence cutoff: every base dispatch strictly before this
    /// instant was replayed verbatim (`None` on full fallback;
    /// `u64::MAX` when the patch had no simulation-relevant effect).
    pub cutoff_ns: Option<u64>,
    /// `Some` when the full path ran instead of the cone.
    pub fallback: Option<FallbackReason>,
}

impl IncrementalStats {
    /// `true` when the cone path ran (no fallback).
    pub fn is_incremental(&self) -> bool {
        self.fallback.is_none()
    }

    /// Fraction of tasks re-dispatched.
    pub fn cone_fraction(&self) -> f64 {
        self.redispatched as f64 / self.total.max(1) as f64
    }
}

/// Result of [`simulate_incremental_with`]: the simulation (identical to
/// a full run of the patched graph) plus work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalOutcome {
    /// Dense simulation output over the patched graph.
    pub sim: CompiledSim,
    /// Which path ran and how much it re-dispatched.
    pub stats: IncrementalStats,
}

/// [`simulate_incremental_with`] under the default earliest-start policy
/// and default options.
pub fn simulate_incremental(
    base: &CompiledGraph,
    schedule: &Schedule,
    patched: &CompiledGraph,
    patch: &GraphPatch,
    trace: &ApplyTrace,
) -> Result<IncrementalOutcome, GraphError> {
    simulate_incremental_with(
        base,
        schedule,
        patched,
        patch,
        trace,
        &EarliestStart,
        &IncrementalOptions::default(),
    )
}

/// Simulates `patched = base.apply_traced(patch)` by reusing the base
/// [`Schedule`]: replays every dispatch strictly before the patch's
/// earliest possible influence verbatim, seeds the frontier heaps from
/// the remaining *cone*, and drives the shared [`dispatch_loop`] over
/// just those tasks — O(|cone| log |cone|) instead of O(V log V) per
/// scenario. Falls back to [`simulate_compiled_with`] when the policy is
/// not incremental-safe, the patch vacated a thread, or the cone exceeds
/// the size threshold. The result is pinned (proptests) to be identical
/// to the full simulation of the patched graph.
///
/// The cutoff is sound because dispatches happen in nondecreasing start
/// order: every candidate created by a dispatch at time `s` has feasible
/// start ≥ `s`, so the first behavioral divergence between base and
/// patched simulations cannot precede the minimum over per-change
/// influence bounds — a retime acts from the task's base start, a
/// rank-relevant priority or thread change from its dependency-ready
/// time, a removal from the start of the vacated slot, an insertion from
/// its predecessors' finishes, and an edge rewire from the earlier of
/// the target's base start and its loosest new readiness.
///
/// # Panics
///
/// Panics if `schedule` was not captured over `base`, or `patch`/`trace`
/// do not correspond to `base` and `patched`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_incremental_with<O: FrontierOrder>(
    base: &CompiledGraph,
    schedule: &Schedule,
    patched: &CompiledGraph,
    patch: &GraphPatch,
    trace: &ApplyTrace,
    order: &O,
    opts: &IncrementalOptions,
) -> Result<IncrementalOutcome, GraphError> {
    match try_simulate_incremental_with(base, schedule, patched, patch, trace, order, opts)? {
        Ok(outcome) => Ok(outcome),
        Err(reason) => {
            let n_new = patched.len();
            let sim = simulate_compiled_with(patched, order)?;
            Ok(IncrementalOutcome {
                sim,
                stats: IncrementalStats {
                    redispatched: n_new,
                    total: n_new,
                    cutoff_ns: None,
                    fallback: Some(reason),
                },
            })
        }
    }
}

/// The patch-influence cutoff and re-dispatch cone size over the base
/// schedule, derived from the *unapplied* patch — base, delta, and
/// schedule only. This is the whole decision surface of the incremental
/// path's size threshold, so [`incremental_cone_fits`] can answer it
/// without paying [`CompiledGraph::apply_traced`].
struct ConeBound {
    /// Earliest instant any patch effect can surface (`u64::MAX` when
    /// the patch has no simulation-relevant effect).
    cutoff: u64,
    /// Index of the first base dispatch at or after `cutoff`.
    cut_idx: usize,
    /// Tasks the incremental path would re-dispatch.
    cone: usize,
    /// Live tasks of the patched graph (base − removed + inserted).
    n_new: usize,
}

fn cone_bound<O: FrontierOrder>(
    base: &CompiledGraph,
    schedule: &Schedule,
    patch: &GraphPatch,
    order: &O,
) -> ConeBound {
    let d = patch.delta();
    let base_cap = patch.base_capacity();
    let base_compact = |id: TaskId| -> usize {
        base.compact_of(id)
            .expect("patched task must be live in the base")
            .0 as usize
    };

    // --- Cutoff: the earliest instant any patch effect can surface. ---
    let mut cutoff = u64::MAX;
    for &id in d.touched() {
        if id.0 >= base_cap || d.is_removed(id) {
            continue;
        }
        let c = base_compact(id);
        let s = d.scalars(id).expect("touched task has a slot");
        if s.duration_ns.is_some() || s.gap_ns.is_some() {
            // A retime dispatches identically but finishes differently:
            // effects start no earlier than the task's own dispatch.
            cutoff = cutoff.min(schedule.sim.start_ns[c]);
        }
        if s.thread.is_some() || (s.priority.is_some() && order.rank_uses_priority()) {
            // A rank or placement change can move the task's own
            // dispatch, but never before its dependencies allow.
            cutoff = cutoff.min(schedule.tentative_ns[c]);
        }
    }
    for id in d.removed_ids() {
        if id.0 < base_cap {
            // The vacated thread slot opens where the base dispatched it.
            cutoff = cutoff.min(schedule.sim.start_ns[base_compact(id)]);
        }
    }
    let (insert_bound, insert_cost) =
        inserted_bounds(d, base_cap, &|id| schedule.fin_ns[base_compact(id)]);
    for (i, &v) in d.new_ids().iter().enumerate() {
        if !d.is_removed(v) {
            cutoff = cutoff.min(insert_bound[i]);
        }
    }
    // A predecessor gates its successor at its *finish*: earliest
    // dispatch plus cost for inserted tasks, the scheduled finish for
    // base tasks.
    let fin_lb_of = |p: TaskId| -> u64 {
        if p.0 >= base_cap {
            let i = d
                .new_ids()
                .binary_search(&p)
                .expect("edge endpoint must be a known task");
            insert_bound[i] + insert_cost[i]
        } else {
            schedule.fin_ns[base_compact(p)]
        }
    };
    for id in d.pred_overlay_ids() {
        if id.0 >= base_cap || d.is_removed(id) {
            continue; // inserted tasks are covered by their bounds
        }
        // The rewired task can become ready as early as its loosest new
        // predecessor finish, or miss its base dispatch slot entirely.
        let list = d.pred_over(id).expect("overlay id has a list");
        let ready_lb = list.iter().map(|&(p, _)| fin_lb_of(p)).max().unwrap_or(0);
        cutoff = cutoff.min(ready_lb.min(schedule.sim.start_ns[base_compact(id)]));
    }

    let removed_live = d
        .removed_ids()
        .filter(|id| id.0 < base_cap && base.compact_of(*id).is_some())
        .count();
    let inserted_live = d.new_ids().iter().filter(|&&v| !d.is_removed(v)).count();
    let n_new = base.len() - removed_live + inserted_live;
    if cutoff == u64::MAX {
        return ConeBound {
            cutoff,
            cut_idx: schedule.by_start.len(),
            cone: 0,
            n_new,
        };
    }

    // --- Cone sizing. ---
    let cut_idx = schedule.first_suffix(cutoff);
    let cone = (schedule.by_start.len() - cut_idx) - removed_live + inserted_live;
    ConeBound {
        cutoff,
        cut_idx,
        cone,
        n_new,
    }
}

/// Decides — without paying [`CompiledGraph::apply_traced`] — whether
/// the incremental cone of `patch` fits `opts.max_cone_fraction`. When
/// it returns `false`, [`try_simulate_incremental_with`] on the applied
/// graph would answer `Err(..)` with the same policy and options, so a
/// caller that only wants a cheap ranking signal (the sweep search's
/// low-fidelity rungs) can skip the apply entirely and fall back to
/// [`busy_time_bound`]. A `true` answer is necessary but not sufficient:
/// the applied patch can still fall back for vacated threads, which are
/// only visible after the apply.
pub fn incremental_cone_fits<O: FrontierOrder>(
    base: &CompiledGraph,
    schedule: &Schedule,
    patch: &GraphPatch,
    order: &O,
    opts: &IncrementalOptions,
) -> bool {
    if !order.incremental_safe() {
        return false;
    }
    let b = cone_bound(base, schedule, patch, order);
    b.cutoff == u64::MAX || b.cone as f64 <= opts.max_cone_fraction * b.n_new as f64
}

/// Per-thread busy time (sum of [`CompiledGraph::cost_ns`]) of a
/// compiled graph, indexed by interned `ThreadId`. The maximum entry is
/// an O(V) optimistic stand-in for the makespan (a lower bound up to
/// trailing per-task gaps) — what the sweep search's low-fidelity rungs
/// use to rank patches whose cone busts the budget.
pub fn thread_busy_ns(g: &CompiledGraph) -> Vec<u64> {
    let mut busy = vec![0u64; g.thread_count()];
    for i in 0..g.len() as u32 {
        let c = CompactId(i);
        busy[g.thread_of(c).0 as usize] += g.cost_ns(c);
    }
    busy
}

/// Max per-thread busy time of `base.apply(patch)` computed from the
/// base's busy sums plus the patch delta — O(|patch|) with no patched
/// graph materialized. `base_busy` must be [`thread_busy_ns`] of `base`
/// (precompute it once per base; it is amortized over every patch).
/// Equal to `thread_busy_ns(&base.apply(patch)).max()` by construction:
/// retimes shift their thread's sum by the cost delta, thread moves and
/// removals vacate their old slot, and insertions add their cost to the
/// target thread (interned fresh when the base never ran on it).
pub fn busy_time_bound(base: &CompiledGraph, base_busy: &[u64], patch: &GraphPatch) -> u64 {
    let (busy, extra) = busy_after_patch(base, base_busy, patch);
    busy.iter()
        .chain(extra.values())
        .copied()
        .max()
        .unwrap_or(0)
        .max(0) as u64
}

/// Per-thread busy times of `base.apply(patch)`, keyed by execution
/// thread — the full vector behind [`busy_time_bound`], for callers that
/// need the per-thread decomposition (the sweep search precomputes it
/// once per DDP cluster to price DGC compression ratios analytically).
/// Entries are clamped at zero like the bound's maximum.
pub fn thread_busy_after(
    base: &CompiledGraph,
    base_busy: &[u64],
    patch: &GraphPatch,
) -> Vec<(ExecThread, u64)> {
    let (busy, extra) = busy_after_patch(base, base_busy, patch);
    busy.into_iter()
        .enumerate()
        .map(|(i, b)| (base.exec_thread(ThreadId(i as u32)), b))
        .chain(extra)
        .map(|(t, b)| (t, b.max(0) as u64))
        .collect()
}

/// Shared delta accumulation: the base's per-`ThreadId` busy sums
/// adjusted by the patch, plus sums for execution threads the base never
/// interned (moves or inserts onto fresh threads).
fn busy_after_patch(
    base: &CompiledGraph,
    base_busy: &[u64],
    patch: &GraphPatch,
) -> (Vec<i128>, HashMap<ExecThread, i128>) {
    debug_assert_eq!(base_busy.len(), base.thread_count());
    let d = patch.delta();
    let base_cap = patch.base_capacity();
    let mut busy: Vec<i128> = base_busy.iter().map(|&b| b as i128).collect();
    // Threads that only exist in the patched graph (a move or an insert
    // onto an execution thread the base never interned).
    let mut extra: HashMap<ExecThread, i128> = HashMap::new();
    let mut by_exec: Option<HashMap<ExecThread, usize>> = None;
    macro_rules! add_exec {
        ($t:expr, $cost:expr) => {{
            let map = by_exec.get_or_insert_with(|| {
                (0..base.thread_count())
                    .map(|i| (base.exec_thread(ThreadId(i as u32)), i))
                    .collect()
            });
            match map.get(&$t) {
                Some(&i) => busy[i] += $cost,
                None => *extra.entry($t).or_insert(0) += $cost,
            }
        }};
    }
    for &id in d.touched() {
        if id.0 >= base_cap || d.is_removed(id) {
            continue;
        }
        let Some(c) = base.compact_of(id) else {
            continue;
        };
        let Some(s) = d.scalars(id) else { continue };
        let old_cost = base.cost_ns(c);
        let new_cost = s.duration_ns.unwrap_or(base.duration_ns(c))
            + s.gap_ns.unwrap_or(old_cost - base.duration_ns(c));
        match s.thread {
            Some(t) => {
                busy[base.thread_of(c).0 as usize] -= old_cost as i128;
                add_exec!(t, new_cost as i128);
            }
            None => busy[base.thread_of(c).0 as usize] += new_cost as i128 - old_cost as i128,
        }
    }
    for id in d.removed_ids() {
        if id.0 < base_cap {
            if let Some(c) = base.compact_of(id) {
                busy[base.thread_of(c).0 as usize] -= base.cost_ns(c) as i128;
            }
        }
    }
    for &v in d.new_ids() {
        if d.is_removed(v) {
            continue;
        }
        let t = d.new_task(v);
        add_exec!(t.thread, t.cost_ns() as i128);
    }
    (busy, extra)
}

/// The cone path of [`simulate_incremental_with`] *without* the full-sim
/// fallback: the inner `Err` names why the cone cannot (or should not)
/// run, leaving the caller free to substitute something cheaper than a
/// full simulation — the multi-fidelity sweep search answers a too-large
/// cone at a low rung with an O(|patch|) analytic estimate instead.
#[allow(clippy::too_many_arguments)]
pub fn try_simulate_incremental_with<O: FrontierOrder>(
    base: &CompiledGraph,
    schedule: &Schedule,
    patched: &CompiledGraph,
    patch: &GraphPatch,
    trace: &ApplyTrace,
    order: &O,
    opts: &IncrementalOptions,
) -> Result<Result<IncrementalOutcome, FallbackReason>, GraphError> {
    assert_eq!(
        base.len(),
        schedule.len(),
        "schedule captured over a different base"
    );
    assert_eq!(
        base.arena_len(),
        patch.base_capacity(),
        "patch recorded against a different base arena"
    );
    let n_new = patched.len();
    if !order.incremental_safe() {
        return Ok(Err(FallbackReason::PolicyUnsafe));
    }
    if trace.vacated_threads {
        return Ok(Err(FallbackReason::VacatedThreads));
    }

    let d = patch.delta();
    let base_cap = patch.base_capacity();
    let base_compact = |id: TaskId| -> usize {
        base.compact_of(id)
            .expect("patched task must be live in the base")
            .0 as usize
    };

    let bound = cone_bound(base, schedule, patch, order);
    debug_assert_eq!(bound.n_new, n_new, "delta-derived live count must match");
    let cutoff = bound.cutoff;

    if cutoff == u64::MAX {
        // No simulation-relevant change (name/kind edits, priority edits
        // under a priority-blind policy): the base schedule is the answer.
        debug_assert_eq!(n_new, base.len());
        return Ok(Ok(IncrementalOutcome {
            sim: schedule.sim.clone(),
            stats: IncrementalStats {
                redispatched: 0,
                total: n_new,
                cutoff_ns: Some(cutoff),
                fallback: None,
            },
        }));
    }

    let cut_idx = bound.cut_idx;
    let suffix = &schedule.by_start[cut_idx..];
    let cone = bound.cone;
    if cone as f64 > opts.max_cone_fraction * n_new as f64 {
        return Ok(Err(FallbackReason::ConeTooLarge));
    }

    // --- Replay the prefix verbatim. ---
    let remap = trace.remap.as_deref();
    let map = |c: u32| -> u32 {
        match remap {
            Some(r) => r[c as usize],
            None => c,
        }
    };
    let (mut start, mut wait) = match remap {
        None => (schedule.sim.start_ns.clone(), schedule.sim.wait_ns.clone()),
        Some(r) => {
            let mut start = vec![0u64; n_new];
            let mut wait = vec![0u64; n_new];
            for (old, &new) in r.iter().enumerate() {
                if new != u32::MAX {
                    start[new as usize] = schedule.sim.start_ns[old];
                    wait[new as usize] = schedule.sim.wait_ns[old];
                }
            }
            (start, wait)
        }
    };
    let t_new = patched.thread_count();
    let t_base = base.thread_count();
    debug_assert!(t_base <= t_new, "vacated threads must have fallen back");
    let mut progress = vec![0u64; t_new];
    for (t, p) in progress.iter_mut().enumerate().take(t_base) {
        *p = schedule.progress_at(t, cutoff);
    }

    // --- Seed the cone. ---
    let mut tentative = vec![0u64; n_new];
    let mut preds = vec![0u32; n_new];
    let mut ranks: Vec<Rank> = vec![(0, 0); n_new];
    let mut fronts: Vec<ThreadFrontier> = (0..t_new).map(|_| ThreadFrontier::default()).collect();
    // Remaining preds / seeded tentative from an explicit (rewired or
    // inserted) predecessor list: prefix predecessors contribute their
    // base finish, suffix and inserted ones stay owed to the loop.
    let split_list = |list: &[(TaskId, crate::graph::DepKind)]| -> (u32, u64) {
        let mut rem = 0u32;
        let mut tent = 0u64;
        for &(p, _) in list {
            if p.0 >= base_cap {
                rem += 1;
            } else {
                let c = base_compact(p);
                if schedule.sim.start_ns[c] < cutoff {
                    tent = tent.max(schedule.fin_ns[c]);
                } else {
                    rem += 1;
                }
            }
        }
        (rem, tent)
    };
    let mut seed = |c_new: u32, rem: u32, tent: u64| {
        let i = c_new as usize;
        preds[i] = rem;
        tentative[i] = tent;
        ranks[i] = order.rank(patched, CompactId(c_new));
        if rem == 0 {
            let t = patched.thread_of(CompactId(c_new)).0 as usize;
            fronts[t].push(tent, ranks[i], c_new, progress[t]);
        }
    };
    for &c_base in suffix {
        let id = base.task_id(CompactId(c_base));
        if d.is_removed(id) {
            continue;
        }
        let c_new = map(c_base);
        debug_assert_ne!(c_new, u32::MAX, "unremoved base task must survive");
        let (rem, tent) = match d.pred_over(id) {
            Some(list) => split_list(list),
            None => schedule.pred_split(c_base as usize, cutoff),
        };
        seed(c_new, rem, tent);
    }
    for &v in d.new_ids() {
        if d.is_removed(v) {
            continue;
        }
        let c_new = patched
            .compact_of(v)
            .expect("inserted task is live in the patched graph")
            .0;
        let (rem, tent) = match d.pred_over(v) {
            Some(list) => split_list(list),
            None => (0, 0),
        };
        seed(c_new, rem, tent);
    }

    // --- Re-dispatch the cone through the shared loop. ---
    let mut global: BinaryHeap<Reverse<(u64, Rank, u32, u32)>> = BinaryHeap::new();
    for (t, front) in fronts.iter_mut().enumerate() {
        front.refresh(progress[t]);
        if let Some((f, r, id)) = front.best(progress[t]) {
            global.push(Reverse((f, r, id, t as u32)));
        }
    }
    let mut makespan = schedule.makespan_prefix[cut_idx];
    let done = dispatch_loop(
        patched,
        &ranks,
        &mut tentative,
        &mut preds,
        &mut start,
        &mut wait,
        &mut progress,
        &mut fronts,
        &mut global,
        &mut makespan,
    );
    if done != cone {
        return Err(GraphError::Cycle);
    }
    Ok(Ok(IncrementalOutcome {
        sim: CompiledSim {
            start_ns: start,
            wait_ns: wait,
            thread_end: progress,
            makespan_ns: makespan,
        },
        stats: IncrementalStats {
            redispatched: done,
            total: n_new,
            cutoff_ns: Some(cutoff),
            fallback: None,
        },
    }))
}

/// Earliest-dispatch lower bounds (and thread costs) for a patch's
/// inserted tasks: each can start no earlier than the finishes of its
/// base predecessors and the (bound + cost) of its inserted
/// predecessors, propagated in topological order over the inserted-only
/// subgraph. Tasks on a cycle (an invalid patch the full simulation will
/// reject) keep the conservative bound 0.
fn inserted_bounds(
    d: &crate::patch::NetDelta,
    base_cap: usize,
    base_fin: &dyn Fn(TaskId) -> u64,
) -> (Vec<u64>, Vec<u64>) {
    let new_ids = d.new_ids();
    let k = new_ids.len();
    let idx_of = |id: TaskId| new_ids.binary_search(&id).ok();
    let mut bound = vec![0u64; k];
    let mut indeg = vec![0u32; k];
    let mut cost = vec![0u64; k];
    for (i, &v) in new_ids.iter().enumerate() {
        let s = d.scalars(v).expect("inserted task has a slot");
        cost[i] = s.duration_ns.unwrap_or(0) + s.gap_ns.unwrap_or(0);
        if let Some(list) = d.pred_over(v) {
            for &(p, _) in list {
                if p.0 >= base_cap {
                    indeg[i] += 1;
                } else {
                    bound[i] = bound[i].max(base_fin(p));
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..k).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        if let Some(succs) = d.succ_over(new_ids[i]) {
            for &(s, _) in succs {
                if let Some(j) = idx_of(s) {
                    bound[j] = bound[j].max(bound[i] + cost[i]);
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        queue.push(j);
                    }
                }
            }
        }
    }
    for i in 0..k {
        if indeg[i] > 0 {
            bound[i] = 0;
        }
    }
    (bound, cost)
}

// ---------------------------------------------------------------------------
// Warm evaluation: epoch-stamped scratch arenas
// ---------------------------------------------------------------------------

/// Per-prefix-task bytes the cone path never writes: the `start`/`wait`
/// clone (16), zeroed `tentative` (8) / `preds` (4) / `ranks` (16), and
/// `apply_retime`'s `cost_ns`/`duration_ns` clones (16).
const WARM_BYTES_PER_PREFIX_TASK: u64 = 60;
/// Per-task bytes a no-op patch avoids cloning (the base [`CompiledSim`]
/// `start`/`wait` arrays).
const WARM_BYTES_PER_NOOP_TASK: u64 = 16;
/// Per-task bytes the overlay-backed full fallback avoids cloning
/// (`apply_retime`'s `cost_ns`/`duration_ns` arrays).
const WARM_BYTES_PER_APPLY_TASK: u64 = 16;

/// Copy-on-write retime overlay buffers: `stamp[c] == epoch` marks a
/// cone-task write; every other slot reads through to the base arrays.
/// "Resetting" the overlay is bumping the epoch — O(1), no clearing.
#[derive(Debug, Default)]
struct RetimeOverlay {
    stamp: Vec<u32>,
    cost: Vec<u64>,
    dur: Vec<u64>,
}

impl RetimeOverlay {
    /// Stamps `apply_retime`'s per-task cost/duration for every touched
    /// task — O(|patch| log V) instead of cloning two full arrays.
    fn build(&mut self, base: &CompiledGraph, d: &NetDelta, epoch: u32) {
        for &id in d.touched() {
            let s = d.scalars(id).expect("touched task has a slot");
            let c = base
                .compact_of(id)
                .expect("retimed task must be live in the base");
            let i = c.0 as usize;
            let dur = s.duration_ns.unwrap_or(base.duration_ns(c));
            let gap = s.gap_ns.unwrap_or(base.cost_ns(c) - base.duration_ns(c));
            self.stamp[i] = epoch;
            self.cost[i] = dur + gap;
            self.dur[i] = dur;
        }
    }

    fn view<'a>(&'a self, base: &'a CompiledGraph, epoch: u32) -> RetimeView<'a> {
        RetimeView {
            base,
            epoch,
            stamp: &self.stamp,
            cost: &self.cost,
            dur: &self.dur,
        }
    }
}

/// A retimed graph served straight off the base [`CompiledGraph`] plus
/// the epoch-stamped overlay: topology, threads, and ranks are the
/// base's by construction (warm eligibility rejects everything else),
/// so only `cost_ns`/`duration_ns` consult the overlay.
pub(crate) struct RetimeView<'a> {
    base: &'a CompiledGraph,
    epoch: u32,
    stamp: &'a [u32],
    cost: &'a [u64],
    dur: &'a [u64],
}

impl SimGraphView for RetimeView<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.base.len()
    }
    #[inline]
    fn thread_count(&self) -> usize {
        self.base.thread_count()
    }
    #[inline]
    fn cost_ns(&self, c: CompactId) -> u64 {
        let i = c.0 as usize;
        if self.stamp[i] == self.epoch {
            self.cost[i]
        } else {
            self.base.cost_ns(c)
        }
    }
    #[inline]
    fn duration_ns(&self, c: CompactId) -> u64 {
        let i = c.0 as usize;
        if self.stamp[i] == self.epoch {
            self.dur[i]
        } else {
            self.base.duration_ns(c)
        }
    }
    #[inline]
    fn thread_of(&self, c: CompactId) -> ThreadId {
        self.base.thread_of(c)
    }
    #[inline]
    fn successors(&self, c: CompactId) -> &[CompactId] {
        self.base.successors(c)
    }
    #[inline]
    fn pred_count(&self, c: CompactId) -> u32 {
        self.base.pred_count(c)
    }
}

/// The reusable per-simulation working arrays. Task-indexed slots carry
/// a generation stamp (`stamp[i] == epoch` ⇒ written this evaluation);
/// heaps retain their capacity across runs.
#[derive(Debug, Default)]
struct SimBufs {
    stamp: Vec<u32>,
    start: Vec<u64>,
    wait: Vec<u64>,
    tentative: Vec<u64>,
    preds: Vec<u32>,
    ranks: Vec<Rank>,
    progress: Vec<u64>,
    fronts: Vec<ThreadFrontier>,
    global: BinaryHeap<Reverse<(u64, Rank, u32, u32)>>,
}

impl SimBufs {
    /// Full simulation into the scratch buffers: every slot is written,
    /// so the whole range is stamped. `ranks_from` must rank identically
    /// to `view` — callers pass the simulated graph itself, or the base
    /// when retime eligibility guarantees rank equality.
    fn run_full<G: SimGraphView, O: FrontierOrder>(
        &mut self,
        view: &G,
        ranks_from: &CompiledGraph,
        order: &O,
        epoch: u32,
    ) -> Result<u64, GraphError> {
        let n = view.len();
        let t_count = view.thread_count();
        for i in 0..n {
            let c = CompactId(i as u32);
            self.stamp[i] = epoch;
            self.ranks[i] = order.rank(ranks_from, c);
            self.tentative[i] = 0;
            self.preds[i] = view.pred_count(c);
            self.start[i] = 0;
            self.wait[i] = 0;
        }
        self.progress[..t_count].fill(0);
        for i in 0..n {
            if self.preds[i] == 0 {
                let t = view.thread_of(CompactId(i as u32)).0 as usize;
                self.fronts[t].push(0, self.ranks[i], i as u32, 0);
            }
        }
        for (t, front) in self.fronts[..t_count].iter_mut().enumerate() {
            if let Some((f, r, id)) = front.best(0) {
                self.global.push(Reverse((f, r, id, t as u32)));
            }
        }
        let mut makespan = 0u64;
        let done = dispatch_loop(
            view,
            &self.ranks,
            &mut self.tentative,
            &mut self.preds,
            &mut self.start,
            &mut self.wait,
            &mut self.progress,
            &mut self.fronts,
            &mut self.global,
            &mut makespan,
        );
        if done != n {
            return Err(GraphError::Cycle);
        }
        Ok(makespan)
    }

    /// Seeds and re-dispatches the cone over `view`, stamping exactly
    /// the suffix tasks. Retime-only by contract: compaction is the
    /// identity and topology, threads, and ranks are the base's, so the
    /// loop provably never touches a prefix slot (every successor of a
    /// suffix task is itself a suffix task).
    #[allow(clippy::too_many_arguments)]
    fn run_retime_cone<G: SimGraphView, O: FrontierOrder>(
        &mut self,
        view: &G,
        base: &CompiledGraph,
        schedule: &Schedule,
        cutoff: u64,
        cut_idx: usize,
        order: &O,
        epoch: u32,
    ) -> Result<(usize, u64), GraphError> {
        let t_count = base.thread_count();
        for t in 0..t_count {
            self.progress[t] = schedule.progress_at(t, cutoff);
        }
        for &c in &schedule.by_start[cut_idx..] {
            let i = c as usize;
            let (rem, tent) = schedule.pred_split(i, cutoff);
            self.stamp[i] = epoch;
            self.preds[i] = rem;
            self.tentative[i] = tent;
            self.ranks[i] = order.rank(base, CompactId(c));
            if rem == 0 {
                let t = view.thread_of(CompactId(c)).0 as usize;
                self.fronts[t].push(tent, self.ranks[i], c, self.progress[t]);
            }
        }
        for (t, front) in self.fronts[..t_count].iter_mut().enumerate() {
            front.refresh(self.progress[t]);
            if let Some((f, r, id)) = front.best(self.progress[t]) {
                self.global.push(Reverse((f, r, id, t as u32)));
            }
        }
        let mut makespan = schedule.makespan_prefix[cut_idx];
        let done = dispatch_loop(
            view,
            &self.ranks,
            &mut self.tentative,
            &mut self.preds,
            &mut self.start,
            &mut self.wait,
            &mut self.progress,
            &mut self.fronts,
            &mut self.global,
            &mut makespan,
        );
        Ok((done, makespan))
    }
}

/// What the last [`simulate_warm_with`] call left in the arena — enough
/// for [`SimScratch::materialize`] to reconstruct the full
/// [`CompiledSim`] the classic path would have returned.
#[derive(Debug)]
enum WarmLast {
    /// Cone re-dispatch: stamped slots overlay the base schedule.
    Cone {
        n: usize,
        t_count: usize,
        makespan: u64,
    },
    /// Full dispatch into the buffers (fallback paths).
    Full {
        n: usize,
        t_count: usize,
        makespan: u64,
    },
    /// No simulation-relevant effect: the base schedule is the answer.
    Noop,
    /// A materialized simulation (structural patches still route through
    /// the classic incremental path).
    Ready(CompiledSim),
}

/// Monotonic reuse accounting of a scratch arena (or a whole
/// [`ScratchPool`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchCounters {
    /// Evaluations served without growing any buffer.
    pub reuses: u64,
    /// Evaluations that had to (re)size at least one buffer.
    pub allocs: u64,
    /// Bytes of per-task array copying the warm path skipped relative to
    /// the fresh-allocation path.
    pub bytes_copied_avoided: u64,
}

impl ScratchCounters {
    /// Component-wise sum.
    pub fn merged(self, other: ScratchCounters) -> ScratchCounters {
        ScratchCounters {
            reuses: self.reuses + other.reuses,
            allocs: self.allocs + other.allocs,
            bytes_copied_avoided: self.bytes_copied_avoided + other.bytes_copied_avoided,
        }
    }
}

/// A reusable simulation arena for [`simulate_warm_with`]: every per-sim
/// O(V) vector lives here as epoch-stamped slots sized once per compiled
/// base, so back-to-back warm evaluations allocate nothing and touch
/// only their cone. Invalidation is one epoch bump per evaluation; the
/// u32 generation counter wrapping around triggers a full stamp clear
/// (pinned by tests), so stale stamps can never alias a new epoch.
#[derive(Debug, Default)]
pub struct SimScratch {
    epoch: u32,
    ov: RetimeOverlay,
    bufs: SimBufs,
    last: Option<WarmLast>,
    reuses: u64,
    allocs: u64,
    bytes_copied_avoided: u64,
}

impl SimScratch {
    /// An empty arena; buffers grow on first use and are retained.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// Opens a new evaluation epoch and (re)sizes the buffers for a
    /// graph of `n` tasks on `t_count` threads. O(1) when the arena has
    /// already served a graph at least this large.
    fn begin(&mut self, n: usize, t_count: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrap: stamps written 2^32 evaluations ago could alias
            // the restarted epoch — clear both stamp arrays once.
            self.bufs.stamp.fill(0);
            self.ov.stamp.fill(0);
            self.epoch = 1;
        }
        let mut grew = false;
        if self.bufs.stamp.len() < n {
            // Fresh stamps are 0 == never-current (epochs start at 1).
            self.bufs.stamp.resize(n, 0);
            self.bufs.start.resize(n, 0);
            self.bufs.wait.resize(n, 0);
            self.bufs.tentative.resize(n, 0);
            self.bufs.preds.resize(n, 0);
            self.bufs.ranks.resize(n, (0, 0));
            self.ov.stamp.resize(n, 0);
            self.ov.cost.resize(n, 0);
            self.ov.dur.resize(n, 0);
            grew = true;
        }
        if self.bufs.fronts.len() < t_count {
            self.bufs
                .fronts
                .resize_with(t_count, ThreadFrontier::default);
            grew = true;
        }
        if self.bufs.progress.len() < t_count {
            self.bufs.progress.resize(t_count, 0);
        }
        for front in self.bufs.fronts[..t_count].iter_mut() {
            front.clear();
        }
        self.bufs.global.clear();
        self.last = None;
        if grew {
            self.allocs += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// Reconstructs the full [`CompiledSim`] of the last
    /// [`simulate_warm_with`] call — byte-identical to what the classic
    /// fresh-allocation path returns for the same patch (the oracle the
    /// equivalence proptests pin). `schedule` must be the one that
    /// evaluation ran against. `None` before any evaluation.
    pub fn materialize(&self, schedule: &Schedule) -> Option<CompiledSim> {
        match self.last.as_ref()? {
            WarmLast::Cone {
                n,
                t_count,
                makespan,
            } => {
                let mut start = schedule.sim.start_ns.clone();
                let mut wait = schedule.sim.wait_ns.clone();
                for i in 0..*n {
                    if self.bufs.stamp[i] == self.epoch {
                        start[i] = self.bufs.start[i];
                        wait[i] = self.bufs.wait[i];
                    }
                }
                Some(CompiledSim {
                    start_ns: start,
                    wait_ns: wait,
                    thread_end: self.bufs.progress[..*t_count].to_vec(),
                    makespan_ns: *makespan,
                })
            }
            WarmLast::Full {
                n,
                t_count,
                makespan,
            } => Some(CompiledSim {
                start_ns: self.bufs.start[..*n].to_vec(),
                wait_ns: self.bufs.wait[..*n].to_vec(),
                thread_end: self.bufs.progress[..*t_count].to_vec(),
                makespan_ns: *makespan,
            }),
            WarmLast::Noop => Some(schedule.sim.clone()),
            WarmLast::Ready(sim) => Some(sim.clone()),
        }
    }

    /// Reuse accounting since construction (or the last
    /// [`SimScratch::take_counters`]).
    pub fn counters(&self) -> ScratchCounters {
        ScratchCounters {
            reuses: self.reuses,
            allocs: self.allocs,
            bytes_copied_avoided: self.bytes_copied_avoided,
        }
    }

    /// Drains the counters to zero, returning the accumulated values —
    /// how [`ScratchPool::put`] folds a returned arena into pool totals.
    pub fn take_counters(&mut self) -> ScratchCounters {
        let c = self.counters();
        self.reuses = 0;
        self.allocs = 0;
        self.bytes_copied_avoided = 0;
        c
    }

    /// Test hook: forces the generation counter (exercising u32 wrap).
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// The current generation counter.
    #[doc(hidden)]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

/// A shared pool of [`SimScratch`] arenas: the sweep executor checks one
/// out per worker for the length of a batch, the serve daemon per
/// request, so arenas stay sized for the resident base across calls.
/// Counters from returned arenas accumulate into pool totals.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<SimScratch>>,
    reuses: AtomicU64,
    allocs: AtomicU64,
    bytes_copied_avoided: AtomicU64,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Checks out an arena — the most recently returned (warmest) one,
    /// or a fresh empty arena when the pool has run dry.
    pub fn take(&self) -> SimScratch {
        self.pool
            .lock()
            .expect("scratch pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns an arena to the pool, folding its counters into the pool
    /// totals and dropping any materialized result it still holds.
    pub fn put(&self, mut scratch: SimScratch) {
        let c = scratch.take_counters();
        self.reuses.fetch_add(c.reuses, Ordering::Relaxed);
        self.allocs.fetch_add(c.allocs, Ordering::Relaxed);
        self.bytes_copied_avoided
            .fetch_add(c.bytes_copied_avoided, Ordering::Relaxed);
        scratch.last = None;
        self.pool
            .lock()
            .expect("scratch pool lock poisoned")
            .push(scratch);
    }

    /// Accumulated counters over every returned arena.
    pub fn counters(&self) -> ScratchCounters {
        ScratchCounters {
            reuses: self.reuses.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes_copied_avoided: self.bytes_copied_avoided.load(Ordering::Relaxed),
        }
    }
}

/// Result of [`simulate_warm_with`]: the predicted makespan plus the
/// same work accounting the classic incremental path reports. The full
/// per-task simulation stays in the arena; call
/// [`SimScratch::materialize`] to expand it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmOutcome {
    /// End of the last task — the predicted iteration time.
    pub makespan_ns: u64,
    /// Which path ran and how much it re-dispatched.
    pub stats: IncrementalStats,
}

/// [`simulate_warm_with`] under the default earliest-start policy and
/// default options.
pub fn simulate_warm(
    base: &CompiledGraph,
    schedule: &Schedule,
    patch: &GraphPatch,
    scratch: &mut SimScratch,
) -> Result<WarmOutcome, GraphError> {
    simulate_warm_with(
        base,
        schedule,
        patch,
        scratch,
        &EarliestStart,
        &IncrementalOptions::default(),
    )
}

/// The allocation-free warm twin of [`simulate_incremental_with`]: the
/// same dispatch semantics (pinned byte-identical by the equivalence
/// proptests), but every per-sim O(V) buffer comes from `scratch` and a
/// retime patch never materializes an applied graph — `cost`/`duration`
/// reads go through a copy-on-write overlay on the base, and the replay
/// prefix is never copied at all. Warm cost is O(cone + |patch|), not
/// O(V):
///
/// * **retime-eligible** (no structural edit, no thread move, no
///   rank-relevant priority change, incremental-safe policy): the cone
///   is re-dispatched over [`RetimeView`]; a too-large cone falls back
///   to a *full* re-dispatch over the same view — still zero clones and
///   zero allocations warm (the satellite fix: fallback no longer pays
///   the incremental path's setup cost);
/// * **everything else** applies the patch for real and routes through
///   the classic incremental path, with `FallbackReason` exits running
///   the full simulation into the arena instead of allocating ~8 fresh
///   arrays.
///
/// # Panics
///
/// Panics if `schedule` was not captured over `base`, or `patch` was not
/// recorded against `base`'s arena.
pub fn simulate_warm_with<O: FrontierOrder>(
    base: &CompiledGraph,
    schedule: &Schedule,
    patch: &GraphPatch,
    scratch: &mut SimScratch,
    order: &O,
    opts: &IncrementalOptions,
) -> Result<WarmOutcome, GraphError> {
    assert_eq!(
        base.len(),
        schedule.len(),
        "schedule captured over a different base"
    );
    assert_eq!(
        base.arena_len(),
        patch.base_capacity(),
        "patch recorded against a different base arena"
    );
    let d = patch.delta();
    let n = base.len();
    let t_count = base.thread_count();

    // Warm eligibility mirrors apply_traced's retime arm plus rank
    // stability: with no structural edit, no real thread move, and no
    // rank-relevant priority change, the patched graph shares the base's
    // topology, thread interning, and ranks — only cost/duration differ,
    // which the overlay captures without an apply.
    let retime_eligible = order.incremental_safe()
        && !d.is_structural()
        && d.touched().iter().all(|&id| {
            let s = d.scalars(id).expect("touched task has a slot");
            let c = base
                .compact_of(id)
                .expect("retimed task must be live in the base");
            let thread_same = s
                .thread
                .is_none_or(|t| base.exec_thread(base.thread_of(c)) == t);
            let rank_stable =
                !order.rank_uses_priority() || s.priority.is_none_or(|p| p == base.priority(c));
            thread_same && rank_stable
        });

    if retime_eligible {
        let bound = cone_bound(base, schedule, patch, order);
        debug_assert_eq!(bound.n_new, n, "retime patch cannot change the live count");
        if bound.cutoff == u64::MAX {
            // No simulation-relevant effect. Unlike the classic path,
            // the base schedule is *referenced*, not cloned.
            scratch.last = Some(WarmLast::Noop);
            scratch.bytes_copied_avoided += n as u64 * WARM_BYTES_PER_NOOP_TASK;
            return Ok(WarmOutcome {
                makespan_ns: schedule.makespan_ns(),
                stats: IncrementalStats {
                    redispatched: 0,
                    total: n,
                    cutoff_ns: Some(u64::MAX),
                    fallback: None,
                },
            });
        }
        scratch.begin(n, t_count);
        scratch.ov.build(base, d, scratch.epoch);
        let view = scratch.ov.view(base, scratch.epoch);
        if bound.cone as f64 > opts.max_cone_fraction * n as f64 {
            // ConeTooLarge: re-dispatch everything, but over the overlay
            // view — no apply_retime clones, no fresh arrays.
            let makespan = scratch.bufs.run_full(&view, base, order, scratch.epoch)?;
            scratch.last = Some(WarmLast::Full {
                n,
                t_count,
                makespan,
            });
            scratch.bytes_copied_avoided += n as u64 * WARM_BYTES_PER_APPLY_TASK;
            return Ok(WarmOutcome {
                makespan_ns: makespan,
                stats: IncrementalStats {
                    redispatched: n,
                    total: n,
                    cutoff_ns: None,
                    fallback: Some(FallbackReason::ConeTooLarge),
                },
            });
        }
        let (done, makespan) = scratch.bufs.run_retime_cone(
            &view,
            base,
            schedule,
            bound.cutoff,
            bound.cut_idx,
            order,
            scratch.epoch,
        )?;
        if done != bound.cone {
            return Err(GraphError::Cycle);
        }
        scratch.last = Some(WarmLast::Cone {
            n,
            t_count,
            makespan,
        });
        scratch.bytes_copied_avoided += (n - bound.cone) as u64 * WARM_BYTES_PER_PREFIX_TASK;
        return Ok(WarmOutcome {
            makespan_ns: makespan,
            stats: IncrementalStats {
                redispatched: done,
                total: n,
                cutoff_ns: Some(bound.cutoff),
                fallback: None,
            },
        });
    }

    // Materializing paths: the patch needs a real apply (structural edit,
    // thread move, rank-relevant priority) or the policy is unsafe.
    let (applied, trace) = base.apply_traced(patch);
    let full_into_scratch =
        |scratch: &mut SimScratch, reason: FallbackReason| -> Result<WarmOutcome, GraphError> {
            let (n_new, t_new) = (applied.len(), applied.thread_count());
            scratch.begin(n_new, t_new);
            let makespan = scratch
                .bufs
                .run_full(&applied, &applied, order, scratch.epoch)?;
            scratch.last = Some(WarmLast::Full {
                n: n_new,
                t_count: t_new,
                makespan,
            });
            Ok(WarmOutcome {
                makespan_ns: makespan,
                stats: IncrementalStats {
                    redispatched: n_new,
                    total: n_new,
                    cutoff_ns: None,
                    fallback: Some(reason),
                },
            })
        };
    if !order.incremental_safe() {
        return full_into_scratch(scratch, FallbackReason::PolicyUnsafe);
    }
    match try_simulate_incremental_with(base, schedule, &applied, patch, &trace, order, opts)? {
        Ok(outcome) => {
            let makespan = outcome.sim.makespan_ns;
            let stats = outcome.stats;
            scratch.last = Some(WarmLast::Ready(outcome.sim));
            Ok(WarmOutcome {
                makespan_ns: makespan,
                stats,
            })
        }
        Err(reason) => full_into_scratch(scratch, reason),
    }
}

// ---------------------------------------------------------------------------
// Reference implementation (the oracle)
// ---------------------------------------------------------------------------

/// A frontier entry of the reference loop: a ready task and its earliest
/// feasible start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The ready task.
    pub task: TaskId,
    /// `max(thread progress, dependency-induced start)`.
    pub feasible_start: u64,
}

/// Scheduling policy of the reference loop: picks the next frontier task.
///
/// Retained for the oracle only — the hot path's policies implement
/// [`FrontierOrder`] instead.
pub trait Scheduler {
    /// Returns the index into `frontier` of the task to execute next.
    ///
    /// `frontier` is never empty when called.
    fn pick(&mut self, frontier: &[Candidate], graph: &DependencyGraph) -> usize;
}

impl Scheduler for EarliestStart {
    fn pick(&mut self, frontier: &[Candidate], _graph: &DependencyGraph) -> usize {
        let mut best = 0usize;
        for (i, c) in frontier.iter().enumerate().skip(1) {
            let b = &frontier[best];
            if (c.feasible_start, c.task.0) < (b.feasible_start, b.task.0) {
                best = i;
            }
        }
        best
    }
}

/// Simulates with the original quadratic loop and the default policy —
/// the equivalence oracle for [`simulate`] and the `sim_scale` baseline.
pub fn simulate_reference(graph: &DependencyGraph) -> Result<SimResult, GraphError> {
    simulate_with_reference(graph, &mut EarliestStart)
}

/// The original refresh-everything simulation loop: on every dispatch the
/// feasible start of the *entire* frontier is recomputed against thread
/// progress (a `BTreeMap` lookup per candidate) and the scheduler
/// linear-scans it. O(V · frontier) — kept as the test oracle.
pub fn simulate_with_reference<S: Scheduler>(
    graph: &DependencyGraph,
    scheduler: &mut S,
) -> Result<SimResult, GraphError> {
    let n = graph.capacity();
    let mut refs: Vec<usize> = vec![0; n];
    let mut tentative: Vec<u64> = vec![0; n];
    let mut start: Vec<Option<u64>> = vec![None; n];
    let mut wait: Vec<u64> = vec![0; n];
    let mut progress: BTreeMap<ExecThread, u64> = BTreeMap::new();

    let mut live = 0usize;
    let mut frontier: Vec<Candidate> = Vec::new();
    for (id, t) in graph.iter() {
        live += 1;
        refs[id.0] = graph.predecessors(id).len();
        progress.entry(t.thread).or_insert(0);
        if refs[id.0] == 0 {
            frontier.push(Candidate {
                task: id,
                feasible_start: 0,
            });
        }
    }

    let mut done = 0usize;
    let mut makespan = 0u64;
    while !frontier.is_empty() {
        // Refresh feasible starts against current thread progress.
        for c in frontier.iter_mut() {
            let t = graph.task(c.task);
            let p = progress[&t.thread];
            c.feasible_start = p.max(tentative[c.task.0]);
        }
        let idx = scheduler.pick(&frontier, graph);
        let c = frontier.swap_remove(idx);
        let u = c.task;
        let task = graph.task(u);
        let p = progress[&task.thread];
        let s = p.max(tentative[u.0]);
        start[u.0] = Some(s);
        wait[u.0] = s.saturating_sub(p);
        let fin = s + task.duration_ns + task.gap_ns;
        progress.insert(task.thread, fin);
        makespan = makespan.max(s + task.duration_ns);
        done += 1;

        for &(child, _) in graph.successors(u) {
            tentative[child.0] = tentative[child.0].max(fin);
            refs[child.0] -= 1;
            if refs[child.0] == 0 {
                frontier.push(Candidate {
                    task: child,
                    feasible_start: tentative[child.0],
                });
            }
        }
    }

    if done != live {
        return Err(GraphError::Cycle);
    }
    Ok(SimResult {
        start_ns: start,
        makespan_ns: makespan,
        thread_end: progress,
        wait_ns: wait,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::task::{Task, TaskKind};
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu(dur: u64, gap: u64) -> Task {
        let mut t = Task::new("c", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), dur);
        t.gap_ns = gap;
        t
    }

    fn gpu(dur: u64) -> Task {
        Task::new(
            "g",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            dur,
        )
    }

    /// Runs both simulators and asserts they agree before returning the
    /// fast path's result.
    fn simulate_checked(g: &DependencyGraph) -> Result<SimResult, GraphError> {
        let fast = simulate(g);
        let oracle = simulate_reference(g);
        assert_eq!(fast, oracle, "heap simulator diverged from the oracle");
        fast
    }

    #[test]
    fn chain_with_gaps() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 5));
        let b = g.add_task(cpu(20, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.start_of(a), 0);
        // b starts after a's duration + gap (Algorithm 1 line 13/16).
        assert_eq!(r.start_of(b), 15);
        assert_eq!(r.makespan_ns, 35);
    }

    #[test]
    fn cross_thread_dependency() {
        let mut g = DependencyGraph::new();
        let launch = g.add_task(cpu(10, 0));
        let k = g.add_task(gpu(100));
        let sync = g.add_task(cpu(0, 0));
        g.add_dep(launch, k, DepKind::Correlation);
        g.add_dep(launch, sync, DepKind::CpuSeq);
        g.add_dep(k, sync, DepKind::Sync);
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.start_of(k), 10);
        assert_eq!(r.start_of(sync), 110);
        assert_eq!(r.wait_ns[sync.0], 100, "the CPU waited for the kernel");
        assert_eq!(r.makespan_ns, 110);
    }

    #[test]
    fn parallel_threads_overlap() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(50, 0));
        let b = g.add_task(gpu(50));
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.start_of(a), 0);
        assert_eq!(r.start_of(b), 0);
        assert_eq!(r.makespan_ns, 50, "independent threads run in parallel");
    }

    #[test]
    fn diamond_dependencies() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(gpu(30));
        let mut c2 = gpu(20);
        c2.thread = ExecThread::Gpu(DeviceId(0), StreamId(1));
        let c = g.add_task(c2);
        let d = g.add_task(cpu(5, 0));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(a, c, DepKind::Correlation);
        g.add_dep(b, d, DepKind::Sync);
        g.add_dep(c, d, DepKind::Sync);
        let r = simulate_checked(&g).unwrap();
        // d waits for the slower branch.
        assert_eq!(r.start_of(d), 40);
        assert_eq!(r.makespan_ns, 45);
    }

    #[test]
    fn removed_tasks_are_skipped() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(cpu(1000, 0));
        let c = g.add_task(cpu(10, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, c, DepKind::CpuSeq);
        g.remove_task(b);
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.makespan_ns, 20);
        assert!(r.start_ns[b.0].is_none());
    }

    /// Graham's scheduling anomaly: removing work CAN increase the
    /// makespan of a greedy list scheduler. Here `x` delays `a` past `b`,
    /// so the critical `b -> c` chain starts first on thread 0; removing
    /// `x` makes `a` dispatchable at t=0 (earlier id wins the tie) and
    /// pushes the critical chain back by 50.
    #[test]
    fn removal_can_increase_makespan_graham_anomaly() {
        let t1 = ExecThread::Cpu(CpuThreadId(0));
        let t2 = ExecThread::Gpu(DeviceId(0), StreamId(0));
        let mut g = DependencyGraph::new();
        let x = g.add_task(Task::new("x", TaskKind::GpuKernel, t2, 5));
        let a = g.add_task(Task::new("a", TaskKind::CpuWork, t1, 50));
        let b = g.add_task(Task::new("b", TaskKind::CpuWork, t1, 10));
        let c = g.add_task(Task::new("c", TaskKind::GpuKernel, t2, 100));
        g.add_dep(x, a, DepKind::Transform);
        g.add_dep(b, c, DepKind::Transform);
        let before = simulate_checked(&g).unwrap().makespan_ns;
        g.remove_task(x);
        let after = simulate_checked(&g).unwrap().makespan_ns;
        assert_eq!(before, 110);
        assert_eq!(after, 160, "anomaly: less work, later finish");
    }

    #[test]
    fn cycle_reported() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(cpu(10, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, a, DepKind::Transform);
        assert_eq!(simulate(&g), Err(GraphError::Cycle));
        assert_eq!(simulate_reference(&g), Err(GraphError::Cycle));
    }

    #[test]
    fn starts_respect_thread_serialization() {
        let mut g = DependencyGraph::new();
        let ids: Vec<_> = (0..10).map(|i| g.add_task(cpu(10 + i, 2))).collect();
        // No explicit deps: same thread still serializes.
        let r = simulate_checked(&g).unwrap();
        let mut intervals: Vec<(u64, u64)> = ids
            .iter()
            .map(|&id| (r.start_of(id), r.start_of(id) + g.task(id).duration_ns))
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "thread tasks must not overlap");
        }
    }

    #[test]
    fn empty_graph_simulates_to_zero() {
        let g = DependencyGraph::new();
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.makespan_ns, 0);
        assert!(r.thread_end.is_empty());
    }

    /// Warm evaluation against the classic fresh-allocation oracle on a
    /// single arena across every path: cone, no-op, forced full
    /// fallback, and a structural patch.
    #[test]
    fn warm_paths_match_the_classic_oracle() {
        use crate::graph::GraphEdit;
        use crate::patch::PatchGraph;
        let mut g = DependencyGraph::new();
        let ids: Vec<_> = (0..12).map(|i| g.add_task(cpu(10 + i, 1))).collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1], DepKind::CpuSeq);
        }
        let cg = CompiledGraph::compile(&g);
        let schedule = Schedule::capture(&cg).unwrap();
        let mut scratch = SimScratch::new();

        let check = |patch: &GraphPatch, opts: &IncrementalOptions, scratch: &mut SimScratch| {
            let warm = simulate_warm_with(&cg, &schedule, patch, scratch, &EarliestStart, opts)
                .expect("patched graph must stay a DAG");
            let (applied, trace) = cg.apply_traced(patch);
            let oracle = simulate_incremental_with(
                &cg,
                &schedule,
                &applied,
                patch,
                &trace,
                &EarliestStart,
                opts,
            )
            .expect("patched graph must stay a DAG");
            assert_eq!(warm.makespan_ns, oracle.sim.makespan_ns);
            assert_eq!(warm.stats, oracle.stats, "path accounting diverged");
            assert_eq!(
                scratch.materialize(&schedule).unwrap(),
                oracle.sim,
                "warm arena diverged from the fresh-allocation oracle"
            );
        };

        // Cone re-dispatch.
        let mut p = PatchGraph::new(&g);
        p.set_duration(ids[8], 500);
        check(&p.finish(), &IncrementalOptions::default(), &mut scratch);
        // No-op under a priority-blind policy.
        let mut p = PatchGraph::new(&g);
        p.set_priority(ids[3], 7);
        check(&p.finish(), &IncrementalOptions::default(), &mut scratch);
        // Forced full fallback stays on the overlay (no apply).
        let mut p = PatchGraph::new(&g);
        p.set_duration(ids[2], 900);
        check(
            &p.finish(),
            &IncrementalOptions {
                max_cone_fraction: 0.0,
            },
            &mut scratch,
        );
        // Structural patch routes through the classic incremental path.
        let mut p = PatchGraph::new(&g);
        let extra = p.add_task(cpu(40, 0));
        p.add_dep(ids[10], extra, DepKind::Transform);
        check(&p.finish(), &IncrementalOptions::default(), &mut scratch);
        // Back-to-back cone on the same arena: stale stamps must not leak.
        let mut p = PatchGraph::new(&g);
        p.set_duration(ids[4], 123);
        check(&p.finish(), &IncrementalOptions::default(), &mut scratch);

        let c = scratch.counters();
        assert!(c.reuses >= 2, "warm arena must be reused across evals");
        assert!(c.bytes_copied_avoided > 0);
    }

    /// Epoch overflow (u32 wrap) must reset the stamp arrays cleanly:
    /// evaluations across the wrap stay byte-identical to the oracle and
    /// the counter restarts at 1.
    #[test]
    fn epoch_wrap_resets_cleanly() {
        use crate::graph::GraphEdit;
        use crate::patch::PatchGraph;
        let mut g = DependencyGraph::new();
        let ids: Vec<_> = (0..8).map(|i| g.add_task(cpu(10 + i, 1))).collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1], DepKind::CpuSeq);
        }
        let cg = CompiledGraph::compile(&g);
        let schedule = Schedule::capture(&cg).unwrap();
        let mut scratch = SimScratch::new();

        let mk = |target: usize, ns: u64| {
            let mut p = PatchGraph::new(&g);
            p.set_duration(ids[target], ns);
            p.finish()
        };
        // Size the arena, then park the counter just below the wrap.
        simulate_warm(&cg, &schedule, &mk(5, 500), &mut scratch).unwrap();
        scratch.force_epoch(u32::MAX - 1);
        // Epochs u32::MAX, then wrap -> 1, then 2 — different cones each
        // time so a stale stamp surviving the wrap would corrupt output.
        for (target, ns) in [(5usize, 600u64), (2, 700), (6, 800)] {
            let patch = mk(target, ns);
            let warm = simulate_warm(&cg, &schedule, &patch, &mut scratch).unwrap();
            let (applied, trace) = cg.apply_traced(&patch);
            let oracle = simulate_incremental(&cg, &schedule, &applied, &patch, &trace).unwrap();
            assert_eq!(warm.makespan_ns, oracle.sim.makespan_ns);
            assert_eq!(scratch.materialize(&schedule).unwrap(), oracle.sim);
        }
        assert_eq!(scratch.epoch(), 2, "wrap must restart the counter at 1");
    }

    /// A wide comm channel frontier — the shape that made the reference
    /// loop quadratic — still dispatches in id order at equal feasibility.
    #[test]
    fn wide_frontier_dispatches_in_id_order() {
        let mut g = DependencyGraph::new();
        let chan = ExecThread::Comm(crate::task::CommChannel::Collective);
        let ids: Vec<TaskId> = (0..50)
            .map(|_| g.add_task(Task::new("m", TaskKind::CpuWork, chan, 7)))
            .collect();
        let r = simulate_checked(&g).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(r.start_of(id), 7 * i as u64);
        }
    }
}
