//! Runtime simulation (paper Algorithm 1, Phase 4).
//!
//! Traverses the dependency graph, dispatching each ready task to its
//! execution thread and advancing per-thread progress by `duration + gap`.
//! The scheduling policy is pluggable (paper §4.4 "Schedule" primitive):
//! the default picks the frontier task with the earliest feasible start;
//! P3 and vDNN override it.

use crate::graph::{DependencyGraph, GraphError, TaskId};
use crate::task::ExecThread;
use std::collections::BTreeMap;

/// A frontier entry: a ready task and its earliest feasible start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The ready task.
    pub task: TaskId,
    /// `max(thread progress, dependency-induced start)`.
    pub feasible_start: u64,
}

/// Scheduling policy: picks the next frontier task to dispatch.
pub trait Scheduler {
    /// Returns the index into `frontier` of the task to execute next.
    ///
    /// `frontier` is never empty when called.
    fn pick(&mut self, frontier: &[Candidate], graph: &DependencyGraph) -> usize;
}

/// The default policy: earliest feasible start, ties broken by task id
/// (paper: "picks the task with the earliest start").
#[derive(Debug, Default, Clone, Copy)]
pub struct EarliestStart;

impl Scheduler for EarliestStart {
    fn pick(&mut self, frontier: &[Candidate], _graph: &DependencyGraph) -> usize {
        let mut best = 0usize;
        for (i, c) in frontier.iter().enumerate().skip(1) {
            let b = &frontier[best];
            if (c.feasible_start, c.task.0) < (b.feasible_start, b.task.0) {
                best = i;
            }
        }
        best
    }
}

/// Output of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Simulated start time of each task (`None` for removed tasks).
    pub start_ns: Vec<Option<u64>>,
    /// End of the last task — the predicted iteration time.
    pub makespan_ns: u64,
    /// Final progress of each execution thread.
    pub thread_end: BTreeMap<ExecThread, u64>,
    /// Per-task wait between thread availability and actual start (time the
    /// thread sat idle before the task, e.g. a CPU blocked on the GPU).
    pub wait_ns: Vec<u64>,
}

impl SimResult {
    /// Predicted iteration time in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }

    /// Simulated start of one task.
    ///
    /// # Panics
    ///
    /// Panics if the task was removed from the graph before simulation.
    pub fn start_of(&self, id: TaskId) -> u64 {
        self.start_ns[id.0].expect("task was removed before simulation")
    }
}

/// Simulates the graph with the default earliest-start policy.
pub fn simulate(graph: &DependencyGraph) -> Result<SimResult, GraphError> {
    simulate_with(graph, &mut EarliestStart)
}

/// Simulates the graph with a custom scheduling policy (Algorithm 1).
pub fn simulate_with<S: Scheduler>(
    graph: &DependencyGraph,
    scheduler: &mut S,
) -> Result<SimResult, GraphError> {
    let n = graph.capacity();
    let mut refs: Vec<usize> = vec![0; n];
    let mut tentative: Vec<u64> = vec![0; n];
    let mut start: Vec<Option<u64>> = vec![None; n];
    let mut wait: Vec<u64> = vec![0; n];
    let mut progress: BTreeMap<ExecThread, u64> = BTreeMap::new();

    let mut live = 0usize;
    let mut frontier: Vec<Candidate> = Vec::new();
    for (id, t) in graph.iter() {
        live += 1;
        refs[id.0] = graph.predecessors(id).len();
        progress.entry(t.thread).or_insert(0);
        if refs[id.0] == 0 {
            frontier.push(Candidate {
                task: id,
                feasible_start: 0,
            });
        }
    }

    let mut done = 0usize;
    let mut makespan = 0u64;
    while !frontier.is_empty() {
        // Refresh feasible starts against current thread progress.
        for c in frontier.iter_mut() {
            let t = graph.task(c.task);
            let p = progress[&t.thread];
            c.feasible_start = p.max(tentative[c.task.0]);
        }
        let idx = scheduler.pick(&frontier, graph);
        let c = frontier.swap_remove(idx);
        let u = c.task;
        let task = graph.task(u);
        let p = progress[&task.thread];
        let s = p.max(tentative[u.0]);
        start[u.0] = Some(s);
        wait[u.0] = s.saturating_sub(p);
        let fin = s + task.duration_ns + task.gap_ns;
        progress.insert(task.thread, fin);
        makespan = makespan.max(s + task.duration_ns);
        done += 1;

        for &(child, _) in graph.successors(u) {
            tentative[child.0] = tentative[child.0].max(fin);
            refs[child.0] -= 1;
            if refs[child.0] == 0 {
                frontier.push(Candidate {
                    task: child,
                    feasible_start: tentative[child.0],
                });
            }
        }
    }

    if done != live {
        return Err(GraphError::Cycle);
    }
    Ok(SimResult {
        start_ns: start,
        makespan_ns: makespan,
        thread_end: progress,
        wait_ns: wait,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::task::{Task, TaskKind};
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu(dur: u64, gap: u64) -> Task {
        let mut t = Task::new("c", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), dur);
        t.gap_ns = gap;
        t
    }

    fn gpu(dur: u64) -> Task {
        Task::new(
            "g",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            dur,
        )
    }

    #[test]
    fn chain_with_gaps() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 5));
        let b = g.add_task(cpu(20, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        let r = simulate(&g).unwrap();
        assert_eq!(r.start_of(a), 0);
        // b starts after a's duration + gap (Algorithm 1 line 13/16).
        assert_eq!(r.start_of(b), 15);
        assert_eq!(r.makespan_ns, 35);
    }

    #[test]
    fn cross_thread_dependency() {
        let mut g = DependencyGraph::new();
        let launch = g.add_task(cpu(10, 0));
        let k = g.add_task(gpu(100));
        let sync = g.add_task(cpu(0, 0));
        g.add_dep(launch, k, DepKind::Correlation);
        g.add_dep(launch, sync, DepKind::CpuSeq);
        g.add_dep(k, sync, DepKind::Sync);
        let r = simulate(&g).unwrap();
        assert_eq!(r.start_of(k), 10);
        assert_eq!(r.start_of(sync), 110);
        assert_eq!(r.wait_ns[sync.0], 100, "the CPU waited for the kernel");
        assert_eq!(r.makespan_ns, 110);
    }

    #[test]
    fn parallel_threads_overlap() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(50, 0));
        let b = g.add_task(gpu(50));
        let r = simulate(&g).unwrap();
        assert_eq!(r.start_of(a), 0);
        assert_eq!(r.start_of(b), 0);
        assert_eq!(r.makespan_ns, 50, "independent threads run in parallel");
    }

    #[test]
    fn diamond_dependencies() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(gpu(30));
        let mut c2 = gpu(20);
        c2.thread = ExecThread::Gpu(DeviceId(0), StreamId(1));
        let c = g.add_task(c2);
        let d = g.add_task(cpu(5, 0));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(a, c, DepKind::Correlation);
        g.add_dep(b, d, DepKind::Sync);
        g.add_dep(c, d, DepKind::Sync);
        let r = simulate(&g).unwrap();
        // d waits for the slower branch.
        assert_eq!(r.start_of(d), 40);
        assert_eq!(r.makespan_ns, 45);
    }

    #[test]
    fn removed_tasks_are_skipped() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(cpu(1000, 0));
        let c = g.add_task(cpu(10, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, c, DepKind::CpuSeq);
        g.remove_task(b);
        let r = simulate(&g).unwrap();
        assert_eq!(r.makespan_ns, 20);
        assert!(r.start_ns[b.0].is_none());
    }

    /// Graham's scheduling anomaly: removing work CAN increase the
    /// makespan of a greedy list scheduler. Here `x` delays `a` past `b`,
    /// so the critical `b -> c` chain starts first on thread 0; removing
    /// `x` makes `a` dispatchable at t=0 (earlier id wins the tie) and
    /// pushes the critical chain back by 50.
    #[test]
    fn removal_can_increase_makespan_graham_anomaly() {
        let t1 = ExecThread::Cpu(CpuThreadId(0));
        let t2 = ExecThread::Gpu(DeviceId(0), StreamId(0));
        let mut g = DependencyGraph::new();
        let x = g.add_task(Task::new("x", TaskKind::GpuKernel, t2, 5));
        let a = g.add_task(Task::new("a", TaskKind::CpuWork, t1, 50));
        let b = g.add_task(Task::new("b", TaskKind::CpuWork, t1, 10));
        let c = g.add_task(Task::new("c", TaskKind::GpuKernel, t2, 100));
        g.add_dep(x, a, DepKind::Transform);
        g.add_dep(b, c, DepKind::Transform);
        let before = simulate(&g).unwrap().makespan_ns;
        g.remove_task(x);
        let after = simulate(&g).unwrap().makespan_ns;
        assert_eq!(before, 110);
        assert_eq!(after, 160, "anomaly: less work, later finish");
    }

    #[test]
    fn cycle_reported() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(cpu(10, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, a, DepKind::Transform);
        assert_eq!(simulate(&g), Err(GraphError::Cycle));
    }

    #[test]
    fn starts_respect_thread_serialization() {
        let mut g = DependencyGraph::new();
        let ids: Vec<_> = (0..10).map(|i| g.add_task(cpu(10 + i, 2))).collect();
        // No explicit deps: same thread still serializes.
        let r = simulate(&g).unwrap();
        let mut intervals: Vec<(u64, u64)> = ids
            .iter()
            .map(|&id| (r.start_of(id), r.start_of(id) + g.task(id).duration_ns))
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "thread tasks must not overlap");
        }
    }
}
