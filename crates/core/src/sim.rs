//! Runtime simulation (paper Algorithm 1, Phase 4).
//!
//! Traverses the dependency graph, dispatching each ready task to its
//! execution thread and advancing per-thread progress by `duration + gap`.
//! The scheduling policy is pluggable (paper §4.4 "Schedule" primitive):
//! the default picks the frontier task with the earliest feasible start;
//! P3 overrides the tie-break on communication channels.
//!
//! # The hot path
//!
//! [`simulate`] freezes the graph into a [`CompiledGraph`] and runs a
//! heap-based frontier in O((V+E) log V):
//!
//! * each execution thread keeps a **two-tier frontier**: a `pending`
//!   min-heap ordered by `(tentative_start, rank)` for tasks whose
//!   dependency-induced start is still ahead of the thread's progress, and
//!   a `ready` min-heap ordered by `rank` alone for tasks the thread could
//!   start immediately. When progress advances, pending entries whose
//!   tentative start has been overtaken migrate to `ready` (each task
//!   migrates at most once);
//! * a **global lazy heap** holds the best `(feasible_start, rank)`
//!   candidate per thread; stale entries are discarded on pop by
//!   revalidating against the thread's current best.
//!
//! This dispatches exactly the same task sequence as the quadratic
//! reference loop ([`simulate_reference`]), which refreshes every frontier
//! candidate against thread progress on each step and linear-scans for the
//! minimum: within one thread all ready candidates share the thread's
//! progress as feasible start (ordered by rank), pending candidates are
//! ordered by their fixed tentative starts, and the cross-thread minimum
//! is the global one. The reference loop is retained as the oracle for the
//! equivalence proptests and the `sim_scale` benchmark.

use crate::compiled::{CompactId, CompiledGraph, ThreadId};
use crate::graph::{DependencyGraph, GraphError, TaskId};
use crate::task::ExecThread;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Secondary dispatch key: breaks ties among candidates feasible at the
/// same instant. Lower ranks dispatch first; ranks must be fixed per task
/// for the whole simulation.
pub type Rank = (u64, u64);

/// Scheduling policy over the compiled frontier (paper §4.4 "Schedule").
///
/// The frontier always dispatches the candidate with the smallest
/// `(feasible_start, rank)` pair; a policy only chooses the rank. The
/// default [`EarliestStart`] ranks by task id, reproducing Algorithm 1's
/// "earliest start, ties by id" exactly; P3 ranks communication tasks by
/// priority.
pub trait FrontierOrder {
    /// The tie-break rank of `task`.
    fn rank(&self, graph: &CompiledGraph, task: CompactId) -> Rank;
}

/// The default policy: earliest feasible start, ties broken by task id
/// (paper: "picks the task with the earliest start").
#[derive(Debug, Default, Clone, Copy)]
pub struct EarliestStart;

impl FrontierOrder for EarliestStart {
    fn rank(&self, _graph: &CompiledGraph, task: CompactId) -> Rank {
        // Compact ids ascend with TaskIds, so this is the reference
        // tie-break.
        (task.0 as u64, 0)
    }
}

/// Output of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Simulated start time of each task (`None` for removed tasks).
    pub start_ns: Vec<Option<u64>>,
    /// End of the last task — the predicted iteration time.
    pub makespan_ns: u64,
    /// Final progress of each execution thread.
    pub thread_end: BTreeMap<ExecThread, u64>,
    /// Per-task wait between thread availability and actual start (time the
    /// thread sat idle before the task, e.g. a CPU blocked on the GPU).
    pub wait_ns: Vec<u64>,
}

impl SimResult {
    /// Predicted iteration time in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }

    /// Simulated start of one task.
    ///
    /// # Panics
    ///
    /// Panics if the task was removed from the graph before simulation.
    pub fn start_of(&self, id: TaskId) -> u64 {
        self.start_ns[id.0].expect("task was removed before simulation")
    }
}

/// Dense simulation output over a [`CompiledGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSim {
    /// Start time per compact task.
    pub start_ns: Vec<u64>,
    /// Idle wait per compact task.
    pub wait_ns: Vec<u64>,
    /// Final progress per interned thread.
    pub thread_end: Vec<u64>,
    /// End of the last task.
    pub makespan_ns: u64,
}

impl CompiledSim {
    /// Expands dense results back to arena-indexed [`SimResult`] form.
    pub fn into_sim_result(self, graph: &CompiledGraph) -> SimResult {
        let mut start = vec![None; graph.arena_len()];
        let mut wait = vec![0u64; graph.arena_len()];
        for i in 0..self.start_ns.len() {
            let c = CompactId(i as u32);
            let id = graph.task_id(c);
            start[id.0] = Some(self.start_ns[i]);
            wait[id.0] = self.wait_ns[i];
        }
        let thread_end = self
            .thread_end
            .iter()
            .enumerate()
            .map(|(t, &end)| (graph.exec_thread(ThreadId(t as u32)), end))
            .collect();
        SimResult {
            start_ns: start,
            makespan_ns: self.makespan_ns,
            thread_end,
            wait_ns: wait,
        }
    }
}

/// One execution thread's frontier: `ready` holds tasks startable at the
/// thread's current progress (ordered by rank), `pending` holds tasks
/// whose dependency-induced start is still in the thread's future
/// (ordered by that start, then rank).
#[derive(Debug, Default)]
struct ThreadFrontier {
    pending: BinaryHeap<Reverse<(u64, Rank, u32)>>,
    ready: BinaryHeap<Reverse<(Rank, u32)>>,
}

impl ThreadFrontier {
    /// Migrates pending tasks overtaken by `progress` into the ready tier.
    #[inline]
    fn refresh(&mut self, progress: u64) {
        while let Some(&Reverse((t, rank, id))) = self.pending.peek() {
            if t > progress {
                break;
            }
            self.pending.pop();
            self.ready.push(Reverse((rank, id)));
        }
    }

    /// The thread's best candidate as `(feasible_start, rank, task)`.
    /// Call [`ThreadFrontier::refresh`] first.
    #[inline]
    fn best(&self, progress: u64) -> Option<(u64, Rank, u32)> {
        if let Some(&Reverse((rank, id))) = self.ready.peek() {
            return Some((progress, rank, id));
        }
        self.pending
            .peek()
            .map(|&Reverse((t, rank, id))| (t, rank, id))
    }

    /// Inserts a newly dispatchable task.
    #[inline]
    fn push(&mut self, tentative: u64, rank: Rank, task: u32, progress: u64) {
        if tentative <= progress {
            self.ready.push(Reverse((rank, task)));
        } else {
            self.pending.push(Reverse((tentative, rank, task)));
        }
    }

    /// Removes the current best (after [`ThreadFrontier::refresh`]).
    #[inline]
    fn pop_best(&mut self) {
        if self.ready.pop().is_none() {
            self.pending.pop();
        }
    }
}

/// Simulates the graph with the default earliest-start policy.
pub fn simulate(graph: &DependencyGraph) -> Result<SimResult, GraphError> {
    simulate_with(graph, &EarliestStart)
}

/// Simulates the graph with a custom frontier policy (Algorithm 1).
pub fn simulate_with<O: FrontierOrder>(
    graph: &DependencyGraph,
    order: &O,
) -> Result<SimResult, GraphError> {
    let cg = CompiledGraph::compile(graph);
    Ok(simulate_compiled_with(&cg, order)?.into_sim_result(&cg))
}

/// Simulates a compiled graph with the default policy.
pub fn simulate_compiled(graph: &CompiledGraph) -> Result<CompiledSim, GraphError> {
    simulate_compiled_with(graph, &EarliestStart)
}

/// Simulates a compiled graph: the O((V+E) log V) hot path.
pub fn simulate_compiled_with<O: FrontierOrder>(
    cg: &CompiledGraph,
    order: &O,
) -> Result<CompiledSim, GraphError> {
    let n = cg.len();
    let t_count = cg.thread_count();
    let ranks: Vec<Rank> = (0..n)
        .map(|i| order.rank(cg, CompactId(i as u32)))
        .collect();

    let mut tentative = vec![0u64; n];
    let mut preds = cg.pred_counts();
    let mut start = vec![0u64; n];
    let mut wait = vec![0u64; n];
    let mut progress = vec![0u64; t_count];
    let mut fronts: Vec<ThreadFrontier> = (0..t_count).map(|_| ThreadFrontier::default()).collect();

    // Global lazy heap over per-thread bests: (feasible, rank, task, thread).
    let mut global: BinaryHeap<Reverse<(u64, Rank, u32, u32)>> = BinaryHeap::new();

    for i in 0..n {
        if preds[i] == 0 {
            let t = cg.thread_of(CompactId(i as u32)).0 as usize;
            fronts[t].push(0, ranks[i], i as u32, 0);
        }
    }
    for (t, front) in fronts.iter_mut().enumerate() {
        if let Some((f, r, id)) = front.best(0) {
            global.push(Reverse((f, r, id, t as u32)));
        }
    }

    let mut done = 0usize;
    let mut makespan = 0u64;
    while let Some(Reverse((feas, rank, u, t))) = global.pop() {
        let ti = t as usize;
        let front = &mut fronts[ti];
        front.refresh(progress[ti]);
        // Discard stale entries: the thread's real best was re-pushed when
        // it changed, so a mismatch means this entry is outdated.
        if front.best(progress[ti]) != Some((feas, rank, u)) {
            continue;
        }
        front.pop_best();

        let ui = u as usize;
        let s = feas;
        start[ui] = s;
        wait[ui] = s - progress[ti];
        let fin = s + cg.cost_ns(CompactId(u));
        makespan = makespan.max(s + cg.duration_ns(CompactId(u)));
        progress[ti] = fin;
        done += 1;

        for &v in cg.successors(CompactId(u)) {
            let vi = v.0 as usize;
            tentative[vi] = tentative[vi].max(fin);
            preds[vi] -= 1;
            if preds[vi] == 0 {
                let tv = cg.thread_of(v).0 as usize;
                fronts[tv].push(tentative[vi], ranks[vi], v.0, progress[tv]);
                if tv != ti {
                    // The other thread's best may have improved.
                    if let Some((f, r, id)) = fronts[tv].best(progress[tv]) {
                        global.push(Reverse((f, r, id, tv as u32)));
                    }
                }
            }
        }
        // This thread's progress advanced and its best was consumed:
        // re-announce whatever is best now.
        let front = &mut fronts[ti];
        front.refresh(progress[ti]);
        if let Some((f, r, id)) = front.best(progress[ti]) {
            global.push(Reverse((f, r, id, t)));
        }
    }

    if done != n {
        return Err(GraphError::Cycle);
    }
    Ok(CompiledSim {
        start_ns: start,
        wait_ns: wait,
        thread_end: progress,
        makespan_ns: makespan,
    })
}

// ---------------------------------------------------------------------------
// Reference implementation (the oracle)
// ---------------------------------------------------------------------------

/// A frontier entry of the reference loop: a ready task and its earliest
/// feasible start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The ready task.
    pub task: TaskId,
    /// `max(thread progress, dependency-induced start)`.
    pub feasible_start: u64,
}

/// Scheduling policy of the reference loop: picks the next frontier task.
///
/// Retained for the oracle only — the hot path's policies implement
/// [`FrontierOrder`] instead.
pub trait Scheduler {
    /// Returns the index into `frontier` of the task to execute next.
    ///
    /// `frontier` is never empty when called.
    fn pick(&mut self, frontier: &[Candidate], graph: &DependencyGraph) -> usize;
}

impl Scheduler for EarliestStart {
    fn pick(&mut self, frontier: &[Candidate], _graph: &DependencyGraph) -> usize {
        let mut best = 0usize;
        for (i, c) in frontier.iter().enumerate().skip(1) {
            let b = &frontier[best];
            if (c.feasible_start, c.task.0) < (b.feasible_start, b.task.0) {
                best = i;
            }
        }
        best
    }
}

/// Simulates with the original quadratic loop and the default policy —
/// the equivalence oracle for [`simulate`] and the `sim_scale` baseline.
pub fn simulate_reference(graph: &DependencyGraph) -> Result<SimResult, GraphError> {
    simulate_with_reference(graph, &mut EarliestStart)
}

/// The original refresh-everything simulation loop: on every dispatch the
/// feasible start of the *entire* frontier is recomputed against thread
/// progress (a `BTreeMap` lookup per candidate) and the scheduler
/// linear-scans it. O(V · frontier) — kept as the test oracle.
pub fn simulate_with_reference<S: Scheduler>(
    graph: &DependencyGraph,
    scheduler: &mut S,
) -> Result<SimResult, GraphError> {
    let n = graph.capacity();
    let mut refs: Vec<usize> = vec![0; n];
    let mut tentative: Vec<u64> = vec![0; n];
    let mut start: Vec<Option<u64>> = vec![None; n];
    let mut wait: Vec<u64> = vec![0; n];
    let mut progress: BTreeMap<ExecThread, u64> = BTreeMap::new();

    let mut live = 0usize;
    let mut frontier: Vec<Candidate> = Vec::new();
    for (id, t) in graph.iter() {
        live += 1;
        refs[id.0] = graph.predecessors(id).len();
        progress.entry(t.thread).or_insert(0);
        if refs[id.0] == 0 {
            frontier.push(Candidate {
                task: id,
                feasible_start: 0,
            });
        }
    }

    let mut done = 0usize;
    let mut makespan = 0u64;
    while !frontier.is_empty() {
        // Refresh feasible starts against current thread progress.
        for c in frontier.iter_mut() {
            let t = graph.task(c.task);
            let p = progress[&t.thread];
            c.feasible_start = p.max(tentative[c.task.0]);
        }
        let idx = scheduler.pick(&frontier, graph);
        let c = frontier.swap_remove(idx);
        let u = c.task;
        let task = graph.task(u);
        let p = progress[&task.thread];
        let s = p.max(tentative[u.0]);
        start[u.0] = Some(s);
        wait[u.0] = s.saturating_sub(p);
        let fin = s + task.duration_ns + task.gap_ns;
        progress.insert(task.thread, fin);
        makespan = makespan.max(s + task.duration_ns);
        done += 1;

        for &(child, _) in graph.successors(u) {
            tentative[child.0] = tentative[child.0].max(fin);
            refs[child.0] -= 1;
            if refs[child.0] == 0 {
                frontier.push(Candidate {
                    task: child,
                    feasible_start: tentative[child.0],
                });
            }
        }
    }

    if done != live {
        return Err(GraphError::Cycle);
    }
    Ok(SimResult {
        start_ns: start,
        makespan_ns: makespan,
        thread_end: progress,
        wait_ns: wait,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::task::{Task, TaskKind};
    use daydream_trace::{CpuThreadId, DeviceId, StreamId};

    fn cpu(dur: u64, gap: u64) -> Task {
        let mut t = Task::new("c", TaskKind::CpuWork, ExecThread::Cpu(CpuThreadId(0)), dur);
        t.gap_ns = gap;
        t
    }

    fn gpu(dur: u64) -> Task {
        Task::new(
            "g",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            dur,
        )
    }

    /// Runs both simulators and asserts they agree before returning the
    /// fast path's result.
    fn simulate_checked(g: &DependencyGraph) -> Result<SimResult, GraphError> {
        let fast = simulate(g);
        let oracle = simulate_reference(g);
        assert_eq!(fast, oracle, "heap simulator diverged from the oracle");
        fast
    }

    #[test]
    fn chain_with_gaps() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 5));
        let b = g.add_task(cpu(20, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.start_of(a), 0);
        // b starts after a's duration + gap (Algorithm 1 line 13/16).
        assert_eq!(r.start_of(b), 15);
        assert_eq!(r.makespan_ns, 35);
    }

    #[test]
    fn cross_thread_dependency() {
        let mut g = DependencyGraph::new();
        let launch = g.add_task(cpu(10, 0));
        let k = g.add_task(gpu(100));
        let sync = g.add_task(cpu(0, 0));
        g.add_dep(launch, k, DepKind::Correlation);
        g.add_dep(launch, sync, DepKind::CpuSeq);
        g.add_dep(k, sync, DepKind::Sync);
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.start_of(k), 10);
        assert_eq!(r.start_of(sync), 110);
        assert_eq!(r.wait_ns[sync.0], 100, "the CPU waited for the kernel");
        assert_eq!(r.makespan_ns, 110);
    }

    #[test]
    fn parallel_threads_overlap() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(50, 0));
        let b = g.add_task(gpu(50));
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.start_of(a), 0);
        assert_eq!(r.start_of(b), 0);
        assert_eq!(r.makespan_ns, 50, "independent threads run in parallel");
    }

    #[test]
    fn diamond_dependencies() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(gpu(30));
        let mut c2 = gpu(20);
        c2.thread = ExecThread::Gpu(DeviceId(0), StreamId(1));
        let c = g.add_task(c2);
        let d = g.add_task(cpu(5, 0));
        g.add_dep(a, b, DepKind::Correlation);
        g.add_dep(a, c, DepKind::Correlation);
        g.add_dep(b, d, DepKind::Sync);
        g.add_dep(c, d, DepKind::Sync);
        let r = simulate_checked(&g).unwrap();
        // d waits for the slower branch.
        assert_eq!(r.start_of(d), 40);
        assert_eq!(r.makespan_ns, 45);
    }

    #[test]
    fn removed_tasks_are_skipped() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(cpu(1000, 0));
        let c = g.add_task(cpu(10, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, c, DepKind::CpuSeq);
        g.remove_task(b);
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.makespan_ns, 20);
        assert!(r.start_ns[b.0].is_none());
    }

    /// Graham's scheduling anomaly: removing work CAN increase the
    /// makespan of a greedy list scheduler. Here `x` delays `a` past `b`,
    /// so the critical `b -> c` chain starts first on thread 0; removing
    /// `x` makes `a` dispatchable at t=0 (earlier id wins the tie) and
    /// pushes the critical chain back by 50.
    #[test]
    fn removal_can_increase_makespan_graham_anomaly() {
        let t1 = ExecThread::Cpu(CpuThreadId(0));
        let t2 = ExecThread::Gpu(DeviceId(0), StreamId(0));
        let mut g = DependencyGraph::new();
        let x = g.add_task(Task::new("x", TaskKind::GpuKernel, t2, 5));
        let a = g.add_task(Task::new("a", TaskKind::CpuWork, t1, 50));
        let b = g.add_task(Task::new("b", TaskKind::CpuWork, t1, 10));
        let c = g.add_task(Task::new("c", TaskKind::GpuKernel, t2, 100));
        g.add_dep(x, a, DepKind::Transform);
        g.add_dep(b, c, DepKind::Transform);
        let before = simulate_checked(&g).unwrap().makespan_ns;
        g.remove_task(x);
        let after = simulate_checked(&g).unwrap().makespan_ns;
        assert_eq!(before, 110);
        assert_eq!(after, 160, "anomaly: less work, later finish");
    }

    #[test]
    fn cycle_reported() {
        let mut g = DependencyGraph::new();
        let a = g.add_task(cpu(10, 0));
        let b = g.add_task(cpu(10, 0));
        g.add_dep(a, b, DepKind::CpuSeq);
        g.add_dep(b, a, DepKind::Transform);
        assert_eq!(simulate(&g), Err(GraphError::Cycle));
        assert_eq!(simulate_reference(&g), Err(GraphError::Cycle));
    }

    #[test]
    fn starts_respect_thread_serialization() {
        let mut g = DependencyGraph::new();
        let ids: Vec<_> = (0..10).map(|i| g.add_task(cpu(10 + i, 2))).collect();
        // No explicit deps: same thread still serializes.
        let r = simulate_checked(&g).unwrap();
        let mut intervals: Vec<(u64, u64)> = ids
            .iter()
            .map(|&id| (r.start_of(id), r.start_of(id) + g.task(id).duration_ns))
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "thread tasks must not overlap");
        }
    }

    #[test]
    fn empty_graph_simulates_to_zero() {
        let g = DependencyGraph::new();
        let r = simulate_checked(&g).unwrap();
        assert_eq!(r.makespan_ns, 0);
        assert!(r.thread_end.is_empty());
    }

    /// A wide comm channel frontier — the shape that made the reference
    /// loop quadratic — still dispatches in id order at equal feasibility.
    #[test]
    fn wide_frontier_dispatches_in_id_order() {
        let mut g = DependencyGraph::new();
        let chan = ExecThread::Comm(crate::task::CommChannel::Collective);
        let ids: Vec<TaskId> = (0..50)
            .map(|_| g.add_task(Task::new("m", TaskKind::CpuWork, chan, 7)))
            .collect();
        let r = simulate_checked(&g).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(r.start_of(id), 7 * i as u64);
        }
    }
}
