//! Tasks: the nodes of Daydream's kernel-granularity dependency graph.
//!
//! A task carries exactly the fields of paper §4.2.1: an execution thread
//! (CPU process, GPU stream, or communication channel), a duration, the gap
//! to its thread successor (non-CUDA CPU time CUPTI cannot see), and the
//! DNN layer it maps to.

use daydream_trace::{
    CorrelationId, CpuThreadId, CudaApi, DeviceId, LayerId, MemcpyDir, Phase, StreamId,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A communication channel identity.
///
/// Parameter-server frameworks use distinct send/receive channels; NCCL
/// collectives use one unified channel (paper §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CommChannel {
    /// Worker-to-server direction (push).
    Send,
    /// Server-to-worker direction (pull).
    Receive,
    /// Collective channel (all-reduce and friends).
    Collective,
    /// A BlueConnect stage channel: stage `i` of the hierarchical
    /// decomposition runs on its own parallel network channel (paper §5.2).
    Stage(u8),
}

/// The execution timeline a task occupies (paper Algorithm 1, line 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExecThread {
    /// A CPU process/thread.
    Cpu(CpuThreadId),
    /// A CUDA stream on a device.
    Gpu(DeviceId, StreamId),
    /// A communication channel.
    Comm(CommChannel),
}

impl ExecThread {
    /// Returns `true` for CPU threads.
    pub fn is_cpu(&self) -> bool {
        matches!(self, ExecThread::Cpu(_))
    }

    /// Returns `true` for GPU streams.
    pub fn is_gpu(&self) -> bool {
        matches!(self, ExecThread::Gpu(_, _))
    }

    /// Returns `true` for communication channels.
    pub fn is_comm(&self) -> bool {
        matches!(self, ExecThread::Comm(_))
    }
}

impl fmt::Display for ExecThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecThread::Cpu(t) => write!(f, "cpu:{}", t.0),
            ExecThread::Gpu(d, s) => write!(f, "gpu{}:s{}", d.0, s.0),
            ExecThread::Comm(c) => write!(f, "comm:{c:?}"),
        }
    }
}

/// Communication primitive kinds (paper §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommPrimitive {
    /// NCCL-style ring all-reduce.
    AllReduce,
    /// Parameter-server push (worker to server).
    Push,
    /// Parameter-server pull (server to worker).
    Pull,
    /// BlueConnect stage: reduce-scatter.
    ReduceScatter,
    /// BlueConnect stage: all-gather.
    AllGather,
}

/// What a task does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A CPU-side CUDA runtime API call.
    CpuApi(CudaApi),
    /// Non-CUDA CPU work treated as a task (data loading, §4.2.1).
    CpuWork,
    /// A GPU kernel.
    GpuKernel,
    /// A GPU-side memory copy.
    GpuMemcpy {
        /// Copy direction.
        dir: MemcpyDir,
        /// Payload bytes.
        bytes: u64,
    },
    /// A communication primitive.
    Communication {
        /// Primitive type.
        prim: CommPrimitive,
        /// Payload bytes.
        bytes: u64,
    },
}

impl TaskKind {
    /// Returns `true` for GPU-side kinds (kernels and copies).
    pub fn is_gpu(&self) -> bool {
        matches!(self, TaskKind::GpuKernel | TaskKind::GpuMemcpy { .. })
    }
}

/// The layer/phase a task belongs to, produced by the synchronization-free
/// mapping of paper §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerRef {
    /// The layer.
    pub layer: LayerId,
    /// The training phase of that layer.
    pub phase: Phase,
}

/// One node of the dependency graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Kernel or API name (select-by-keyword operates on this, §4.4).
    pub name: String,
    /// What the task does.
    pub kind: TaskKind,
    /// The thread Algorithm 1 dispatches the task to.
    pub thread: ExecThread,
    /// Duration in nanoseconds (mutable by shrink/scale primitives).
    pub duration_ns: u64,
    /// Gap to the thread successor (Algorithm 1 line 13).
    pub gap_ns: u64,
    /// Layer/phase mapping, if known.
    pub layer: Option<LayerRef>,
    /// CUPTI correlation id carried over from the trace.
    pub correlation: Option<CorrelationId>,
    /// Start time measured in the profiled run (informational; the
    /// simulator recomputes starts).
    pub measured_start_ns: u64,
    /// Scheduling priority for custom [`crate::sim::Scheduler`]s (P3).
    pub priority: i64,
}

impl Task {
    /// Creates a task with the given name/kind/thread/duration and neutral
    /// remaining fields.
    pub fn new(
        name: impl Into<String>,
        kind: TaskKind,
        thread: ExecThread,
        duration_ns: u64,
    ) -> Self {
        Task {
            name: name.into(),
            kind,
            thread,
            duration_ns,
            gap_ns: 0,
            layer: None,
            correlation: None,
            measured_start_ns: 0,
            priority: 0,
        }
    }

    /// Returns `true` if the task runs on a GPU stream.
    pub fn is_on_gpu(&self) -> bool {
        self.thread.is_gpu()
    }

    /// Time the task occupies its thread: duration plus the trailing gap
    /// to its thread successor (Algorithm 1 line 13).
    #[inline]
    pub fn cost_ns(&self) -> u64 {
        self.duration_ns + self.gap_ns
    }

    /// Returns `true` if the task belongs to the given phase.
    pub fn in_phase(&self, phase: Phase) -> bool {
        self.layer.map(|l| l.phase == phase).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_predicates() {
        assert!(ExecThread::Cpu(CpuThreadId(0)).is_cpu());
        assert!(ExecThread::Gpu(DeviceId(0), StreamId(0)).is_gpu());
        assert!(ExecThread::Comm(CommChannel::Send).is_comm());
    }

    #[test]
    fn task_phase_check() {
        let mut t = Task::new(
            "k",
            TaskKind::GpuKernel,
            ExecThread::Gpu(DeviceId(0), StreamId(0)),
            100,
        );
        assert!(!t.in_phase(Phase::Forward));
        t.layer = Some(LayerRef {
            layer: LayerId(3),
            phase: Phase::Forward,
        });
        assert!(t.in_phase(Phase::Forward));
        assert!(!t.in_phase(Phase::Backward));
        assert!(t.is_on_gpu());
    }

    #[test]
    fn kind_gpu_check() {
        assert!(TaskKind::GpuKernel.is_gpu());
        assert!(TaskKind::GpuMemcpy {
            dir: MemcpyDir::HostToDevice,
            bytes: 1
        }
        .is_gpu());
        assert!(!TaskKind::CpuWork.is_gpu());
        assert!(!TaskKind::Communication {
            prim: CommPrimitive::AllReduce,
            bytes: 1
        }
        .is_gpu());
    }

    #[test]
    fn thread_ordering_is_stable() {
        let mut v = [
            ExecThread::Comm(CommChannel::Send),
            ExecThread::Gpu(DeviceId(0), StreamId(1)),
            ExecThread::Cpu(CpuThreadId(2)),
        ];
        v.sort();
        assert!(v[0].is_cpu());
        assert!(v[2].is_comm());
    }
}
