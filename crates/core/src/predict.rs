//! Prediction reports: baseline vs what-if simulated time.

use crate::compiled::CompiledGraph;
use crate::construct::ProfiledGraph;
use crate::graph::DependencyGraph;
use crate::patch::GraphPatch;
use crate::sim::{simulate, simulate_with, FrontierOrder};
use serde::{Deserialize, Serialize};

/// Outcome of one what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Simulated baseline (untransformed graph) iteration time, ns.
    pub baseline_ns: u64,
    /// Simulated iteration time after the transformation, ns.
    pub predicted_ns: u64,
}

impl Prediction {
    /// Baseline iteration time in milliseconds.
    pub fn baseline_ms(&self) -> f64 {
        self.baseline_ns as f64 / 1e6
    }

    /// Predicted iteration time in milliseconds.
    pub fn predicted_ms(&self) -> f64 {
        self.predicted_ns as f64 / 1e6
    }

    /// Predicted speedup (baseline / predicted).
    pub fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.predicted_ns.max(1) as f64
    }

    /// Predicted improvement as a fraction of baseline (0.2 = 20% faster).
    pub fn improvement(&self) -> f64 {
        1.0 - self.predicted_ns as f64 / self.baseline_ns.max(1) as f64
    }

    /// Relative error of the prediction against a measured ground truth,
    /// the metric of paper Figs. 5–10.
    pub fn error_vs(&self, ground_truth_ns: u64) -> f64 {
        (self.predicted_ns as f64 - ground_truth_ns as f64).abs() / ground_truth_ns.max(1) as f64
    }
}

/// Applies a transformation to a copy of the profile and simulates both
/// versions with the default scheduler.
pub fn predict<F>(pg: &ProfiledGraph, transform: F) -> Prediction
where
    F: FnOnce(&mut ProfiledGraph),
{
    predict_with(pg, transform, &crate::sim::EarliestStart)
}

/// [`predict`] with a custom frontier policy for the transformed graph
/// (the baseline always uses the default policy it was profiled under).
pub fn predict_with<F, O>(pg: &ProfiledGraph, transform: F, order: &O) -> Prediction
where
    F: FnOnce(&mut ProfiledGraph),
    O: FrontierOrder,
{
    let baseline = simulate(&pg.graph).expect("profiled graph must be a DAG");
    predict_from_baseline_with(baseline.makespan_ns, pg, transform, order)
}

/// [`predict`] against a baseline makespan simulated once up front.
///
/// Callers that evaluate many what-ifs over one shared base profile (the
/// sweep engine, the CLI's analyze command) simulate the baseline a single
/// time and pass its makespan here, so per-scenario work is just
/// transform + compile + simulate of the transformed graph.
pub fn predict_from_baseline<F>(baseline_ns: u64, pg: &ProfiledGraph, transform: F) -> Prediction
where
    F: FnOnce(&mut ProfiledGraph),
{
    predict_from_baseline_with(baseline_ns, pg, transform, &crate::sim::EarliestStart)
}

/// [`predict_from_baseline`] with a custom frontier policy.
pub fn predict_from_baseline_with<F, O>(
    baseline_ns: u64,
    pg: &ProfiledGraph,
    transform: F,
    order: &O,
) -> Prediction
where
    F: FnOnce(&mut ProfiledGraph),
    O: FrontierOrder,
{
    let mut transformed = pg.clone();
    transform(&mut transformed);
    let predicted =
        simulate_with(&transformed.graph, order).expect("transformed graph must stay a DAG");
    Prediction {
        baseline_ns,
        predicted_ns: predicted.makespan_ns,
    }
}

/// Simulates a standalone graph and returns its makespan in nanoseconds.
pub fn makespan_ns(graph: &DependencyGraph) -> u64 {
    simulate(graph).expect("graph must be a DAG").makespan_ns
}

/// [`predict_from_baseline`] over the compiled fast path: applies an
/// already-emitted [`GraphPatch`] to a shared immutable [`CompiledGraph`]
/// (compiled once per base profile) and simulates the patched graph —
/// per-scenario cost is emit + apply + simulate, with no base clone and
/// no full recompile.
pub fn predict_patched(
    baseline_ns: u64,
    compiled: &CompiledGraph,
    patch: &GraphPatch,
) -> Prediction {
    predict_patched_with(baseline_ns, compiled, patch, &crate::sim::EarliestStart)
}

/// [`predict_patched`] with a custom frontier policy.
pub fn predict_patched_with<O: FrontierOrder>(
    baseline_ns: u64,
    compiled: &CompiledGraph,
    patch: &GraphPatch,
    order: &O,
) -> Prediction {
    let patched = compiled.apply(patch);
    let predicted =
        crate::sim::simulate_compiled_with(&patched, order).expect("patched graph must stay a DAG");
    Prediction {
        baseline_ns,
        predicted_ns: predicted.makespan_ns,
    }
}

/// The fastest per-scenario path: applies the patch incrementally and
/// re-simulates only its cone against a [`Schedule`] captured once over
/// the shared base ([`crate::sim::simulate_incremental_with`]), falling
/// back to a full simulation when the cone is too large. The returned
/// stats say which path ran and how many tasks were re-dispatched.
pub fn predict_incremental(
    schedule: &crate::sim::Schedule,
    compiled: &CompiledGraph,
    patch: &GraphPatch,
) -> (Prediction, crate::sim::IncrementalStats) {
    let (patched, trace) = compiled.apply_traced(patch);
    let outcome = crate::sim::simulate_incremental(compiled, schedule, &patched, patch, &trace)
        .expect("patched graph must stay a DAG");
    (
        Prediction {
            baseline_ns: schedule.makespan_ns(),
            predicted_ns: outcome.sim.makespan_ns,
        },
        outcome.stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepKind, DependencyGraph};
    use crate::patch::PatchGraph;
    use crate::sim::Schedule;
    use crate::task::{ExecThread, Task, TaskKind};
    use daydream_trace::CpuThreadId;

    #[test]
    fn predict_incremental_matches_predict_patched() {
        let mut g = DependencyGraph::new();
        let cpu = ExecThread::Cpu(CpuThreadId(0));
        let ids: Vec<_> = (0..20)
            .map(|i| g.add_task(Task::new(format!("t{i}"), TaskKind::CpuWork, cpu, 10)))
            .collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1], DepKind::CpuSeq);
        }
        let compiled = crate::CompiledGraph::compile(&g);
        let schedule = Schedule::capture(&compiled).unwrap();
        let mut p = PatchGraph::new(&g);
        crate::GraphEdit::set_duration(&mut p, ids[18], 500);
        let patch = p.finish();

        let (inc, stats) = predict_incremental(&schedule, &compiled, &patch);
        let full = predict_patched(schedule.makespan_ns(), &compiled, &patch);
        assert_eq!(inc, full, "incremental prediction diverged");
        assert!(stats.is_incremental());
        assert_eq!(stats.redispatched, 2, "only the retimed tail re-dispatches");
    }

    #[test]
    fn report_math() {
        let p = Prediction {
            baseline_ns: 200_000_000,
            predicted_ns: 100_000_000,
        };
        assert!((p.speedup() - 2.0).abs() < 1e-12);
        assert!((p.improvement() - 0.5).abs() < 1e-12);
        assert!((p.baseline_ms() - 200.0).abs() < 1e-12);
        // 100 ms prediction vs 110 ms measured: ~9.1% error.
        let err = p.error_vs(110_000_000);
        assert!((err - 10.0 / 110.0).abs() < 1e-9);
    }
}
