//! GNMT (Wu et al., 2016) — paper Table 2, machine translation on WMT16.
//!
//! We build the GNMT-v2 configuration (4 encoder + 4 decoder LSTM layers,
//! hidden 1024, the MLPerf reference variant) rather than the original
//! 8+8-layer model; it is the variant contemporary PyTorch benchmarks used
//! and lands at ~193 M parameters, within the published 160–280 M family
//! range. LSTM layers run as fused cuDNN sweeps — the paper notes GNMT's time
//! is dominated by fully connected layers (§7.5) — while the decoder's
//! Bahdanau attention still evaluates step by step in a Python loop.

use crate::graph::{Application, Model, ModelBuilder};
use crate::layer::LayerKind;
use crate::optimizer::Optimizer;
use crate::shapes::Shape;

/// Source/target vocabulary size (WMT16 En-De BPE).
pub const VOCAB: u64 = 32_320;
/// Hidden size of every LSTM layer.
pub const HIDDEN: u64 = 1024;
/// Tokens per sentence used for profiling.
pub const SEQ: u64 = 50;

/// Builds GNMT-v2 (4+4 layers, hidden 1024, ~193 M parameters).
pub fn gnmt() -> Model {
    let mut b = ModelBuilder::new("GNMT", Shape::new(&[SEQ]));

    // Encoder.
    b.push(
        "encoder.embedding",
        LayerKind::Embedding {
            vocab: VOCAB,
            dim: HIDDEN,
        },
    );
    b.push(
        "encoder.lstm1",
        LayerKind::Lstm {
            input_size: HIDDEN,
            hidden: HIDDEN,
            dirs: 2,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("encoder.dropout1", LayerKind::Dropout);
    b.push(
        "encoder.lstm2",
        LayerKind::Lstm {
            input_size: 2 * HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("encoder.dropout2", LayerKind::Dropout);
    b.push(
        "encoder.lstm3",
        LayerKind::Lstm {
            input_size: HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("encoder.add3", LayerKind::Add);
    b.push(
        "encoder.lstm4",
        LayerKind::Lstm {
            input_size: HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("encoder.add4", LayerKind::Add);

    // Decoder.
    b.set_shape(Shape::new(&[SEQ]));
    b.push(
        "decoder.embedding",
        LayerKind::Embedding {
            vocab: VOCAB,
            dim: HIDDEN,
        },
    );
    b.push(
        "decoder.lstm1",
        LayerKind::Lstm {
            input_size: HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    // Bahdanau-style attention over encoder states, computed step by step.
    b.push(
        "decoder.att_query",
        LayerKind::Linear {
            in_features: HIDDEN,
            out_features: HIDDEN,
            bias: false,
        },
    );
    b.push(
        "decoder.attention",
        LayerKind::Attention {
            heads: 1,
            model_dim: HIDDEN,
            seq_q: SEQ,
            seq_k: SEQ,
            stepwise: true,
        },
    );
    // Context is concatenated to the recurrent input of every later layer.
    let ctx = Shape::seq(SEQ, 2 * HIDDEN);
    b.push_explicit(
        "decoder.concat2",
        LayerKind::Concat,
        Shape::seq(SEQ, HIDDEN),
        ctx.clone(),
    );
    b.push(
        "decoder.lstm2",
        LayerKind::Lstm {
            input_size: 2 * HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("decoder.dropout2", LayerKind::Dropout);
    b.push_explicit(
        "decoder.concat3",
        LayerKind::Concat,
        Shape::seq(SEQ, HIDDEN),
        ctx.clone(),
    );
    b.push(
        "decoder.lstm3",
        LayerKind::Lstm {
            input_size: 2 * HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("decoder.add3", LayerKind::Add);
    b.push_explicit(
        "decoder.concat4",
        LayerKind::Concat,
        Shape::seq(SEQ, HIDDEN),
        ctx,
    );
    b.push(
        "decoder.lstm4",
        LayerKind::Lstm {
            input_size: 2 * HIDDEN,
            hidden: HIDDEN,
            dirs: 1,
            seq_len: SEQ,
            stepwise: false,
        },
    );
    b.push("decoder.add4", LayerKind::Add);
    b.push(
        "decoder.classifier",
        LayerKind::Linear {
            in_features: HIDDEN,
            out_features: VOCAB,
            bias: true,
        },
    );
    b.push("loss", LayerKind::CrossEntropyLoss { classes: VOCAB });

    b.build(
        Optimizer::Adam,
        64,
        Application::MachineTranslation,
        "WMT16",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_in_gnmt_family() {
        let m = gnmt();
        let params = m.param_count();
        // GNMT-v2 with 32k vocabulary: ~190 M parameters.
        assert!(
            (150_000_000..250_000_000).contains(&params),
            "GNMT params {params} outside plausible range"
        );
    }

    #[test]
    fn embeddings_and_classifier_dominate() {
        let m = gnmt();
        let emb: u64 = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Embedding { .. }))
            .map(|l| l.param_elems())
            .sum();
        // Two 32k x 1024 tables = ~66 M.
        assert_eq!(emb, 2 * VOCAB * HIDDEN);
    }

    #[test]
    fn structure() {
        let m = gnmt();
        m.validate().unwrap();
        let lstms = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Lstm { .. }))
            .count();
        assert_eq!(lstms, 8);
        assert_eq!(m.optimizer, Optimizer::Adam);
    }

    #[test]
    fn bidirectional_first_encoder_layer() {
        let m = gnmt();
        let l1 = m.layers.iter().find(|l| l.name == "encoder.lstm1").unwrap();
        assert!(matches!(
            l1.kind,
            LayerKind::Lstm {
                dirs: 2,
                stepwise: false,
                ..
            }
        ));
        assert_eq!(l1.output, Shape::seq(SEQ, 2 * HIDDEN));
    }
}
