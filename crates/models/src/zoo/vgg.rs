//! VGG-19 (Simonyan & Zisserman, 2014) — paper Table 2, image
//! classification; the communication-heavy CNN used in the P3 evaluation
//! (Fig. 10b) because of its ~144 M parameters.

use crate::graph::{Application, Model, ModelBuilder};
use crate::layer::{ActKind, LayerKind, PoolKind};
use crate::optimizer::Optimizer;
use crate::shapes::Shape;

/// Builds VGG-19 for 224x224 ImageNet input (~143.7 M parameters).
pub fn vgg19() -> Model {
    // Configuration "E": conv channel plan with 'M' max-pool boundaries.
    let plan: [&[u64]; 5] = [
        &[64, 64],
        &[128, 128],
        &[256, 256, 256, 256],
        &[512, 512, 512, 512],
        &[512, 512, 512, 512],
    ];
    let mut b = ModelBuilder::new("VGG-19", Shape::chw(3, 224, 224));
    let mut in_ch = 3;
    for (gi, group) in plan.iter().enumerate() {
        for (ci, &out_ch) in group.iter().enumerate() {
            b.push(
                format!("features.{}.conv{}", gi + 1, ci + 1),
                LayerKind::Conv2d {
                    in_ch,
                    out_ch,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: true,
                },
            );
            b.push(
                format!("features.{}.relu{}", gi + 1, ci + 1),
                LayerKind::Activation { f: ActKind::ReLU },
            );
            in_ch = out_ch;
        }
        b.push(
            format!("features.{}.pool", gi + 1),
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
        );
    }
    b.push(
        "classifier.fc1",
        LayerKind::Linear {
            in_features: 512 * 7 * 7,
            out_features: 4096,
            bias: true,
        },
    );
    b.push(
        "classifier.relu1",
        LayerKind::Activation { f: ActKind::ReLU },
    );
    b.push("classifier.dropout1", LayerKind::Dropout);
    b.push(
        "classifier.fc2",
        LayerKind::Linear {
            in_features: 4096,
            out_features: 4096,
            bias: true,
        },
    );
    b.push(
        "classifier.relu2",
        LayerKind::Activation { f: ActKind::ReLU },
    );
    b.push("classifier.dropout2", LayerKind::Dropout);
    b.push(
        "classifier.fc3",
        LayerKind::Linear {
            in_features: 4096,
            out_features: 1000,
            bias: true,
        },
    );
    b.push("loss", LayerKind::CrossEntropyLoss { classes: 1000 });
    b.build(
        Optimizer::Sgd { momentum: true },
        32,
        Application::ImageClassification,
        "ImageNet",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_published() {
        let m = vgg19();
        let params = m.param_count();
        // torchvision VGG-19: 143,667,240 parameters.
        let published = 143_667_240u64;
        let err = (params as f64 - published as f64).abs() / published as f64;
        assert!(
            err < 0.01,
            "VGG-19 params {params} vs published {published} ({err:.4})"
        );
    }

    #[test]
    fn structure() {
        let m = vgg19();
        m.validate().unwrap();
        let convs = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 16);
        let fc1 = m
            .layers
            .iter()
            .find(|l| l.name == "classifier.fc1")
            .unwrap();
        assert_eq!(fc1.input.numel(), 512 * 7 * 7);
    }

    #[test]
    fn classifier_dominates_parameters() {
        // The three FC layers hold ~86% of VGG-19's parameters — why P3's
        // slicing matters so much for this model.
        let m = vgg19();
        let fc_params: u64 = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("classifier"))
            .map(|l| l.param_elems())
            .sum();
        assert!(fc_params as f64 / m.param_count() as f64 > 0.85);
    }
}
