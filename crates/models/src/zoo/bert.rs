//! BERT (Devlin et al., 2018) — paper Table 2, language modeling on SQuAD.
//!
//! Both "base" (12 transformer blocks, hidden 768) and "large" (24 blocks,
//! hidden 1024) are built. The weight-update phase is the model's defining
//! performance feature in the paper: unfused Adam launches ~2600 (base) /
//! ~5200 (large) tiny kernels per step (§6.3), which is what the FusedAdam
//! what-if collapses to one.

use crate::graph::{Application, Model, ModelBuilder};
use crate::layer::{ActKind, LayerKind};
use crate::optimizer::Optimizer;
use crate::shapes::Shape;

/// WordPiece vocabulary size.
pub const VOCAB: u64 = 30_522;
/// Maximum position embeddings.
pub const MAX_POS: u64 = 512;
/// SQuAD fine-tuning sequence length used for profiling.
pub const SEQ: u64 = 384;

/// Transformer size configuration.
struct BertConfig {
    name: &'static str,
    blocks: u64,
    hidden: u64,
    heads: u64,
    ffn: u64,
    batch: u64,
}

fn build(cfg: BertConfig) -> Model {
    let h = cfg.hidden;
    let mut b = ModelBuilder::new(cfg.name, Shape::new(&[SEQ]));

    // Embeddings: word + position + token-type, summed then normalized.
    b.push(
        "embeddings.word",
        LayerKind::Embedding {
            vocab: VOCAB,
            dim: h,
        },
    );
    let seq_h = Shape::seq(SEQ, h);
    b.push_explicit(
        "embeddings.position",
        LayerKind::Embedding {
            vocab: MAX_POS,
            dim: h,
        },
        Shape::new(&[SEQ]),
        seq_h.clone(),
    );
    b.push("embeddings.add_pos", LayerKind::Add);
    b.push_explicit(
        "embeddings.token_type",
        LayerKind::Embedding { vocab: 2, dim: h },
        Shape::new(&[SEQ]),
        seq_h,
    );
    b.push("embeddings.add_type", LayerKind::Add);
    b.push("embeddings.layernorm", LayerKind::LayerNorm { dim: h });
    b.push("embeddings.dropout", LayerKind::Dropout);

    for i in 0..cfg.blocks {
        let p = format!("encoder.block{i}");
        b.push(
            format!("{p}.attn.query"),
            LayerKind::Linear {
                in_features: h,
                out_features: h,
                bias: true,
            },
        );
        b.push(
            format!("{p}.attn.key"),
            LayerKind::Linear {
                in_features: h,
                out_features: h,
                bias: true,
            },
        );
        b.push(
            format!("{p}.attn.value"),
            LayerKind::Linear {
                in_features: h,
                out_features: h,
                bias: true,
            },
        );
        b.push(
            format!("{p}.attn.core"),
            LayerKind::Attention {
                heads: cfg.heads,
                model_dim: h,
                seq_q: SEQ,
                seq_k: SEQ,
                stepwise: false,
            },
        );
        b.push(
            format!("{p}.attn.output"),
            LayerKind::Linear {
                in_features: h,
                out_features: h,
                bias: true,
            },
        );
        b.push(format!("{p}.attn.dropout"), LayerKind::Dropout);
        b.push(format!("{p}.attn.add"), LayerKind::Add);
        b.push(
            format!("{p}.attn.layernorm"),
            LayerKind::LayerNorm { dim: h },
        );
        b.push(
            format!("{p}.ffn.fc1"),
            LayerKind::Linear {
                in_features: h,
                out_features: cfg.ffn,
                bias: true,
            },
        );
        b.push(
            format!("{p}.ffn.gelu"),
            LayerKind::Activation { f: ActKind::Gelu },
        );
        b.push(
            format!("{p}.ffn.fc2"),
            LayerKind::Linear {
                in_features: cfg.ffn,
                out_features: h,
                bias: true,
            },
        );
        b.push(format!("{p}.ffn.dropout"), LayerKind::Dropout);
        b.push(format!("{p}.ffn.add"), LayerKind::Add);
        b.push(
            format!("{p}.ffn.layernorm"),
            LayerKind::LayerNorm { dim: h },
        );
    }

    // SQuAD span-prediction head.
    b.push(
        "qa.classifier",
        LayerKind::Linear {
            in_features: h,
            out_features: 2,
            bias: true,
        },
    );
    b.push("loss", LayerKind::CrossEntropyLoss { classes: 2 });

    b.build(
        Optimizer::Adam,
        cfg.batch,
        Application::LanguageModeling,
        "SQuAD",
    )
}

/// Builds BERT-base: 12 blocks, hidden 768, 12 heads (~110 M parameters).
pub fn bert_base() -> Model {
    build(BertConfig {
        name: "BERT_Base",
        blocks: 12,
        hidden: 768,
        heads: 12,
        ffn: 3072,
        batch: 8,
    })
}

/// Builds BERT-large: 24 blocks, hidden 1024, 16 heads (~340 M parameters).
pub fn bert_large() -> Model {
    build(BertConfig {
        name: "BERT_Large",
        blocks: 24,
        hidden: 1024,
        heads: 16,
        ffn: 4096,
        batch: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_parameter_count() {
        let params = bert_base().param_count();
        // Published BERT-base: ~110 M (109.5 M without pooler).
        let published = 109_000_000f64;
        let err = (params as f64 - published).abs() / published;
        assert!(err < 0.03, "BERT-base params {params} ({err:.3} off)");
    }

    #[test]
    fn large_parameter_count() {
        let params = bert_large().param_count();
        // Published BERT-large: ~340 M (334 M without pooler).
        let published = 334_000_000f64;
        let err = (params as f64 - published).abs() / published;
        assert!(err < 0.03, "BERT-large params {params} ({err:.3} off)");
    }

    #[test]
    fn weight_update_kernel_counts_match_paper() {
        // Paper §6.3: 2633 kernels for base, 5164 for large.
        let base = bert_base().weight_update_kernels();
        let large = bert_large().weight_update_kernels();
        let base_err = (base as f64 - 2633.0).abs() / 2633.0;
        let large_err = (large as f64 - 5164.0).abs() / 5164.0;
        assert!(base_err < 0.03, "base weight-update kernels {base} vs 2633");
        assert!(
            large_err < 0.03,
            "large weight-update kernels {large} vs 5164"
        );
    }

    #[test]
    fn param_tensor_counts() {
        // 16 tensors per block + 5 embedding-side + 2 head.
        assert_eq!(bert_base().param_tensor_count(), 12 * 16 + 5 + 2);
        assert_eq!(bert_large().param_tensor_count(), 24 * 16 + 5 + 2);
    }

    #[test]
    fn structure_validates() {
        bert_base().validate().unwrap();
        bert_large().validate().unwrap();
        assert_eq!(bert_base().optimizer, Optimizer::Adam);
    }
}
