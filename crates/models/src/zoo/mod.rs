//! The five models of paper Table 2, plus a name-based registry.

mod bert;
mod densenet;
mod gnmt;
mod resnet;
mod vgg;

pub use bert::{bert_base, bert_large};
pub use densenet::densenet121;
pub use gnmt::gnmt;
pub use resnet::resnet50;
pub use vgg::vgg19;

use crate::graph::Model;

/// Builds every model of paper Table 2.
pub fn all_models() -> Vec<Model> {
    vec![
        vgg19(),
        densenet121(),
        resnet50(),
        gnmt(),
        bert_base(),
        bert_large(),
    ]
}

/// Looks a model up by (case-insensitive) name.
///
/// Accepts the names used throughout the paper: `"ResNet-50"`, `"VGG-19"`,
/// `"DenseNet-121"`, `"GNMT"` (or `"Seq2Seq"`), `"BERT_Base"`, `"BERT_Large"`.
pub fn by_name(name: &str) -> Option<Model> {
    let n = name.to_ascii_lowercase().replace(['-', '_', ' '], "");
    match n.as_str() {
        "resnet50" => Some(resnet50()),
        "vgg19" => Some(vgg19()),
        "densenet121" => Some(densenet121()),
        "gnmt" | "seq2seq" => Some(gnmt()),
        "bertbase" => Some(bert_base()),
        "bertlarge" => Some(bert_large()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_table2() {
        let models = all_models();
        assert_eq!(models.len(), 6);
        for m in &models {
            m.validate().unwrap();
            assert!(m.param_count() > 1_000_000);
        }
    }

    #[test]
    fn lookup_by_paper_names() {
        assert!(by_name("ResNet-50").is_some());
        assert!(by_name("resnet50").is_some());
        assert!(by_name("Seq2Seq").is_some());
        assert!(by_name("BERT_Large").is_some());
        assert!(by_name("AlexNet").is_none());
    }
}
