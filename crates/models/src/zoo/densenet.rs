//! DenseNet-121 (Huang et al., 2017) — paper Table 2; the Caffe model used
//! for the reconstructing-batchnorm evaluation (§6.4), chosen because its
//! many small batchnorm + ReLU layers are exactly what that optimization
//! restructures.

use crate::graph::{Application, Model, ModelBuilder};
use crate::layer::{ActKind, LayerKind, PoolKind};
use crate::optimizer::Optimizer;
use crate::shapes::Shape;

const GROWTH: u64 = 32;
const BN_SIZE: u64 = 4;

/// Appends one dense layer: BN -> ReLU -> 1x1 conv -> BN -> ReLU -> 3x3 conv,
/// then concatenation with the layer input.
fn dense_layer(b: &mut ModelBuilder, prefix: &str, in_ch: u64, h: u64, w: u64) {
    let block_input = Shape::chw(in_ch, h, w);
    b.push(
        format!("{prefix}.bn1"),
        LayerKind::BatchNorm2d { channels: in_ch },
    );
    b.push(
        format!("{prefix}.relu1"),
        LayerKind::Activation { f: ActKind::ReLU },
    );
    b.push(
        format!("{prefix}.conv1"),
        LayerKind::Conv2d {
            in_ch,
            out_ch: BN_SIZE * GROWTH,
            kernel: 1,
            stride: 1,
            pad: 0,
            bias: false,
        },
    );
    b.push(
        format!("{prefix}.bn2"),
        LayerKind::BatchNorm2d {
            channels: BN_SIZE * GROWTH,
        },
    );
    b.push(
        format!("{prefix}.relu2"),
        LayerKind::Activation { f: ActKind::ReLU },
    );
    b.push(
        format!("{prefix}.conv2"),
        LayerKind::Conv2d {
            in_ch: BN_SIZE * GROWTH,
            out_ch: GROWTH,
            kernel: 3,
            stride: 1,
            pad: 1,
            bias: false,
        },
    );
    // Dense connectivity: output = concat(input, new features).
    let out = Shape::chw(in_ch + GROWTH, h, w);
    b.push_explicit(
        format!("{prefix}.concat"),
        LayerKind::Concat,
        block_input,
        out,
    );
}

/// Builds DenseNet-121 for 224x224 ImageNet input (~8.0 M parameters).
pub fn densenet121() -> Model {
    let mut b = ModelBuilder::new("DenseNet-121", Shape::chw(3, 224, 224));
    b.push(
        "features.conv0",
        LayerKind::Conv2d {
            in_ch: 3,
            out_ch: 64,
            kernel: 7,
            stride: 2,
            pad: 3,
            bias: false,
        },
    );
    b.push("features.bn0", LayerKind::BatchNorm2d { channels: 64 });
    b.push("features.relu0", LayerKind::Activation { f: ActKind::ReLU });
    b.push(
        "features.pool0",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            pad: 1,
        },
    );

    let blocks = [6u64, 12, 24, 16];
    let mut ch = 64u64;
    let mut hw = 56u64;
    for (bi, &layers) in blocks.iter().enumerate() {
        for li in 0..layers {
            dense_layer(
                &mut b,
                &format!("denseblock{}.layer{}", bi + 1, li + 1),
                ch,
                hw,
                hw,
            );
            ch += GROWTH;
        }
        if bi + 1 < blocks.len() {
            // Transition: BN -> ReLU -> 1x1 conv halving channels -> 2x2 avgpool.
            let out_ch = ch / 2;
            let p = format!("transition{}", bi + 1);
            b.push(format!("{p}.bn"), LayerKind::BatchNorm2d { channels: ch });
            b.push(
                format!("{p}.relu"),
                LayerKind::Activation { f: ActKind::ReLU },
            );
            b.push(
                format!("{p}.conv"),
                LayerKind::Conv2d {
                    in_ch: ch,
                    out_ch,
                    kernel: 1,
                    stride: 1,
                    pad: 0,
                    bias: false,
                },
            );
            b.push(
                format!("{p}.pool"),
                LayerKind::Pool {
                    kind: PoolKind::Avg,
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
            );
            ch = out_ch;
            hw /= 2;
        }
    }

    b.push("features.bn5", LayerKind::BatchNorm2d { channels: ch });
    b.push("features.relu5", LayerKind::Activation { f: ActKind::ReLU });
    b.push(
        "avgpool",
        LayerKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: 0,
            stride: 0,
            pad: 0,
        },
    );
    b.push(
        "classifier",
        LayerKind::Linear {
            in_features: ch,
            out_features: 1000,
            bias: true,
        },
    );
    b.push("loss", LayerKind::CrossEntropyLoss { classes: 1000 });
    b.build(
        Optimizer::Sgd { momentum: true },
        32,
        Application::ImageClassification,
        "ImageNet",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_published() {
        let m = densenet121();
        let params = m.param_count();
        // torchvision DenseNet-121: 7,978,856 parameters.
        let published = 7_978_856u64;
        let err = (params as f64 - published as f64).abs() / published as f64;
        assert!(
            err < 0.01,
            "DenseNet-121 params {params} vs published {published} ({err:.4})"
        );
    }

    #[test]
    fn structure() {
        let m = densenet121();
        m.validate().unwrap();
        // 58 dense layers x 2 convs + stem + 3 transitions = 120 convs.
        let convs = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 120);
        // Final channels: 1024.
        let cls = m.layers.iter().find(|l| l.name == "classifier").unwrap();
        assert_eq!(cls.input.numel(), 1024);
    }

    #[test]
    fn batchnorm_everywhere() {
        // DenseNet-121 has 121 batchnorm layers in our decomposition
        // (2 per dense layer + stem + transitions + final).
        let m = densenet121();
        let bns = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::BatchNorm2d { .. }))
            .count();
        assert_eq!(bns, 58 * 2 + 1 + 3 + 1);
    }
}
