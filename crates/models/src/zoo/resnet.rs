//! ResNet-50 (He et al., 2015) — paper Table 2, image classification.

use crate::graph::{Application, Model, ModelBuilder};
use crate::layer::{ActKind, LayerKind, PoolKind};
use crate::optimizer::Optimizer;
use crate::shapes::Shape;

/// Appends one bottleneck residual block (1x1 -> 3x3 -> 1x1 convolutions).
fn bottleneck(
    b: &mut ModelBuilder,
    prefix: &str,
    in_ch: u64,
    mid: u64,
    out_ch: u64,
    stride: u64,
    downsample: bool,
) {
    let block_input = b.current_shape().clone();
    b.push(
        format!("{prefix}.conv1"),
        LayerKind::Conv2d {
            in_ch,
            out_ch: mid,
            kernel: 1,
            stride: 1,
            pad: 0,
            bias: false,
        },
    );
    b.push(
        format!("{prefix}.bn1"),
        LayerKind::BatchNorm2d { channels: mid },
    );
    b.push(
        format!("{prefix}.relu1"),
        LayerKind::Activation { f: ActKind::ReLU },
    );
    b.push(
        format!("{prefix}.conv2"),
        LayerKind::Conv2d {
            in_ch: mid,
            out_ch: mid,
            kernel: 3,
            stride,
            pad: 1,
            bias: false,
        },
    );
    b.push(
        format!("{prefix}.bn2"),
        LayerKind::BatchNorm2d { channels: mid },
    );
    b.push(
        format!("{prefix}.relu2"),
        LayerKind::Activation { f: ActKind::ReLU },
    );
    b.push(
        format!("{prefix}.conv3"),
        LayerKind::Conv2d {
            in_ch: mid,
            out_ch,
            kernel: 1,
            stride: 1,
            pad: 0,
            bias: false,
        },
    );
    b.push(
        format!("{prefix}.bn3"),
        LayerKind::BatchNorm2d { channels: out_ch },
    );
    if downsample {
        // The shortcut projection consumes the block input.
        b.set_shape(block_input);
        b.push(
            format!("{prefix}.downsample.conv"),
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel: 1,
                stride,
                pad: 0,
                bias: false,
            },
        );
        b.push(
            format!("{prefix}.downsample.bn"),
            LayerKind::BatchNorm2d { channels: out_ch },
        );
    }
    b.push(format!("{prefix}.add"), LayerKind::Add);
    b.push(
        format!("{prefix}.relu3"),
        LayerKind::Activation { f: ActKind::ReLU },
    );
}

/// Builds ResNet-50 for 224x224 ImageNet input (~25.6 M parameters).
pub fn resnet50() -> Model {
    let mut b = ModelBuilder::new("ResNet-50", Shape::chw(3, 224, 224));
    b.push(
        "conv1",
        LayerKind::Conv2d {
            in_ch: 3,
            out_ch: 64,
            kernel: 7,
            stride: 2,
            pad: 3,
            bias: false,
        },
    );
    b.push("bn1", LayerKind::BatchNorm2d { channels: 64 });
    b.push("relu", LayerKind::Activation { f: ActKind::ReLU });
    b.push(
        "maxpool",
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            pad: 1,
        },
    );

    // (blocks, mid channels, output channels, stride of first block).
    let stages: [(u64, u64, u64, u64); 4] = [
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    let mut in_ch = 64;
    for (si, (blocks, mid, out_ch, stride)) in stages.iter().enumerate() {
        for bi in 0..*blocks {
            let s = if bi == 0 { *stride } else { 1 };
            let ds = bi == 0;
            bottleneck(
                &mut b,
                &format!("layer{}.{}", si + 1, bi),
                in_ch,
                *mid,
                *out_ch,
                s,
                ds,
            );
            in_ch = *out_ch;
        }
    }

    b.push(
        "avgpool",
        LayerKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: 0,
            stride: 0,
            pad: 0,
        },
    );
    b.push(
        "fc",
        LayerKind::Linear {
            in_features: 2048,
            out_features: 1000,
            bias: true,
        },
    );
    b.push("loss", LayerKind::CrossEntropyLoss { classes: 1000 });
    b.build(
        Optimizer::Sgd { momentum: true },
        32,
        Application::ImageClassification,
        "ImageNet",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_published() {
        let m = resnet50();
        let params = m.param_count();
        // torchvision ResNet-50: 25,557,032 parameters.
        let published = 25_557_032u64;
        let err = (params as f64 - published as f64).abs() / published as f64;
        assert!(
            err < 0.01,
            "ResNet-50 params {params} vs published {published} ({err:.3})"
        );
    }

    #[test]
    fn structure() {
        let m = resnet50();
        m.validate().unwrap();
        // 16 bottleneck blocks, 53 convolutions total (49 + 4 downsample).
        let convs = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 53);
        // Final feature map is 2048 x 7 x 7 before pooling.
        let avgpool = m.layers.iter().find(|l| l.name == "avgpool").unwrap();
        assert_eq!(avgpool.input, Shape::chw(2048, 7, 7));
    }

    #[test]
    fn uses_sgd() {
        assert_eq!(resnet50().optimizer, Optimizer::Sgd { momentum: true });
    }
}
