//! Model descriptors and the builder used by the zoo.
//!
//! A [`Model`] is an ordered list of [`Layer`]s (the framework's execution
//! order — paper §3 observes DNN training executes layers sequentially on
//! one or two CPU threads) plus training configuration: the optimizer and
//! the default mini-batch size used in the paper's evaluation.

use crate::layer::{Layer, LayerKind};
use crate::optimizer::Optimizer;
use crate::shapes::{conv2d_out_shape, pool2d_out_shape, Shape};
use daydream_trace::LayerId;
use serde::{Deserialize, Serialize};

/// The application domain of a model (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// ImageNet-style image classification.
    ImageClassification,
    /// Sequence-to-sequence machine translation.
    MachineTranslation,
    /// Masked / span language modeling.
    LanguageModeling,
}

impl Application {
    /// Human-readable domain name.
    pub fn name(&self) -> &'static str {
        match self {
            Application::ImageClassification => "Image Classification",
            Application::MachineTranslation => "Machine Translation",
            Application::LanguageModeling => "Language Modeling",
        }
    }
}

/// A complete model description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Model name (e.g. `"ResNet-50"`).
    pub name: String,
    /// Layers in framework execution (forward) order.
    pub layers: Vec<Layer>,
    /// Optimizer used for training.
    pub optimizer: Optimizer,
    /// Mini-batch size used in the paper's evaluation.
    pub default_batch: u64,
    /// Application domain.
    pub application: Application,
    /// Dataset named in paper Table 2.
    pub dataset: String,
}

impl Model {
    /// Total learnable parameters.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.param_elems()).sum()
    }

    /// Number of learnable parameter tensors (drives optimizer kernel count).
    pub fn param_tensor_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_tensors().len()).sum()
    }

    /// Total gradient payload in bytes (FP32).
    pub fn gradient_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.gradient_bytes()).sum()
    }

    /// Looks up a layer by id.
    pub fn layer(&self, id: LayerId) -> Option<&Layer> {
        self.layers.iter().find(|l| l.id == id)
    }

    /// Layers owning parameters, in forward order.
    pub fn param_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.has_params())
    }

    /// Layers in backward execution order (reverse of forward).
    pub fn backward_order(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().rev()
    }

    /// Total GPU kernels one weight-update step launches for this model.
    pub fn weight_update_kernels(&self) -> usize {
        self.optimizer.total_kernels(self.param_tensor_count())
    }

    /// Checks structural invariants: non-empty, unique ids, unique names.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("model has no layers".into());
        }
        let mut ids: Vec<u32> = self.layers.iter().map(|l| l.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.layers.len() {
            return Err("duplicate layer ids".into());
        }
        let mut names: Vec<&str> = self.layers.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.layers.len() {
            return Err("duplicate layer names".into());
        }
        Ok(())
    }
}

/// Incremental model builder that threads activation shapes through layers.
///
/// # Examples
///
/// ```
/// use daydream_models::{ModelBuilder, LayerKind, ActKind, Optimizer, Application, Shape};
///
/// let model = ModelBuilder::new("tiny", Shape::chw(3, 32, 32))
///     .layer("conv1", LayerKind::Conv2d { in_ch: 3, out_ch: 8, kernel: 3, stride: 1, pad: 1, bias: false })
///     .layer("relu1", LayerKind::Activation { f: ActKind::ReLU })
///     .build(Optimizer::Sgd { momentum: true }, 32, Application::ImageClassification, "CIFAR-10");
/// assert_eq!(model.layers.len(), 2);
/// assert_eq!(model.param_count(), 3 * 8 * 9);
/// ```
pub struct ModelBuilder {
    name: String,
    layers: Vec<Layer>,
    cur: Shape,
    next_id: u32,
}

impl ModelBuilder {
    /// Starts a model with the given per-sample input shape.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        ModelBuilder {
            name: name.into(),
            layers: Vec::new(),
            cur: input,
            next_id: 0,
        }
    }

    /// Current activation shape (input to the next layer).
    pub fn current_shape(&self) -> &Shape {
        &self.cur
    }

    /// Overrides the current activation shape (used for branch points such
    /// as residual downsample paths).
    pub fn set_shape(&mut self, shape: Shape) -> &mut Self {
        self.cur = shape;
        self
    }

    /// Appends a layer, inferring its output shape from the current shape.
    ///
    /// # Panics
    ///
    /// Panics if the layer kind cannot infer an output shape
    /// ([`LayerKind::Concat`] — use [`ModelBuilder::layer_explicit`]).
    pub fn layer(mut self, name: impl Into<String>, kind: LayerKind) -> Self {
        self.push(name, kind);
        self
    }

    /// By-reference variant of [`ModelBuilder::layer`] for loops.
    pub fn push(&mut self, name: impl Into<String>, kind: LayerKind) -> &mut Self {
        let input = self.cur.clone();
        let output = infer_output(&kind, &input)
            .unwrap_or_else(|| panic!("layer kind {:?} needs an explicit output shape", kind));
        self.push_explicit(name, kind, input, output)
    }

    /// Appends a layer with explicit input and output shapes.
    pub fn push_explicit(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        input: Shape,
        output: Shape,
    ) -> &mut Self {
        let layer = Layer {
            id: LayerId(self.next_id),
            name: name.into(),
            kind,
            input,
            output: output.clone(),
        };
        self.next_id += 1;
        self.layers.push(layer);
        self.cur = output;
        self
    }

    /// Owned variant of [`ModelBuilder::push_explicit`].
    pub fn layer_explicit(
        mut self,
        name: impl Into<String>,
        kind: LayerKind,
        input: Shape,
        output: Shape,
    ) -> Self {
        self.push_explicit(name, kind, input, output);
        self
    }

    /// Finishes the model.
    pub fn build(
        self,
        optimizer: Optimizer,
        default_batch: u64,
        application: Application,
        dataset: impl Into<String>,
    ) -> Model {
        let model = Model {
            name: self.name,
            layers: self.layers,
            optimizer,
            default_batch,
            application,
            dataset: dataset.into(),
        };
        debug_assert!(model.validate().is_ok());
        model
    }
}

/// Infers the output shape of a layer kind from its input shape, or `None`
/// if the kind requires an explicit shape.
fn infer_output(kind: &LayerKind, input: &Shape) -> Option<Shape> {
    match kind {
        LayerKind::Conv2d {
            out_ch,
            kernel,
            stride,
            pad,
            ..
        } => Some(conv2d_out_shape(input, *out_ch, *kernel, *stride, *pad)),
        LayerKind::Pool {
            kind,
            kernel,
            stride,
            pad,
        } => match kind {
            crate::layer::PoolKind::GlobalAvg => Some(Shape::chw(input.channels(), 1, 1)),
            _ => Some(pool2d_out_shape(input, *kernel, *stride, *pad)),
        },
        LayerKind::Linear {
            in_features,
            out_features,
            ..
        } => {
            if input.0.last() == Some(in_features) {
                // Per-timestep application: replace the feature dimension.
                let mut dims = input.0.clone();
                *dims.last_mut()? = *out_features;
                Some(Shape(dims))
            } else {
                // The framework flattens the input (e.g. after global pooling).
                debug_assert_eq!(input.numel(), *in_features, "linear input mismatch");
                Some(Shape::features(*out_features))
            }
        }
        LayerKind::Embedding { dim, .. } => {
            let mut dims = input.0.clone();
            dims.push(*dim);
            Some(Shape(dims))
        }
        LayerKind::Lstm {
            hidden,
            dirs,
            seq_len,
            ..
        } => Some(Shape::seq(*seq_len, hidden * dirs)),
        LayerKind::CrossEntropyLoss { .. } => Some(Shape::scalar()),
        LayerKind::Concat => None,
        // Shape-preserving layers.
        LayerKind::BatchNorm2d { .. }
        | LayerKind::Activation { .. }
        | LayerKind::Attention { .. }
        | LayerKind::LayerNorm { .. }
        | LayerKind::Softmax
        | LayerKind::Dropout
        | LayerKind::Add => Some(input.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ActKind;

    fn tiny() -> Model {
        ModelBuilder::new("tiny", Shape::chw(3, 32, 32))
            .layer(
                "conv1",
                LayerKind::Conv2d {
                    in_ch: 3,
                    out_ch: 8,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: false,
                },
            )
            .layer("bn1", LayerKind::BatchNorm2d { channels: 8 })
            .layer("relu1", LayerKind::Activation { f: ActKind::ReLU })
            .layer(
                "pool",
                LayerKind::Pool {
                    kind: crate::layer::PoolKind::GlobalAvg,
                    kernel: 0,
                    stride: 0,
                    pad: 0,
                },
            )
            .layer(
                "fc",
                LayerKind::Linear {
                    in_features: 8,
                    out_features: 10,
                    bias: true,
                },
            )
            .layer("loss", LayerKind::CrossEntropyLoss { classes: 10 })
            .build(
                Optimizer::Sgd { momentum: true },
                32,
                Application::ImageClassification,
                "CIFAR-10",
            )
    }

    #[test]
    fn builder_threads_shapes() {
        let m = tiny();
        assert_eq!(m.layers[0].output, Shape::chw(8, 32, 32));
        assert_eq!(m.layers[3].output, Shape::chw(8, 1, 1));
        // GlobalAvgPool output flattens into the linear layer via numel.
        assert_eq!(m.layers[4].input.numel(), 8);
        assert_eq!(m.layers[5].output, Shape::scalar());
    }

    #[test]
    fn param_accounting() {
        let m = tiny();
        // conv 3*8*9 + bn 8+8 + fc 8*10+10.
        assert_eq!(m.param_count(), 216 + 16 + 90);
        assert_eq!(m.param_tensor_count(), 1 + 2 + 2);
        assert_eq!(m.gradient_bytes(), m.param_count() * 4);
        assert_eq!(m.weight_update_kernels(), 5 * 3 + 2);
    }

    #[test]
    fn validation_catches_duplicates() {
        let mut m = tiny();
        assert!(m.validate().is_ok());
        let dup = m.layers[0].clone();
        m.layers.push(dup);
        assert!(m.validate().is_err());
    }

    #[test]
    fn backward_order_is_reversed() {
        let m = tiny();
        let fwd: Vec<_> = m.layers.iter().map(|l| l.id).collect();
        let bwd: Vec<_> = m.backward_order().map(|l| l.id).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(bwd, rev);
    }

    #[test]
    fn layer_lookup() {
        let m = tiny();
        assert_eq!(m.layer(LayerId(2)).unwrap().name, "relu1");
        assert!(m.layer(LayerId(99)).is_none());
    }
}
