//! Training memory accounting.
//!
//! Answers the paper's motivating question *"Does GPU memory capacity limit
//! the performance of my model?"* (§1) and quantifies what the memory
//! optimizations of Table 1 (vDNN, Gist) actually buy. The model follows
//! the standard decomposition: parameters + gradients + optimizer state are
//! resident for the whole iteration; activations stashed for backward
//! accumulate across the forward pass and dominate at realistic batch
//! sizes.

use crate::graph::Model;
use crate::layer::LayerKind;
use crate::optimizer::Optimizer;
use serde::{Deserialize, Serialize};

/// Per-component memory footprint of one training iteration, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Model parameters (FP32).
    pub params: u64,
    /// Gradient buffers (FP32).
    pub gradients: u64,
    /// Optimizer state (momentum buffers; two moments for Adam).
    pub optimizer_state: u64,
    /// Activations stashed for the backward pass at the given batch size.
    pub activations: u64,
    /// Workspace / fragmentation allowance (cuDNN scratch, allocator slack).
    pub workspace: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.params + self.gradients + self.optimizer_state + self.activations + self.workspace
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }

    /// Returns `true` if the footprint fits a device with the given memory.
    pub fn fits(&self, device_bytes: u64) -> bool {
        self.total() <= device_bytes
    }
}

/// Bytes of stashed activation per sample for one layer.
///
/// Layers whose backward pass needs their input (convs, linears, pools,
/// normalizations) stash it; pure shape ops do not allocate new stash.
/// Public so graph-derived memory objectives (sweep reports) can price
/// exactly the layers a transformation touched.
pub fn stashed_activation_bytes(layer: &crate::layer::Layer) -> u64 {
    let out = layer.output.numel() * 4;
    match &layer.kind {
        // Backward needs input and (for BN) saved statistics.
        LayerKind::Conv2d { .. }
        | LayerKind::Linear { .. }
        | LayerKind::Pool { .. }
        | LayerKind::Attention { .. }
        | LayerKind::Lstm { .. } => layer.input.numel() * 4,
        LayerKind::BatchNorm2d { .. } | LayerKind::LayerNorm { .. } => layer.input.numel() * 4 + 64,
        // ReLU-family backward can run from the output; dropout keeps a mask.
        LayerKind::Activation { .. } | LayerKind::Softmax => out,
        LayerKind::Dropout => out + out / 4,
        LayerKind::Embedding { .. } => layer.input.numel() * 8,
        LayerKind::Add | LayerKind::Concat | LayerKind::CrossEntropyLoss { .. } => 0,
    }
}

/// Estimates the training memory footprint of a model at a batch size.
pub fn footprint(model: &Model, batch: u64) -> MemoryFootprint {
    let params = model.param_count() * 4;
    let gradients = params;
    let optimizer_state = match model.optimizer {
        Optimizer::Sgd { momentum: false } => 0,
        Optimizer::Sgd { momentum: true } => params,
        Optimizer::Adam => 2 * params,
    };
    let activations: u64 = model
        .layers
        .iter()
        .map(|l| stashed_activation_bytes(l) * batch)
        .sum();
    // cuDNN workspaces plus allocator slack: ~8% of live tensors, min 256 MB.
    let workspace = ((params + activations) / 12).max(256 << 20);
    MemoryFootprint {
        params,
        gradients,
        optimizer_state,
        activations,
        workspace,
    }
}

/// Largest batch size whose footprint fits a device, by doubling search.
///
/// Returns 0 if even batch 1 does not fit.
pub fn max_batch(model: &Model, device_bytes: u64) -> u64 {
    if !footprint(model, 1).fits(device_bytes) {
        return 0;
    }
    let mut lo = 1u64;
    let mut hi = 2u64;
    while footprint(model, hi).fits(device_bytes) {
        lo = hi;
        hi *= 2;
        if hi > 1 << 20 {
            return lo;
        }
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if footprint(model, mid).fits(device_bytes) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Activation bytes a vDNN(conv) policy offloads at a batch size: the
/// stashed inputs of all convolution layers.
pub fn vdnn_offloadable_bytes(model: &Model, batch: u64) -> u64 {
    model
        .layers
        .iter()
        .filter(|l| matches!(l.kind, LayerKind::Conv2d { .. }))
        .map(|l| stashed_activation_bytes(l) * batch)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn footprint_components_scale_sensibly() {
        let m = zoo::resnet50();
        let f32b = footprint(&m, 32);
        let f64b = footprint(&m, 64);
        // Static components are batch-independent.
        assert_eq!(f32b.params, f64b.params);
        assert_eq!(f32b.optimizer_state, f64b.optimizer_state);
        // Activations roughly double.
        let ratio = f64b.activations as f64 / f32b.activations as f64;
        assert!((1.9..2.1).contains(&ratio));
    }

    #[test]
    fn adam_doubles_state_vs_sgd_momentum() {
        let bert = zoo::bert_base();
        let f = footprint(&bert, 8);
        assert_eq!(f.optimizer_state, 2 * f.params);
        let resnet = zoo::resnet50();
        let g = footprint(&resnet, 32);
        assert_eq!(g.optimizer_state, g.params);
    }

    #[test]
    fn paper_batch_sizes_fit_an_11gb_2080ti() {
        let eleven_gb = 11u64 << 30;
        for m in zoo::all_models() {
            let f = footprint(&m, m.default_batch);
            assert!(
                f.fits(eleven_gb),
                "{} at batch {} needs {:.1} GiB",
                m.name,
                m.default_batch,
                f.total_gib()
            );
        }
    }

    #[test]
    fn max_batch_is_maximal() {
        let m = zoo::resnet50();
        let eleven_gb = 11u64 << 30;
        let b = max_batch(&m, eleven_gb);
        assert!(b >= m.default_batch, "paper batch must be feasible");
        assert!(footprint(&m, b).fits(eleven_gb));
        assert!(!footprint(&m, b + 1).fits(eleven_gb));
    }

    #[test]
    fn vdnn_offload_is_a_large_activation_share() {
        let m = zoo::vgg19();
        let f = footprint(&m, 32);
        let off = vdnn_offloadable_bytes(&m, 32);
        assert!(off > 0);
        assert!(off < f.activations);
        // Convolution inputs are a major share of a CNN's stash (ReLU and
        // pooling stashes make up the rest).
        assert!(off as f64 / f.activations as f64 > 0.25);
    }

    #[test]
    fn tiny_device_fits_nothing() {
        let m = zoo::bert_large();
        assert_eq!(
            max_batch(&m, 1 << 30),
            0,
            "BERT-large cannot train in 1 GiB"
        );
    }
}
