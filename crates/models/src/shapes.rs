//! Tensor shape arithmetic for per-sample activations.
//!
//! Shapes exclude the batch dimension; mini-batch size is supplied when ops
//! are materialized, so one model description serves any batch size.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-sample tensor shape (batch dimension excluded).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<u64>);

impl Shape {
    /// Builds a shape from dimensions.
    pub fn new(dims: &[u64]) -> Self {
        Shape(dims.to_vec())
    }

    /// A scalar (zero-dimensional) shape.
    pub fn scalar() -> Self {
        Shape(vec![])
    }

    /// Number of elements per sample.
    pub fn numel(&self) -> u64 {
        self.0.iter().product()
    }

    /// CNN feature-map constructor: `[channels, height, width]`.
    pub fn chw(c: u64, h: u64, w: u64) -> Self {
        Shape(vec![c, h, w])
    }

    /// Sequence feature constructor: `[seq_len, features]`.
    pub fn seq(len: u64, features: u64) -> Self {
        Shape(vec![len, features])
    }

    /// Flat feature-vector constructor: `[features]`.
    pub fn features(n: u64) -> Self {
        Shape(vec![n])
    }

    /// Channels of a `[C, H, W]` shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not three-dimensional.
    pub fn channels(&self) -> u64 {
        assert_eq!(self.0.len(), 3, "channels() requires a CHW shape");
        self.0[0]
    }

    /// Spatial size `H * W` of a `[C, H, W]` shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not three-dimensional.
    pub fn spatial(&self) -> u64 {
        assert_eq!(self.0.len(), 3, "spatial() requires a CHW shape");
        self.0[1] * self.0[2]
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Output spatial extent of a convolution/pooling along one dimension.
///
/// Uses the standard floor formula `(input + 2*pad - kernel) / stride + 1`.
pub fn conv_out_dim(input: u64, kernel: u64, stride: u64, pad: u64) -> u64 {
    (input + 2 * pad - kernel) / stride + 1
}

/// Output shape of a 2-D convolution over a `[C, H, W]` input.
pub fn conv2d_out_shape(input: &Shape, out_ch: u64, kernel: u64, stride: u64, pad: u64) -> Shape {
    let h = conv_out_dim(input.0[1], kernel, stride, pad);
    let w = conv_out_dim(input.0[2], kernel, stride, pad);
    Shape::chw(out_ch, h, w)
}

/// Output shape of a 2-D pooling over a `[C, H, W]` input.
pub fn pool2d_out_shape(input: &Shape, kernel: u64, stride: u64, pad: u64) -> Shape {
    conv2d_out_shape(input, input.channels(), kernel, stride, pad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_products() {
        assert_eq!(Shape::chw(64, 56, 56).numel(), 64 * 56 * 56);
        assert_eq!(Shape::features(1000).numel(), 1000);
        assert_eq!(Shape::scalar().numel(), 1);
    }

    #[test]
    fn conv_dims_resnet_stem() {
        // ResNet-50 stem: 224x224 -> 7x7/2 pad 3 -> 112x112.
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
        // 3x3 maxpool stride 2 pad 1: 112 -> 56.
        assert_eq!(conv_out_dim(112, 3, 2, 1), 56);
        // 1x1 stride 1: preserves extent.
        assert_eq!(conv_out_dim(56, 1, 1, 0), 56);
    }

    #[test]
    fn conv2d_shape() {
        let input = Shape::chw(3, 224, 224);
        let out = conv2d_out_shape(&input, 64, 7, 2, 3);
        assert_eq!(out, Shape::chw(64, 112, 112));
    }

    #[test]
    fn pool_shape_keeps_channels() {
        let input = Shape::chw(64, 112, 112);
        assert_eq!(pool2d_out_shape(&input, 3, 2, 1), Shape::chw(64, 56, 56));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::chw(64, 56, 56).to_string(), "[64x56x56]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
