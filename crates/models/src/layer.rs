//! Layer descriptors: parameters, shapes, and per-phase kernel decompositions.
//!
//! A [`Layer`] knows how many parameter tensors it owns and which GPU
//! kernels ([`OpSpec`]s) its forward and backward phases launch. Weight
//! update is generated separately per optimizer (see [`crate::optimizer`])
//! because it depends on the training configuration, not the architecture.

use crate::op::{OpClass, OpSpec};
use crate::shapes::Shape;
use daydream_trace::LayerId;
use serde::{Deserialize, Serialize};

/// Bytes per element in single precision; all op byte counts are FP32 and
/// scaled by the device model for reduced precision.
pub const F32_BYTES: f64 = 4.0;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActKind {
    /// Rectified linear unit.
    ReLU,
    /// Gaussian error linear unit (BERT).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActKind {
    /// Approximate FLOPs per element.
    fn flops_per_elem(&self) -> f64 {
        match self {
            ActKind::ReLU => 1.0,
            ActKind::Gelu => 8.0,
            ActKind::Tanh => 4.0,
            ActKind::Sigmoid => 4.0,
        }
    }

    /// Display name used in layer labels.
    pub fn name(&self) -> &'static str {
        match self {
            ActKind::ReLU => "ReLU",
            ActKind::Gelu => "GELU",
            ActKind::Tanh => "Tanh",
            ActKind::Sigmoid => "Sigmoid",
        }
    }
}

/// Pooling flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
    /// Global average pooling to `1x1`.
    GlobalAvg,
}

/// Architectural layer types found in the paper's five models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d {
        in_ch: u64,
        out_ch: u64,
        kernel: u64,
        stride: u64,
        pad: u64,
        bias: bool,
    },
    /// Batch normalization over channels.
    BatchNorm2d { channels: u64 },
    /// Element-wise activation.
    Activation { f: ActKind },
    /// Spatial pooling.
    Pool {
        kind: PoolKind,
        kernel: u64,
        stride: u64,
        pad: u64,
    },
    /// Dense (fully connected) layer; 2-D or per-timestep 3-D input.
    Linear {
        in_features: u64,
        out_features: u64,
        bias: bool,
    },
    /// Token embedding lookup.
    Embedding { vocab: u64, dim: u64 },
    /// (Stacked-direction) LSTM layer over a sequence.
    ///
    /// With `stepwise: false` the layer runs as one fused cuDNN sweep (a few
    /// large kernels); with `stepwise: true` the framework loops over
    /// timesteps in Python (GNMT's decoder), launching a small kernel group
    /// per step — the many-tiny-kernels pattern that makes Seq2Seq
    /// CPU-launch-bound in paper Fig. 6.
    Lstm {
        input_size: u64,
        hidden: u64,
        dirs: u64,
        seq_len: u64,
        stepwise: bool,
    },
    /// Scaled dot-product attention core (projections are separate layers).
    ///
    /// `stepwise: true` evaluates attention once per decoder timestep.
    Attention {
        heads: u64,
        model_dim: u64,
        seq_q: u64,
        seq_k: u64,
        stepwise: bool,
    },
    /// Layer normalization.
    LayerNorm { dim: u64 },
    /// Standalone softmax.
    Softmax,
    /// Dropout.
    Dropout,
    /// Residual addition.
    Add,
    /// Channel concatenation (DenseNet).
    Concat,
    /// Cross-entropy loss (softmax + NLL + loss readback point).
    CrossEntropyLoss { classes: u64 },
}

impl LayerKind {
    /// Coarse type name used by select-by-layer transformations
    /// (e.g. "select all `ReLU` layers" in the reconstruct-batchnorm model).
    pub fn type_name(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { .. } => "Conv2d",
            LayerKind::BatchNorm2d { .. } => "BatchNorm",
            LayerKind::Activation { f } => f.name(),
            LayerKind::Pool { .. } => "Pool",
            LayerKind::Linear { .. } => "Linear",
            LayerKind::Embedding { .. } => "Embedding",
            LayerKind::Lstm { .. } => "LSTM",
            LayerKind::Attention { .. } => "Attention",
            LayerKind::LayerNorm { .. } => "LayerNorm",
            LayerKind::Softmax => "Softmax",
            LayerKind::Dropout => "Dropout",
            LayerKind::Add => "Add",
            LayerKind::Concat => "Concat",
            LayerKind::CrossEntropyLoss { .. } => "CrossEntropyLoss",
        }
    }
}

/// One layer of a model, with everything Daydream needs to reason about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Stable id shared with trace markers.
    pub id: LayerId,
    /// Unique human-readable name (e.g. `"layer2.0.conv1"`).
    pub name: String,
    /// Architectural type and hyper-parameters.
    pub kind: LayerKind,
    /// Per-sample input shape.
    pub input: Shape,
    /// Per-sample output shape.
    pub output: Shape,
}

impl Layer {
    /// Element counts of each learnable parameter tensor of the layer.
    ///
    /// The optimizer launches a kernel group per tensor, so tensor count —
    /// not just total parameters — drives weight-update cost (paper §6.3).
    pub fn param_tensors(&self) -> Vec<u64> {
        match &self.kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                bias,
                ..
            } => {
                let mut t = vec![out_ch * in_ch * kernel * kernel];
                if *bias {
                    t.push(*out_ch);
                }
                t
            }
            LayerKind::BatchNorm2d { channels } => vec![*channels, *channels],
            LayerKind::Linear {
                in_features,
                out_features,
                bias,
            } => {
                let mut t = vec![in_features * out_features];
                if *bias {
                    t.push(*out_features);
                }
                t
            }
            LayerKind::Embedding { vocab, dim } => vec![vocab * dim],
            LayerKind::Lstm {
                input_size,
                hidden,
                dirs,
                ..
            } => {
                let mut t = Vec::new();
                for _ in 0..*dirs {
                    t.push(4 * hidden * input_size); // w_ih
                    t.push(4 * hidden * hidden); // w_hh
                    t.push(4 * hidden); // b_ih
                    t.push(4 * hidden); // b_hh
                }
                t
            }
            LayerKind::LayerNorm { dim } => vec![*dim, *dim],
            _ => vec![],
        }
    }

    /// Total learnable parameters of the layer.
    pub fn param_elems(&self) -> u64 {
        self.param_tensors().iter().sum()
    }

    /// Returns `true` if the layer has learnable parameters.
    pub fn has_params(&self) -> bool {
        !self.param_tensors().is_empty()
    }

    /// Gradient payload in bytes (FP32 gradients, as frameworks keep even
    /// under mixed precision).
    pub fn gradient_bytes(&self) -> u64 {
        self.param_elems() * 4
    }

    /// The GPU kernels launched by this layer's forward phase.
    pub fn fwd_ops(&self, batch: u64) -> Vec<OpSpec> {
        let b = batch as f64;
        let in_n = self.input.numel() as f64;
        let out_n = self.output.numel() as f64;
        match &self.kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                bias,
                ..
            } => {
                let spatial_out = (self.output.numel() / out_ch) as f64;
                let flops = 2.0
                    * b
                    * spatial_out
                    * (*out_ch as f64)
                    * (*in_ch as f64)
                    * (kernel * kernel) as f64;
                let weight = (out_ch * in_ch * kernel * kernel) as f64;
                let bytes = F32_BYTES * (b * (in_n + out_n) + weight);
                let mut ops = vec![OpSpec::new("conv_fwd", OpClass::Conv, flops, bytes)];
                if *bias {
                    ops.push(OpSpec::new(
                        "bias_add",
                        OpClass::Elementwise,
                        b * out_n,
                        F32_BYTES * 2.0 * b * out_n,
                    ));
                }
                ops
            }
            LayerKind::BatchNorm2d { .. } => {
                vec![OpSpec::new(
                    "bn_fwd",
                    OpClass::BatchNorm,
                    10.0 * b * out_n,
                    F32_BYTES * 4.0 * b * out_n,
                )]
            }
            LayerKind::Activation { f } => {
                vec![OpSpec::new(
                    format!("{}_fwd", f.name().to_lowercase()),
                    OpClass::Elementwise,
                    f.flops_per_elem() * b * out_n,
                    F32_BYTES * 2.0 * b * out_n,
                )]
            }
            LayerKind::Pool { .. } => {
                vec![OpSpec::new(
                    "pool_fwd",
                    OpClass::Pool,
                    b * in_n,
                    F32_BYTES * b * (in_n + out_n),
                )]
            }
            LayerKind::Linear {
                in_features,
                out_features,
                ..
            } => {
                // 3-D inputs ([seq, features]) multiply per timestep.
                let rows = b * (in_n / *in_features as f64);
                let flops = 2.0 * rows * (*in_features as f64) * (*out_features as f64);
                let weight = (in_features * out_features) as f64;
                let bytes = F32_BYTES * (rows * (*in_features + *out_features) as f64 + weight);
                vec![OpSpec::new("sgemm_fwd", OpClass::Gemm, flops, bytes)]
            }
            LayerKind::Embedding { dim, .. } => {
                let tokens = b * (in_n.max(1.0));
                vec![OpSpec::new(
                    "embedding_gather",
                    OpClass::Embedding,
                    0.0,
                    F32_BYTES * 2.0 * tokens * *dim as f64,
                )]
            }
            LayerKind::Lstm {
                input_size,
                hidden,
                dirs,
                seq_len,
                stepwise,
            } => {
                let (i, h, d, s) = (
                    *input_size as f64,
                    *hidden as f64,
                    *dirs as f64,
                    *seq_len as f64,
                );
                let flops = d * s * b * 8.0 * h * (i + h);
                let weight = d * 4.0 * h * (i + h);
                let bytes = F32_BYTES * (d * s * b * (i + 2.0 * h) + weight);
                if *stepwise {
                    // Python loop over timesteps: per step, an input gemm, a
                    // recurrent gemm, and the fused gate pointwise kernel.
                    let mut ops = Vec::with_capacity(*seq_len as usize * 3);
                    let step_flops = flops / s;
                    let step_bytes = bytes / s;
                    for t in 0..*seq_len {
                        ops.push(OpSpec::new(
                            format!("lstmcell_ih_t{t}"),
                            OpClass::Gemm,
                            step_flops * (i / (i + h)),
                            step_bytes / 2.0,
                        ));
                        ops.push(OpSpec::new(
                            format!("lstmcell_hh_t{t}"),
                            OpClass::Gemm,
                            step_flops * (h / (i + h)),
                            step_bytes / 2.0,
                        ));
                        ops.push(OpSpec::new(
                            format!("lstmcell_gates_t{t}"),
                            OpClass::Elementwise,
                            d * b * 9.0 * h,
                            F32_BYTES * 3.0 * d * b * h,
                        ));
                    }
                    ops
                } else {
                    vec![
                        OpSpec::new("lstm_fwd", OpClass::RnnFused, flops, bytes),
                        OpSpec::new(
                            "lstm_pointwise",
                            OpClass::Elementwise,
                            d * s * b * 9.0 * h,
                            F32_BYTES * 3.0 * d * s * b * h,
                        ),
                    ]
                }
            }
            LayerKind::Attention {
                heads,
                model_dim,
                seq_q,
                seq_k,
                stepwise,
            } => {
                let (hh, md, sq, sk) = (
                    *heads as f64,
                    *model_dim as f64,
                    *seq_q as f64,
                    *seq_k as f64,
                );
                let score_flops = 2.0 * b * sq * sk * md;
                let score_bytes = F32_BYTES * b * (sq * md + sk * md + hh * sq * sk);
                if *stepwise {
                    // One query row per decoder step: score gemv, softmax,
                    // context gemv, and the context-concat copy.
                    let mut ops = Vec::with_capacity(*seq_q as usize * 4);
                    for t in 0..*seq_q {
                        ops.push(OpSpec::new(
                            format!("attn_score_t{t}"),
                            OpClass::Gemm,
                            2.0 * b * sk * md,
                            F32_BYTES * b * (sk * md + md + hh * sk),
                        ));
                        ops.push(OpSpec::new(
                            format!("attn_softmax_t{t}"),
                            OpClass::Softmax,
                            5.0 * b * hh * sk,
                            F32_BYTES * 2.0 * b * hh * sk,
                        ));
                        ops.push(OpSpec::new(
                            format!("attn_context_t{t}"),
                            OpClass::Gemm,
                            2.0 * b * sk * md,
                            F32_BYTES * b * (sk * md + md + hh * sk),
                        ));
                        ops.push(OpSpec::new(
                            format!("attn_concat_t{t}"),
                            OpClass::Elementwise,
                            0.0,
                            F32_BYTES * 2.0 * b * md,
                        ));
                    }
                    ops
                } else {
                    vec![
                        OpSpec::new(
                            "attn_scores",
                            OpClass::BatchedGemm,
                            score_flops,
                            score_bytes,
                        ),
                        OpSpec::new(
                            "attn_softmax",
                            OpClass::Softmax,
                            5.0 * b * hh * sq * sk,
                            F32_BYTES * 2.0 * b * hh * sq * sk,
                        ),
                        OpSpec::new(
                            "attn_context",
                            OpClass::BatchedGemm,
                            score_flops,
                            score_bytes,
                        ),
                    ]
                }
            }
            LayerKind::LayerNorm { .. } => {
                vec![OpSpec::new(
                    "ln_fwd",
                    OpClass::LayerNorm,
                    8.0 * b * out_n,
                    F32_BYTES * 3.0 * b * out_n,
                )]
            }
            LayerKind::Softmax => {
                vec![OpSpec::new(
                    "softmax_fwd",
                    OpClass::Softmax,
                    5.0 * b * out_n,
                    F32_BYTES * 2.0 * b * out_n,
                )]
            }
            LayerKind::Dropout => {
                vec![OpSpec::new(
                    "dropout_fwd",
                    OpClass::Dropout,
                    2.0 * b * out_n,
                    F32_BYTES * 3.0 * b * out_n,
                )]
            }
            LayerKind::Add => {
                vec![OpSpec::new(
                    "residual_add",
                    OpClass::Elementwise,
                    b * out_n,
                    F32_BYTES * 3.0 * b * out_n,
                )]
            }
            LayerKind::Concat => {
                vec![OpSpec::new(
                    "concat",
                    OpClass::Elementwise,
                    0.0,
                    F32_BYTES * 2.0 * b * out_n,
                )]
            }
            LayerKind::CrossEntropyLoss { classes } => {
                let c = *classes as f64;
                let rows = b * (in_n / c).max(1.0);
                vec![
                    OpSpec::new(
                        "loss_softmax",
                        OpClass::Softmax,
                        5.0 * rows * c,
                        F32_BYTES * 2.0 * rows * c,
                    ),
                    OpSpec::new(
                        "loss_reduce",
                        OpClass::Reduction,
                        rows * c,
                        F32_BYTES * rows * c,
                    ),
                ]
            }
        }
    }

    /// The GPU kernels launched by this layer's backward phase.
    pub fn bwd_ops(&self, batch: u64) -> Vec<OpSpec> {
        let b = batch as f64;
        let in_n = self.input.numel() as f64;
        let out_n = self.output.numel() as f64;
        match &self.kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                bias,
                ..
            } => {
                let spatial_out = (self.output.numel() / out_ch) as f64;
                let flops = 2.0
                    * b
                    * spatial_out
                    * (*out_ch as f64)
                    * (*in_ch as f64)
                    * (kernel * kernel) as f64;
                let weight = (out_ch * in_ch * kernel * kernel) as f64;
                let bytes = F32_BYTES * (b * (in_n + out_n) + weight);
                let mut ops = vec![
                    OpSpec::new("conv_dgrad", OpClass::Conv, flops, bytes),
                    OpSpec::new("conv_wgrad", OpClass::Conv, flops, bytes),
                ];
                if *bias {
                    ops.push(OpSpec::new(
                        "bias_grad",
                        OpClass::Reduction,
                        b * out_n,
                        F32_BYTES * b * out_n,
                    ));
                }
                ops
            }
            LayerKind::BatchNorm2d { .. } => {
                vec![OpSpec::new(
                    "bn_bwd",
                    OpClass::BatchNorm,
                    15.0 * b * out_n,
                    F32_BYTES * 5.0 * b * out_n,
                )]
            }
            LayerKind::Activation { f } => {
                vec![OpSpec::new(
                    format!("{}_bwd", f.name().to_lowercase()),
                    OpClass::Elementwise,
                    f.flops_per_elem() * b * out_n,
                    F32_BYTES * 3.0 * b * out_n,
                )]
            }
            LayerKind::Pool { .. } => {
                vec![OpSpec::new(
                    "pool_bwd",
                    OpClass::Pool,
                    b * in_n,
                    F32_BYTES * b * (in_n + out_n),
                )]
            }
            LayerKind::Linear {
                in_features,
                out_features,
                bias,
            } => {
                let rows = b * (in_n / *in_features as f64);
                let flops = 2.0 * rows * (*in_features as f64) * (*out_features as f64);
                let weight = (in_features * out_features) as f64;
                let bytes = F32_BYTES * (rows * (*in_features + *out_features) as f64 + weight);
                let mut ops = vec![
                    OpSpec::new("sgemm_dgrad", OpClass::Gemm, flops, bytes),
                    OpSpec::new("sgemm_wgrad", OpClass::Gemm, flops, bytes),
                ];
                if *bias {
                    ops.push(OpSpec::new(
                        "bias_grad",
                        OpClass::Reduction,
                        rows * *out_features as f64,
                        F32_BYTES * rows * *out_features as f64,
                    ));
                }
                ops
            }
            LayerKind::Embedding { dim, .. } => {
                let tokens = b * in_n.max(1.0);
                vec![OpSpec::new(
                    "embedding_scatter",
                    OpClass::Embedding,
                    tokens * *dim as f64,
                    F32_BYTES * 2.0 * tokens * *dim as f64,
                )]
            }
            LayerKind::Lstm {
                input_size,
                hidden,
                dirs,
                seq_len,
                stepwise,
            } => {
                let (i, h, d, s) = (
                    *input_size as f64,
                    *hidden as f64,
                    *dirs as f64,
                    *seq_len as f64,
                );
                let flops = d * s * b * 8.0 * h * (i + h);
                let weight = d * 4.0 * h * (i + h);
                let bytes = F32_BYTES * (d * s * b * (i + 2.0 * h) + weight);
                if *stepwise {
                    // Per step: gate pointwise backward, two dgrad gemms,
                    // and two weight-gradient accumulation gemms.
                    let mut ops = Vec::with_capacity(*seq_len as usize * 5);
                    let step_flops = flops / s;
                    let step_bytes = bytes / s;
                    for t in 0..*seq_len {
                        ops.push(OpSpec::new(
                            format!("lstmcell_gates_bwd_t{t}"),
                            OpClass::Elementwise,
                            d * b * 9.0 * h,
                            F32_BYTES * 4.0 * d * b * h,
                        ));
                        for name in ["dgrad_ih", "dgrad_hh", "wgrad_ih", "wgrad_hh"] {
                            ops.push(OpSpec::new(
                                format!("lstmcell_{name}_t{t}"),
                                OpClass::Gemm,
                                step_flops / 2.0,
                                step_bytes / 2.0,
                            ));
                        }
                    }
                    ops
                } else {
                    vec![
                        OpSpec::new("lstm_dgrad", OpClass::RnnFused, flops, bytes),
                        OpSpec::new("lstm_wgrad", OpClass::RnnFused, flops, bytes),
                        OpSpec::new(
                            "lstm_pointwise_bwd",
                            OpClass::Elementwise,
                            d * s * b * 9.0 * h,
                            F32_BYTES * 3.0 * d * s * b * h,
                        ),
                    ]
                }
            }
            LayerKind::Attention {
                heads,
                model_dim,
                seq_q,
                seq_k,
                stepwise,
            } => {
                let (hh, md, sq, sk) = (
                    *heads as f64,
                    *model_dim as f64,
                    *seq_q as f64,
                    *seq_k as f64,
                );
                let score_flops = 2.0 * b * sq * sk * md;
                let score_bytes = F32_BYTES * b * (sq * md + sk * md + hh * sq * sk);
                if *stepwise {
                    let mut ops = Vec::with_capacity(*seq_q as usize * 4);
                    for t in 0..*seq_q {
                        ops.push(OpSpec::new(
                            format!("attn_bwd_ctx_t{t}"),
                            OpClass::Gemm,
                            2.0 * b * sk * md,
                            F32_BYTES * b * (sk * md + md + hh * sk),
                        ));
                        ops.push(OpSpec::new(
                            format!("attn_softmax_bwd_t{t}"),
                            OpClass::Softmax,
                            5.0 * b * hh * sk,
                            F32_BYTES * 3.0 * b * hh * sk,
                        ));
                        ops.push(OpSpec::new(
                            format!("attn_bwd_score_t{t}"),
                            OpClass::Gemm,
                            2.0 * b * sk * md,
                            F32_BYTES * b * (sk * md + md + hh * sk),
                        ));
                        ops.push(OpSpec::new(
                            format!("attn_bwd_split_t{t}"),
                            OpClass::Elementwise,
                            0.0,
                            F32_BYTES * 2.0 * b * md,
                        ));
                    }
                    ops
                } else {
                    vec![
                        OpSpec::new(
                            "attn_dgrad_q",
                            OpClass::BatchedGemm,
                            score_flops,
                            score_bytes,
                        ),
                        OpSpec::new(
                            "attn_dgrad_k",
                            OpClass::BatchedGemm,
                            score_flops,
                            score_bytes,
                        ),
                        OpSpec::new(
                            "attn_softmax_bwd",
                            OpClass::Softmax,
                            5.0 * b * hh * sq * sk,
                            F32_BYTES * 3.0 * b * hh * sq * sk,
                        ),
                        OpSpec::new(
                            "attn_dgrad_v",
                            OpClass::BatchedGemm,
                            score_flops,
                            score_bytes,
                        ),
                        OpSpec::new(
                            "attn_dgrad_scores",
                            OpClass::BatchedGemm,
                            score_flops,
                            score_bytes,
                        ),
                    ]
                }
            }
            LayerKind::LayerNorm { .. } => {
                vec![
                    OpSpec::new(
                        "ln_bwd",
                        OpClass::LayerNorm,
                        12.0 * b * out_n,
                        F32_BYTES * 4.0 * b * out_n,
                    ),
                    OpSpec::new(
                        "ln_param_grad",
                        OpClass::Reduction,
                        2.0 * b * out_n,
                        F32_BYTES * b * out_n,
                    ),
                ]
            }
            LayerKind::Softmax => {
                vec![OpSpec::new(
                    "softmax_bwd",
                    OpClass::Softmax,
                    5.0 * b * out_n,
                    F32_BYTES * 3.0 * b * out_n,
                )]
            }
            LayerKind::Dropout => {
                vec![OpSpec::new(
                    "dropout_bwd",
                    OpClass::Elementwise,
                    b * out_n,
                    F32_BYTES * 3.0 * b * out_n,
                )]
            }
            // The gradient of an addition is the identity: no kernels.
            LayerKind::Add => vec![],
            LayerKind::Concat => {
                vec![OpSpec::new(
                    "concat_bwd",
                    OpClass::Elementwise,
                    0.0,
                    F32_BYTES * 2.0 * b * out_n,
                )]
            }
            LayerKind::CrossEntropyLoss { classes } => {
                let c = *classes as f64;
                let rows = b * (in_n / c).max(1.0);
                vec![OpSpec::new(
                    "loss_bwd",
                    OpClass::Elementwise,
                    rows * c,
                    F32_BYTES * 2.0 * rows * c,
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::conv2d_out_shape;

    fn conv_layer() -> Layer {
        let input = Shape::chw(64, 56, 56);
        let output = conv2d_out_shape(&input, 64, 3, 1, 1);
        Layer {
            id: LayerId(0),
            name: "conv".into(),
            kind: LayerKind::Conv2d {
                in_ch: 64,
                out_ch: 64,
                kernel: 3,
                stride: 1,
                pad: 1,
                bias: false,
            },
            input,
            output,
        }
    }

    #[test]
    fn conv_params_and_flops() {
        let l = conv_layer();
        assert_eq!(l.param_elems(), 64 * 64 * 9);
        assert_eq!(l.param_tensors().len(), 1);
        let ops = l.fwd_ops(32);
        assert_eq!(ops.len(), 1);
        // 2 * B * H*W * Cout * Cin * k^2.
        let expect = 2.0 * 32.0 * (56.0 * 56.0) * 64.0 * 64.0 * 9.0;
        assert!((ops[0].flops - expect).abs() < 1.0);
        // Backward has dgrad + wgrad.
        assert_eq!(l.bwd_ops(32).len(), 2);
    }

    #[test]
    fn linear_flops_scale_with_batch() {
        let l = Layer {
            id: LayerId(1),
            name: "fc".into(),
            kind: LayerKind::Linear {
                in_features: 2048,
                out_features: 1000,
                bias: true,
            },
            input: Shape::features(2048),
            output: Shape::features(1000),
        };
        let f1 = l.fwd_ops(1)[0].flops;
        let f8 = l.fwd_ops(8)[0].flops;
        assert!((f8 / f1 - 8.0).abs() < 1e-9);
        assert_eq!(l.param_elems(), 2048 * 1000 + 1000);
        // Bias adds a reduction kernel in backward.
        assert_eq!(l.bwd_ops(4).len(), 3);
    }

    #[test]
    fn linear_handles_sequence_input() {
        let l = Layer {
            id: LayerId(2),
            name: "proj".into(),
            kind: LayerKind::Linear {
                in_features: 768,
                out_features: 768,
                bias: true,
            },
            input: Shape::seq(384, 768),
            output: Shape::seq(384, 768),
        };
        let f = l.fwd_ops(4)[0].flops;
        let expect = 2.0 * 4.0 * 384.0 * 768.0 * 768.0;
        assert!((f - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn lstm_param_tensors() {
        let l = Layer {
            id: LayerId(3),
            name: "lstm".into(),
            kind: LayerKind::Lstm {
                input_size: 1024,
                hidden: 1024,
                dirs: 2,
                seq_len: 50,
                stepwise: false,
            },
            input: Shape::seq(50, 1024),
            output: Shape::seq(50, 2048),
        };
        assert_eq!(l.param_tensors().len(), 8);
        let expect = 2 * (4 * 1024 * 1024 + 4 * 1024 * 1024 + 4 * 1024 + 4 * 1024);
        assert_eq!(l.param_elems(), expect);
        // Backward launches two RNN sweeps plus pointwise.
        assert_eq!(l.bwd_ops(32).len(), 3);
    }

    #[test]
    fn bn_is_memory_bound() {
        let l = Layer {
            id: LayerId(4),
            name: "bn".into(),
            kind: LayerKind::BatchNorm2d { channels: 64 },
            input: Shape::chw(64, 56, 56),
            output: Shape::chw(64, 56, 56),
        };
        let op = &l.fwd_ops(32)[0];
        assert!(!op.class.is_compute_bound());
        assert_eq!(l.param_tensors(), vec![64, 64]);
    }

    #[test]
    fn add_backward_is_free() {
        let l = Layer {
            id: LayerId(5),
            name: "add".into(),
            kind: LayerKind::Add,
            input: Shape::chw(256, 56, 56),
            output: Shape::chw(256, 56, 56),
        };
        assert!(l.fwd_ops(8).len() == 1);
        assert!(l.bwd_ops(8).is_empty());
        assert!(!l.has_params());
    }

    #[test]
    fn attention_kernel_counts() {
        let l = Layer {
            id: LayerId(6),
            name: "attn".into(),
            kind: LayerKind::Attention {
                heads: 12,
                model_dim: 768,
                seq_q: 384,
                seq_k: 384,
                stepwise: false,
            },
            input: Shape::seq(384, 768),
            output: Shape::seq(384, 768),
        };
        assert_eq!(l.fwd_ops(4).len(), 3);
        assert_eq!(l.bwd_ops(4).len(), 5);
        assert!(!l.has_params());
    }

    #[test]
    fn gradient_bytes_are_fp32() {
        let l = conv_layer();
        assert_eq!(l.gradient_bytes(), l.param_elems() * 4);
    }

    #[test]
    fn type_names() {
        assert_eq!(conv_layer().kind.type_name(), "Conv2d");
        assert_eq!(
            LayerKind::Activation { f: ActKind::ReLU }.type_name(),
            "ReLU"
        );
        assert_eq!(
            LayerKind::BatchNorm2d { channels: 1 }.type_name(),
            "BatchNorm"
        );
    }
}
