//! Optimizer weight-update kernel schedules.
//!
//! The weight-update phase launches a group of element-wise kernels for
//! every parameter tensor. Its cost is therefore driven by *tensor count*,
//! not parameter count: BERT-large's unfused Adam step launches thousands of
//! tiny kernels (5164 in the paper, §6.3), making the CPU launch path the
//! bottleneck — exactly what the FusedAdam what-if removes.

use crate::op::{OpClass, OpSpec};
use serde::{Deserialize, Serialize};

/// Training optimizer used for a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent (optionally with momentum).
    Sgd {
        /// Whether a momentum buffer is maintained.
        momentum: bool,
    },
    /// Adam: first/second moment updates, bias correction, and step.
    Adam,
}

impl Optimizer {
    /// Number of element-wise kernels launched per parameter tensor.
    ///
    /// Calibrated against the paper's BERT counts (§6.3): an unfused PyTorch
    /// Adam step runs ~13 small kernels per tensor (moment updates, bias
    /// corrections, sqrt/eps, scaling, and the parameter write).
    pub fn kernels_per_tensor(&self) -> usize {
        match self {
            Optimizer::Sgd { momentum: false } => 2,
            Optimizer::Sgd { momentum: true } => 3,
            Optimizer::Adam => 13,
        }
    }

    /// Fixed per-step kernels independent of tensor count (gradient norm /
    /// scale checks).
    pub fn fixed_kernels(&self) -> usize {
        match self {
            Optimizer::Sgd { .. } => 2,
            Optimizer::Adam => 21,
        }
    }

    /// Human-readable optimizer name.
    pub fn name(&self) -> &'static str {
        match self {
            Optimizer::Sgd { .. } => "SGD",
            Optimizer::Adam => "Adam",
        }
    }

    /// The weight-update kernels for one parameter tensor of `elems`
    /// elements.
    pub fn tensor_update_ops(&self, elems: u64) -> Vec<OpSpec> {
        let e = elems as f64;
        let n = self.kernels_per_tensor();
        (0..n)
            .map(|i| {
                OpSpec::new(
                    format!("{}_step_{}", self.name().to_lowercase(), i),
                    OpClass::Elementwise,
                    2.0 * e,
                    // Each small kernel touches roughly 1.2 tensor-widths of
                    // state (some are scalar-heavy bias corrections), for
                    // ~60 bytes/parameter across an unfused Adam step.
                    4.0 * 1.2 * e,
                )
            })
            .collect()
    }

    /// The fixed kernels at the start of a weight-update step.
    pub fn fixed_update_ops(&self) -> Vec<OpSpec> {
        (0..self.fixed_kernels())
            .map(|i| {
                OpSpec::new(
                    format!("{}_global_{}", self.name().to_lowercase(), i),
                    OpClass::Reduction,
                    1.0e4,
                    4.0 * 1.0e4,
                )
            })
            .collect()
    }

    /// Total kernels launched by one full weight-update step over the given
    /// parameter tensors.
    pub fn total_kernels(&self, tensor_count: usize) -> usize {
        tensor_count * self.kernels_per_tensor() + self.fixed_kernels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_per_tensor() {
        assert_eq!(Optimizer::Sgd { momentum: false }.kernels_per_tensor(), 2);
        assert_eq!(Optimizer::Sgd { momentum: true }.kernels_per_tensor(), 3);
        assert_eq!(Optimizer::Adam.kernels_per_tensor(), 13);
    }

    #[test]
    fn tensor_ops_are_elementwise_and_sized() {
        let ops = Optimizer::Adam.tensor_update_ops(1_000);
        assert_eq!(ops.len(), 13);
        for op in &ops {
            assert_eq!(op.class, OpClass::Elementwise);
            assert!(op.bytes > 0.0);
        }
    }

    #[test]
    fn total_kernel_count() {
        let adam = Optimizer::Adam;
        assert_eq!(adam.total_kernels(201), 201 * 13 + 21);
        let sgd = Optimizer::Sgd { momentum: true };
        assert_eq!(sgd.total_kernels(100), 302);
    }
}
