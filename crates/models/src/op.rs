//! Device-independent descriptions of the GPU work a layer performs.
//!
//! Each layer phase (forward / backward / weight update) decomposes into a
//! sequence of [`OpSpec`]s — one per GPU kernel the framework would launch.
//! An `OpSpec` carries the arithmetic (FLOPs) and memory traffic (bytes) of
//! the kernel plus an [`OpClass`] that determines its cuDNN-style kernel
//! name and its roofline behaviour in `daydream-device`.

use serde::{Deserialize, Serialize};

/// Kernel family, used for naming and roofline classification.
///
/// The AMP what-if model of the paper (§5.1) distinguishes compute-bound
/// kernels (names containing `sgemm` / `scudnn`, sped up 3× by Tensor
/// Cores) from memory-bound kernels (element-wise, batchnorm, ReLU, sped up
/// 2× by halving traffic); the class drives that naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// cuDNN convolution (forward, dgrad, or wgrad).
    Conv,
    /// cuBLAS dense matrix multiply.
    Gemm,
    /// Batched matrix multiply (attention scores/context).
    BatchedGemm,
    /// Fused cuDNN RNN time-step sweep (LSTM/GRU).
    RnnFused,
    /// Element-wise arithmetic (activations, scales, adds, optimizer steps).
    Elementwise,
    /// Batch-normalization statistics + normalization.
    BatchNorm,
    /// Layer-normalization.
    LayerNorm,
    /// Softmax.
    Softmax,
    /// Spatial pooling.
    Pool,
    /// Reduction (bias gradients, norms, losses).
    Reduction,
    /// Embedding gather / scatter.
    Embedding,
    /// Dropout mask generation and application.
    Dropout,
}

impl OpClass {
    /// Returns `true` if kernels of this class are dominated by arithmetic
    /// throughput rather than memory bandwidth.
    pub fn is_compute_bound(&self) -> bool {
        matches!(
            self,
            OpClass::Conv | OpClass::Gemm | OpClass::BatchedGemm | OpClass::RnnFused
        )
    }
}

/// One GPU kernel's worth of work, device-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpSpec {
    /// Short human-readable operation label (e.g. `"conv_fwd"`).
    pub label: String,
    /// Kernel family.
    pub class: OpClass,
    /// Floating-point operations the kernel performs.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl OpSpec {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, class: OpClass, flops: f64, bytes: f64) -> Self {
        OpSpec {
            label: label.into(),
            class,
            flops,
            bytes,
        }
    }

    /// Arithmetic intensity in FLOPs per byte (0 if no traffic).
    pub fn intensity(&self) -> f64 {
        if self.bytes > 0.0 {
            self.flops / self.bytes
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_classes() {
        assert!(OpClass::Conv.is_compute_bound());
        assert!(OpClass::Gemm.is_compute_bound());
        assert!(OpClass::BatchedGemm.is_compute_bound());
        assert!(OpClass::RnnFused.is_compute_bound());
        assert!(!OpClass::Elementwise.is_compute_bound());
        assert!(!OpClass::BatchNorm.is_compute_bound());
        assert!(!OpClass::Softmax.is_compute_bound());
    }

    #[test]
    fn intensity() {
        let op = OpSpec::new("x", OpClass::Gemm, 100.0, 25.0);
        assert_eq!(op.intensity(), 4.0);
        let z = OpSpec::new("z", OpClass::Elementwise, 10.0, 0.0);
        assert_eq!(z.intensity(), 0.0);
    }
}
