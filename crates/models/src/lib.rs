//! DNN model zoo for Daydream.
//!
//! Describes the five models of the paper's Table 2 (VGG-19, DenseNet-121,
//! ResNet-50, GNMT, BERT base/large) at the granularity Daydream needs:
//! layers with parameter tensors and per-phase kernel decompositions
//! ([`OpSpec`]s), which the `daydream-device` roofline model turns into
//! durations and the `daydream-runtime` executor turns into CUPTI-style
//! traces.
//!
//! # Examples
//!
//! ```
//! use daydream_models::zoo;
//!
//! let bert = zoo::bert_large();
//! // Paper §6.3: BERT-large's unfused Adam step launches ~5164 kernels.
//! let kernels = bert.weight_update_kernels();
//! assert!((kernels as f64 - 5164.0).abs() / 5164.0 < 0.05);
//! ```

mod graph;
mod layer;
pub mod memory;
mod op;
mod optimizer;
mod shapes;
pub mod zoo;

pub use graph::{Application, Model, ModelBuilder};
pub use layer::{ActKind, Layer, LayerKind, PoolKind, F32_BYTES};
pub use memory::{
    footprint, max_batch, stashed_activation_bytes, vdnn_offloadable_bytes, MemoryFootprint,
};
pub use op::{OpClass, OpSpec};
pub use optimizer::Optimizer;
pub use shapes::{conv2d_out_shape, conv_out_dim, pool2d_out_shape, Shape};
