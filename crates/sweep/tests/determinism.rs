//! Acceptance-level integration tests: determinism across thread counts
//! and cache behavior on overlapping sub-grids.

use daydream_sweep::{SweepEngine, SweepGrid};

/// A >= 24-scenario acceptance grid: 2 models x 3+ optimization families
/// x parameter axes.
fn acceptance_grid() -> SweepGrid {
    SweepGrid::builder()
        .models(["ResNet-50", "BERT_Base"])
        .batches([4, 8])
        .opts(["amp", "fused-adam", "gist", "ddp", "dgc", "bandwidth"])
        .bandwidths([10.0, 25.0])
        .machines([4])
        .dgc_ratios([0.01])
        .build()
}

#[test]
fn grid_meets_acceptance_size() {
    let scenarios = acceptance_grid().expand().unwrap();
    assert!(
        scenarios.len() >= 24,
        "acceptance requires >= 24 scenarios, got {}",
        scenarios.len()
    );
    let models: std::collections::HashSet<_> = scenarios.iter().map(|s| &s.model).collect();
    let families: std::collections::HashSet<_> = scenarios.iter().map(|s| s.opt.family()).collect();
    assert!(models.len() >= 2);
    assert!(families.len() >= 3);
}

#[test]
fn ranked_report_is_identical_for_1_2_and_8_threads() {
    let grid = acceptance_grid();
    let reference = SweepEngine::new(1).run(&grid).unwrap();
    assert!(reference.scenario_count >= 24);
    for threads in [2, 8] {
        let report = SweepEngine::new(threads).run(&grid).unwrap();
        assert_eq!(
            report, reference,
            "report must not depend on thread count ({threads} threads)"
        );
        // Byte-identical serialized form too — what a user diffs.
        assert_eq!(report.to_json().unwrap(), reference.to_json().unwrap());
        assert_eq!(report.to_csv(), reference.to_csv());
    }
}

#[test]
fn overlapping_subgrids_hit_the_cache() {
    let engine = SweepEngine::new(4);

    // First: a sub-grid at one bandwidth.
    let narrow = SweepGrid::builder()
        .models(["ResNet-50", "BERT_Base"])
        .batches([4, 8])
        .opts(["amp", "fused-adam", "gist", "ddp", "dgc", "bandwidth"])
        .bandwidths([10.0])
        .machines([4])
        .dgc_ratios([0.01])
        .build();
    let first = engine.run(&narrow).unwrap();
    assert_eq!(first.cache_hits, 0, "cold cache");

    // Then the full acceptance grid: everything from the narrow grid is
    // free; only the bw=25 cluster scenarios execute.
    let wide = acceptance_grid();
    let second = engine.run(&wide).unwrap();
    assert_eq!(second.cache_hits, first.scenario_count);
    let narrow_count = narrow.expand().unwrap().len();
    let wide_count = wide.expand().unwrap().len();
    assert_eq!(second.executed, wide_count - narrow_count);
    // Cached rows are flagged in the ranked output.
    assert_eq!(
        second.results.iter().filter(|o| o.cached).count(),
        second.cache_hits
    );

    // A cached re-run produces the same ranking as a cold engine.
    let cold = SweepEngine::new(4).run(&wide).unwrap();
    let mut warm_results = second.results.clone();
    for o in &mut warm_results {
        o.cached = false;
    }
    assert_eq!(warm_results, cold.results);
}

#[test]
fn cache_file_round_trip_survives_processes() {
    let engine = SweepEngine::new(2);
    let grid = SweepGrid::builder()
        .models(["ResNet-50"])
        .batches([4])
        .opts(["amp", "gist"])
        .build();
    engine.run(&grid).unwrap();
    let json = engine.cache().to_json().unwrap();

    // Simulated fresh process: a new engine loading the cache file.
    let restored = SweepEngine::new(2);
    restored.cache().load_json(&json).unwrap();
    let report = restored.run(&grid).unwrap();
    assert_eq!(report.cache_hits, report.scenario_count);
    assert_eq!(report.executed, 0);
    // A fully cached run must not pay for base profiling either.
    assert_eq!(restored.last_stats().profiles_built, 0);
}
