//! Property tests for grid expansion: the invariants distributed
//! sharding leans on. `daydream-shard` partitions scenarios purely by
//! content fingerprint, so expansion must be deterministic across calls
//! (every planner derives the same scenario set) and fingerprints must
//! be unique within a grid (a collision would silently merge two
//! scenarios' results in the cache, the shards, and the merged report).

use daydream_sweep::{Scenario, SweepGrid};
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a random valid grid over the real model zoo and the full
/// optimization-family vocabulary, with random parameter axes.
fn arb_grid() -> impl Strategy<Value = SweepGrid> {
    let families = [
        "baseline",
        "amp",
        "fused-adam",
        "reconstruct-bn",
        "metaflow",
        "ddp",
        "blueconnect",
        "dgc",
        "p3",
        "vdnn",
        "gist",
        "bandwidth",
        "upgrade-gpu",
        "batch-size",
    ];
    (
        // Model subset (non-empty) via bitmask over the zoo.
        1u8..32,
        // Batch axis: 1-3 values from a plausible range.
        prop::collection::vec(1u64..33, 1..4),
        // Family subset (non-empty bitmask over the 14 families).
        1u16..(1 << 14),
        // Cluster axes.
        prop::collection::vec(1u32..65, 1..3),
        prop::collection::vec((1u64..101).prop_map(|n| n as f64 / 2.0), 1..3),
        // DGC ratios in (0, 1].
        prop::collection::vec((1u64..101).prop_map(|n| n as f64 / 100.0), 1..3),
        // Bandwidth factors and batch-size targets.
        prop::collection::vec((1u64..41).prop_map(|n| n as f64 / 4.0), 1..3),
        prop::collection::vec(1u64..65, 1..3),
    )
        .prop_map(
            move |(model_mask, batches, family_mask, machines, bws, ratios, factors, targets)| {
                let zoo = [
                    "ResNet-50",
                    "BERT_Base",
                    "BERT_Large",
                    "VGG-19",
                    "DenseNet-121",
                ];
                let models: Vec<&str> = zoo
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| model_mask & (1 << i) != 0)
                    .map(|(_, m)| *m)
                    .collect();
                let opts: Vec<&str> = families
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| family_mask & (1 << i) != 0)
                    .map(|(_, f)| *f)
                    .collect();
                SweepGrid::builder()
                    .models(if models.is_empty() {
                        vec!["ResNet-50"]
                    } else {
                        models
                    })
                    .batches(batches)
                    .opts(opts)
                    .machines(machines)
                    .bandwidths(bws)
                    .dgc_ratios(ratios)
                    .bandwidth_factors(factors)
                    .target_batches(targets)
                    .gist_lossy([false, true])
                    .vdnn_lookaheads([1, 2])
                    .build()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expansion_is_deterministic_across_calls(grid in arb_grid()) {
        // Random grids may legitimately fail validation (e.g. a family
        // whose parameter axis filters to nothing) — but they must fail
        // the same way every time too.
        let first = grid.expand();
        let second = grid.expand();
        prop_assert_eq!(&first, &second, "expand() must be a pure function of the grid");
        if let Ok(scenarios) = first {
            let relabeled: Vec<String> = scenarios.iter().map(Scenario::label).collect();
            let again: Vec<String> = grid
                .expand()
                .unwrap()
                .iter()
                .map(Scenario::label)
                .collect();
            prop_assert_eq!(relabeled, again, "ordering must be stable too");
        }
    }

    #[test]
    fn fingerprints_are_unique_within_a_grid(grid in arb_grid()) {
        let Ok(scenarios) = grid.expand() else { return Ok(()) };
        let mut seen: HashMap<u64, &Scenario> = HashMap::with_capacity(scenarios.len());
        for s in &scenarios {
            if let Some(prev) = seen.insert(s.fingerprint(), s) {
                prop_assert!(
                    false,
                    "fingerprint collision within one grid: '{}' and '{}' both hash to {}; \
                     shard partitioning and the result cache would silently merge them",
                    prev.label(),
                    s.label(),
                    s.fingerprint_hex()
                );
            }
        }
        // Fingerprints are pure content hashes: recomputing agrees.
        for s in &scenarios {
            prop_assert_eq!(s.fingerprint(), s.clone().fingerprint());
        }
    }
}
