//! The successive-halving search against the exhaustive sweep.
//!
//! Two contracts, property-tested on small random grids over one real
//! profile (ResNet-50 b4 — `build_profile` runs a full simulated
//! training iteration per engine, so case counts stay small):
//!
//! 1. **Exactness under no pruning** — with `keep_fraction = 1.0` every
//!    candidate survives every rung, the final rung evaluates exactly
//!    the exhaustive scenario set on the exact path, and the report is
//!    *byte-identical* (same JSON) to a plain `SweepEngine::run`.
//! 2. **The tolerance contract under pruning** — rung fidelity may prune
//!    differently-ranked mid-field scenarios, but every surviving
//!    prediction is full fidelity (equal to the exhaustive value for the
//!    same scenario key), and the per-model winner the search returns is
//!    within `TOP1_TOLERANCE` of the exhaustive winner's predicted time.
//!    `TOP1_TOLERANCE` is the pinned contract: the bench gate and CI
//!    smoke check top-1 *equality* on their curated grids; random grids
//!    get this relative bound.

use daydream_sweep::{run_search, SearchConfig, SweepEngine, SweepGrid};
use proptest::prelude::*;
use std::collections::HashMap;

/// The pinned fidelity contract for pruned searches on random grids: the
/// search's per-model winner predicts within 5% of the exhaustive
/// winner. (On curated monotone grids — the bench, the CI smoke — the
/// winners match exactly.)
const TOP1_TOLERANCE: f64 = 0.05;

/// Strategy: a small random grid over the single shared profile.
/// Families are drawn from the patchable catalog (no P3 — it skips the
/// rungs by design and would dominate runtime with replicated-base
/// sims); parameter axes give bandwidth/dgc multiple grid points each.
fn arb_grid() -> impl Strategy<Value = SweepGrid> {
    let families = [
        "baseline",
        "amp",
        "gist",
        "vdnn",
        "bandwidth",
        "upgrade-gpu",
        "batch-size",
        "ddp",
        "dgc",
    ];
    (
        1u16..(1 << 9),
        prop::collection::vec((2u64..17).prop_map(|n| n as f64 / 4.0), 1..4),
        prop::collection::vec((1u64..11).prop_map(|n| n as f64 / 100.0), 1..3),
        prop::collection::vec(8u64..33, 1..3),
    )
        .prop_map(move |(family_mask, factors, ratios, targets)| {
            let opts: Vec<&str> = families
                .iter()
                .enumerate()
                .filter(|(i, _)| family_mask & (1 << i) != 0)
                .map(|(_, f)| *f)
                .collect();
            SweepGrid::builder()
                .models(["ResNet-50"])
                .batches([4])
                .opts(if opts.is_empty() { vec!["amp"] } else { opts })
                .machines([4])
                .bandwidths([10.0])
                .bandwidth_factors(factors)
                .dgc_ratios(ratios)
                .target_batches(targets)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn keep_fraction_one_is_byte_identical_to_exhaustive(
        grid in arb_grid(),
        rungs in 1usize..4,
    ) {
        let cfg = SearchConfig {
            rungs,
            keep_fraction: 1.0,
            ..SearchConfig::default()
        };
        // Fresh engines on both sides: byte-identity must not lean on
        // shared caches.
        let search = run_search(&SweepEngine::new(1), &grid, &cfg).unwrap();
        let exhaustive = SweepEngine::new(2).run(&grid).unwrap();
        prop_assert_eq!(&search.report, &exhaustive);
        prop_assert_eq!(
            search.report.to_json().unwrap(),
            exhaustive.to_json().unwrap(),
            "keep-fraction 1.0 must reproduce the exhaustive report byte for byte"
        );
        // Nothing was pruned, so nothing can be a near miss.
        prop_assert!(search.warnings.is_empty());
        for rung in &search.rungs {
            prop_assert_eq!(rung.pruned, 0);
        }
    }

    #[test]
    fn pruned_search_honors_the_tolerance_contract(
        grid in arb_grid(),
        keep_pct in 25u64..75,
    ) {
        let cfg = SearchConfig {
            rungs: 3,
            keep_fraction: keep_pct as f64 / 100.0,
            keep_min: 2,
            ..SearchConfig::default()
        };
        let search = run_search(&SweepEngine::new(2), &grid, &cfg).unwrap();
        let exhaustive = SweepEngine::new(2).run(&grid).unwrap();

        // Every survivor's prediction is full fidelity: it equals the
        // exhaustive run's value for the same scenario key.
        let exact: HashMap<&str, u64> = exhaustive
            .results
            .iter()
            .map(|o| (o.key.as_str(), o.predicted_ns))
            .collect();
        for o in &search.report.results {
            prop_assert_eq!(
                Some(&o.predicted_ns),
                exact.get(o.key.as_str()),
                "survivor '{}' must carry the exhaustive exact prediction",
                o.label
            );
        }

        // The per-model winner is within the pinned tolerance of the
        // exhaustive winner (equal keys trivially satisfy it).
        for best in &exhaustive.best_per_model {
            let searched = search
                .report
                .best_per_model
                .iter()
                .find(|b| b.value == best.value)
                .expect("search keeps at least keep_min scenarios per model");
            let rel = (searched.predicted_ns as f64 - best.predicted_ns as f64)
                / best.predicted_ns as f64;
            prop_assert!(
                rel <= TOP1_TOLERANCE,
                "search winner '{}' ({} ns) trails exhaustive winner '{}' ({} ns) by {:.2}% > {:.0}%",
                searched.label,
                searched.predicted_ns,
                best.label,
                best.predicted_ns,
                rel * 100.0,
                TOP1_TOLERANCE * 100.0
            );
        }

        // Accounting invariants: rung 0 saw the whole grid; evaluations
        // never exceed the exhaustive count per rung; survivors of the
        // final rung are exactly the report's scenarios.
        let n = exhaustive.scenario_count;
        prop_assert_eq!(search.rungs[0].expanded, n);
        for rung in &search.rungs {
            prop_assert!(rung.evaluated <= n);
            prop_assert_eq!(rung.expanded, rung.kept + rung.pruned);
        }
        let last = search.rungs.last().unwrap();
        prop_assert_eq!(last.kept, search.report.scenario_count);
        prop_assert_eq!(&last.fidelity, "exact");
    }
}

/// Determinism pin: the same search on fresh engines returns identical
/// reports, promotions, and survivor sets (the shard-round contract).
#[test]
fn search_is_deterministic_across_engines() {
    let grid = SweepGrid::builder()
        .models(["ResNet-50"])
        .batches([4])
        .opts(["baseline", "amp", "gist", "bandwidth", "batch-size"])
        .bandwidth_factors([1.5, 2.0, 3.0])
        .target_batches([8, 16])
        .build();
    let cfg = SearchConfig {
        rungs: 3,
        keep_fraction: 0.5,
        ..SearchConfig::default()
    };
    let a = run_search(&SweepEngine::new(1), &grid, &cfg).unwrap();
    let b = run_search(&SweepEngine::new(3), &grid, &cfg).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.promotions, b.promotions);
    assert_eq!(a.warnings, b.warnings);
    let surv = |r: &daydream_sweep::SearchReport| -> Vec<Vec<String>> {
        r.rungs.iter().map(|x| x.survivors.clone()).collect()
    };
    assert_eq!(surv(&a), surv(&b));
}
