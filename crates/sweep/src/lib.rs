//! `daydream-sweep` — a parallel scenario-sweep engine for batch what-if
//! exploration.
//!
//! Daydream's core loop (paper §4) answers *one* "what if I applied
//! optimization X?" question per invocation. Practitioners sweep grids:
//! every model x optimization x batch size x bandwidth x cluster shape.
//! This crate makes that a first-class, fast path:
//!
//! 1. [`Scenario`] / [`OptSpec`] — one sweep point, covering the full
//!    `daydream_core::whatif` catalog with its parameter spaces.
//! 2. [`SweepGrid`] — named axes plus filters, expanded into a
//!    deterministic cartesian scenario list; inapplicable combinations
//!    (FusedAdam on SGD models, vDNN without convolutions) are dropped.
//! 3. [`SweepEngine`] — profiles each (model, batch) base once, shares
//!    it immutably, and evaluates scenarios on a std-threads
//!    work-stealing pool with a content-hash result cache
//!    ([`SweepCache`]), so overlapping sub-grids are free.
//! 4. [`SweepReport`] — outcomes ranked by predicted iteration time,
//!    best-per-axis winners, and the Pareto front of time vs. memory
//!    vs. communication cost; serializable to JSON and CSV.
//!
//! # Examples
//!
//! ```
//! use daydream_sweep::{SweepEngine, SweepGrid};
//!
//! let grid = SweepGrid::builder()
//!     .models(["ResNet-50"])
//!     .batches([4])
//!     .opts(["baseline", "amp"])
//!     .build();
//! let engine = SweepEngine::new(2);
//! let report = engine.run(&grid).unwrap();
//! assert_eq!(report.scenario_count, 2);
//! assert!(report.results[0].predicted_ns <= report.results[1].predicted_ns);
//!
//! // Overlapping re-runs hit the content-hash cache.
//! let again = engine.run(&grid).unwrap();
//! assert_eq!(again.cache_hits, 2);
//! ```

pub mod cache;
pub mod engine;
pub mod executor;
pub mod grid;
pub mod report;
pub mod scenario;
pub mod search;

pub use cache::{PatchCache, SweepCache};
pub use engine::{
    explain_scenario, Fidelity, OutcomeObserver, ResidentProfile, RunStats, SweepEngine,
    FIDELITY_TOLERANCE,
};
pub use executor::{parallel_map, ExecutorStats};
pub use grid::{SweepGrid, SweepGridBuilder};
pub use report::{AxisBest, ScenarioOutcome, SweepReport};
pub use scenario::{OptSpec, Scenario};
pub use search::{
    near_miss_warnings, run_search, search_scenarios, PromotionRecord, RungStats, SearchConfig,
    SearchReport,
};
