//! The sweep engine: profiles each (model, batch) base once, shares it
//! immutably across workers, evaluates every scenario in parallel, and
//! assembles the ranked report.

use crate::cache::SweepCache;
use crate::executor::{parallel_map, ExecutorStats};
use crate::grid::SweepGrid;
use crate::report::{ScenarioOutcome, SweepReport};
use crate::scenario::{OptSpec, Scenario};
use daydream_comm::ClusterConfig;
use daydream_core::whatif::{
    what_if_amp, what_if_bandwidth, what_if_batch_size, what_if_blueconnect, what_if_dgc,
    what_if_distributed, what_if_fused_adam, what_if_gist, what_if_metaflow, what_if_p3,
    what_if_reconstruct_bn, what_if_upgrade_gpu, what_if_vdnn, DgcConfig, GistConfig, P3Config,
    Substitution, VdnnConfig,
};
use daydream_core::{predict_from_baseline, simulate, Prediction, ProfiledGraph};
use daydream_device::GpuSpec;
use daydream_models::{footprint, vdnn_offloadable_bytes, Model, F32_BYTES};
use daydream_runtime::{ground_truth, ExecConfig};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A profiled (model, batch) base shared immutably (via `Arc`) across
/// scenarios. The baseline is simulated exactly once, at profile-build
/// time, so per-scenario work is transform + compile + simulate of the
/// transformed graph only — no scenario re-derives baseline makespans or
/// predecessor counts.
struct BaseProfile {
    model: Model,
    graph: ProfiledGraph,
    baseline_ns: u64,
}

/// Wall-clock-free throughput counters of the last `run` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Base profiles built this run (cache misses on the profile cache).
    pub profiles_built: usize,
    /// Work-stealing counters of the scenario evaluation phase.
    pub executor: ExecutorStats,
}

/// Parallel scenario-sweep engine with result and profile caches that
/// persist across `run` calls, so overlapping grids only pay for their
/// novel scenarios.
pub struct SweepEngine {
    threads: usize,
    profiles: Mutex<HashMap<(String, u64), Arc<BaseProfile>>>,
    cache: SweepCache,
    last_stats: Mutex<RunStats>,
}

impl SweepEngine {
    /// An engine evaluating scenarios on `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        SweepEngine {
            threads: threads.max(1),
            profiles: Mutex::new(HashMap::new()),
            cache: SweepCache::new(),
            last_stats: Mutex::new(RunStats::default()),
        }
    }

    /// An engine sized to the host's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(threads)
    }

    /// The result cache (e.g. for `--cache-file` persistence).
    pub fn cache(&self) -> &SweepCache {
        &self.cache
    }

    /// Drops cached scenario results but keeps base profiles — used by
    /// benchmarks to re-measure evaluation without re-profiling.
    pub fn clear_result_cache(&self) {
        self.cache.clear();
    }

    /// Counters of the most recent [`SweepEngine::run`].
    pub fn last_stats(&self) -> RunStats {
        *self.last_stats.lock().unwrap()
    }

    /// Expands the grid, evaluates every scenario in parallel (sharing
    /// base profiles, consulting the result cache), and returns the
    /// ranked report. Deterministic for a given grid: the report is
    /// byte-identical across thread counts.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepReport, String> {
        let scenarios = grid.expand()?;
        Ok(SweepReport::from_outcomes(self.run_scenarios(scenarios)?))
    }

    /// Evaluates an explicit scenario list (one shard of a grid, in
    /// distributed sweeps) and returns outcomes in input order. Shares
    /// base profiles and consults the result cache exactly like
    /// [`SweepEngine::run`]; outcome values are independent of thread
    /// count and of how scenarios are split across calls.
    pub fn run_scenarios(&self, scenarios: Vec<Scenario>) -> Result<Vec<ScenarioOutcome>, String> {
        // Phase 0: answer what we can from the result cache, so fully
        // cached scenarios cost neither evaluation nor base profiling
        // (a cross-process `--cache-file` rerun builds no profiles).
        let mut outcomes: Vec<Option<ScenarioOutcome>> = Vec::with_capacity(scenarios.len());
        let mut misses: Vec<(usize, Scenario)> = Vec::new();
        for (i, scenario) in scenarios.into_iter().enumerate() {
            let hit = self.cache.lookup(scenario.fingerprint());
            if hit.is_none() {
                misses.push((i, scenario));
            }
            outcomes.push(hit);
        }

        // Phase 1: build the (model, batch) base profiles the cache
        // misses need, also in parallel — each is an independent
        // simulated training iteration.
        let needed: Vec<(String, u64)> = {
            let have = self.profiles.lock().unwrap();
            let mut seen = HashSet::new();
            misses
                .iter()
                .map(|(_, s)| (s.model.clone(), s.batch))
                .filter(|k| !have.contains_key(k) && seen.insert(k.clone()))
                .collect()
        };
        let profiles_built = needed.len();
        let (built, _) = parallel_map(needed, self.threads, |(model_name, batch)| {
            let profile = build_profile(&model_name, batch);
            ((model_name, batch), profile)
        });
        {
            let mut have = self.profiles.lock().unwrap();
            for (key, profile) in built {
                have.insert(key, Arc::new(profile?));
            }
        }

        // Phase 2: evaluate the misses under work stealing. Bases are
        // shared as `Arc`s; `predict` clones the graph per scenario.
        let bases: HashMap<(String, u64), Arc<BaseProfile>> = self.profiles.lock().unwrap().clone();
        let (evaluated, exec_stats) =
            parallel_map(misses, self.threads, |(i, scenario)| -> Result<_, String> {
                let base = bases
                    .get(&(scenario.model.clone(), scenario.batch))
                    .expect("phase 1 built every base");
                let outcome = evaluate(&scenario, base)?;
                self.cache.insert(scenario.fingerprint(), &outcome);
                Ok((i, outcome))
            });
        for result in evaluated {
            let (i, outcome) = result?;
            outcomes[i] = Some(outcome);
        }
        let outcomes: Vec<ScenarioOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every slot is a hit or an evaluated miss"))
            .collect();

        *self.last_stats.lock().unwrap() = RunStats {
            profiles_built,
            executor: exec_stats,
        };
        Ok(outcomes)
    }
}

/// Profiles one baseline iteration (the paper's PyTorch / RTX 2080 Ti
/// single-GPU setting, fixed seed).
fn build_profile(model_name: &str, batch: u64) -> Result<BaseProfile, String> {
    let model = daydream_models::zoo::by_name(model_name)
        .ok_or_else(|| format!("unknown model '{model_name}'"))?;
    let cfg = ExecConfig::pytorch_2080ti().with_batch(batch);
    let trace = ground_truth::run_baseline(&model, &cfg);
    let graph = ProfiledGraph::from_trace(&trace);
    let baseline_ns = simulate(&graph.graph)
        .map_err(|e| format!("baseline graph for {model_name} b{batch}: {e}"))?
        .makespan_ns;
    Ok(BaseProfile {
        model,
        graph,
        baseline_ns,
    })
}

/// Evaluates one scenario against its shared base profile.
fn evaluate(scenario: &Scenario, base: &BaseProfile) -> Result<ScenarioOutcome, String> {
    let pg = &base.graph;
    let model = &base.model;
    let grad_bytes = (model.param_count() as f64 * F32_BYTES) as u64;

    // Estimated per-GPU memory under the optimization. These are
    // footprint-model estimates (models crate), not simulated values:
    // AMP halves activation stash, Gist compresses ReLU stashes (~2x
    // lossless, ~4x lossy on the affected share — approximated as a
    // quarter/half of all activations), vDNN offloads conv stashes.
    let fp = footprint(model, scenario.batch);
    let mut memory_bytes = fp.total();
    let mut comm_bytes = 0u64;

    let prediction: Prediction = match &scenario.opt {
        OptSpec::Baseline => Prediction {
            baseline_ns: base.baseline_ns,
            predicted_ns: base.baseline_ns,
        },
        OptSpec::Amp => {
            memory_bytes = fp.total() - fp.activations / 2;
            predict_from_baseline(base.baseline_ns, pg, what_if_amp)
        }
        OptSpec::FusedAdam => predict_from_baseline(base.baseline_ns, pg, |g| {
            what_if_fused_adam(g);
        }),
        OptSpec::ReconstructBn => {
            predict_from_baseline(base.baseline_ns, pg, |g| what_if_reconstruct_bn(g, model))
        }
        OptSpec::Metaflow => {
            let mut policy = Vec::new();
            for l in &model.layers {
                if l.name.ends_with("attn.key") || l.name.ends_with("attn.value") {
                    policy.push(Substitution::RemoveLayer(l.id));
                } else if l.name.ends_with("attn.query") {
                    policy.push(Substitution::ScaleLayer(l.id, 1.8));
                }
            }
            predict_from_baseline(base.baseline_ns, pg, |g| what_if_metaflow(g, &policy))
        }
        OptSpec::Ddp {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            comm_bytes = grad_bytes;
            predict_from_baseline(base.baseline_ns, pg, |g| {
                what_if_distributed(g, &cluster);
            })
        }
        OptSpec::BlueConnect {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            comm_bytes = grad_bytes;
            predict_from_baseline(base.baseline_ns, pg, |g| {
                let ars = what_if_distributed(g, &cluster);
                what_if_blueconnect(g, &cluster, &ars);
            })
        }
        OptSpec::Dgc {
            machines,
            gpus_per_machine,
            bw_gbps,
            ratio,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            comm_bytes = (grad_bytes as f64 * ratio).ceil() as u64;
            let cfg = DgcConfig {
                compression_ratio: *ratio,
                ..DgcConfig::default()
            };
            predict_from_baseline(base.baseline_ns, pg, |g| {
                let ars = what_if_distributed(g, &cluster);
                what_if_dgc(g, &ars, &cfg);
            })
        }
        OptSpec::P3 {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            comm_bytes = grad_bytes;
            // P3's comparable baseline is the same parameter-server
            // cluster with FIFO layer-granularity transfers (paper
            // §6.6), not the single-GPU profile — so the speedup column
            // means "what P3's slicing+priority buys on this cluster".
            let fifo = what_if_p3(pg, &P3Config::baseline(cluster));
            let p3 = what_if_p3(pg, &P3Config::p3(cluster));
            Prediction {
                baseline_ns: (fifo.iteration_ms() * 1e6) as u64,
                predicted_ns: (p3.iteration_ms() * 1e6) as u64,
            }
        }
        OptSpec::Vdnn { lookahead } => {
            memory_bytes = fp
                .total()
                .saturating_sub(vdnn_offloadable_bytes(model, scenario.batch));
            let cfg = VdnnConfig {
                prefetch_lookahead: *lookahead,
                ..VdnnConfig::default()
            };
            predict_from_baseline(base.baseline_ns, pg, |g| {
                what_if_vdnn(g, model, &cfg);
            })
        }
        OptSpec::Gist { lossy } => {
            let saved = if *lossy {
                fp.activations / 2
            } else {
                fp.activations / 4
            };
            memory_bytes = fp.total() - saved;
            let cfg = GistConfig {
                lossy: *lossy,
                ..GistConfig::default()
            };
            predict_from_baseline(base.baseline_ns, pg, |g| {
                what_if_gist(g, &cfg);
            })
        }
        OptSpec::Bandwidth { factor } => predict_from_baseline(base.baseline_ns, pg, |g| {
            what_if_bandwidth(g, *factor);
        }),
        OptSpec::UpgradeGpu { to } => {
            let new = GpuSpec::by_name(to)?;
            let old = GpuSpec::rtx_2080ti();
            predict_from_baseline(base.baseline_ns, pg, |g| {
                what_if_upgrade_gpu(g, &old, &new);
            })
        }
        OptSpec::BatchSize { batch } => {
            memory_bytes = footprint(model, *batch).total();
            let target = *batch;
            predict_from_baseline(base.baseline_ns, pg, |g| {
                what_if_batch_size(g, target);
            })
        }
    };

    Ok(ScenarioOutcome {
        key: scenario.fingerprint_hex(),
        label: scenario.label(),
        model: scenario.model.clone(),
        batch: scenario.batch,
        opt: scenario.opt.label(),
        baseline_ns: prediction.baseline_ns,
        predicted_ns: prediction.predicted_ns,
        speedup: prediction.speedup(),
        memory_bytes,
        comm_bytes,
        cached: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;

    fn small_grid() -> SweepGrid {
        SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["baseline", "amp", "gist"])
            .build()
    }

    #[test]
    fn runs_a_small_grid() {
        let engine = SweepEngine::new(2);
        let report = engine.run(&small_grid()).unwrap();
        assert_eq!(report.scenario_count, 3);
        assert_eq!(report.cache_hits, 0);
        // The baseline row predicts its own baseline.
        let baseline = report.results.iter().find(|o| o.opt == "baseline").unwrap();
        assert_eq!(baseline.baseline_ns, baseline.predicted_ns);
        // AMP beats the baseline on ResNet (paper §6.2).
        let amp = report.results.iter().find(|o| o.opt == "amp").unwrap();
        assert!(amp.speedup > 1.0);
        assert_eq!(engine.last_stats().profiles_built, 1);
    }

    #[test]
    fn second_run_is_fully_cached() {
        let engine = SweepEngine::new(2);
        engine.run(&small_grid()).unwrap();
        let again = engine.run(&small_grid()).unwrap();
        assert_eq!(again.cache_hits, 3);
        assert_eq!(again.executed, 0);
        assert_eq!(engine.last_stats().profiles_built, 0, "profiles reused too");
    }

    #[test]
    fn run_scenarios_split_across_engines_matches_run() {
        // The distributed-sweep contract: evaluating disjoint scenario
        // slices on separate engines and re-ranking the union matches a
        // single engine's `run` exactly.
        let grid = small_grid();
        let scenarios = grid.expand().unwrap();
        let (a, b) = scenarios.split_at(scenarios.len() / 2);
        let mut outcomes = SweepEngine::new(1).run_scenarios(a.to_vec()).unwrap();
        outcomes.extend(SweepEngine::new(2).run_scenarios(b.to_vec()).unwrap());
        let merged = SweepReport::from_outcomes(outcomes);
        let single = SweepEngine::new(2).run(&grid).unwrap();
        assert_eq!(merged, single);
        assert_eq!(merged.to_json().unwrap(), single.to_json().unwrap());
    }

    #[test]
    fn amp_reduces_estimated_memory() {
        let engine = SweepEngine::new(1);
        let report = engine.run(&small_grid()).unwrap();
        let baseline = report.results.iter().find(|o| o.opt == "baseline").unwrap();
        let amp = report.results.iter().find(|o| o.opt == "amp").unwrap();
        assert!(amp.memory_bytes < baseline.memory_bytes);
    }

    #[test]
    fn distributed_scenarios_report_comm_cost() {
        let engine = SweepEngine::new(2);
        let grid = SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["ddp", "dgc"])
            .bandwidths([10.0])
            .machines([4])
            .dgc_ratios([0.01])
            .build();
        let report = engine.run(&grid).unwrap();
        let ddp = report
            .results
            .iter()
            .find(|o| o.opt.starts_with("ddp"))
            .unwrap();
        let dgc = report
            .results
            .iter()
            .find(|o| o.opt.starts_with("dgc"))
            .unwrap();
        assert!(ddp.comm_bytes > 0);
        assert!(
            dgc.comm_bytes < ddp.comm_bytes / 50,
            "DGC compresses gradient traffic ~100x"
        );
    }
}
