//! The sweep engine: profiles each (model, batch) base once, compiles it
//! once, shares it immutably, evaluates every scenario in parallel as
//! *patch emit + incremental apply + simulate*, and assembles the ranked
//! report.

use crate::cache::{PatchCache, PatchEval, SweepCache};
use crate::executor::{parallel_map, parallel_map_with, ExecutorStats};
use crate::grid::SweepGrid;
use crate::report::{ScenarioOutcome, SweepReport};
use crate::scenario::{fnv1a64, OptSpec, Scenario};
use daydream_comm::ClusterConfig;
use daydream_core::replicate::ReplicatedGraph;
use daydream_core::whatif::{
    p3_insert_plan, p3_replicated_base, plan_amp, plan_bandwidth, plan_batch_size,
    plan_blueconnect, plan_dgc, plan_distributed, plan_fused_adam, plan_gist, plan_metaflow,
    plan_p3_inserts, plan_reconstruct_bn, plan_upgrade_gpu, plan_vdnn, DgcConfig, GistConfig,
    P3Config, P3Scheduler, Substitution, VdnnConfig, KERNEL_OVERHEAD_NS,
};
use daydream_core::{
    busy_time_bound, incremental_cone_fits, simulate_compiled_with, simulate_incremental,
    simulate_warm, thread_busy_after, thread_busy_ns, try_simulate_incremental_with, CompactId,
    CompiledGraph, EarliestStart, ExecThread, GraphPatch, IncrementalOptions, IncrementalStats,
    PatchGraph, Prediction, ProfiledGraph, Schedule, ScratchPool, SimScratch, TaskId, TaskKind,
};
use daydream_device::GpuSpec;
use daydream_models::{
    footprint, stashed_activation_bytes, vdnn_offloadable_bytes, Model, F32_BYTES,
};
use daydream_runtime::{ground_truth, ExecConfig};
use daydream_trace::{LayerId, MemcpyDir};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Iterations unrolled for P3 steady-state analysis (both the P3 and the
/// FIFO-baseline configs use three).
const P3_ITERATIONS: usize = 3;

/// Relative-error budget for the per-profile fidelity check: the
/// baseline simulation must replay the recorded iteration within this
/// bound (the paper's single-GPU baselines land under 2%; 5% leaves
/// headroom for pathological shapes without masking real drift).
pub const FIDELITY_TOLERANCE: f64 = 0.05;

/// Evaluation fidelity of one `run_scenarios` pass.
///
/// `Exact` is the engine's normal mode: incremental cone re-simulation
/// with the full-dispatch fallback, results eligible for the persistent
/// [`SweepCache`]. `Rung` is the successive-halving search's low-fidelity
/// mode: the cone budget is overridden, and a patch whose cone exceeds it
/// is answered with an O(threads + tasks) analytic busy-time estimate
/// instead of a full simulation — cheap, approximately ranked, never
/// cached as a scenario result. The fidelity's tag is folded into the
/// patch-cache key, so a rung-0 estimate can never be served where an
/// exact prediction was requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fidelity {
    /// Full-fidelity evaluation (default cone budget, full-sim fallback).
    Exact,
    /// Low-fidelity rung: cone re-simulation capped at `max_cone_fraction`
    /// of the graph, analytic estimate past the cap.
    Rung {
        /// Cone budget as a fraction of the patched graph's tasks.
        max_cone_fraction: f64,
    },
}

impl Fidelity {
    /// The cache-key tag distinguishing this fidelity's patch evaluations
    /// (also the rung label in search reports).
    pub fn tag(&self) -> String {
        match self {
            Fidelity::Exact => "exact".to_string(),
            Fidelity::Rung { max_cone_fraction } => {
                format!("cone{}", (max_cone_fraction * 1000.0).round() as u64)
            }
        }
    }
}

/// The unrolled P3 base: replicated graph plus its compiled form, built
/// lazily (only grids containing P3 scenarios pay for it) and shared
/// across every P3 scenario of the profile.
struct P3Base {
    rep: ReplicatedGraph,
    compiled: CompiledGraph,
}

/// The cached DDP stage of a distributed scenario: the replicated-base
/// patch `plan_distributed` emits for one cluster shape, plus the
/// allreduce task ids BlueConnect/DGC refine. Built once per (profile,
/// cluster) and shared — refinements layer on top via
/// [`PatchGraph::layered`] instead of re-planning the DDP stage.
struct DdpPlan {
    patch: Arc<GraphPatch>,
    allreduces: Vec<TaskId>,
    /// Ratio-independent DGC pricing aggregates over this cluster's DDP
    /// patch, built lazily on the first rung-0 DGC surrogate.
    dgc: OnceLock<DgcAgg>,
}

/// Per-thread duration-class sums of the base profile — the coefficients
/// of the rung-0 *analytic surrogate*: for transform families that only
/// rescale task durations by a per-class factor (bandwidth, batch-size),
/// the patched graph's busy-time bound is a linear function of these
/// sums, so a low-fidelity rung can rank a candidate in O(threads)
/// without emitting (or hashing) its patch at all. Each task's cost
/// lands in exactly one duration class plus `gap`, so per thread
/// `gap + comm + memcpy + gpu_fixed + gpu_work + other` equals the
/// baseline busy time.
#[derive(Default, Clone, Copy)]
struct ClassSums {
    /// Inter-task gaps — no transform rescales these.
    gap: u64,
    /// Communication-task durations (bandwidth divides by its factor).
    comm: u64,
    /// GPU memcpy durations (batch-size scales the whole copy).
    memcpy: u64,
    /// The fixed per-kernel startup share, `min(KERNEL_OVERHEAD_NS, d)`,
    /// of GPU kernels — batch-size holds this constant.
    gpu_fixed: u64,
    /// GPU kernel time above the startup overhead — batch-size scales it.
    gpu_work: u64,
    /// Everything else (CPU launch work) — per-kernel, not per-sample.
    other: u64,
}

/// Per-cluster aggregates pricing `dgc[ratio]` analytically: DGC scales
/// each allreduce transfer to `ratio` of its duration and adds fixed
/// compress/decompress kernels, so over the cached DDP patch's busy
/// vector the estimate is linear in `ratio` — O(threads) per candidate
/// against an O(|DDP patch|) build paid once per cluster shape.
struct DgcAgg {
    /// Per-thread busy times of `base.apply(ddp_patch)`.
    busy: Vec<(ExecThread, u64)>,
    /// Σ inserted allreduce durations per `busy` entry.
    ar: Vec<u64>,
    /// `busy` index of the GPU thread `plan_dgc` puts its kernels on.
    gpu_idx: Option<usize>,
    /// Σ compress+decompress kernel time over all allreduces — DGC adds
    /// it whole regardless of ratio.
    gpu_extra: u64,
}

impl DgcAgg {
    fn estimate(&self, ratio: f64) -> u64 {
        self.busy
            .iter()
            .zip(&self.ar)
            .enumerate()
            .map(|(i, ((_, busy), &ar))| {
                let scaled = (ar as f64 * ratio).round() as u64;
                let extra = if Some(i) == self.gpu_idx {
                    self.gpu_extra
                } else {
                    0
                };
                busy.saturating_sub(ar) + scaled + extra
            })
            .max()
            .unwrap_or(0)
    }
}

/// A profiled (model, batch) base shared immutably (via `Arc`) across
/// scenarios. The baseline is simulated exactly once — its full
/// [`Schedule`] (dispatch order, per-thread timelines, readiness times)
/// is retained — and the dependency graph compiled exactly once, at
/// profile-build time; per-scenario work is patch emit +
/// [`CompiledGraph::apply_traced`] + *incremental* simulate: only the
/// cone of tasks the patch can affect is re-dispatched.
struct BaseProfile {
    model: Model,
    graph: ProfiledGraph,
    baseline_ns: u64,
    /// |baseline sim − recorded iteration| / recorded — the per-profile
    /// fidelity check rolled into [`RunStats`].
    fidelity_rel_err: f64,
    compiled: CompiledGraph,
    schedule: Schedule,
    /// Per-thread busy sums of the base ([`thread_busy_ns`]), computed
    /// lazily on the first low-fidelity estimate: the O(|patch|) busy
    /// delta of [`busy_time_bound`] amortizes against it.
    busy: OnceLock<Vec<u64>>,
    /// Per-thread duration-class sums behind the rung-0 analytic
    /// surrogate, computed lazily on its first use.
    classes: OnceLock<Vec<ClassSums>>,
    p3: OnceLock<P3Base>,
    ddp: Mutex<HashMap<(u32, u32, u64), Arc<DdpPlan>>>,
}

impl BaseProfile {
    fn busy_ns(&self) -> &[u64] {
        self.busy.get_or_init(|| thread_busy_ns(&self.compiled))
    }

    /// Duration-class sums per execution thread (order is incidental —
    /// the surrogates only take a maximum over threads).
    fn class_sums(&self) -> &[ClassSums] {
        self.classes.get_or_init(|| {
            let mut by_thread: HashMap<ExecThread, ClassSums> = HashMap::new();
            for (_, t) in self.graph.graph.iter() {
                let s = by_thread.entry(t.thread).or_default();
                s.gap += t.gap_ns;
                let d = t.duration_ns;
                if matches!(t.kind, TaskKind::Communication { .. }) {
                    s.comm += d;
                } else if t.is_on_gpu() {
                    if matches!(t.kind, TaskKind::GpuMemcpy { .. }) {
                        s.memcpy += d;
                    } else {
                        let fixed = KERNEL_OVERHEAD_NS.min(d);
                        s.gpu_fixed += fixed;
                        s.gpu_work += d - fixed;
                    }
                } else {
                    s.other += d;
                }
            }
            by_thread.into_values().collect()
        })
    }

    /// DGC pricing aggregates for one cluster shape (built once per
    /// cluster on top of the cached DDP plan).
    fn dgc_agg(&self, cluster: &ClusterConfig) -> Arc<DdpPlan> {
        let plan = self.ddp_plan(cluster);
        plan.dgc.get_or_init(|| {
            let busy = thread_busy_after(&self.compiled, self.busy_ns(), &plan.patch);
            let idx: HashMap<ExecThread, usize> =
                busy.iter().enumerate().map(|(i, &(t, _))| (t, i)).collect();
            let mut ar = vec![0u64; busy.len()];
            let cfg = DgcConfig::default();
            let mut gpu_extra = 0u64;
            let ars: HashSet<TaskId> = plan.allreduces.iter().copied().collect();
            for (id, t) in plan.patch.inserted_tasks() {
                if !ars.contains(&id) {
                    continue;
                }
                if let TaskKind::Communication { bytes, .. } = t.kind {
                    if let Some(&i) = idx.get(&t.thread) {
                        ar[i] += t.duration_ns;
                    }
                    let mb = (bytes >> 20).max(1);
                    gpu_extra += (cfg.compress_ns_per_mb + cfg.decompress_ns_per_mb) * mb;
                }
            }
            // plan_dgc puts its kernels on the first live GPU task's
            // thread — over the layered overlay that is the base
            // graph's first GPU task.
            let gpu_idx = self
                .graph
                .graph
                .iter()
                .find(|(_, t)| t.kind.is_gpu())
                .and_then(|(_, t)| idx.get(&t.thread).copied());
            DgcAgg {
                busy,
                ar,
                gpu_idx,
                gpu_extra,
            }
        });
        plan
    }

    fn p3_base(&self) -> &P3Base {
        self.p3.get_or_init(|| {
            let rep = p3_replicated_base(&self.graph, P3_ITERATIONS);
            let compiled = CompiledGraph::compile(&rep.graph);
            P3Base { rep, compiled }
        })
    }

    /// The shared DDP patch for one cluster shape (planned at most once
    /// per profile; BlueConnect/DGC compose their refinements on top).
    fn ddp_plan(&self, cluster: &ClusterConfig) -> Arc<DdpPlan> {
        let key = (
            cluster.machines,
            cluster.gpus_per_machine,
            cluster.inter_node_gbps.to_bits(),
        );
        if let Some(plan) = self.ddp.lock().unwrap().get(&key) {
            return Arc::clone(plan);
        }
        let mut ov = PatchGraph::new(&self.graph.graph);
        let allreduces = plan_distributed(&mut ov, &self.graph.meta.buckets, cluster);
        let plan = Arc::new(DdpPlan {
            patch: Arc::new(ov.finish()),
            allreduces,
            dgc: OnceLock::new(),
        });
        self.ddp.lock().unwrap().entry(key).or_insert(plan).clone()
    }
}

/// Wall-clock-free throughput counters of the last `run` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Base profiles built this run (cache misses on the profile cache).
    pub profiles_built: usize,
    /// Scenario evaluations answered by the patch-fingerprint cache
    /// (identical patch over the same base: simulation skipped).
    pub patch_hits: usize,
    /// Simulations served by the incremental cone path this run.
    pub incremental_sims: usize,
    /// Simulations that ran the full dispatch loop this run (fallbacks
    /// and P3 replicated-base analyses).
    pub full_sims: usize,
    /// Tasks dispatched across all simulations this run.
    pub tasks_redispatched: u64,
    /// Fidelity checks performed this run: every base profile built
    /// compares its baseline simulation against the recorded iteration.
    pub fidelity_checks: usize,
    /// Profiles whose baseline replay drifted past
    /// [`FIDELITY_TOLERANCE`] from the recorded iteration time.
    pub fidelity_failures: usize,
    /// Largest |sim − recorded| / recorded across this run's profiles.
    pub fidelity_worst_rel_err: f64,
    /// Evaluations answered by the analytic busy-time estimate this run
    /// (low-fidelity rungs only; always 0 at exact fidelity).
    pub estimate_sims: usize,
    /// Warm-arena evaluations that reused already-sized scratch buffers
    /// (no allocation on the simulation hot path).
    pub scratch_reuses: u64,
    /// Warm-arena evaluations that had to (re)size at least one scratch
    /// buffer — at most one per worker per new largest base.
    pub scratch_allocs: u64,
    /// Bytes of per-task array copying the warm path skipped this run
    /// relative to the fresh-allocation path.
    pub bytes_copied_avoided: u64,
    /// Contended result-cache shard acquisitions this run (another
    /// worker held the same shard's lock).
    pub cache_contended: usize,
    /// Contended patch-cache shard acquisitions this run.
    pub patch_contended: usize,
    /// Transient protocol failures retried with backoff (shard workers,
    /// serve jobs). Recorded via [`SweepEngine::record_recovery`].
    pub retries: u64,
    /// Stale or dead-worker leases reclaimed.
    pub reclaims: u64,
    /// Faults fired by a deterministic fault injector (nonzero only
    /// under chaos testing).
    pub faults_injected: u64,
    /// Journaled serve jobs recovered after a daemon restart.
    pub jobs_recovered: u64,
    /// Work-stealing counters of the scenario evaluation phase.
    pub executor: ExecutorStats,
}

impl RunStats {
    /// Folds another run's counters into this one: counts add, the worst
    /// fidelity error is the max, and the worker count is the widest pool
    /// seen. This is how [`SweepEngine::total_stats`] aggregates
    /// engine-lifetime counters for a long-lived server process.
    pub fn absorb(&mut self, other: &RunStats) {
        self.profiles_built += other.profiles_built;
        self.patch_hits += other.patch_hits;
        self.incremental_sims += other.incremental_sims;
        self.full_sims += other.full_sims;
        self.tasks_redispatched += other.tasks_redispatched;
        self.fidelity_checks += other.fidelity_checks;
        self.fidelity_failures += other.fidelity_failures;
        self.fidelity_worst_rel_err = self
            .fidelity_worst_rel_err
            .max(other.fidelity_worst_rel_err);
        self.estimate_sims += other.estimate_sims;
        self.scratch_reuses += other.scratch_reuses;
        self.scratch_allocs += other.scratch_allocs;
        self.bytes_copied_avoided += other.bytes_copied_avoided;
        self.cache_contended += other.cache_contended;
        self.patch_contended += other.patch_contended;
        self.retries += other.retries;
        self.reclaims += other.reclaims;
        self.faults_injected += other.faults_injected;
        self.jobs_recovered += other.jobs_recovered;
        self.executor.executed += other.executor.executed;
        self.executor.steals += other.executor.steals;
        self.executor.workers = self.executor.workers.max(other.executor.workers);
    }
}

/// One warm `(model, batch)` base resident in a [`SweepEngine`]'s profile
/// registry — what a serve daemon reports for `GET /models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidentProfile {
    /// Zoo model name.
    pub model: String,
    /// Profiled mini-batch size.
    pub batch: u64,
    /// Compiled task count of the baseline graph.
    pub tasks: usize,
    /// Simulated baseline iteration time, ns.
    pub baseline_ns: u64,
    /// Baseline-replay fidelity error vs. the recorded iteration.
    pub fidelity_rel_err: f64,
}

/// Thread-safe simulation-path accounting shared by one `run_scenarios`
/// call's workers.
#[derive(Debug, Default)]
struct SimCounters {
    incremental: AtomicUsize,
    full: AtomicUsize,
    estimates: AtomicUsize,
    redispatched: AtomicU64,
}

impl SimCounters {
    fn record(&self, stats: &IncrementalStats) {
        if stats.is_incremental() {
            self.incremental.fetch_add(1, Ordering::Relaxed);
        } else {
            self.full.fetch_add(1, Ordering::Relaxed);
        }
        self.redispatched
            .fetch_add(stats.redispatched as u64, Ordering::Relaxed);
    }

    fn record_full(&self, dispatched: usize) {
        self.full.fetch_add(1, Ordering::Relaxed);
        self.redispatched
            .fetch_add(dispatched as u64, Ordering::Relaxed);
    }

    fn record_estimate(&self) {
        self.estimates.fetch_add(1, Ordering::Relaxed);
    }
}

/// Parallel scenario-sweep engine with result and profile caches that
/// persist across `run` calls, so overlapping grids only pay for their
/// novel scenarios.
pub struct SweepEngine {
    threads: usize,
    profiles: Mutex<HashMap<(String, u64), Arc<BaseProfile>>>,
    cache: SweepCache,
    patches: PatchCache,
    scratch: ScratchPool,
    last_stats: Mutex<RunStats>,
    totals: Mutex<RunStats>,
}

/// Per-outcome progress callback for [`SweepEngine::run_scenarios_observed`]:
/// invoked from worker threads as each scenario resolves (cache hits
/// included), in completion order, not input order.
pub type OutcomeObserver<'a> = &'a (dyn Fn(&ScenarioOutcome) + Sync);

impl SweepEngine {
    /// An engine evaluating scenarios on `threads` worker threads.
    pub fn new(threads: usize) -> Self {
        SweepEngine {
            threads: threads.max(1),
            profiles: Mutex::new(HashMap::new()),
            cache: SweepCache::new(),
            patches: PatchCache::new(),
            scratch: ScratchPool::new(),
            last_stats: Mutex::new(RunStats::default()),
            totals: Mutex::new(RunStats::default()),
        }
    }

    /// An engine sized to the host's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(threads)
    }

    /// The result cache (e.g. for `--cache-file` persistence).
    pub fn cache(&self) -> &SweepCache {
        &self.cache
    }

    /// The patch-evaluation cache (per-shard hit/contention counters for
    /// `/metrics`).
    pub fn patch_cache(&self) -> &PatchCache {
        &self.patches
    }

    /// Drops cached scenario results *and* cached patch evaluations but
    /// keeps base profiles — used by benchmarks to re-measure full
    /// evaluation (emit + apply + simulate) without re-profiling.
    pub fn clear_result_cache(&self) {
        self.cache.clear();
        self.patches.clear();
    }

    /// Counters of the most recent [`SweepEngine::run`].
    pub fn last_stats(&self) -> RunStats {
        *self.last_stats.lock().unwrap()
    }

    /// Engine-lifetime counters: every run's [`RunStats`] folded together
    /// with [`RunStats::absorb`]. A resident daemon exposes these as its
    /// `/metrics`, where per-run snapshots would race between clients.
    pub fn total_stats(&self) -> RunStats {
        *self.totals.lock().unwrap()
    }

    /// Folds recovery activity (retried protocol calls, lease reclaims,
    /// injected faults, recovered jobs) into the engine-lifetime totals,
    /// so `/metrics` makes fault handling observable. Callers (shard
    /// workers, the serve job queue) report deltas, not running totals.
    pub fn record_recovery(
        &self,
        retries: u64,
        reclaims: u64,
        faults_injected: u64,
        jobs_recovered: u64,
    ) {
        let mut totals = self.totals.lock().unwrap();
        totals.retries += retries;
        totals.reclaims += reclaims;
        totals.faults_injected += faults_injected;
        totals.jobs_recovered += jobs_recovered;
    }

    /// The warm `(model, batch)` bases currently resident in the profile
    /// registry, sorted by key — the registry listing a serve daemon
    /// reports (and the warm/cold distinction a what-if client sees).
    pub fn resident_profiles(&self) -> Vec<ResidentProfile> {
        let have = self.profiles.lock().unwrap();
        let mut out: Vec<ResidentProfile> = have
            .iter()
            .map(|((model, batch), p)| ResidentProfile {
                model: model.clone(),
                batch: *batch,
                tasks: p.compiled.len(),
                baseline_ns: p.baseline_ns,
                fidelity_rel_err: p.fidelity_rel_err,
            })
            .collect();
        out.sort_by(|a, b| a.model.cmp(&b.model).then(a.batch.cmp(&b.batch)));
        out
    }

    /// Expands the grid, evaluates every scenario in parallel (sharing
    /// base profiles, consulting the result cache), and returns the
    /// ranked report. Deterministic for a given grid: the report is
    /// byte-identical across thread counts.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepReport, String> {
        let scenarios = grid.expand()?;
        Ok(SweepReport::from_outcomes(self.run_scenarios(scenarios)?))
    }

    /// Evaluates an explicit scenario list (one shard of a grid, in
    /// distributed sweeps) and returns outcomes in input order. Shares
    /// base profiles and consults the result cache exactly like
    /// [`SweepEngine::run`]; outcome values are independent of thread
    /// count and of how scenarios are split across calls.
    pub fn run_scenarios(&self, scenarios: Vec<Scenario>) -> Result<Vec<ScenarioOutcome>, String> {
        self.run_scenarios_inner(scenarios, Fidelity::Exact, true, None)
    }

    /// Like [`SweepEngine::run_scenarios`], but streams each outcome to
    /// `observer` as it resolves (from worker threads, in completion
    /// order) — a resident job queue uses this to serve ranked partial
    /// results while a grid is still evaluating. The returned vector is
    /// identical to `run_scenarios` on the same input.
    pub fn run_scenarios_observed(
        &self,
        scenarios: Vec<Scenario>,
        observer: OutcomeObserver<'_>,
    ) -> Result<Vec<ScenarioOutcome>, String> {
        self.run_scenarios_inner(scenarios, Fidelity::Exact, true, Some(observer))
    }

    /// Evaluates a scenario list at a *low-fidelity rung*: the cone
    /// budget is overridden with `max_cone_fraction`, patches whose cone
    /// exceeds it are answered with the analytic busy-time estimate, and
    /// the persistent result cache is bypassed entirely — rung outcomes
    /// are ranking signals for the successive-halving search, never
    /// scenario results. Rung patch evaluations are cached under
    /// fidelity-tagged keys, so they cannot leak into exact runs.
    pub fn run_scenarios_rung(
        &self,
        scenarios: Vec<Scenario>,
        max_cone_fraction: f64,
    ) -> Result<Vec<ScenarioOutcome>, String> {
        self.run_scenarios_inner(scenarios, Fidelity::Rung { max_cone_fraction }, false, None)
    }

    fn run_scenarios_inner(
        &self,
        scenarios: Vec<Scenario>,
        fidelity: Fidelity,
        use_result_cache: bool,
        observer: Option<OutcomeObserver<'_>>,
    ) -> Result<Vec<ScenarioOutcome>, String> {
        // Phase 0: answer what we can from the result cache, so fully
        // cached scenarios cost neither evaluation nor base profiling
        // (a cross-process `--cache-file` rerun builds no profiles).
        // Rung runs skip it: their outcomes are low-fidelity and must
        // neither read nor pollute the exact-result store.
        let mut outcomes: Vec<Option<ScenarioOutcome>> = Vec::with_capacity(scenarios.len());
        let mut misses: Vec<(usize, Scenario)> = Vec::new();
        for (i, scenario) in scenarios.into_iter().enumerate() {
            let hit = if use_result_cache {
                self.cache.lookup(scenario.fingerprint())
            } else {
                None
            };
            if hit.is_none() {
                misses.push((i, scenario));
            } else if let (Some(observe), Some(outcome)) = (observer, hit.as_ref()) {
                observe(outcome);
            }
            outcomes.push(hit);
        }

        // Phase 1: build the (model, batch) base profiles the cache
        // misses need, also in parallel — each is an independent
        // simulated training iteration.
        let needed: Vec<(String, u64)> = {
            let have = self.profiles.lock().unwrap();
            let mut seen = HashSet::new();
            misses
                .iter()
                .map(|(_, s)| (s.model.clone(), s.batch))
                .filter(|k| !have.contains_key(k) && seen.insert(k.clone()))
                .collect()
        };
        let profiles_built = needed.len();
        let (built, _) = parallel_map(needed, self.threads, |(model_name, batch)| {
            let profile = build_profile(&model_name, batch);
            ((model_name, batch), profile)
        });
        let mut fidelity_failures = 0usize;
        let mut fidelity_worst_rel_err = 0.0f64;
        {
            let mut have = self.profiles.lock().unwrap();
            for (key, profile) in built {
                let profile = profile?;
                if profile.fidelity_rel_err > FIDELITY_TOLERANCE {
                    fidelity_failures += 1;
                }
                fidelity_worst_rel_err = fidelity_worst_rel_err.max(profile.fidelity_rel_err);
                have.insert(key, Arc::new(profile));
            }
        }

        // Phase 2: evaluate the misses under work stealing. Only the
        // `Arc`s of the bases this call actually needs are cloned out of
        // the shared map — not the whole profile table (an engine that
        // has accumulated many bases across runs would otherwise pay an
        // O(all-profiles) clone under the lock per call).
        let bases: HashMap<(String, u64), Arc<BaseProfile>> = {
            let have = self.profiles.lock().unwrap();
            let mut needed: HashMap<(String, u64), Arc<BaseProfile>> = HashMap::new();
            for (_, s) in &misses {
                let key = (s.model.clone(), s.batch);
                needed.entry(key).or_insert_with_key(|k| {
                    Arc::clone(have.get(k).expect("phase 1 built every base"))
                });
            }
            needed
        };
        let patch_hits_before = self.patches.hits();
        let cache_contended_before = self.cache.contended();
        let patch_contended_before = self.patches.contended();
        let scratch_before = self.scratch.counters();
        let counters = SimCounters::default();
        // Each worker checks one scratch arena out of the pool for its
        // whole batch, so back-to-back evaluations of a base reuse warm
        // epoch-stamped buffers instead of allocating per scenario.
        let (evaluated, exec_stats) = parallel_map_with(
            misses,
            self.threads,
            || self.scratch.take(),
            |s| self.scratch.put(s),
            |scratch, (i, scenario)| -> Result<_, String> {
                let base = bases
                    .get(&(scenario.model.clone(), scenario.batch))
                    .expect("phase 1 built every base");
                let outcome =
                    evaluate(&scenario, base, &self.patches, &counters, fidelity, scratch)?;
                if use_result_cache {
                    self.cache.insert(scenario.fingerprint(), &outcome);
                }
                if let Some(observe) = observer {
                    observe(&outcome);
                }
                Ok((i, outcome))
            },
        );
        for result in evaluated {
            let (i, outcome) = result?;
            outcomes[i] = Some(outcome);
        }
        let outcomes: Vec<ScenarioOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every slot is a hit or an evaluated miss"))
            .collect();

        let scratch_after = self.scratch.counters();
        let stats = RunStats {
            profiles_built,
            patch_hits: self.patches.hits() - patch_hits_before,
            incremental_sims: counters.incremental.load(Ordering::Relaxed),
            full_sims: counters.full.load(Ordering::Relaxed),
            tasks_redispatched: counters.redispatched.load(Ordering::Relaxed),
            fidelity_checks: profiles_built,
            fidelity_failures,
            fidelity_worst_rel_err,
            estimate_sims: counters.estimates.load(Ordering::Relaxed),
            scratch_reuses: scratch_after.reuses - scratch_before.reuses,
            scratch_allocs: scratch_after.allocs - scratch_before.allocs,
            bytes_copied_avoided: scratch_after.bytes_copied_avoided
                - scratch_before.bytes_copied_avoided,
            cache_contended: self.cache.contended() - cache_contended_before,
            patch_contended: self.patches.contended() - patch_contended_before,
            executor: exec_stats,
            retries: 0,
            reclaims: 0,
            faults_injected: 0,
            jobs_recovered: 0,
        };
        *self.last_stats.lock().unwrap() = stats;
        self.totals.lock().unwrap().absorb(&stats);
        Ok(outcomes)
    }
}

/// Profiles one baseline iteration (the paper's PyTorch / RTX 2080 Ti
/// single-GPU setting, fixed seed), compiles it for patching, and
/// captures the baseline [`Schedule`] the incremental simulator replays.
fn build_profile(model_name: &str, batch: u64) -> Result<BaseProfile, String> {
    let model = daydream_models::zoo::by_name(model_name)
        .ok_or_else(|| format!("unknown model '{model_name}'"))?;
    let cfg = ExecConfig::pytorch_2080ti().with_batch(batch);
    let trace = ground_truth::run_baseline(&model, &cfg);
    let graph = ProfiledGraph::from_trace(&trace);
    let compiled = CompiledGraph::compile(&graph.graph);
    let schedule = Schedule::capture(&compiled)
        .map_err(|e| format!("baseline graph for {model_name} b{batch}: {e}"))?;
    let baseline_ns = schedule.makespan_ns();
    // Fidelity check: the baseline replay of the recorded run is the
    // engine's one chance to notice a drifted cost model or graph
    // builder — both timings are already in hand, so it is free.
    let recorded_ns = trace.meta.iteration_ns();
    let fidelity_rel_err = if recorded_ns > 0 {
        (baseline_ns as f64 - recorded_ns as f64).abs() / recorded_ns as f64
    } else {
        0.0
    };
    Ok(BaseProfile {
        model,
        graph,
        baseline_ns,
        fidelity_rel_err,
        compiled,
        schedule,
        busy: OnceLock::new(),
        classes: OnceLock::new(),
        p3: OnceLock::new(),
        ddp: Mutex::new(HashMap::new()),
    })
}

/// Emits the [`GraphPatch`] modeling `opt` over the base profile's graph.
///
/// `Baseline` yields an empty patch; P3 is not patchable over the
/// single-iteration base (it needs the replicated base — see
/// [`p3_prediction`]) and is rejected here. Distributed scenarios share
/// the per-cluster DDP patch through [`BaseProfile::ddp_plan`]:
/// BlueConnect and DGC resume a [`PatchGraph::layered`] overlay on top
/// of it and record only their refinement, so `finish` yields the
/// composed patch without re-planning the DDP stage.
fn emit_patch(opt: &OptSpec, base: &BaseProfile) -> Result<Arc<GraphPatch>, String> {
    let pg = &base.graph;
    let model = &base.model;
    let profile_batch = pg.meta.batch_size as u64;
    let mut ov = PatchGraph::new(&pg.graph);
    match opt {
        OptSpec::Baseline => {}
        OptSpec::P3 { .. } => return Err("P3 patches the replicated base, not the profile".into()),
        OptSpec::Amp => plan_amp(&mut ov),
        OptSpec::FusedAdam => {
            plan_fused_adam(&mut ov);
        }
        OptSpec::ReconstructBn => plan_reconstruct_bn(&mut ov, model),
        OptSpec::Metaflow => {
            let mut policy = Vec::new();
            for l in &model.layers {
                if l.name.ends_with("attn.key") || l.name.ends_with("attn.value") {
                    policy.push(Substitution::RemoveLayer(l.id));
                } else if l.name.ends_with("attn.query") {
                    policy.push(Substitution::ScaleLayer(l.id, 1.8));
                }
            }
            plan_metaflow(&mut ov, &policy);
        }
        OptSpec::Ddp {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            return Ok(Arc::clone(&base.ddp_plan(&cluster).patch));
        }
        OptSpec::BlueConnect {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            let ddp = base.ddp_plan(&cluster);
            let mut layered = PatchGraph::layered(&pg.graph, &ddp.patch);
            plan_blueconnect(&mut layered, &cluster, &ddp.allreduces);
            return Ok(Arc::new(layered.finish()));
        }
        OptSpec::Dgc {
            machines,
            gpus_per_machine,
            bw_gbps,
            ratio,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            let cfg = DgcConfig {
                compression_ratio: *ratio,
                ..DgcConfig::default()
            };
            let ddp = base.ddp_plan(&cluster);
            let mut layered = PatchGraph::layered(&pg.graph, &ddp.patch);
            plan_dgc(&mut layered, &ddp.allreduces, &cfg);
            return Ok(Arc::new(layered.finish()));
        }
        OptSpec::Vdnn { lookahead } => {
            let cfg = VdnnConfig {
                prefetch_lookahead: *lookahead,
                ..VdnnConfig::default()
            };
            plan_vdnn(&mut ov, model, &cfg, profile_batch);
        }
        OptSpec::Gist { lossy } => {
            let cfg = GistConfig {
                lossy: *lossy,
                ..GistConfig::default()
            };
            plan_gist(&mut ov, &cfg);
        }
        OptSpec::Bandwidth { factor } => {
            plan_bandwidth(&mut ov, *factor);
        }
        OptSpec::UpgradeGpu { to } => {
            let new = GpuSpec::by_name(to)?;
            let old = GpuSpec::rtx_2080ti();
            plan_upgrade_gpu(&mut ov, &old, &new);
        }
        OptSpec::BatchSize { batch } => {
            plan_batch_size(&mut ov, profile_batch, *batch);
        }
    }
    Ok(Arc::new(ov.finish()))
}

/// Patch-cache key: the base identity plus the patch content hash, a
/// policy tag (P3 simulates under a different frontier order), and the
/// fidelity tag — a rung-0 cone-capped prediction and a full-fidelity
/// result for the same patch are *different values* and must never
/// answer each other's lookups.
fn patch_key(scenario: &Scenario, policy: &str, patch_fingerprint: u64, fidelity: Fidelity) -> u64 {
    fnv1a64(
        format!(
            "{}|{}|{policy}|{}|{patch_fingerprint:016x}",
            scenario.model,
            scenario.batch,
            fidelity.tag()
        )
        .as_bytes(),
    )
}

/// The low-fidelity stand-in for a simulation whose cone exceeds the
/// rung's budget: the patched graph's maximum per-thread busy time
/// (Σ `cost_ns` over each thread's tasks). A lower bound on the
/// makespan, not a prediction — global transforms rescale exactly these
/// costs, so it ranks rung candidates in O(tasks) without dispatching
/// anything. Exact-fidelity evaluation never uses it.
fn busy_time_estimate(applied: &CompiledGraph) -> u64 {
    let mut busy = vec![0u64; applied.thread_count()];
    for i in 0..applied.len() {
        let c = CompactId(i as u32);
        busy[applied.thread_of(c).0 as usize] += applied.cost_ns(c);
    }
    busy.into_iter().max().unwrap_or(0)
}

/// What the rung-0 analytic surrogate knows about a candidate without
/// emitting its patch.
enum Surrogate {
    /// The transform is a no-op on this base (its patch would be empty),
    /// so the *exact* answer is the baseline itself. Classed with the
    /// exactly-known outcomes, never with the estimates — an estimate
    /// label here would flood the estimate survivor class with baseline
    /// duplicates and crowd out real contenders.
    Noop,
    /// Analytic busy-bound estimate — a ranking signal, not a makespan.
    Estimate(u64),
}

/// The rung-0 analytic surrogate: for transform families whose effect on
/// the busy-time bound is a per-duration-class rescale — bandwidth
/// (communication ÷ factor), batch-size (GPU work × batch ratio above
/// the fixed kernel overhead), DGC (allreduce × ratio plus fixed
/// compress/decompress kernels) — the estimate comes straight from
/// precomputed per-thread class sums in O(threads), with *no patch
/// emitted or hashed*. At 10³+-scenario grids these families dominate
/// the candidate set, and patch emission is most of a low-rung eval.
///
/// Tracks [`busy_time_bound`] of the family's emitted patch up to
/// per-task-vs-per-sum rounding (pinned by a unit test); like that
/// bound it ranks candidates, it does not predict makespans. `None`
/// means the family has no surrogate and the rung falls back to the
/// patch path.
fn surrogate_estimate(opt: &OptSpec, base: &BaseProfile) -> Option<Surrogate> {
    match opt {
        OptSpec::Bandwidth { factor } => {
            let sums = base.class_sums();
            // A single-GPU profile has no communication tasks (and
            // factor 1 rescales nothing): the patch would be empty.
            if *factor == 1.0 || sums.iter().all(|s| s.comm == 0) {
                return Some(Surrogate::Noop);
            }
            Some(Surrogate::Estimate(
                sums.iter()
                    .map(|s| {
                        let fixed = s.gap + s.memcpy + s.gpu_fixed + s.gpu_work + s.other;
                        fixed + (s.comm as f64 / factor).round() as u64
                    })
                    .max()
                    .unwrap_or(0),
            ))
        }
        OptSpec::BatchSize { batch } => {
            let profile_batch = base.graph.meta.batch_size as u64;
            if *batch == profile_batch {
                return Some(Surrogate::Noop);
            }
            let factor = *batch as f64 / profile_batch as f64;
            Some(Surrogate::Estimate(
                base.class_sums()
                    .iter()
                    .map(|s| {
                        let fixed = s.gap + s.comm + s.other + s.gpu_fixed;
                        let scalable = (s.gpu_work + s.memcpy) as f64;
                        fixed + (scalable * factor).round() as u64
                    })
                    .max()
                    .unwrap_or(0),
            ))
        }
        OptSpec::Dgc {
            machines,
            gpus_per_machine,
            bw_gbps,
            ratio,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            let plan = base.dgc_agg(&cluster);
            Some(Surrogate::Estimate(
                plan.dgc
                    .get()
                    .expect("dgc_agg initializes it")
                    .estimate(*ratio),
            ))
        }
        _ => None,
    }
}

/// Σ stashed-activation bytes of the given layers at a batch size.
fn activation_bytes_of(model: &Model, batch: u64, layers: &BTreeSet<LayerId>) -> u64 {
    model
        .layers
        .iter()
        .filter(|l| layers.contains(&l.id))
        .map(|l| stashed_activation_bytes(l) * batch)
        .sum()
}

/// Distinct layers of the *base* tasks a patch retimed.
fn retimed_layers(patch: &GraphPatch, pg: &ProfiledGraph) -> BTreeSet<LayerId> {
    patch
        .retimed_base_ids()
        .into_iter()
        .filter_map(|id| pg.graph.task(id).layer.map(|l| l.layer))
        .collect()
}

/// Distinct layers of inserted tasks whose name starts with `prefix`.
fn inserted_layers(patch: &GraphPatch, prefix: &str) -> BTreeSet<LayerId> {
    patch
        .inserted_tasks()
        .filter(|(_, t)| t.name.starts_with(prefix))
        .filter_map(|(_, t)| t.layer.map(|l| l.layer))
        .collect()
}

/// Bytes the patch offloads to host memory: the device-to-host copies it
/// inserted into the graph.
fn offloaded_bytes(patch: &GraphPatch) -> u64 {
    patch
        .inserted_tasks()
        .filter_map(|(_, t)| match t.kind {
            TaskKind::GpuMemcpy {
                dir: MemcpyDir::DeviceToHost,
                bytes,
            } => Some(bytes),
            _ => None,
        })
        .sum()
}

/// Runs the P3 analysis for one parameter-server config over the shared
/// replicated base: emit the push/pull patch, apply it to the compiled
/// replicated graph, simulate under the priority scheduler, and extract
/// the steady-state iteration time. Always a full simulation — steady-
/// state extraction reads the whole replicated timeline, and the
/// replicated base keeps no captured schedule.
fn p3_prediction(
    scenario: &Scenario,
    base: &BaseProfile,
    cfg: &P3Config,
    patches: &PatchCache,
    counters: &SimCounters,
) -> PatchEval {
    let p3b = base.p3_base();
    let inserts = p3_insert_plan(&base.graph, &p3b.rep, cfg);
    let mut ov = PatchGraph::new(&p3b.rep.graph);
    plan_p3_inserts(&mut ov, &inserts);
    let patch = ov.finish();
    // P3 is never evaluated at a reduced rung (the steady-state analysis
    // has no cheap stand-in), so its key is always exact-fidelity.
    let key = patch_key(scenario, "p3", patch.fingerprint(), Fidelity::Exact);
    if let Some(eval) = patches.get(key) {
        return eval;
    }
    let applied = p3b.compiled.apply(&patch);
    let sim = simulate_compiled_with(&applied, &P3Scheduler)
        .expect("P3 graph must stay a DAG")
        .into_sim_result(&applied);
    counters.record_full(applied.len());
    let eval = PatchEval {
        predicted_ns: p3b.rep.steady_iteration_ns(&sim),
        incremental: false,
        estimated: false,
        tasks_redispatched: applied.len() as u64,
    };
    patches.insert(key, eval);
    eval
}

/// Evaluates one scenario against its shared base profile: emit the
/// patch, consult the patch-fingerprint cache, apply + *incrementally*
/// simulate on a miss (re-dispatching only the cone the patch can
/// affect), and derive the report's memory/communication objectives.
fn evaluate(
    scenario: &Scenario,
    base: &BaseProfile,
    patches: &PatchCache,
    counters: &SimCounters,
    fidelity: Fidelity,
    scratch: &mut SimScratch,
) -> Result<ScenarioOutcome, String> {
    let pg = &base.graph;
    let model = &base.model;
    let grad_bytes = (model.param_count() as f64 * F32_BYTES) as u64;

    // Default memory/comm objectives: the footprint-model estimate. The
    // AMP/Gist/vDNN arms below replace it with a value derived from the
    // patched graph (the layers/copies the transformation actually
    // touched), falling back to the model estimate when the patch
    // carries no memory-relevant signal.
    let fp = footprint(model, scenario.batch);
    let mut memory_bytes = fp.total();
    let mut comm_bytes = 0u64;

    // Patched evaluation: incremental apply + cone re-simulation against
    // the base schedule (full simulation only when the cone is too
    // large), short-circuited by the patch-fingerprint cache.
    let mut run_patch = |patch: &GraphPatch| -> PatchEval {
        let key = patch_key(scenario, "default", patch.fingerprint(), fidelity);
        if let Some(eval) = patches.get(key) {
            return eval;
        }
        let eval = match fidelity {
            Fidelity::Exact => {
                // Warm path: the arena's epoch-stamped buffers replace
                // the per-evaluation prefix clones, so a small cone
                // costs O(cone), not O(n).
                let outcome = simulate_warm(&base.compiled, &base.schedule, patch, scratch)
                    .expect("patched graph must stay a DAG");
                counters.record(&outcome.stats);
                PatchEval {
                    predicted_ns: outcome.makespan_ns,
                    incremental: outcome.stats.is_incremental(),
                    estimated: false,
                    tasks_redispatched: outcome.stats.redispatched as u64,
                }
            }
            Fidelity::Rung { max_cone_fraction } => {
                let opts = IncrementalOptions { max_cone_fraction };
                // Decide the cone budget from the *unapplied* patch: an
                // over-budget patch answers with the O(|patch|) busy
                // delta and never materializes the patched graph — at a
                // low rung the apply itself is most of a full eval.
                if !incremental_cone_fits(
                    &base.compiled,
                    &base.schedule,
                    patch,
                    &EarliestStart,
                    &opts,
                ) {
                    counters.record_estimate();
                    let eval = PatchEval {
                        predicted_ns: busy_time_bound(&base.compiled, base.busy_ns(), patch),
                        incremental: false,
                        estimated: true,
                        tasks_redispatched: 0,
                    };
                    patches.insert(key, eval);
                    return eval;
                }
                let (applied, trace) = base.compiled.apply_traced(patch);
                let attempt = try_simulate_incremental_with(
                    &base.compiled,
                    &base.schedule,
                    &applied,
                    patch,
                    &trace,
                    &EarliestStart,
                    &opts,
                )
                .expect("patched graph must stay a DAG");
                match attempt {
                    Ok(outcome) => {
                        counters.record(&outcome.stats);
                        PatchEval {
                            predicted_ns: outcome.sim.makespan_ns,
                            incremental: outcome.stats.is_incremental(),
                            estimated: false,
                            tasks_redispatched: outcome.stats.redispatched as u64,
                        }
                    }
                    // Vacated threads — only visible after the apply;
                    // the busy bound over the applied graph equals the
                    // delta form, so the estimate is path-independent.
                    Err(_) => {
                        counters.record_estimate();
                        PatchEval {
                            predicted_ns: busy_time_estimate(&applied),
                            incremental: false,
                            estimated: true,
                            tasks_redispatched: 0,
                        }
                    }
                }
            }
        };
        patches.insert(key, eval);
        eval
    };

    let mut sim_path = "baseline";
    let mut tasks_redispatched = 0u64;
    let prediction: Prediction = match &scenario.opt {
        OptSpec::Baseline => Prediction {
            baseline_ns: base.baseline_ns,
            predicted_ns: base.baseline_ns,
        },
        OptSpec::P3 {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            comm_bytes = grad_bytes;
            // P3's comparable baseline is the same parameter-server
            // cluster with FIFO layer-granularity transfers (paper
            // §6.6), not the single-GPU profile — so the speedup column
            // means "what P3's slicing+priority buys on this cluster".
            let fifo = p3_prediction(
                scenario,
                base,
                &P3Config::baseline(cluster),
                patches,
                counters,
            );
            let p3 = p3_prediction(scenario, base, &P3Config::p3(cluster), patches, counters);
            sim_path = "full";
            tasks_redispatched = fifo.tasks_redispatched + p3.tasks_redispatched;
            Prediction {
                baseline_ns: fifo.predicted_ns,
                predicted_ns: p3.predicted_ns,
            }
        }
        opt => {
            // Low-fidelity rungs rank scalable families (bandwidth,
            // batch-size, DGC) through the analytic surrogate — no
            // patch is emitted, hashed, or cached. These families'
            // memory/comm objectives never derive from the patch
            // either, so the outcome is complete without one.
            if matches!(fidelity, Fidelity::Rung { .. }) {
                if let Some(sur) = surrogate_estimate(opt, base) {
                    let (est_ns, path) = match sur {
                        // Exactly known: an empty patch replays the base
                        // schedule unchanged. No estimate, no sim.
                        Surrogate::Noop => (base.baseline_ns, "baseline"),
                        Surrogate::Estimate(ns) => {
                            counters.record_estimate();
                            (ns, "estimate")
                        }
                    };
                    match opt {
                        OptSpec::BatchSize { batch } => {
                            memory_bytes = footprint(model, *batch).total();
                        }
                        OptSpec::Dgc { ratio, .. } => {
                            comm_bytes = (grad_bytes as f64 * ratio).ceil() as u64;
                        }
                        _ => {}
                    }
                    let prediction = Prediction {
                        baseline_ns: base.baseline_ns,
                        predicted_ns: est_ns,
                    };
                    return Ok(ScenarioOutcome {
                        key: scenario.fingerprint_hex(),
                        label: scenario.label(),
                        model: scenario.model.clone(),
                        batch: scenario.batch,
                        opt: scenario.opt.label(),
                        baseline_ns: prediction.baseline_ns,
                        predicted_ns: prediction.predicted_ns,
                        speedup: prediction.speedup(),
                        memory_bytes,
                        comm_bytes,
                        sim_path: path.to_string(),
                        tasks_redispatched: 0,
                        cached: false,
                    });
                }
            }
            let patch = emit_patch(opt, base)?;
            match opt {
                OptSpec::Amp => {
                    // AMP stores the stashed activations of the kernels
                    // it retimed in fp16: price exactly those layers.
                    let touched =
                        activation_bytes_of(model, scenario.batch, &retimed_layers(&patch, pg));
                    let saved = if touched > 0 {
                        touched / 2
                    } else {
                        fp.activations / 2
                    };
                    memory_bytes = fp.total() - saved.min(fp.activations);
                }
                OptSpec::Gist { lossy } => {
                    // Lossless Gist binarizes the ReLU stashes it found
                    // kernels for (~2x on that share); lossy adds delayed
                    // precision reduction (fp16) on the other forward
                    // layers it instrumented.
                    let enc = activation_bytes_of(
                        model,
                        scenario.batch,
                        &inserted_layers(&patch, "gist_encode"),
                    );
                    let dpr = activation_bytes_of(
                        model,
                        scenario.batch,
                        &inserted_layers(&patch, "gist_dpr"),
                    );
                    let derived = enc / 2 + dpr / 2;
                    let saved = if derived > 0 {
                        derived
                    } else if *lossy {
                        fp.activations / 2
                    } else {
                        fp.activations / 4
                    };
                    memory_bytes = fp.total() - saved.min(fp.activations);
                }
                OptSpec::Vdnn { .. } => {
                    // vDNN's saving is whatever the patch actually copies
                    // out: the DtoH offload tasks it inserted.
                    let derived = offloaded_bytes(&patch);
                    let saved = if derived > 0 {
                        derived
                    } else {
                        vdnn_offloadable_bytes(model, scenario.batch)
                    };
                    memory_bytes = fp.total().saturating_sub(saved);
                }
                OptSpec::BatchSize { batch } => {
                    memory_bytes = footprint(model, *batch).total();
                }
                OptSpec::Ddp { .. } | OptSpec::BlueConnect { .. } => {
                    comm_bytes = grad_bytes;
                }
                OptSpec::Dgc { ratio, .. } => {
                    comm_bytes = (grad_bytes as f64 * ratio).ceil() as u64;
                }
                _ => {}
            }
            let eval = run_patch(&patch);
            sim_path = if eval.estimated {
                "estimate"
            } else if eval.incremental {
                "incremental"
            } else {
                "full"
            };
            tasks_redispatched = eval.tasks_redispatched;
            Prediction {
                baseline_ns: base.baseline_ns,
                predicted_ns: eval.predicted_ns,
            }
        }
    };

    Ok(ScenarioOutcome {
        key: scenario.fingerprint_hex(),
        label: scenario.label(),
        model: scenario.model.clone(),
        batch: scenario.batch,
        opt: scenario.opt.label(),
        baseline_ns: prediction.baseline_ns,
        predicted_ns: prediction.predicted_ns,
        speedup: prediction.speedup(),
        memory_bytes,
        comm_bytes,
        sim_path: sim_path.to_string(),
        tasks_redispatched,
        cached: false,
    })
}

/// Renders a human-readable patch explanation for one scenario: builds
/// the base profile, emits the scenario's patch, summarizes what it does
/// to the graph, and reports which simulation path would evaluate it —
/// for the incremental path, the cone size and the share of tasks
/// re-dispatched (`daydream sweep --explain`).
pub fn explain_scenario(scenario: &Scenario) -> Result<String, String> {
    let base = build_profile(&scenario.model, scenario.batch)?;
    let (note, sim_note, patch) = match &scenario.opt {
        OptSpec::P3 {
            machines,
            gpus_per_machine,
            bw_gbps,
        } => {
            let cluster = ClusterConfig::new(*machines, *gpus_per_machine, *bw_gbps);
            let p3b = base.p3_base();
            let cfg = P3Config::p3(cluster);
            let inserts = p3_insert_plan(&base.graph, &p3b.rep, &cfg);
            let mut ov = PatchGraph::new(&p3b.rep.graph);
            plan_p3_inserts(&mut ov, &inserts);
            (
                format!("patch over the {P3_ITERATIONS}-iteration replicated base"),
                "full re-simulation (P3 steady-state analysis reads the \
                 whole replicated timeline)"
                    .to_string(),
                Arc::new(ov.finish()),
            )
        }
        opt => {
            let patch = emit_patch(opt, &base)?;
            let note = if patch.is_empty() {
                "empty patch (no transformation)".to_string()
            } else {
                "patch over the profiled base graph".to_string()
            };
            let (applied, trace) = base.compiled.apply_traced(&patch);
            let outcome =
                simulate_incremental(&base.compiled, &base.schedule, &applied, &patch, &trace)
                    .map_err(|e| format!("patched graph for {}: {e}", scenario.label()))?;
            let s = outcome.stats;
            let sim_note = match s.fallback {
                None => format!(
                    "incremental cone re-simulation\ncone:      {} of {} tasks re-dispatched ({:.1}%)",
                    s.redispatched,
                    s.total,
                    s.cone_fraction() * 100.0
                ),
                Some(reason) => format!("full re-simulation ({reason})"),
            };
            (note, sim_note, patch)
        }
    };
    let mut out = String::new();
    out.push_str(&format!("scenario:  {}\n", scenario.label()));
    out.push_str(&format!("key:       {}\n", scenario.fingerprint_hex()));
    out.push_str(&format!(
        "patch:     {:016x} ({note})\n",
        patch.fingerprint()
    ));
    out.push_str(&format!("sim path:  {sim_note}\n"));
    out.push_str(&format!("{}\n", patch.summary()));
    let offloaded = offloaded_bytes(&patch);
    if offloaded > 0 {
        out.push_str(&format!(
            "offloaded: {:.2} GiB device-to-host\n",
            offloaded as f64 / (1u64 << 30) as f64
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;

    fn small_grid() -> SweepGrid {
        SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["baseline", "amp", "gist"])
            .build()
    }

    #[test]
    fn rung_surrogates_track_the_patch_busy_bound() {
        // The analytic surrogate must mirror what the emitted patch's
        // busy-time bound would have said — it replaces that bound at
        // rung 0, so any planner change that breaks the mirror (new
        // duration classes, different DGC kernel costs) must fail here,
        // not silently skew the search's pruning.
        let base = build_profile("ResNet-50", 4).unwrap();
        let families = [
            OptSpec::BatchSize { batch: 16 },
            OptSpec::BatchSize { batch: 2 },
            OptSpec::Dgc {
                machines: 2,
                gpus_per_machine: 1,
                bw_gbps: 10.0,
                ratio: 0.01,
            },
            OptSpec::Dgc {
                machines: 4,
                gpus_per_machine: 1,
                bw_gbps: 25.0,
                ratio: 0.25,
            },
        ];
        for opt in families {
            let Some(Surrogate::Estimate(sur)) = surrogate_estimate(&opt, &base) else {
                panic!("{opt:?} must have an estimate surrogate");
            };
            let patch = emit_patch(&opt, &base).unwrap();
            let bound = busy_time_bound(&base.compiled, base.busy_ns(), &patch);
            // Per-task vs per-sum rounding differ by well under 0.1%.
            let rel = (sur as f64 - bound as f64).abs() / bound.max(1) as f64;
            assert!(
                rel < 1e-3,
                "{opt:?}: surrogate {sur} vs patch bound {bound} (rel {rel:.6})"
            );
        }
        // Bandwidth over a single-GPU profile rescales nothing: the
        // surrogate knows the patch is empty and answers exactly.
        assert!(matches!(
            surrogate_estimate(&OptSpec::Bandwidth { factor: 2.0 }, &base),
            Some(Surrogate::Noop)
        ));
        // Families without a surrogate fall through to the patch path.
        assert!(surrogate_estimate(&OptSpec::Amp, &base).is_none());
    }

    #[test]
    fn runs_a_small_grid() {
        let engine = SweepEngine::new(2);
        let report = engine.run(&small_grid()).unwrap();
        assert_eq!(report.scenario_count, 3);
        assert_eq!(report.cache_hits, 0);
        // The baseline row predicts its own baseline.
        let baseline = report.results.iter().find(|o| o.opt == "baseline").unwrap();
        assert_eq!(baseline.baseline_ns, baseline.predicted_ns);
        // AMP beats the baseline on ResNet (paper §6.2).
        let amp = report.results.iter().find(|o| o.opt == "amp").unwrap();
        assert!(amp.speedup > 1.0);
        assert_eq!(engine.last_stats().profiles_built, 1);
    }

    #[test]
    fn profiles_pass_the_fidelity_check() {
        let engine = SweepEngine::new(2);
        engine.run(&small_grid()).unwrap();
        let stats = engine.last_stats();
        assert_eq!(stats.fidelity_checks, 1, "one base profile, one check");
        assert_eq!(stats.fidelity_failures, 0);
        assert!(
            stats.fidelity_worst_rel_err < FIDELITY_TOLERANCE,
            "baseline replay drifted {:.2}% from the recorded run",
            stats.fidelity_worst_rel_err * 100.0
        );
        // A fully cached rerun builds no profiles, so it checks nothing.
        engine.run(&small_grid()).unwrap();
        assert_eq!(engine.last_stats().fidelity_checks, 0);
    }

    #[test]
    fn second_run_is_fully_cached() {
        let engine = SweepEngine::new(2);
        engine.run(&small_grid()).unwrap();
        let again = engine.run(&small_grid()).unwrap();
        assert_eq!(again.cache_hits, 3);
        assert_eq!(again.executed, 0);
        assert_eq!(engine.last_stats().profiles_built, 0, "profiles reused too");
    }

    #[test]
    fn run_scenarios_split_across_engines_matches_run() {
        // The distributed-sweep contract: evaluating disjoint scenario
        // slices on separate engines and re-ranking the union matches a
        // single engine's `run` exactly.
        let grid = small_grid();
        let scenarios = grid.expand().unwrap();
        let (a, b) = scenarios.split_at(scenarios.len() / 2);
        let mut outcomes = SweepEngine::new(1).run_scenarios(a.to_vec()).unwrap();
        outcomes.extend(SweepEngine::new(2).run_scenarios(b.to_vec()).unwrap());
        let merged = SweepReport::from_outcomes(outcomes);
        let single = SweepEngine::new(2).run(&grid).unwrap();
        assert_eq!(merged, single);
        assert_eq!(merged.to_json().unwrap(), single.to_json().unwrap());
    }

    #[test]
    fn amp_reduces_estimated_memory() {
        let engine = SweepEngine::new(1);
        let report = engine.run(&small_grid()).unwrap();
        let baseline = report.results.iter().find(|o| o.opt == "baseline").unwrap();
        let amp = report.results.iter().find(|o| o.opt == "amp").unwrap();
        assert!(amp.memory_bytes < baseline.memory_bytes);
    }

    #[test]
    fn distributed_scenarios_report_comm_cost() {
        let engine = SweepEngine::new(2);
        let grid = SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["ddp", "dgc"])
            .bandwidths([10.0])
            .machines([4])
            .dgc_ratios([0.01])
            .build();
        let report = engine.run(&grid).unwrap();
        let ddp = report
            .results
            .iter()
            .find(|o| o.opt.starts_with("ddp"))
            .unwrap();
        let dgc = report
            .results
            .iter()
            .find(|o| o.opt.starts_with("dgc"))
            .unwrap();
        assert!(ddp.comm_bytes > 0);
        assert!(
            dgc.comm_bytes < ddp.comm_bytes / 50,
            "DGC compresses gradient traffic ~100x"
        );
    }

    #[test]
    fn patch_evaluation_matches_legacy_mutate_path() {
        // The patch pipeline must predict exactly what clone + mutate +
        // recompile predicted: pin every catalog family on one profile.
        use daydream_core::predict_from_baseline;
        let base = build_profile("ResNet-50", 4).unwrap();
        let scenarios = [
            OptSpec::Amp,
            OptSpec::ReconstructBn,
            OptSpec::Gist { lossy: true },
            OptSpec::Vdnn { lookahead: 2 },
            OptSpec::Bandwidth { factor: 2.0 },
            OptSpec::UpgradeGpu { to: "v100".into() },
            OptSpec::BatchSize { batch: 8 },
            OptSpec::Ddp {
                machines: 4,
                gpus_per_machine: 1,
                bw_gbps: 10.0,
            },
            OptSpec::BlueConnect {
                machines: 4,
                gpus_per_machine: 2,
                bw_gbps: 10.0,
            },
            OptSpec::Dgc {
                machines: 4,
                gpus_per_machine: 1,
                bw_gbps: 10.0,
                ratio: 0.01,
            },
        ];
        let patches = PatchCache::new();
        let counters = SimCounters::default();
        let mut scratch = SimScratch::new();
        for opt in scenarios {
            let scenario = Scenario::new("ResNet-50", 4, opt.clone());
            let outcome = evaluate(
                &scenario,
                &base,
                &patches,
                &counters,
                Fidelity::Exact,
                &mut scratch,
            )
            .unwrap();
            let legacy = predict_from_baseline(base.baseline_ns, &base.graph, |g| {
                let cluster = |m: u32, gm: u32, bw: f64| ClusterConfig::new(m, gm, bw);
                match &opt {
                    OptSpec::Amp => daydream_core::whatif::what_if_amp(g),
                    OptSpec::ReconstructBn => {
                        daydream_core::whatif::what_if_reconstruct_bn(g, &base.model)
                    }
                    OptSpec::Gist { lossy } => {
                        daydream_core::whatif::what_if_gist(
                            g,
                            &GistConfig {
                                lossy: *lossy,
                                ..GistConfig::default()
                            },
                        );
                    }
                    OptSpec::Vdnn { lookahead } => {
                        daydream_core::whatif::what_if_vdnn(
                            g,
                            &base.model,
                            &VdnnConfig {
                                prefetch_lookahead: *lookahead,
                                ..VdnnConfig::default()
                            },
                        );
                    }
                    OptSpec::Bandwidth { factor } => {
                        daydream_core::whatif::what_if_bandwidth(g, *factor);
                    }
                    OptSpec::UpgradeGpu { to } => {
                        daydream_core::whatif::what_if_upgrade_gpu(
                            g,
                            &GpuSpec::rtx_2080ti(),
                            &GpuSpec::by_name(to).unwrap(),
                        );
                    }
                    OptSpec::BatchSize { batch } => {
                        daydream_core::whatif::what_if_batch_size(g, *batch);
                    }
                    OptSpec::Ddp {
                        machines,
                        gpus_per_machine,
                        bw_gbps,
                    } => {
                        daydream_core::whatif::what_if_distributed(
                            g,
                            &cluster(*machines, *gpus_per_machine, *bw_gbps),
                        );
                    }
                    OptSpec::BlueConnect {
                        machines,
                        gpus_per_machine,
                        bw_gbps,
                    } => {
                        let c = cluster(*machines, *gpus_per_machine, *bw_gbps);
                        let ars = daydream_core::whatif::what_if_distributed(g, &c);
                        daydream_core::whatif::what_if_blueconnect(g, &c, &ars);
                    }
                    OptSpec::Dgc {
                        machines,
                        gpus_per_machine,
                        bw_gbps,
                        ratio,
                    } => {
                        let c = cluster(*machines, *gpus_per_machine, *bw_gbps);
                        let ars = daydream_core::whatif::what_if_distributed(g, &c);
                        daydream_core::whatif::what_if_dgc(
                            g,
                            &ars,
                            &DgcConfig {
                                compression_ratio: *ratio,
                                ..DgcConfig::default()
                            },
                        );
                    }
                    _ => unreachable!(),
                }
            });
            assert_eq!(
                outcome.predicted_ns,
                legacy.predicted_ns,
                "{}: patch path diverged from legacy mutate path",
                scenario.label()
            );
        }
    }

    #[test]
    fn identical_patches_hit_the_patch_cache() {
        // Two distinct Scenario values with the same effective patch:
        // `run_scenarios` takes explicit lists, so duplicates reach
        // evaluation (grid expansion would collapse them) and the second
        // one must skip simulation via the patch-fingerprint cache.
        let engine = SweepEngine::new(1);
        let s = Scenario::new("ResNet-50", 4, OptSpec::Bandwidth { factor: 2.0 });
        let outcomes = engine.run_scenarios(vec![s.clone(), s.clone()]).unwrap();
        assert_eq!(outcomes[0].predicted_ns, outcomes[1].predicted_ns);
        assert_eq!(engine.last_stats().patch_hits, 1);
    }

    #[test]
    fn vdnn_memory_derived_from_patched_graph() {
        // The vDNN memory objective equals the footprint minus exactly
        // the bytes of the DtoH offload copies the patch inserted.
        let base = build_profile("ResNet-50", 4).unwrap();
        let scenario = Scenario::new("ResNet-50", 4, OptSpec::Vdnn { lookahead: 2 });
        let outcome = evaluate(
            &scenario,
            &base,
            &PatchCache::new(),
            &SimCounters::default(),
            Fidelity::Exact,
            &mut SimScratch::new(),
        )
        .unwrap();
        let patch = emit_patch(&scenario.opt, &base).unwrap();
        let offloaded = offloaded_bytes(&patch);
        assert!(offloaded > 0, "vDNN must offload something");
        let fp = footprint(&base.model, 4);
        assert_eq!(outcome.memory_bytes, fp.total().saturating_sub(offloaded));
    }

    #[test]
    fn rung_patch_cache_entries_never_serve_exact_requests() {
        // Satellite of the fidelity-keyed patch cache: a low-fidelity
        // rung-0 prediction (tiny cone budget forces the analytic
        // estimate) must never answer a full-fidelity lookup for the
        // same patch — the fidelity tag in the key separates them.
        let engine = SweepEngine::new(1);
        let s = Scenario::new("ResNet-50", 4, OptSpec::Amp);
        let rung = engine.run_scenarios_rung(vec![s.clone()], 0.01).unwrap();
        assert_eq!(rung[0].sim_path, "estimate", "1% cone budget must trip");
        assert_eq!(engine.last_stats().estimate_sims, 1);
        let exact = engine.run_scenarios(vec![s.clone()]).unwrap();
        assert_eq!(
            engine.last_stats().patch_hits,
            0,
            "the exact run must not be served the rung-keyed estimate"
        );
        assert_ne!(exact[0].sim_path, "estimate", "exact runs never estimate");
        // The exact prediction matches a never-rung engine's bit for bit.
        let fresh = SweepEngine::new(1).run_scenarios(vec![s]).unwrap();
        assert_eq!(exact[0].predicted_ns, fresh[0].predicted_ns);
        assert_ne!(
            rung[0].predicted_ns, exact[0].predicted_ns,
            "the busy-time bound is not the simulated makespan"
        );
    }

    #[test]
    fn rung_runs_bypass_the_result_cache() {
        // A rung evaluation must neither read nor write the persistent
        // scenario-result cache: its outcomes are ranking signals only.
        let engine = SweepEngine::new(1);
        let s = Scenario::new("ResNet-50", 4, OptSpec::Amp);
        engine.run_scenarios(vec![s.clone()]).unwrap();
        let exact_hits = engine.cache().hits();
        let rung = engine.run_scenarios_rung(vec![s.clone()], 0.01).unwrap();
        assert_eq!(
            engine.cache().hits(),
            exact_hits,
            "rung run must not read the exact-result cache"
        );
        assert!(!rung[0].cached);
        assert_eq!(rung[0].sim_path, "estimate");
    }

    #[test]
    fn explain_renders_patch_summary() {
        let s = Scenario::new("ResNet-50", 4, OptSpec::Gist { lossy: false });
        let text = explain_scenario(&s).unwrap();
        assert!(text.contains("scenario:  ResNet-50 b4 gist[lossless]"));
        assert!(text.contains("tasks inserted:"));
        assert!(text.contains("deps added:"));
        // Baseline renders an explicitly empty patch.
        let b = Scenario::new("ResNet-50", 4, OptSpec::Baseline);
        let text = explain_scenario(&b).unwrap();
        assert!(text.contains("empty patch"));
        // P3 summarizes the replicated-base patch.
        let p = Scenario::new(
            "ResNet-50",
            4,
            OptSpec::P3 {
                machines: 4,
                gpus_per_machine: 1,
                bw_gbps: 4.0,
            },
        );
        let text = explain_scenario(&p).unwrap();
        assert!(text.contains("replicated base"));
    }
}
