//! Content-hash result cache: repeated or overlapping sub-grids are free.
//!
//! Keys are [`crate::Scenario::fingerprint`] values — stable FNV-1a
//! content hashes — so the cache survives process restarts via a JSON
//! file (the CLI's `--cache-file`).

use crate::report::ScenarioOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// Lock shards per cache — a power of two so the FNV-mixed shard pick
/// reduces to a mask. Sixteen shards keep the work-stealing pool and the
/// serve job queue from serializing on one mutex without bloating the
/// per-engine footprint.
pub const CACHE_SHARDS: usize = 16;

/// FNV-1a-mixed shard index. Keys are already content hashes, but their
/// low bits can correlate across a scenario grid (shared model/batch
/// prefixes), so the key's bytes run through one more FNV round before
/// masking.
fn shard_of(key: u64) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & (CACHE_SHARDS as u64 - 1)) as usize
}

/// One lock shard: its slice of the key space plus hit/contention
/// accounting local to the shard.
#[derive(Debug)]
struct Shard<V> {
    entries: Mutex<HashMap<u64, V>>,
    hits: AtomicUsize,
    contended: AtomicUsize,
}

// Not derived: `V` itself needs no `Default` for an empty shard.
impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            contended: AtomicUsize::new(0),
        }
    }
}

impl<V> Shard<V> {
    /// Locks the shard, counting the acquisition as contended when
    /// another thread currently holds it.
    fn lock(&self) -> MutexGuard<'_, HashMap<u64, V>> {
        match self.entries.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.entries.lock().unwrap()
            }
            Err(TryLockError::Poisoned(e)) => panic!("cache shard lock poisoned: {e}"),
        }
    }
}

/// Thread-safe scenario-result cache, sharded [`CACHE_SHARDS`] ways by
/// fingerprint so concurrent workers rarely touch the same lock.
#[derive(Debug, Default)]
pub struct SweepCache {
    shards: [Shard<ScenarioOutcome>; CACHE_SHARDS],
    misses: AtomicUsize,
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks a fingerprint up, counting the hit or miss. Hits come back
    /// with `cached = true` so reports can show reuse.
    pub fn lookup(&self, fingerprint: u64) -> Option<ScenarioOutcome> {
        let shard = &self.shards[shard_of(fingerprint)];
        let got = shard.lock().get(&fingerprint).cloned();
        match got {
            Some(mut outcome) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                outcome.cached = true;
                Some(outcome)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly computed outcome.
    pub fn insert(&self, fingerprint: u64, outcome: &ScenarioOutcome) {
        let mut stored = outcome.clone();
        stored.cached = false;
        self.shards[shard_of(fingerprint)]
            .lock()
            .insert(fingerprint, stored);
    }

    /// Cache hits since construction (or the last [`SweepCache::clear`]),
    /// summed over shards.
    pub fn hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Per-shard hit counts, indexed by shard.
    pub fn shard_hits(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-shard contended lock acquisitions, indexed by shard.
    pub fn shard_contention(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .collect()
    }

    /// Contended lock acquisitions summed over shards.
    pub fn contended(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of stored outcomes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.contended.store(0, Ordering::Relaxed);
        }
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Serializes all entries as a JSON array of outcomes (fingerprints
    /// are recomputable, but each outcome carries its `key` hex anyway).
    /// Entries are sorted by key, so sharding never leaks into the file.
    pub fn to_json(&self) -> serde_json::Result<String> {
        let mut entries: Vec<ScenarioOutcome> = Vec::new();
        for shard in &self.shards {
            entries.extend(shard.lock().values().cloned());
        }
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        serde_json::to_string_pretty(&entries)
    }

    /// Loads entries from [`SweepCache::to_json`] output, merging over
    /// existing ones. Cache files written before the incremental-
    /// simulation fields existed still load: their rows came from full
    /// re-simulations, so the missing fields are back-filled as
    /// `sim_path: "full"` with an unknown (zero) re-dispatch count.
    pub fn load_json(&self, json: &str) -> Result<usize, String> {
        let entries: Vec<ScenarioOutcome> = match serde_json::from_str(json) {
            Ok(entries) => entries,
            Err(e) => serde_json::from_str::<Vec<LegacyOutcome>>(json)
                .map_err(|_| format!("invalid cache file: {e}"))?
                .into_iter()
                .map(LegacyOutcome::upgrade)
                .collect(),
        };
        let mut loaded = 0;
        for outcome in entries {
            let fp = u64::from_str_radix(&outcome.key, 16)
                .map_err(|_| format!("invalid cache key '{}'", outcome.key))?;
            self.shards[shard_of(fp)].lock().insert(fp, outcome);
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// A cache row from before `ScenarioOutcome` carried `sim_path` /
/// `tasks_redispatched` — kept loadable so an upgrade doesn't brick
/// persisted `--cache-file`s.
#[derive(serde::Deserialize)]
struct LegacyOutcome {
    key: String,
    label: String,
    model: String,
    batch: u64,
    opt: String,
    baseline_ns: u64,
    predicted_ns: u64,
    speedup: f64,
    memory_bytes: u64,
    comm_bytes: u64,
    cached: bool,
}

impl LegacyOutcome {
    fn upgrade(self) -> ScenarioOutcome {
        ScenarioOutcome {
            key: self.key,
            label: self.label,
            model: self.model,
            batch: self.batch,
            opt: self.opt,
            baseline_ns: self.baseline_ns,
            predicted_ns: self.predicted_ns,
            speedup: self.speedup,
            memory_bytes: self.memory_bytes,
            comm_bytes: self.comm_bytes,
            sim_path: "full".into(),
            tasks_redispatched: 0,
            cached: self.cached,
        }
    }
}

/// One cached patch evaluation: the simulated makespan *plus the
/// simulation path that produced it*, so a hit replays the original
/// accounting (and a threshold change between code versions cannot
/// silently masquerade a fallback result as an incremental one — the
/// path travels with the record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchEval {
    /// Simulated post-patch iteration time, ns.
    pub predicted_ns: u64,
    /// `true` if the incremental cone path produced it, `false` for a
    /// full re-simulation.
    pub incremental: bool,
    /// `true` if a low-fidelity rung answered with the analytic busy-time
    /// estimate instead of simulating (never set at exact fidelity — the
    /// patch key carries the fidelity tag, so rung entries cannot be
    /// served to exact requests).
    pub estimated: bool,
    /// Tasks the simulator re-dispatched to produce it.
    pub tasks_redispatched: u64,
}

/// In-memory per-engine evaluation cache keyed by *patch* fingerprints
/// (plus base identity): two scenarios that emit byte-identical
/// [`daydream_core::GraphPatch`]es over the same `(model, batch)` base
/// graph necessarily predict the same iteration time, so the second one
/// skips apply + simulate entirely.
///
/// This sits *under* [`SweepCache`]: the scenario-fingerprint cache keys
/// the full outcome (label, memory, comm) and persists to `--cache-file`;
/// the patch cache keys only the simulated [`PatchEval`] and lives for
/// the engine's lifetime.
#[derive(Debug, Default)]
pub struct PatchCache {
    shards: [Shard<PatchEval>; CACHE_SHARDS],
}

impl PatchCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a recorded evaluation by patch key, counting hits.
    pub fn get(&self, key: u64) -> Option<PatchEval> {
        let shard = &self.shards[shard_of(key)];
        let got = shard.lock().get(&key).copied();
        if got.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Stores a freshly simulated evaluation.
    pub fn insert(&self, key: u64, eval: PatchEval) {
        self.shards[shard_of(key)].lock().insert(key, eval);
    }

    /// Hits since construction, summed over shards.
    pub fn hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard hit counts, indexed by shard.
    pub fn shard_hits(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-shard contended lock acquisitions, indexed by shard.
    pub fn shard_contention(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .collect()
    }

    /// Contended lock acquisitions summed over shards.
    pub fn contended(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.contended.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of stored makespans.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.contended.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(key: u64, label: &str) -> ScenarioOutcome {
        ScenarioOutcome {
            key: format!("{key:016x}"),
            label: label.into(),
            model: "ResNet-50".into(),
            batch: 8,
            opt: "amp".into(),
            baseline_ns: 100,
            predicted_ns: 80,
            speedup: 1.25,
            memory_bytes: 1 << 30,
            comm_bytes: 0,
            sim_path: "incremental".into(),
            tasks_redispatched: 3,
            cached: false,
        }
    }

    #[test]
    fn hit_miss_accounting_and_cached_flag() {
        let cache = SweepCache::new();
        assert!(cache.lookup(7).is_none());
        cache.insert(7, &outcome(7, "a"));
        let hit = cache.lookup(7).unwrap();
        assert!(hit.cached, "hits are flagged");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn patch_cache_counts_hits_and_keeps_the_sim_path() {
        let cache = PatchCache::new();
        assert!(cache.get(9).is_none());
        assert_eq!(cache.hits(), 0);
        let eval = PatchEval {
            predicted_ns: 1234,
            incremental: true,
            estimated: false,
            tasks_redispatched: 42,
        };
        cache.insert(9, eval);
        assert_eq!(cache.get(9), Some(eval), "path travels with the record");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.get(9)), (0, None));
    }

    #[test]
    fn legacy_cache_rows_without_sim_path_still_load() {
        // A cache file persisted before the incremental-simulation
        // fields existed: rows lack sim_path/tasks_redispatched.
        let legacy = r#"[{
            "key": "0000000000000007",
            "label": "ResNet-50 b8 amp",
            "model": "ResNet-50",
            "batch": 8,
            "opt": "amp",
            "baseline_ns": 100,
            "predicted_ns": 80,
            "speedup": 1.25,
            "memory_bytes": 1073741824,
            "comm_bytes": 0,
            "cached": false
        }]"#;
        let cache = SweepCache::new();
        assert_eq!(cache.load_json(legacy).unwrap(), 1);
        let hit = cache.lookup(7).unwrap();
        assert_eq!(hit.sim_path, "full", "legacy rows were full simulations");
        assert_eq!(hit.tasks_redispatched, 0);
        assert_eq!(hit.predicted_ns, 80);
        // Garbage still fails loudly.
        assert!(cache.load_json("{not json").is_err());
        assert!(cache.load_json("[{\"key\": 3}]").is_err());
    }

    #[test]
    fn sharding_spreads_keys_and_sums_counters() {
        let cache = SweepCache::new();
        for k in 0..64u64 {
            cache.insert(k, &outcome(k, "x"));
        }
        assert_eq!(cache.len(), 64);
        for k in 0..64u64 {
            assert!(cache.lookup(k).is_some());
        }
        assert_eq!(cache.hits(), 64);
        assert_eq!(cache.shard_hits().iter().sum::<usize>(), 64);
        let occupied = cache.shard_hits().iter().filter(|&&h| h > 0).count();
        assert!(
            occupied > CACHE_SHARDS / 2,
            "FNV pick must spread even sequential keys: {occupied} shards hit"
        );
        assert_eq!(cache.shard_contention().len(), CACHE_SHARDS);
        // Serialization stays sorted by key regardless of shard layout.
        let json = cache.to_json().unwrap();
        let other = SweepCache::new();
        assert_eq!(other.load_json(&json).unwrap(), 64);
        assert_eq!(other.to_json().unwrap(), json);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.contended()), (0, 0));
    }

    #[test]
    fn json_round_trip_merges() {
        let cache = SweepCache::new();
        cache.insert(1, &outcome(1, "a"));
        cache.insert(2, &outcome(2, "b"));
        let json = cache.to_json().unwrap();

        let other = SweepCache::new();
        other.insert(3, &outcome(3, "c"));
        assert_eq!(other.load_json(&json).unwrap(), 2);
        assert_eq!(other.len(), 3);
        assert!(other.lookup(1).is_some() && other.lookup(3).is_some());
    }
}
