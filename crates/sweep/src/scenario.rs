//! Scenario specifications: one (model, batch, optimization) point of a
//! sweep, with stable labels and content-hash fingerprints for caching.

use daydream_models::Model;
use serde::{Deserialize, Serialize};

/// An optimization (with its parameters) applied in one scenario.
///
/// Covers the full `daydream_core::whatif` catalog; cluster-shaped
/// variants carry their topology so a sweep can cross machines x
/// bandwidth the way the paper's §6 exhibits do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptSpec {
    /// No transformation — the profiled baseline, kept in reports as the
    /// reference row.
    Baseline,
    /// Automatic mixed precision (§6.2).
    Amp,
    /// Kernel fusion of the Adam update (§6.3); Adam models only.
    FusedAdam,
    /// BN recomputation from running statistics (§5.2).
    ReconstructBn,
    /// MetaFlow-style attention substitution (§5.2); attention models only.
    Metaflow,
    /// Data-parallel training with ring all-reduce (§6.4).
    Ddp {
        /// Number of machines.
        machines: u32,
        /// GPUs per machine.
        gpus_per_machine: u32,
        /// Inter-node bandwidth, Gbit/s.
        bw_gbps: f64,
    },
    /// BlueConnect hierarchical all-reduce (§6.4).
    BlueConnect {
        /// Number of machines.
        machines: u32,
        /// GPUs per machine.
        gpus_per_machine: u32,
        /// Inter-node bandwidth, Gbit/s.
        bw_gbps: f64,
    },
    /// Deep Gradient Compression (§5.2).
    Dgc {
        /// Number of machines.
        machines: u32,
        /// GPUs per machine.
        gpus_per_machine: u32,
        /// Inter-node bandwidth, Gbit/s.
        bw_gbps: f64,
        /// Fraction of gradient bytes still transmitted.
        ratio: f64,
    },
    /// Priority-based parameter propagation over a parameter server (§6.6).
    P3 {
        /// Number of machines.
        machines: u32,
        /// GPUs per machine.
        gpus_per_machine: u32,
        /// Inter-node bandwidth, Gbit/s.
        bw_gbps: f64,
    },
    /// vDNN(conv) activation offloading (§6.5); conv models only.
    Vdnn {
        /// Backward layers of prefetch lookahead.
        lookahead: usize,
    },
    /// Gist activation compression (§6.5).
    Gist {
        /// Also model the lossy delayed-precision-reduction kernels.
        lossy: bool,
    },
    /// Hypothetical network bandwidth change (§5.2).
    Bandwidth {
        /// Bandwidth multiplier (2.0 = twice as fast).
        factor: f64,
    },
    /// Hardware upgrade to a different GPU (§5.2).
    UpgradeGpu {
        /// Target GPU name (resolved like the CLI `--gpu` option).
        to: String,
    },
    /// Re-profile prediction at a different mini-batch size (§5.2).
    BatchSize {
        /// Target batch size.
        batch: u64,
    },
}

impl OptSpec {
    /// The family name without parameters (the CLI `--opts` vocabulary).
    pub fn family(&self) -> &'static str {
        match self {
            OptSpec::Baseline => "baseline",
            OptSpec::Amp => "amp",
            OptSpec::FusedAdam => "fused-adam",
            OptSpec::ReconstructBn => "reconstruct-bn",
            OptSpec::Metaflow => "metaflow",
            OptSpec::Ddp { .. } => "ddp",
            OptSpec::BlueConnect { .. } => "blueconnect",
            OptSpec::Dgc { .. } => "dgc",
            OptSpec::P3 { .. } => "p3",
            OptSpec::Vdnn { .. } => "vdnn",
            OptSpec::Gist { .. } => "gist",
            OptSpec::Bandwidth { .. } => "bandwidth",
            OptSpec::UpgradeGpu { .. } => "upgrade-gpu",
            OptSpec::BatchSize { .. } => "batch-size",
        }
    }

    /// A canonical parameterized label, stable across runs (it feeds the
    /// cache fingerprint).
    pub fn label(&self) -> String {
        match self {
            OptSpec::Ddp {
                machines,
                gpus_per_machine,
                bw_gbps,
            } => format!("ddp[m{machines}x{gpus_per_machine} bw{bw_gbps}]"),
            OptSpec::BlueConnect {
                machines,
                gpus_per_machine,
                bw_gbps,
            } => format!("blueconnect[m{machines}x{gpus_per_machine} bw{bw_gbps}]"),
            OptSpec::Dgc {
                machines,
                gpus_per_machine,
                bw_gbps,
                ratio,
            } => format!("dgc[m{machines}x{gpus_per_machine} bw{bw_gbps} r{ratio}]"),
            OptSpec::P3 {
                machines,
                gpus_per_machine,
                bw_gbps,
            } => format!("p3[m{machines}x{gpus_per_machine} bw{bw_gbps}]"),
            OptSpec::Vdnn { lookahead } => format!("vdnn[la{lookahead}]"),
            OptSpec::Gist { lossy } => {
                format!("gist[{}]", if *lossy { "lossy" } else { "lossless" })
            }
            OptSpec::Bandwidth { factor } => format!("bandwidth[x{factor}]"),
            OptSpec::UpgradeGpu { to } => format!("upgrade-gpu[{to}]"),
            OptSpec::BatchSize { batch } => format!("batch-size[{batch}]"),
            simple => simple.family().to_string(),
        }
    }

    /// Whether this optimization is meaningful for the model: FusedAdam
    /// needs Adam, MetaFlow needs attention blocks, vDNN(conv) and BN
    /// reconstruction need their layer kinds.
    pub fn applicable(&self, model: &Model) -> bool {
        match self {
            OptSpec::FusedAdam => model.optimizer == daydream_models::Optimizer::Adam,
            OptSpec::Metaflow => model.layers.iter().any(|l| l.name.contains("attn.")),
            OptSpec::Vdnn { .. } => model.layers.iter().any(|l| l.kind.type_name() == "Conv2d"),
            OptSpec::ReconstructBn => model
                .layers
                .iter()
                .any(|l| l.kind.type_name().contains("BatchNorm")),
            _ => true,
        }
    }
}

/// One point of a sweep: a model profiled at a batch size, plus the
/// optimization applied to the profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Zoo model name.
    pub model: String,
    /// Mini-batch size the base profile is collected at.
    pub batch: u64,
    /// The optimization under evaluation.
    pub opt: OptSpec,
}

impl Scenario {
    /// Builds a scenario.
    pub fn new(model: impl Into<String>, batch: u64, opt: OptSpec) -> Self {
        Scenario {
            model: model.into(),
            batch,
            opt,
        }
    }

    /// Human-readable, canonical label (also the fingerprint input).
    pub fn label(&self) -> String {
        format!("{} b{} {}", self.model, self.batch, self.opt.label())
    }

    /// Stable 64-bit content hash of the scenario, used as the result
    /// cache key. FNV-1a over the canonical label plus the fixed
    /// execution environment, so it is reproducible across processes
    /// (unlike `DefaultHasher`).
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(format!("{}|pytorch|2080ti|seed0", self.label()).as_bytes())
    }

    /// [`Scenario::fingerprint`] as fixed-width hex, for JSON cache files.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use daydream_models::zoo;

    #[test]
    fn labels_are_canonical_and_distinct() {
        let a = Scenario::new("ResNet-50", 8, OptSpec::Amp);
        let b = Scenario::new(
            "ResNet-50",
            8,
            OptSpec::Ddp {
                machines: 4,
                gpus_per_machine: 1,
                bw_gbps: 10.0,
            },
        );
        assert_eq!(a.label(), "ResNet-50 b8 amp");
        assert_eq!(b.label(), "ResNet-50 b8 ddp[m4x1 bw10]");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprints_are_stable() {
        let s = Scenario::new("BERT_Base", 4, OptSpec::Gist { lossy: true });
        // Pinned value: the cache file format depends on this not drifting.
        assert_eq!(
            s.fingerprint(),
            fnv1a64(b"BERT_Base b4 gist[lossy]|pytorch|2080ti|seed0")
        );
        assert_eq!(s.fingerprint_hex().len(), 16);
    }

    #[test]
    fn applicability_rules() {
        let resnet = zoo::resnet50();
        let bert = zoo::bert_base();
        assert!(
            !OptSpec::FusedAdam.applicable(&resnet),
            "ResNet trains with SGD"
        );
        assert!(OptSpec::FusedAdam.applicable(&bert));
        assert!(OptSpec::Metaflow.applicable(&bert));
        assert!(!OptSpec::Metaflow.applicable(&resnet));
        assert!(OptSpec::Vdnn { lookahead: 2 }.applicable(&resnet));
        assert!(!OptSpec::Vdnn { lookahead: 2 }.applicable(&bert));
        assert!(OptSpec::ReconstructBn.applicable(&resnet));
        assert!(OptSpec::Amp.applicable(&resnet));
        assert!(OptSpec::Amp.applicable(&bert));
    }
}
