//! Multi-fidelity successive-halving sweep search.
//!
//! An exhaustive sweep pays a full-fidelity evaluation for every point of
//! the grid, although most points only need enough fidelity to show they
//! are *not* contenders. The halving search runs the grid through a
//! ladder of rungs instead: rung 0 evaluates everything at low fidelity
//! (a capped incremental-cone budget, with the analytic busy-time
//! estimate past the cap — see [`SweepEngine::run_scenarios_rung`]),
//! keeps the top fraction per model by Pareto-front rank, and promotes
//! the survivors to the next, stricter rung. The final rung is the
//! existing exact path ([`SweepEngine::run_scenarios`]), so every number
//! in the returned [`SweepReport`] is a full-fidelity prediction.
//!
//! Pruning only ever compares like against like: a rung outcome whose
//! cone fit the budget carries the *true* makespan, while an over-budget
//! one carries the optimistic busy-time bound — the two classes are
//! ranked and quota'd separately (see [`select_survivors`]'s internals),
//! so a bound can never evict an exactly-known contender.
//!
//! Determinism: survivors are selected by `(front rank, predicted time,
//! fingerprint)` and carried between rungs sorted by
//! [`Scenario::fingerprint`], so a search is reproducible across runs,
//! thread counts, and shard merges (the per-rung survivor sets double as
//! round inputs for `daydream-shard`'s round plans). With
//! `keep_fraction = 1.0` nothing is ever pruned and the final report is
//! byte-identical to the exhaustive sweep's.
//!
//! Special cases: `Baseline` scenarios are always kept (every speedup is
//! relative to them), and P3 scenarios skip the rungs entirely — their
//! steady-state analysis has no cheap stand-in, so pruning them on rung
//! signals would spend full simulations to save full simulations.

use crate::engine::{Fidelity, SweepEngine};
use crate::grid::SweepGrid;
use crate::report::{ScenarioOutcome, SweepReport};
use crate::scenario::{OptSpec, Scenario};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Successive-halving parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Total rungs including the final exact pass (`1` = plain
    /// exhaustive sweep, no low-fidelity rungs).
    pub rungs: usize,
    /// Fraction of each model's candidates kept per low-fidelity rung.
    pub keep_fraction: f64,
    /// Floor on survivors per model group (so a tiny group is never
    /// pruned to nothing).
    pub keep_min: usize,
    /// Relative near-miss margin: a pruned scenario within this fraction
    /// of a final Pareto-front member on every objective produces a
    /// warning (the pruning may have been fidelity noise).
    pub tolerance: f64,
    /// Per-rung incremental-cone budgets (fraction of the patched
    /// graph). Rung `r` uses `cone_budgets[min(r, len - 1)]`; later
    /// low-fidelity rungs should be stricter (larger budgets).
    pub cone_budgets: Vec<f64>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rungs: 3,
            keep_fraction: 0.25,
            keep_min: 2,
            tolerance: 0.02,
            cone_budgets: vec![0.05, 0.25],
        }
    }
}

impl SearchConfig {
    fn validate(&self) -> Result<(), String> {
        if self.rungs == 0 {
            return Err("search needs at least one rung (the exact pass)".into());
        }
        if !(self.keep_fraction > 0.0 && self.keep_fraction <= 1.0) {
            return Err(format!(
                "invalid keep fraction {}: must be in (0, 1]",
                self.keep_fraction
            ));
        }
        if self.keep_min == 0 {
            return Err("invalid keep-min 0: must keep at least one scenario".into());
        }
        if self.tolerance < 0.0 {
            return Err(format!(
                "invalid tolerance {}: must be >= 0",
                self.tolerance
            ));
        }
        if let Some(b) = self.cone_budgets.iter().find(|&&b| !(b > 0.0 && b <= 1.0)) {
            return Err(format!("invalid cone budget {b}: must be in (0, 1]"));
        }
        if self.rungs > 1 && self.cone_budgets.is_empty() {
            return Err("low-fidelity rungs need at least one cone budget".into());
        }
        Ok(())
    }

    /// The cone budget of low-fidelity rung `r` (the last budget repeats).
    fn cone_budget(&self, r: usize) -> f64 {
        self.cone_budgets[r.min(self.cone_budgets.len() - 1)]
    }
}

/// Accounting for one rung of the ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct RungStats {
    /// Rung index (the last rung is the exact pass).
    pub rung: usize,
    /// Fidelity tag (`"cone50"` for a 5% budget, `"exact"`).
    pub fidelity: String,
    /// Candidates entering the rung (grid points still alive).
    pub expanded: usize,
    /// Candidates actually evaluated at this rung's fidelity.
    pub evaluated: usize,
    /// Survivors promoted to the next rung.
    pub kept: usize,
    /// Candidates pruned at this rung.
    pub pruned: usize,
    /// Evaluations served by the incremental cone path.
    pub incremental_sims: usize,
    /// Evaluations that ran a full dispatch.
    pub full_sims: usize,
    /// Evaluations answered by the analytic busy-time estimate.
    pub estimate_sims: usize,
    /// Wall-clock time of the rung, ms.
    pub wall_ms: u64,
    /// Fingerprints (hex, sorted) of the scenarios promoted out of this
    /// rung — the shard-round input for distributed search.
    pub survivors: Vec<String>,
}

/// The rung-by-rung history of one scenario through the search.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionRecord {
    /// Scenario content fingerprint (hex), the stable key.
    pub key: String,
    /// Human-readable scenario label.
    pub label: String,
    /// `(rung, predicted_ns at that rung's fidelity)` in rung order.
    pub rung_predictions: Vec<(usize, u64)>,
    /// The rung that pruned it, if any.
    pub pruned_at: Option<usize>,
    /// Skipped the rungs entirely (Baseline / P3 scenarios).
    pub auto_promoted: bool,
    /// Reached the final exact rung.
    pub survived: bool,
}

/// The halving search result: the exact-fidelity report over the
/// survivors, plus the ladder's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Full-fidelity report over the scenarios that reached the final
    /// rung (plus auto-promoted ones).
    pub report: SweepReport,
    /// Per-rung accounting, rung 0 first; the last entry is the exact
    /// pass.
    pub rungs: Vec<RungStats>,
    /// Per-scenario promotion history, sorted by fingerprint.
    pub promotions: Vec<PromotionRecord>,
    /// Near-miss warnings (see [`SearchConfig::tolerance`]).
    pub warnings: Vec<String>,
}

impl SearchReport {
    /// Scenarios evaluated across all rungs (the search's total work, to
    /// compare against `grid points x 1` for the exhaustive sweep).
    pub fn total_evaluations(&self) -> usize {
        self.rungs.iter().map(|r| r.evaluated).sum()
    }

    /// The promotion record whose key starts with `prefix` (full keys
    /// match exactly; a unique prefix is accepted for CLI ergonomics).
    pub fn promotion(&self, prefix: &str) -> Option<&PromotionRecord> {
        let mut matches = self.promotions.iter().filter(|p| p.key.starts_with(prefix));
        match (matches.next(), matches.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }

    /// Renders one scenario's rung history for `sweep --explain`.
    pub fn render_history(&self, prefix: &str) -> Option<String> {
        let p = self.promotion(prefix)?;
        let mut out = String::new();
        out.push_str(&format!("scenario:  {}\n", p.label));
        out.push_str(&format!("key:       {}\n", p.key));
        if p.auto_promoted {
            out.push_str("search:    auto-promoted to the exact rung (no cheap stand-in)\n");
        }
        for &(rung, ns) in &p.rung_predictions {
            let fidelity = self
                .rungs
                .iter()
                .find(|r| r.rung == rung)
                .map(|r| r.fidelity.clone())
                .unwrap_or_default();
            out.push_str(&format!("rung {rung}:    predicted {ns} ns [{fidelity}]\n"));
        }
        match p.pruned_at {
            Some(r) => out.push_str(&format!("outcome:   pruned at rung {r}\n")),
            None => out.push_str("outcome:   survived to the exact rung\n"),
        }
        Some(out)
    }

    /// Renders the ladder summary table.
    pub fn render_rungs(&self) -> String {
        let mut out = String::from("rung  fidelity  expanded  evaluated  kept  pruned  wall\n");
        for r in &self.rungs {
            out.push_str(&format!(
                "{:>4}  {:<8}  {:>8}  {:>9}  {:>4}  {:>6}  {} ms\n",
                r.rung, r.fidelity, r.expanded, r.evaluated, r.kept, r.pruned, r.wall_ms
            ));
        }
        out
    }

    /// CSV rows of the rung accounting (for `--csv` alongside the
    /// report's own rows).
    pub fn rungs_csv(&self) -> String {
        let mut out = String::from(
            "rung,fidelity,expanded,evaluated,kept,pruned,incremental_sims,full_sims,estimate_sims,wall_ms\n",
        );
        for r in &self.rungs {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.rung,
                r.fidelity,
                r.expanded,
                r.evaluated,
                r.kept,
                r.pruned,
                r.incremental_sims,
                r.full_sims,
                r.estimate_sims,
                r.wall_ms
            ));
        }
        out
    }
}

/// `a` dominates `b`: no worse on every objective, strictly better on at
/// least one (mirrors the report's Pareto semantics).
fn dominates(a: &ScenarioOutcome, b: &ScenarioOutcome) -> bool {
    let no_worse = a.predicted_ns <= b.predicted_ns
        && a.memory_bytes <= b.memory_bytes
        && a.comm_bytes <= b.comm_bytes;
    let better = a.predicted_ns < b.predicted_ns
        || a.memory_bytes < b.memory_bytes
        || a.comm_bytes < b.comm_bytes;
    no_worse && better
}

/// Pareto-front rank of each outcome (0 = non-dominated; peel and
/// repeat). Quadratic per peel, which is fine at sweep-grid sizes.
fn front_ranks(outcomes: &[&ScenarioOutcome]) -> Vec<usize> {
    let n = outcomes.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut current = 0;
    while assigned < n {
        let mut this_front = Vec::new();
        for i in 0..n {
            if rank[i] != usize::MAX {
                continue;
            }
            let dominated = (0..n)
                .any(|j| j != i && rank[j] == usize::MAX && dominates(outcomes[j], outcomes[i]));
            if !dominated {
                this_front.push(i);
            }
        }
        // A dominance cycle is impossible (strict partial order), so
        // every peel assigns at least one outcome.
        for i in this_front {
            rank[i] = current;
            assigned += 1;
        }
        current += 1;
    }
    rank
}

/// Near-miss warnings: each `(outcome-at-pruning, rung)` pair that a
/// final Pareto-front member dominates only within `tolerance` (i.e. the
/// pruned scenario trails the survivor by at most `tolerance` on every
/// objective). Those prunings are the ones low-rung fidelity noise could
/// have decided; the warning says what to re-check with a bigger
/// `keep_fraction`.
pub fn near_miss_warnings(
    pruned: &[(ScenarioOutcome, usize)],
    front: &[&ScenarioOutcome],
    tolerance: f64,
) -> Vec<String> {
    let within = |p: u64, f: u64| p as f64 <= f as f64 * (1.0 + tolerance);
    let mut out = Vec::new();
    for (p, rung) in pruned {
        let near = front.iter().find(|f| {
            f.model == p.model
                && dominates(f, p)
                && within(p.predicted_ns, f.predicted_ns)
                && within(p.memory_bytes, f.memory_bytes)
                && within(p.comm_bytes, f.comm_bytes)
        });
        if let Some(f) = near {
            out.push(format!(
                "near-miss: '{}' (pruned at rung {rung}, predicted {} ns) trails Pareto \
                 survivor '{}' ({} ns) within the {:.1}% tolerance — consider a larger \
                 keep fraction",
                p.label,
                p.predicted_ns,
                f.label,
                f.predicted_ns,
                tolerance * 100.0
            ));
        }
    }
    out
}

/// Selects the survivors of one rung. Candidates are grouped per model
/// *and per fidelity class* — outcomes the rung simulated exactly (the
/// cone fit the budget, so `predicted_ns` is the true value) never
/// compete against analytic busy-time estimates, whose optimism would
/// otherwise evict exactly-known contenders. Within each class: rank by
/// Pareto front over (time, memory, comm), order by
/// `(front, predicted_ns, fingerprint)`, keep
/// `max(keep_min, ceil(keep_fraction x class))`. Baseline scenarios are
/// always kept. Returns `(survivor indices, pruned indices)` into the
/// candidate list, both sorted.
fn select_survivors(
    candidates: &[Scenario],
    outcomes: &[ScenarioOutcome],
    cfg: &SearchConfig,
) -> (Vec<usize>, Vec<usize>) {
    let mut classes: BTreeMap<(&str, bool), Vec<usize>> = BTreeMap::new();
    for (i, s) in candidates.iter().enumerate() {
        let estimated = outcomes[i].sim_path == "estimate";
        classes
            .entry((s.model.as_str(), estimated))
            .or_default()
            .push(i);
    }
    let mut keep = Vec::new();
    let mut prune = Vec::new();
    for group in classes.values() {
        let grouped: Vec<&ScenarioOutcome> = group.iter().map(|&i| &outcomes[i]).collect();
        let ranks = front_ranks(&grouped);
        let mut order: Vec<usize> = (0..group.len()).collect();
        order.sort_by_key(|&k| {
            (
                ranks[k],
                outcomes[group[k]].predicted_ns,
                candidates[group[k]].fingerprint(),
            )
        });
        let quota = ((cfg.keep_fraction * group.len() as f64).ceil() as usize)
            .max(cfg.keep_min)
            .min(group.len());
        for (pos, &k) in order.iter().enumerate() {
            let i = group[k];
            if pos < quota || candidates[i].opt == OptSpec::Baseline {
                keep.push(i);
            } else {
                prune.push(i);
            }
        }
    }
    keep.sort_unstable();
    prune.sort_unstable();
    (keep, prune)
}

/// Runs the successive-halving search over a grid (see the module docs).
pub fn run_search(
    engine: &SweepEngine,
    grid: &SweepGrid,
    cfg: &SearchConfig,
) -> Result<SearchReport, String> {
    search_scenarios(engine, grid.expand()?, cfg)
}

/// Runs the search over an explicit scenario list (one shard's slice of
/// a distributed search). Duplicate fingerprints collapse to their first
/// occurrence — survivor sets are fingerprint-keyed.
pub fn search_scenarios(
    engine: &SweepEngine,
    scenarios: Vec<Scenario>,
    cfg: &SearchConfig,
) -> Result<SearchReport, String> {
    cfg.validate()?;
    let mut seen = std::collections::HashSet::new();
    let scenarios: Vec<Scenario> = scenarios
        .into_iter()
        .filter(|s| seen.insert(s.fingerprint()))
        .collect();

    // P3 skips the ladder (no cheap stand-in; see module docs). Everyone
    // else starts at rung 0, carried in fingerprint order.
    let (auto, mut candidates): (Vec<Scenario>, Vec<Scenario>) = scenarios
        .into_iter()
        .partition(|s| matches!(s.opt, OptSpec::P3 { .. }));
    candidates.sort_by_key(|s| s.fingerprint());

    let mut records: BTreeMap<String, PromotionRecord> = BTreeMap::new();
    for s in candidates.iter().chain(auto.iter()) {
        records.insert(
            s.fingerprint_hex(),
            PromotionRecord {
                key: s.fingerprint_hex(),
                label: s.label(),
                rung_predictions: Vec::new(),
                pruned_at: None,
                auto_promoted: matches!(s.opt, OptSpec::P3 { .. }),
                survived: true,
            },
        );
    }

    let mut rungs = Vec::new();
    let mut pruned_outcomes: Vec<(ScenarioOutcome, usize)> = Vec::new();
    for r in 0..cfg.rungs.saturating_sub(1) {
        if candidates.is_empty() {
            break;
        }
        let budget = cfg.cone_budget(r);
        let t0 = Instant::now();
        let outcomes = engine.run_scenarios_rung(candidates.clone(), budget)?;
        let wall_ms = t0.elapsed().as_millis() as u64;
        let stats = engine.last_stats();
        for (s, o) in candidates.iter().zip(&outcomes) {
            records
                .get_mut(&s.fingerprint_hex())
                .expect("every candidate has a record")
                .rung_predictions
                .push((r, o.predicted_ns));
        }
        let (keep, prune) = select_survivors(&candidates, &outcomes, cfg);
        for &i in &prune {
            let rec = records
                .get_mut(&candidates[i].fingerprint_hex())
                .expect("every candidate has a record");
            rec.pruned_at = Some(r);
            rec.survived = false;
            pruned_outcomes.push((outcomes[i].clone(), r));
        }
        let survivors: Vec<Scenario> = keep.iter().map(|&i| candidates[i].clone()).collect();
        rungs.push(RungStats {
            rung: r,
            fidelity: Fidelity::Rung {
                max_cone_fraction: budget,
            }
            .tag(),
            expanded: candidates.len(),
            evaluated: outcomes.len(),
            kept: survivors.len(),
            pruned: prune.len(),
            incremental_sims: stats.incremental_sims,
            full_sims: stats.full_sims,
            estimate_sims: stats.estimate_sims,
            wall_ms,
            survivors: survivors.iter().map(|s| s.fingerprint_hex()).collect(),
        });
        candidates = survivors;
    }

    // Final rung: the exact path, result cache and all — identical to
    // what the exhaustive sweep would have run on this scenario set.
    let mut final_set = candidates;
    final_set.extend(auto);
    final_set.sort_by_key(|s| s.fingerprint());
    let t0 = Instant::now();
    let final_outcomes = engine.run_scenarios(final_set.clone())?;
    let wall_ms = t0.elapsed().as_millis() as u64;
    let stats = engine.last_stats();
    let final_rung = cfg.rungs - 1;
    for (s, o) in final_set.iter().zip(&final_outcomes) {
        records
            .get_mut(&s.fingerprint_hex())
            .expect("every finalist has a record")
            .rung_predictions
            .push((final_rung, o.predicted_ns));
    }
    rungs.push(RungStats {
        rung: final_rung,
        fidelity: Fidelity::Exact.tag(),
        expanded: final_set.len(),
        evaluated: final_outcomes.len(),
        kept: final_set.len(),
        pruned: 0,
        incremental_sims: stats.incremental_sims,
        full_sims: stats.full_sims,
        estimate_sims: stats.estimate_sims,
        wall_ms,
        survivors: final_set.iter().map(|s| s.fingerprint_hex()).collect(),
    });

    let report = SweepReport::from_outcomes(final_outcomes);
    let front_by_label: HashMap<&str, &ScenarioOutcome> = report
        .results
        .iter()
        .map(|o| (o.label.as_str(), o))
        .collect();
    let front: Vec<&ScenarioOutcome> = report
        .pareto_front
        .iter()
        .filter_map(|l| front_by_label.get(l.as_str()).copied())
        .collect();
    let warnings = near_miss_warnings(&pruned_outcomes, &front, cfg.tolerance);

    Ok(SearchReport {
        report,
        rungs,
        promotions: records.into_values().collect(),
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, model: &str, ns: u64, mem: u64, comm: u64) -> ScenarioOutcome {
        ScenarioOutcome {
            key: format!("{:016x}", ns),
            label: label.into(),
            model: model.into(),
            batch: 4,
            opt: label.into(),
            baseline_ns: 1000,
            predicted_ns: ns,
            speedup: 1000.0 / ns as f64,
            memory_bytes: mem,
            comm_bytes: comm,
            sim_path: "estimate".into(),
            tasks_redispatched: 0,
            cached: false,
        }
    }

    #[test]
    fn front_ranks_peel_in_dominance_order() {
        let a = outcome("a", "m", 100, 10, 0); // front 0
        let b = outcome("b", "m", 200, 5, 0); // front 0 (memory trade-off)
        let c = outcome("c", "m", 150, 20, 0); // dominated by a
        let d = outcome("d", "m", 300, 30, 0); // dominated by everything
        let ranks = front_ranks(&[&a, &b, &c, &d]);
        assert_eq!(ranks, vec![0, 0, 1, 2]);
    }

    #[test]
    fn near_miss_flags_only_within_tolerance() {
        let survivor = outcome("winner", "m", 1000, 100, 0);
        let close = outcome("close", "m", 1010, 100, 0); // 1% behind
        let far = outcome("far", "m", 2000, 100, 0); // 100% behind
        let other_model = outcome("close-other", "x", 1010, 100, 0);
        let front = vec![&survivor];
        let pruned = vec![
            (close.clone(), 0),
            (far.clone(), 0),
            (other_model.clone(), 1),
        ];
        let warnings = near_miss_warnings(&pruned, &front, 0.02);
        assert_eq!(warnings.len(), 1, "only the within-tolerance pruning");
        assert!(warnings[0].contains("'close'"));
        assert!(warnings[0].contains("rung 0"));
        // Zero tolerance: nothing strictly dominated can be "within".
        assert!(near_miss_warnings(&pruned, &front, 0.0).is_empty());
    }

    #[test]
    fn select_survivors_keeps_baseline_and_respects_quota() {
        let candidates = vec![
            Scenario::new("ResNet-50", 4, OptSpec::Baseline),
            Scenario::new("ResNet-50", 4, OptSpec::Amp),
            Scenario::new("ResNet-50", 4, OptSpec::Gist { lossy: false }),
            Scenario::new("ResNet-50", 4, OptSpec::Gist { lossy: true }),
        ];
        // Baseline is the *slowest* here; amp fastest.
        let outcomes = vec![
            outcome("baseline", "ResNet-50", 1000, 100, 0),
            outcome("amp", "ResNet-50", 400, 90, 0),
            outcome("gist", "ResNet-50", 600, 80, 0),
            outcome("gist-lossy", "ResNet-50", 900, 95, 0),
        ];
        let cfg = SearchConfig {
            keep_fraction: 0.25,
            keep_min: 1,
            ..SearchConfig::default()
        };
        let (keep, prune) = select_survivors(&candidates, &outcomes, &cfg);
        // Quota is 1 (amp, front 0 + fastest), baseline rides along.
        assert!(keep.contains(&0), "baseline always survives");
        assert!(keep.contains(&1), "the dominant scenario survives");
        assert_eq!(keep.len(), 2);
        assert_eq!(prune, vec![2, 3]);
    }

    #[test]
    fn keep_fraction_one_prunes_nothing() {
        let candidates = vec![
            Scenario::new("ResNet-50", 4, OptSpec::Amp),
            Scenario::new("BERT_Base", 4, OptSpec::Amp),
        ];
        let outcomes = vec![
            outcome("a", "ResNet-50", 100, 1, 0),
            outcome("b", "BERT_Base", 999, 999, 999),
        ];
        let cfg = SearchConfig {
            keep_fraction: 1.0,
            keep_min: 1,
            ..SearchConfig::default()
        };
        let (keep, prune) = select_survivors(&candidates, &outcomes, &cfg);
        assert_eq!(keep.len(), 2);
        assert!(prune.is_empty());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let bad = |f: fn(&mut SearchConfig)| {
            let mut cfg = SearchConfig::default();
            f(&mut cfg);
            cfg.validate().unwrap_err()
        };
        assert!(bad(|c| c.rungs = 0).contains("at least one rung"));
        assert!(bad(|c| c.keep_fraction = 0.0).contains("keep fraction"));
        assert!(bad(|c| c.keep_fraction = 1.5).contains("keep fraction"));
        assert!(bad(|c| c.keep_min = 0).contains("keep-min"));
        assert!(bad(|c| c.tolerance = -0.1).contains("tolerance"));
        assert!(bad(|c| c.cone_budgets = vec![0.0]).contains("cone budget"));
        assert!(bad(|c| c.cone_budgets = vec![]).contains("cone budget"));
        assert!(SearchConfig::default().validate().is_ok());
    }
}
