//! Work-stealing parallel map over scenario-sized work items.
//!
//! Std-threads only (the workspace builds offline): each worker owns a
//! deque seeded round-robin; a worker drains its own queue from the
//! front and, when empty, steals half of the largest victim queue from
//! the back. Results land in their input slot, so output order — and
//! therefore every downstream ranking — is independent of thread count
//! and interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters from one parallel run (informational; not part of reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Items executed.
    pub executed: usize,
    /// Successful steal operations across all workers.
    pub steals: usize,
    /// Worker threads actually spawned.
    pub workers: usize,
}

/// Applies `f` to every item on `threads` workers with work stealing;
/// returns results in input order plus run counters.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> (Vec<R>, ExecutorStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), |_| (), |_, item| f(item))
}

/// [`parallel_map`] with per-worker state: each worker runs `init` once
/// at spawn, threads the state mutably through every item it executes,
/// and hands it to `finish` at exit. The sweep engine checks a
/// [`daydream_core::SimScratch`] arena out of its pool per worker this
/// way, so a batch of scenario evaluations shares warm buffers instead
/// of allocating per item.
pub fn parallel_map_with<T, R, S, I, D, F>(
    items: Vec<T>,
    threads: usize,
    init: I,
    finish: D,
    f: F,
) -> (Vec<R>, ExecutorStats)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    D: Fn(S) + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), ExecutorStats::default());
    }
    let workers = threads.max(1).min(n);

    // One worker means no stealing and no ordering question — run
    // inline. A resident daemon's single warm what-if would otherwise
    // pay a thread spawn that dwarfs the O(cone) evaluation itself.
    if workers == 1 {
        let mut state = init();
        let results: Vec<R> = items.into_iter().map(|item| f(&mut state, item)).collect();
        finish(state);
        return (
            results,
            ExecutorStats {
                executed: n,
                steals: 0,
                workers: 1,
            },
        );
    }

    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, item));
    }

    // Each worker accumulates `(input index, result)` pairs privately and
    // merges them once at exit — one result-lock acquisition per worker
    // instead of one per item.
    let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let steals = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let merged = &merged;
            let steals = &steals;
            let init = &init;
            let finish = &finish;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // Own queue first (front: preserves locality of the
                    // round-robin seeding).
                    let own = queues[me].lock().unwrap().pop_front();
                    let (idx, item) = match own {
                        Some(work) => work,
                        None => {
                            // Steal half of the fullest victim, from the back.
                            match steal_batch(queues, me) {
                                Some(batch) => {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    let mut q = queues[me].lock().unwrap();
                                    for w in batch {
                                        q.push_back(w);
                                    }
                                    continue;
                                }
                                // Nothing anywhere: workers cannot create new
                                // work, so empty queues mean we are done.
                                None => break,
                            }
                        }
                    };
                    local.push((idx, f(&mut state, item)));
                }
                finish(state);
                merged.lock().unwrap().append(&mut local);
            });
        }
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (idx, r) in merged.into_inner().expect("result mutex poisoned") {
        slots[idx] = Some(r);
    }
    let results: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every slot filled when all queues drain"))
        .collect();
    (
        results,
        ExecutorStats {
            executed: n,
            steals: steals.load(Ordering::Relaxed),
            workers,
        },
    )
}

/// Pops up to half (at least one) of the fullest other queue.
///
/// Victims are ranked by a racy length snapshot, but the chosen victim is
/// re-checked and drained under a *single* lock acquisition — a queue that
/// was emptied between the snapshot and the steal is simply skipped in
/// favor of the next-fullest, so the steal never misses work that still
/// exists elsewhere.
fn steal_batch<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<Vec<(usize, T)>> {
    let mut victims: Vec<(usize, usize)> = (0..queues.len())
        .filter(|&v| v != me)
        .map(|v| (queues[v].lock().unwrap().len(), v))
        .filter(|&(len, _)| len > 0)
        .collect();
    victims.sort_unstable_by(|a, b| b.cmp(a));
    for (_, v) in victims {
        let mut q = queues[v].lock().unwrap();
        if q.is_empty() {
            continue;
        }
        let take = (q.len() / 2).max(1);
        let from = q.len() - take;
        return Some(q.drain(from..).collect());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let (out, stats) = parallel_map(items.clone(), threads, |x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
            assert_eq!(stats.executed, 97);
            assert!(stats.workers <= 97);
        }
    }

    #[test]
    fn empty_input() {
        let (out, stats) = parallel_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn uneven_work_gets_stolen() {
        // One poison-pill slow item forces other workers to steal the
        // fast items parked behind it on the same queue.
        let ran = AtomicUsize::new(0);
        let (out, _) = parallel_map((0..64).collect::<Vec<u64>>(), 8, |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn per_worker_state_is_initialized_and_finished() {
        let inits = AtomicUsize::new(0);
        let counted = AtomicUsize::new(0);
        let (out, stats) = parallel_map_with(
            (0..50).collect::<Vec<u64>>(),
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |s| {
                counted.fetch_add(s, Ordering::Relaxed);
            },
            |s, x| {
                *s += 1;
                x * 2
            },
        );
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::Relaxed), stats.workers);
        assert_eq!(
            counted.load(Ordering::Relaxed),
            50,
            "every item threads through exactly one worker's state"
        );
    }

    #[test]
    fn single_thread_is_sequential() {
        let order = Mutex::new(Vec::new());
        parallel_map((0..10).collect::<Vec<u64>>(), 1, |x| {
            order.lock().unwrap().push(x);
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<u64>>());
    }
}
