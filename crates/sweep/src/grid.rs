//! Grid expansion: named axes crossed into a deterministic scenario list.
//!
//! A [`SweepGrid`] is plain data (so the CLI can build one from `--key`
//! lists); expansion crosses model x batch x optimization, each
//! optimization family additionally crossed with the parameter axes that
//! apply to it. Inapplicable combinations (FusedAdam on an SGD model,
//! vDNN on a conv-free model) are dropped during expansion, and custom
//! filters can prune further.

use crate::scenario::{OptSpec, Scenario};
use daydream_models::zoo;

/// Predicate pruning expanded scenarios.
pub type ScenarioFilter = Box<dyn Fn(&Scenario) -> bool + Send + Sync>;

/// A named parameter grid for a batch what-if sweep.
pub struct SweepGrid {
    /// Zoo model names.
    pub models: Vec<String>,
    /// Mini-batch sizes to profile at.
    pub batches: Vec<u64>,
    /// Optimization families (the `OptSpec::family` vocabulary).
    pub opts: Vec<String>,
    /// Inter-node bandwidths (Gbit/s) for cluster-shaped families.
    pub bandwidths: Vec<f64>,
    /// Machine counts for cluster-shaped families.
    pub machines: Vec<u32>,
    /// GPUs per machine for cluster-shaped families.
    pub gpus_per_machine: u32,
    /// DGC compression ratios.
    pub dgc_ratios: Vec<f64>,
    /// Bandwidth what-if multipliers.
    pub bandwidth_factors: Vec<f64>,
    /// Upgrade-GPU target names.
    pub upgrade_targets: Vec<String>,
    /// Gist lossy-mode settings.
    pub gist_lossy: Vec<bool>,
    /// vDNN prefetch lookaheads.
    pub vdnn_lookaheads: Vec<usize>,
    /// Batch-size what-if targets.
    pub target_batches: Vec<u64>,
    filters: Vec<ScenarioFilter>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            models: vec!["ResNet-50".into(), "BERT_Base".into()],
            batches: vec![4, 8],
            opts: vec![
                "amp".into(),
                "fused-adam".into(),
                "gist".into(),
                "ddp".into(),
                "dgc".into(),
                "bandwidth".into(),
            ],
            bandwidths: vec![10.0, 25.0],
            machines: vec![4],
            gpus_per_machine: 1,
            dgc_ratios: vec![0.01],
            bandwidth_factors: vec![2.0],
            upgrade_targets: vec!["v100".into()],
            gist_lossy: vec![false],
            vdnn_lookaheads: vec![2],
            target_batches: vec![16],
            filters: Vec::new(),
        }
    }
}

impl SweepGrid {
    /// Starts a builder over the default grid.
    pub fn builder() -> SweepGridBuilder {
        SweepGridBuilder {
            grid: SweepGrid::default(),
        }
    }

    /// The named axes and their cardinalities, for logging and reports.
    pub fn axes(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("model", self.models.len()),
            ("batch", self.batches.len()),
            ("opt", self.opts.len()),
            ("bandwidth", self.bandwidths.len()),
            ("machines", self.machines.len()),
            ("dgc-ratio", self.dgc_ratios.len()),
            ("bandwidth-factor", self.bandwidth_factors.len()),
            ("upgrade-target", self.upgrade_targets.len()),
            ("gist-lossy", self.gist_lossy.len()),
            ("vdnn-lookahead", self.vdnn_lookaheads.len()),
            ("target-batch", self.target_batches.len()),
        ]
    }

    /// Expands one optimization family into its parameterized variants.
    fn expand_family(&self, family: &str) -> Result<Vec<OptSpec>, String> {
        let cluster = |f: &mut dyn FnMut(u32, u32, f64) -> OptSpec| -> Vec<OptSpec> {
            let mut out = Vec::new();
            for &m in &self.machines {
                for &bw in &self.bandwidths {
                    out.push(f(m, self.gpus_per_machine, bw));
                }
            }
            out
        };
        Ok(match family {
            "baseline" => vec![OptSpec::Baseline],
            "amp" => vec![OptSpec::Amp],
            "fused-adam" => vec![OptSpec::FusedAdam],
            "reconstruct-bn" => vec![OptSpec::ReconstructBn],
            "metaflow" => vec![OptSpec::Metaflow],
            "ddp" => cluster(&mut |machines, gpus_per_machine, bw_gbps| OptSpec::Ddp {
                machines,
                gpus_per_machine,
                bw_gbps,
            }),
            "blueconnect" => {
                cluster(
                    &mut |machines, gpus_per_machine, bw_gbps| OptSpec::BlueConnect {
                        machines,
                        gpus_per_machine,
                        bw_gbps,
                    },
                )
            }
            "p3" => cluster(&mut |machines, gpus_per_machine, bw_gbps| OptSpec::P3 {
                machines,
                gpus_per_machine,
                bw_gbps,
            }),
            "dgc" => {
                let mut out = Vec::new();
                for &machines in &self.machines {
                    for &bw_gbps in &self.bandwidths {
                        for &ratio in &self.dgc_ratios {
                            out.push(OptSpec::Dgc {
                                machines,
                                gpus_per_machine: self.gpus_per_machine,
                                bw_gbps,
                                ratio,
                            });
                        }
                    }
                }
                out
            }
            "vdnn" => self
                .vdnn_lookaheads
                .iter()
                .map(|&lookahead| OptSpec::Vdnn { lookahead })
                .collect(),
            "gist" => self
                .gist_lossy
                .iter()
                .map(|&lossy| OptSpec::Gist { lossy })
                .collect(),
            "bandwidth" => self
                .bandwidth_factors
                .iter()
                .map(|&factor| OptSpec::Bandwidth { factor })
                .collect(),
            "upgrade-gpu" => self
                .upgrade_targets
                .iter()
                .map(|to| OptSpec::UpgradeGpu { to: to.clone() })
                .collect(),
            "batch-size" => self
                .target_batches
                .iter()
                .map(|&batch| OptSpec::BatchSize { batch })
                .collect(),
            other => {
                return Err(format!(
                    "unknown optimization family '{other}'. available: baseline amp fused-adam \
                     reconstruct-bn metaflow ddp blueconnect dgc p3 vdnn gist bandwidth \
                     upgrade-gpu batch-size"
                ))
            }
        })
        .and_then(|variants| {
            if variants.is_empty() {
                // Only reachable via an empty parameter axis (e.g. ddp
                // with no bandwidths): surface it instead of silently
                // sweeping nothing.
                Err(format!(
                    "optimization family '{family}' expands to no scenarios: its parameter axis is empty"
                ))
            } else {
                Ok(variants)
            }
        })
    }

    /// Expands the full cartesian product, drops inapplicable or filtered
    /// scenarios, and returns the deterministic ordered list. Exact
    /// duplicates (a repeated axis value, e.g. `--ratios 0.01,0.01`)
    /// collapse to their first occurrence: downstream consumers key on
    /// the scenario content fingerprint (result cache, shard partition,
    /// merged reports), where a duplicate would silently swallow a
    /// result slot.
    pub fn expand(&self) -> Result<Vec<Scenario>, String> {
        self.validate()?;
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for model_name in &self.models {
            let model = zoo::by_name(model_name)
                .ok_or_else(|| format!("unknown model '{model_name}' in sweep grid"))?;
            for &batch in &self.batches {
                for family in &self.opts {
                    for opt in self.expand_family(family)? {
                        if !opt.applicable(&model) {
                            continue;
                        }
                        let s = Scenario::new(model.name.clone(), batch, opt);
                        if self.filters.iter().all(|f| f(&s)) && seen.insert(s.label()) {
                            out.push(s);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Rejects physically meaningless axis values up front, so they
    /// fail with a clear message instead of producing nonsense
    /// predictions (e.g. a finite iteration time at negative bandwidth).
    fn validate(&self) -> Result<(), String> {
        for (axis, empty) in [
            ("models", self.models.is_empty()),
            ("batches", self.batches.is_empty()),
            ("opts", self.opts.is_empty()),
        ] {
            if empty {
                return Err(format!(
                    "empty '{axis}' axis: a sweep needs at least one value"
                ));
            }
        }
        if let Some(b) = self.batches.iter().find(|&&b| b == 0) {
            return Err(format!("invalid batch size {b}: must be >= 1"));
        }
        if let Some(bw) = self.bandwidths.iter().find(|&&bw| bw <= 0.0) {
            return Err(format!("invalid bandwidth {bw} Gbit/s: must be > 0"));
        }
        if let Some(m) = self.machines.iter().find(|&&m| m == 0) {
            return Err(format!("invalid machine count {m}: must be >= 1"));
        }
        if self.gpus_per_machine == 0 {
            return Err("invalid gpus-per-machine 0: must be >= 1".into());
        }
        if let Some(r) = self.dgc_ratios.iter().find(|&&r| !(r > 0.0 && r <= 1.0)) {
            return Err(format!("invalid DGC ratio {r}: must be in (0, 1]"));
        }
        if let Some(f) = self.bandwidth_factors.iter().find(|&&f| f <= 0.0) {
            return Err(format!("invalid bandwidth factor {f}: must be > 0"));
        }
        // Resolve GPU targets now: a typo'd --to must fail before the
        // sweep runs, not mid-evaluation after profiles are built.
        for target in &self.upgrade_targets {
            daydream_device::GpuSpec::by_name(target)?;
        }
        if let Some(b) = self.target_batches.iter().find(|&&b| b == 0) {
            return Err(format!("invalid target batch {b}: must be >= 1"));
        }
        Ok(())
    }
}

/// Fluent construction of a [`SweepGrid`].
pub struct SweepGridBuilder {
    grid: SweepGrid,
}

impl SweepGridBuilder {
    /// Sets the model axis.
    pub fn models<I: IntoIterator<Item = S>, S: Into<String>>(mut self, models: I) -> Self {
        self.grid.models = models.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the batch-size axis.
    pub fn batches<I: IntoIterator<Item = u64>>(mut self, batches: I) -> Self {
        self.grid.batches = batches.into_iter().collect();
        self
    }

    /// Sets the optimization-family axis.
    pub fn opts<I: IntoIterator<Item = S>, S: Into<String>>(mut self, opts: I) -> Self {
        self.grid.opts = opts.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the inter-node bandwidth axis (Gbit/s).
    pub fn bandwidths<I: IntoIterator<Item = f64>>(mut self, bw: I) -> Self {
        self.grid.bandwidths = bw.into_iter().collect();
        self
    }

    /// Sets the machine-count axis.
    pub fn machines<I: IntoIterator<Item = u32>>(mut self, machines: I) -> Self {
        self.grid.machines = machines.into_iter().collect();
        self
    }

    /// Sets GPUs per machine (a scalar, not an axis).
    pub fn gpus_per_machine(mut self, gpus: u32) -> Self {
        self.grid.gpus_per_machine = gpus;
        self
    }

    /// Sets the DGC compression-ratio axis.
    pub fn dgc_ratios<I: IntoIterator<Item = f64>>(mut self, ratios: I) -> Self {
        self.grid.dgc_ratios = ratios.into_iter().collect();
        self
    }

    /// Sets the bandwidth-multiplier axis.
    pub fn bandwidth_factors<I: IntoIterator<Item = f64>>(mut self, factors: I) -> Self {
        self.grid.bandwidth_factors = factors.into_iter().collect();
        self
    }

    /// Sets the upgrade-GPU target axis.
    pub fn upgrade_targets<I: IntoIterator<Item = S>, S: Into<String>>(mut self, to: I) -> Self {
        self.grid.upgrade_targets = to.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the Gist lossy-mode axis.
    pub fn gist_lossy<I: IntoIterator<Item = bool>>(mut self, lossy: I) -> Self {
        self.grid.gist_lossy = lossy.into_iter().collect();
        self
    }

    /// Sets the vDNN lookahead axis.
    pub fn vdnn_lookaheads<I: IntoIterator<Item = usize>>(mut self, la: I) -> Self {
        self.grid.vdnn_lookaheads = la.into_iter().collect();
        self
    }

    /// Sets the batch-size what-if target axis.
    pub fn target_batches<I: IntoIterator<Item = u64>>(mut self, batches: I) -> Self {
        self.grid.target_batches = batches.into_iter().collect();
        self
    }

    /// Adds a scenario filter; all filters must accept a scenario.
    pub fn filter<F: Fn(&Scenario) -> bool + Send + Sync + 'static>(mut self, f: F) -> Self {
        self.grid.filters.push(Box::new(f));
        self
    }

    /// Finishes the grid.
    pub fn build(self) -> SweepGrid {
        self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_expands_to_a_rich_sweep() {
        let grid = SweepGrid::default();
        let scenarios = grid.expand().unwrap();
        // 2 models x 2 batches x {amp 1, gist 1, ddp 2, dgc 2, bandwidth 1}
        // = 28, plus fused-adam on the two BERT bases.
        assert_eq!(scenarios.len(), 30);
        assert!(scenarios.len() >= 24, "acceptance floor");
        // Deterministic order: expansion is pure iteration.
        let again = grid.expand().unwrap();
        assert_eq!(scenarios, again);
    }

    #[test]
    fn inapplicable_combinations_are_dropped() {
        let grid = SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["fused-adam", "metaflow", "amp"])
            .build();
        let scenarios = grid.expand().unwrap();
        // ResNet trains with SGD and has no attention: only AMP survives.
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].opt, OptSpec::Amp);
    }

    #[test]
    fn filters_prune_scenarios() {
        let grid = SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4, 8, 16])
            .opts(["amp"])
            .filter(|s| s.batch <= 8)
            .build();
        assert_eq!(grid.expand().unwrap().len(), 2);
    }

    #[test]
    fn cluster_axes_cross() {
        let grid = SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["ddp", "dgc"])
            .bandwidths([10.0, 25.0, 40.0])
            .machines([2, 4])
            .dgc_ratios([0.01, 0.05])
            .build();
        let scenarios = grid.expand().unwrap();
        // ddp: 2 machines x 3 bw = 6; dgc: 6 x 2 ratios = 12.
        assert_eq!(scenarios.len(), 18);
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let grid = SweepGrid::builder()
            .models(["ResNet-50", "ResNet-50"])
            .batches([4, 4])
            .opts(["amp", "dgc"])
            .machines([4])
            .bandwidths([10.0])
            .dgc_ratios([0.01, 0.01])
            .build();
        let scenarios = grid.expand().unwrap();
        // One amp + one dgc: every repeated axis value collapses.
        assert_eq!(scenarios.len(), 2);
        let labels: std::collections::HashSet<_> = scenarios.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), scenarios.len());
    }

    #[test]
    fn unknown_inputs_error() {
        let bad_model = SweepGrid::builder().models(["AlexNet"]).build();
        assert!(bad_model.expand().is_err());
        let bad_opt = SweepGrid::builder().opts(["quantum"]).build();
        assert!(bad_opt.expand().is_err());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let no_models = SweepGrid::builder().models(Vec::<String>::new()).build();
        assert!(no_models.expand().unwrap_err().contains("'models' axis"));
        let no_batches = SweepGrid::builder().batches(Vec::<u64>::new()).build();
        assert!(no_batches.expand().unwrap_err().contains("'batches' axis"));
        let no_opts = SweepGrid::builder().opts(Vec::<String>::new()).build();
        assert!(no_opts.expand().unwrap_err().contains("'opts' axis"));
        // An empty parameter axis of a requested family is an error, not
        // a silent zero-scenario sweep.
        let no_bw = SweepGrid::builder()
            .opts(["ddp"])
            .bandwidths(Vec::<f64>::new())
            .build();
        assert!(no_bw.expand().unwrap_err().contains("'ddp' expands to no"));
        // ... but an unused empty parameter axis is fine.
        let unused = SweepGrid::builder()
            .models(["ResNet-50"])
            .batches([4])
            .opts(["amp"])
            .bandwidths(Vec::<f64>::new())
            .build();
        assert_eq!(unused.expand().unwrap().len(), 1);
    }

    #[test]
    fn meaningless_axis_values_are_rejected() {
        let cases: Vec<(SweepGrid, &str)> = vec![
            (SweepGrid::builder().batches([0]).build(), "batch size"),
            (
                SweepGrid::builder().bandwidths([-10.0]).build(),
                "bandwidth",
            ),
            (SweepGrid::builder().machines([0]).build(), "machine count"),
            (
                SweepGrid::builder().gpus_per_machine(0).build(),
                "gpus-per-machine",
            ),
            (SweepGrid::builder().dgc_ratios([1.5]).build(), "DGC ratio"),
            (
                SweepGrid::builder().bandwidth_factors([0.0]).build(),
                "bandwidth factor",
            ),
            (
                SweepGrid::builder().target_batches([0]).build(),
                "target batch",
            ),
        ];
        for (grid, needle) in cases {
            let err = grid.expand().unwrap_err();
            assert!(err.contains(needle), "expected '{needle}' in: {err}");
        }
    }
}
